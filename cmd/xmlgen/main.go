// Command xmlgen materializes the synthetic workload documents of the
// paper's experiments (and the realistic catalog/auction documents) as
// XML files, for use with xpathquery or external tools.
//
//	xmlgen -kind doc -n 200 > doc200.xml        # DOC(200) of Section 2
//	xmlgen -kind docprime -n 10 > docp10.xml    # DOC'(10) of Experiment 2
//	xmlgen -kind deep -n 50 > deep50.xml        # Experiment 5(b) path
//	xmlgen -kind catalog -n 100 > catalog.xml
//	xmlgen -kind auction -n 100 -seed 7 > auction.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
	"repro/internal/xmltree"
)

func main() {
	kind := flag.String("kind", "doc", "document family: doc|docprime|deep|catalog|auction")
	n := flag.Int("n", 10, "size parameter")
	seed := flag.Int64("seed", 1, "seed for randomized families")
	flag.Parse()

	var d *xmltree.Document
	switch *kind {
	case "doc":
		d = workload.Doc(*n)
	case "docprime":
		d = workload.DocPrime(*n)
	case "deep":
		d = workload.DeepDoc(*n)
	case "catalog":
		d = workload.Catalog(*n)
	case "auction":
		d = workload.Auction(*seed, *n)
	default:
		fmt.Fprintf(os.Stderr, "xmlgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, `<?xml version="1.0"?>`)
	if err := d.WriteXML(w); err != nil {
		fmt.Fprintf(os.Stderr, "xmlgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(w)
}
