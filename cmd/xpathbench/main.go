// Command xpathbench regenerates the tables and figures of the paper's
// evaluation section on the current machine.
//
// Usage:
//
//	xpathbench -exp all                 # everything (several minutes)
//	xpathbench -exp exp1                # Figure 2 left
//	xpathbench -exp table7 -cap 5s      # Table VII with a 5s point cap
//
// Experiments: exp1, exp2, exp3, exp4, exp5a, exp5b, table5 (also covers
// Figure 12), table7, ablate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: exp1|exp2|exp3|exp4|exp5a|exp5b|table5|table7|ablate|all")
	cap := flag.Duration("cap", 2*time.Second, "wall-clock cap per measured point")
	scale := flag.Float64("scale", 1, "document-size scale factor for exp4 (1 = paper-sized)")
	flag.Parse()

	cfg := bench.Config{Cap: *cap, Scale: *scale, Out: os.Stdout}
	runners := map[string]func(){
		"exp1":   func() { bench.Exp1(cfg) },
		"exp2":   func() { bench.Exp2(cfg) },
		"exp3":   func() { bench.Exp3(cfg) },
		"exp4":   func() { bench.Exp4(cfg) },
		"exp5a":  func() { bench.Exp5(cfg, false) },
		"exp5b":  func() { bench.Exp5(cfg, true) },
		"table5": func() { bench.Table5(cfg) },
		"table7": func() { bench.Table7(cfg) },
		"ablate": func() { bench.Ablation(cfg) },
	}
	order := []string{"exp1", "exp2", "exp3", "exp4", "exp5a", "exp5b", "table5", "table7", "ablate"}
	if *exp == "all" {
		for _, name := range order {
			runners[name]()
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %v or all\n", *exp, order)
		os.Exit(2)
	}
	run()
}
