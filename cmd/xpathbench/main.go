// Command xpathbench regenerates the tables and figures of the paper's
// evaluation section on the current machine.
//
// Usage:
//
//	xpathbench -exp all                 # everything (several minutes)
//	xpathbench -exp exp1                # Figure 2 left
//	xpathbench -exp table7 -cap 5s      # Table VII with a 5s point cap
//	xpathbench -exp exp4 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiments: exp1, exp2, exp3, exp4, exp5a, exp5b, table5 (also covers
// Figure 12), table7, ablate, planner (-planner picks the mode the
// planned-Auto contestant runs under).
//
// -cpuprofile and -memprofile write pprof profiles covering the
// measured experiments, so performance PRs can attach `go tool pprof`
// evidence for where the time and allocations go. -blockprofile and
// -mutexprofile add the contention profiles that matter for the worker
// pools and multicore kernels: where goroutines block and which locks
// they fight over.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/bench"
	"repro/internal/planner"
)

func main() {
	os.Exit(run())
}

// run holds every deferred profile finalizer, so any exit path — bad
// flags included — still stops the CPU profile and closes its file
// (os.Exit in main would skip defers and truncate the profile). The
// named return lets the deferred heap-profile writer report failure.
func run() (exitCode int) {
	exp := flag.String("exp", "all", "experiment to run: exp1|exp2|exp3|exp4|exp5a|exp5b|table5|table7|ablate|planner|all")
	cap := flag.Duration("cap", 2*time.Second, "wall-clock cap per measured point")
	scale := flag.Float64("scale", 1, "document-size scale factor for exp4 (1 = paper-sized)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "per-query worker budget for the multicore kernels (0 = sequential)")
	plannerMode := flag.String("planner", "adaptive", "planner mode for the planner experiment's planned-Auto contestant: adaptive|rules|off")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to `file`")
	memprofile := flag.String("memprofile", "", "write an allocation profile taken after the run to `file`")
	blockprofile := flag.String("blockprofile", "", "write a goroutine blocking profile taken after the run to `file`")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex contention profile taken after the run to `file`")
	flag.Parse()

	pmode, ok := planner.ModeByName(*plannerMode)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown planner mode %q; choose adaptive, rules or off\n", *plannerMode)
		return 2
	}
	cfg := bench.Config{Cap: *cap, Scale: *scale, Parallelism: *parallel, Planner: pmode, Out: os.Stdout}
	cfg.FprintConfig(os.Stdout)
	runners := map[string]func(){
		"exp1":    func() { bench.Exp1(cfg) },
		"exp2":    func() { bench.Exp2(cfg) },
		"exp3":    func() { bench.Exp3(cfg) },
		"exp4":    func() { bench.Exp4(cfg) },
		"exp5a":   func() { bench.Exp5(cfg, false) },
		"exp5b":   func() { bench.Exp5(cfg, true) },
		"table5":  func() { bench.Table5(cfg) },
		"table7":  func() { bench.Table7(cfg) },
		"ablate":  func() { bench.Ablation(cfg) },
		"planner": func() { bench.PlannerAblation(cfg) },
	}
	order := []string{"exp1", "exp2", "exp3", "exp4", "exp5a", "exp5b", "table5", "table7", "ablate", "planner"}
	var todo []func()
	if *exp == "all" {
		for _, name := range order {
			todo = append(todo, runners[name])
		}
	} else if r, ok := runners[*exp]; ok {
		todo = append(todo, r)
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose one of %v or all\n", *exp, order)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xpathbench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "xpathbench: start cpu profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xpathbench: %v\n", err)
				exitCode = 1
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "xpathbench: write heap profile: %v\n", err)
				exitCode = 1
			}
		}()
	}
	// Contention profiles for the worker pools and multicore kernels:
	// sampling must be on BEFORE the experiments run, and the lookup
	// profiles are written after, mirroring the heap-profile pattern.
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer func() {
			if err := writeLookupProfile("block", *blockprofile); err != nil {
				fmt.Fprintf(os.Stderr, "xpathbench: %v\n", err)
				exitCode = 1
			}
		}()
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
		defer func() {
			if err := writeLookupProfile("mutex", *mutexprofile); err != nil {
				fmt.Fprintf(os.Stderr, "xpathbench: %v\n", err)
				exitCode = 1
			}
		}()
	}

	for _, r := range todo {
		r()
	}
	return exitCode
}

// writeLookupProfile writes one of the runtime's named profiles
// ("block", "mutex") to path.
func writeLookupProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("no %s profile in this runtime", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.WriteTo(f, 0); err != nil {
		return fmt.Errorf("write %s profile: %v", name, err)
	}
	return nil
}
