package main

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/store"
)

func TestParsePeers(t *testing.T) {
	nodes, err := parsePeers("http://a:8080, http://b:8080 ,", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Name() != "a:8080" || nodes[1].Name() != "b:8080" {
		t.Fatalf("parsed %v", nodes)
	}
	for spec, wantErr := range map[string]string{
		"":                              "-peers is required",
		"   ,  ,":                       "no usable URLs",
		"ftp://x":                       "want http(s)",
		"http://a:1,http://a:1":         "duplicate peer",
		"http://a:8080,not a url at &%": "peer",
	} {
		if _, err := parsePeers(spec, time.Second); err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Fatalf("parsePeers(%q) err = %v, want mention of %q", spec, err, wantErr)
		}
	}
}

// TestRouterWiring boots the same stack main assembles — two real
// backend nodes behind a router built from a -peers string — and
// drives a routed query end to end through the router handler.
func TestRouterWiring(t *testing.T) {
	var urls []string
	var backends []*serve.Server
	for i := 0; i < 2; i++ {
		srv := serve.New(engine.New(engine.Options{}), store.Config{})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		backends = append(backends, srv)
	}
	nodes, err := parsePeers(strings.Join(urls, ","), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	router, err := cluster.New(nodes, cluster.Options{Retries: 1, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	router.Start()
	defer router.Stop()
	rts := httptest.NewServer(router.Handler())
	t.Cleanup(rts.Close)

	if _, _, err := backends[store.KeyShard("wired", 2)].AddDocument("wired", "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(rts.URL + "/query?doc=wired&q=count(//b)")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed query status = %d", resp.StatusCode)
	}
	if h := router.CheckHealth(); h != 2 {
		t.Fatalf("CheckHealth = %d, want 2", h)
	}
	if _, err := cluster.New(nil, cluster.Options{}); err == nil {
		t.Fatal(errors.New("router over zero peers must be rejected"))
	}
}
