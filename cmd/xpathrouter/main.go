// Command xpathrouter is the cluster front of the serving stack: it
// partitions documents across N xpathserve backends with the same
// FNV-1a routing the in-process store uses for shards, so a corpus can
// exceed one machine's memory while clients keep talking to a single
// address with the single-node API.
//
// Usage:
//
//	xpathrouter -addr :8079 -peers http://n1:8080,http://n2:8080,http://n3:8080 \
//	    -replicas 1 -replica-retry 1 -timeout 10s
//
// Endpoints (the xpathserve surface, plus fleet views):
//
//	POST   /documents  {"name": "d", "xml": "..."}   register on the owner + replicas
//	GET    /documents                                merged listing, tagged per node
//	GET    /documents?name=d                         fetch from the owning node
//	DELETE /documents?name=d                         evict from every holder
//	GET    /query?doc=d&q=//b                        forwarded to the owning node
//	POST   /query      {"doc": "d", "query": "..."}  same, JSON body
//	POST   /batch      {"doc": "d", ...}             single-doc batch, relayed
//	POST   /batch      {"docs": ["d","e"], ...}      scatter-gather, one stream per node
//	GET    /stats                                    per-node stats + fleet totals
//	GET    /health                                   per-peer health + ring description (+ uptime, build)
//	GET    /metrics                                  Prometheus text-format metrics
//	GET    /debug/traces                             recent request span trees (JSON)
//
// Observability: the router mints an X-Request-Id per request and
// forwards it to the backends, so one ID correlates router logs,
// backend logs and every NDJSON batch line; ?trace=1 on /query splices
// the owning backend's span tree into the router's own and returns the
// combined report inline; -slow-query logs the span tree of slow
// requests; -debug-addr serves net/http/pprof on a side address.
//
// The -peers list becomes a canonically ordered placement ring
// (stamped -ring-generation): reordering the flag never moves
// documents, only adding or removing a peer does — and that is
// cmd/xpathreshard's job, with -drain-peers pointing this router at
// the old ring so read misses keep answering mid-migration.
// -replicas N mirrors every registration to the owner's next N ring
// successors at the owner-assigned document version, so -replica-retry
// reads hit a warm copy when the owner is down. Repeated identical
// queries are served from an LRU answer cache (-answer-cache entries)
// keyed by (doc, query, version) and invalidated when a registration
// bumps the version.
//
// /batch groups jobs by owning node — M documents over N nodes opens
// at most N backend streams — and merges them into one NDJSON
// response in completion order; every line carries the global job
// index ("index", doc-major), the document ("doc") and the node that
// produced it ("node"). Disconnecting cancels every in-flight backend
// call, and the backends stop their evaluations at the next
// cancellation checkpoint. A single -peers entry is the degenerate
// 1-node deployment: same binary, same API, no special casing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr mux
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8079", "listen address")
	peers := flag.String("peers", "", "comma-separated backend base URLs (required), e.g. http://n1:8080,http://n2:8080")
	retries := flag.Int("replica-retry", 0, "how many further peers to try when a document's owner is unreachable")
	replicas := flag.Int("replicas", 0, "mirror each registration to this many ring successors beyond the owner")
	generation := flag.Uint64("ring-generation", 1, "placement generation stamped on the ring (bump when the peer set changes)")
	answerCache := flag.Int("answer-cache", cluster.DefaultAnswerCacheSize, "router answer cache capacity in entries (0 disables)")
	drainPeers := flag.String("drain-peers", "", "previous ring's backend URLs: forward read misses there while cmd/xpathreshard migrates the corpus")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent backend streams per /batch request (0 = one at a time)")
	timeout := flag.Duration("timeout", cluster.DefaultTimeout, "per-backend-call timeout (batch streams are exempt beyond dial/header latency)")
	healthEvery := flag.Duration("health-interval", 5*time.Second, "background health probe period")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size limit in bytes (match the backends' -max-body)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	slowQuery := flag.Duration("slow-query", 0, "log the full span tree of requests at least this slow (0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	retryBudget := flag.Float64("retry-budget", 0.1, "retry tokens earned per first attempt; retries beyond the accrued budget fail fast (0 = unlimited)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive per-peer failures that open its circuit breaker (0 = default, negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open breaker waits before probing the peer again (0 = default)")
	repairInterval := flag.Duration("repair-interval", 30*time.Second, "anti-entropy repair round period (0 = off)")
	peerInflight := flag.Int("peer-inflight", 0, "per-peer in-flight request bound; excess calls are shed with 503 (0 = unlimited)")
	downAfter := flag.Int("down-after", 0, "consecutive probe failures before a peer is marked down (0 = default)")
	faultSpec := flag.String("fault-spec", "", "inject faults into backend calls, e.g. 'refuse:peer=n2;p=0.5,latency:d=100ms' (empty = off)")
	faultSeed := flag.Int64("fault-seed", 0, "seed for probabilistic fault injection (0 = nondeterministic)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathrouter: %v\n", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	slog.SetDefault(logger)

	nodes, err := parsePeers(*peers, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathrouter: %v\n", err)
		os.Exit(2)
	}
	cacheSize := *answerCache
	if cacheSize == 0 {
		cacheSize = -1 // Options uses negative for "disabled", 0 for the default
	}
	par := *parallel
	if par <= 0 {
		par = -1 // Options uses negative for "one at a time", 0 for GOMAXPROCS
	}
	opts := cluster.Options{
		Retries:          *retries,
		Replicas:         *replicas,
		Generation:       *generation,
		AnswerCacheSize:  cacheSize,
		Parallel:         par,
		Timeout:          *timeout,
		HealthInterval:   *healthEvery,
		MaxBody:          *maxBody,
		Logger:           logger,
		SlowQuery:        *slowQuery,
		RetryBudget:      *retryBudget,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		RepairInterval:   *repairInterval,
		PeerInflight:     *peerInflight,
		DownAfter:        *downAfter,
		Seed:             *faultSeed,
	}
	if *drainPeers != "" {
		opts.DrainPeers, err = cluster.ParsePeers(*drainPeers, *timeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xpathrouter: -drain-peers: %v\n", err)
			os.Exit(2)
		}
	}
	if *faultSpec != "" {
		faults, err := resilience.ParseFaults(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xpathrouter: -fault-spec: %v\n", err)
			os.Exit(2)
		}
		for _, n := range append(append([]*cluster.Node{}, nodes...), opts.DrainPeers...) {
			n.WrapTransport(faults.Transport)
		}
		logger.Warn("fault injection active", "spec", *faultSpec, "seed", *faultSeed)
	}
	router, err := cluster.New(nodes, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathrouter: %v\n", err)
		os.Exit(2)
	}
	router.Start()
	defer router.Stop()

	if *debugAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	ring := router.Ring()
	names := make([]string, 0, ring.Len())
	for _, n := range ring.Peers() {
		names = append(names, n.Name())
	}
	logger.Info("xpathrouter listening",
		"addr", *addr, "ring", fmt.Sprint(names), "generation", ring.Generation(),
		"replicas", *replicas, "replica_retry", *retries, "timeout", *timeout)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGTERM/SIGINT drain: flip /health and /healthz to 503 so
	// upstream load balancers stop sending work, keep answering
	// in-flight requests, then close the listener.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	case <-sigCtx.Done():
		logger.Info("draining", "timeout", *drainTimeout)
		router.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("drained")
	}
}

// parsePeers turns the -peers flag into Nodes via the shared
// cluster.ParsePeers, prefixing errors with the flag's name.
func parsePeers(spec string, timeout time.Duration) ([]*cluster.Node, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-peers is required (comma-separated backend URLs)")
	}
	nodes, err := cluster.ParsePeers(spec, timeout)
	if err != nil {
		return nil, fmt.Errorf("-peers: %w", err)
	}
	return nodes, nil
}
