// Command xpathrouter is the cluster front of the serving stack: it
// partitions documents across N xpathserve backends with the same
// FNV-1a routing the in-process store uses for shards, so a corpus can
// exceed one machine's memory while clients keep talking to a single
// address with the single-node API.
//
// Usage:
//
//	xpathrouter -addr :8079 -peers http://n1:8080,http://n2:8080,http://n3:8080 \
//	    -replica-retry 1 -timeout 10s
//
// Endpoints (the xpathserve surface, plus fleet views):
//
//	POST   /documents  {"name": "d", "xml": "..."}   register on the owning node
//	GET    /documents                                merged listing, tagged per node
//	GET    /documents?name=d                         fetch from the owning node
//	DELETE /documents?name=d                         evict from the owning node
//	GET    /query?doc=d&q=//b                        forwarded to the owning node
//	POST   /query      {"doc": "d", "query": "..."}  same, JSON body
//	POST   /batch      {"doc": "d", ...}             single-doc batch, relayed
//	POST   /batch      {"docs": ["d","e"], ...}      scatter-gather across owners
//	GET    /stats                                    per-node stats + fleet totals
//	GET    /health                                   per-peer health view
//
// /batch streams NDJSON in completion order across all backend
// streams; every line carries the global job index ("index",
// doc-major), the document ("doc") and the node that produced it
// ("node"). Disconnecting cancels every in-flight backend call, and
// the backends stop their evaluations at the next cancellation
// checkpoint. -replica-retry N retries a request on up to N further
// peers (ring order) when the owner is unreachable. A single -peers
// entry is the degenerate 1-node deployment: same binary, same API,
// no special casing.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8079", "listen address")
	peers := flag.String("peers", "", "comma-separated backend base URLs (required), e.g. http://n1:8080,http://n2:8080")
	retries := flag.Int("replica-retry", 0, "how many further peers to try when a document's owner is unreachable")
	timeout := flag.Duration("timeout", cluster.DefaultTimeout, "per-backend-call timeout (batch streams are exempt beyond dial/header latency)")
	healthEvery := flag.Duration("health-interval", 5*time.Second, "background health probe period")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size limit in bytes (match the backends' -max-body)")
	flag.Parse()

	nodes, err := parsePeers(*peers, *timeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathrouter: %v\n", err)
		os.Exit(2)
	}
	router, err := cluster.New(nodes, cluster.Options{
		Retries:        *retries,
		Timeout:        *timeout,
		HealthInterval: *healthEvery,
		MaxBody:        *maxBody,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathrouter: %v\n", err)
		os.Exit(2)
	}
	router.Start()
	defer router.Stop()

	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name()
	}
	log.Printf("xpathrouter listening on %s (peers=%v replica-retry=%d timeout=%v)",
		*addr, names, *retries, *timeout)
	hs := &http.Server{
		Addr:              *addr,
		Handler:           router.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}

// parsePeers turns the -peers flag into Nodes, rejecting empties and
// duplicates (a duplicate peer would silently skew the partitioning).
func parsePeers(spec string, timeout time.Duration) ([]*cluster.Node, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-peers is required (comma-separated backend URLs)")
	}
	seen := map[string]bool{}
	var nodes []*cluster.Node
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		n, err := cluster.NewNode(raw, timeout)
		if err != nil {
			return nil, err
		}
		if seen[n.URL()] {
			return nil, fmt.Errorf("duplicate peer %s", n.URL())
		}
		seen[n.URL()] = true
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-peers contained no usable URLs: %q", spec)
	}
	return nodes, nil
}
