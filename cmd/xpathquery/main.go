// Command xpathquery evaluates an XPath 1.0 query over an XML document.
//
// Usage:
//
//	xpathquery -query '//book[price > 10]/title' catalog.xml
//	cat doc.xml | xpathquery -query 'count(//item)'
//	xpathquery -query '//a' -strategy topdown -explain doc.xml
//	xpathquery -query '//a[position() = last()]' -strategy bottomup -maxrows 100000 doc.xml
//
// The -strategy flag selects one of the paper's algorithms (default
// auto = the combined OptMinContext processor); -explain prints the
// fragment classification and the algorithm chosen. With -strategy
// bottomup, -maxrows guards against the algorithm's worst-case O(|D|³)
// context-value tables on large documents: when the limit trips, the
// command explains the blow-up and exits with status 3.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bottomup"
	"repro/internal/core"
	"repro/internal/semantics"
	"repro/internal/xpath"
)

func main() {
	query := flag.String("query", "", "XPath query (required)")
	strategy := flag.String("strategy", "auto", "evaluation strategy: auto|naive|datapool|bottomup|topdown|mincontext|optmincontext|corexpath|xpatterns")
	explain := flag.Bool("explain", false, "print fragment classification and chosen algorithm")
	maxRows := flag.Int("maxrows", 0, "bottomup only: abort if a context-value table would exceed this many rows (0 = unlimited)")
	flag.Parse()

	if *query == "" {
		fmt.Fprintln(os.Stderr, "xpathquery: -query is required")
		os.Exit(2)
	}
	strat, ok := core.StrategyByName(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "xpathquery: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	doc, err := core.Parse(in)
	if err != nil {
		fail(err)
	}
	q, err := core.Compile(*query)
	if err != nil {
		fail(err)
	}
	en := core.NewEngine(doc, strat)
	en.MaxTableRows = *maxRows
	if *explain {
		fmt.Printf("query:    %s\n", q)
		fmt.Printf("fragment: %s\n", q.Fragment())
		fmt.Printf("strategy: %s\n", en.StrategyFor(q))
		fmt.Printf("normal:   %s\n", q.Expr())
	}
	v, err := en.Evaluate(q, core.Context{Node: doc.RootID(), Pos: 1, Size: 1})
	if errors.Is(err, bottomup.ErrTableLimit) {
		fmt.Fprintf(os.Stderr, "xpathquery: %v\n", err)
		fmt.Fprintln(os.Stderr, "xpathquery: the bottomup strategy materializes full context-value tables; raise -maxrows or use -strategy topdown/mincontext")
		os.Exit(3)
	}
	if err != nil {
		fail(err)
	}
	switch v.Kind {
	case xpath.TypeNodeSet:
		fmt.Printf("%d node(s):\n", len(v.Set))
		for _, n := range v.Set {
			node := doc.Node(n)
			switch {
			case node.Type.HasName():
				fmt.Printf("  %s %s  value=%q\n", node.Type, node.Name, truncate(doc.StringValue(n), 60))
			default:
				fmt.Printf("  %s  value=%q\n", node.Type, truncate(doc.StringValue(n), 60))
			}
		}
	default:
		fmt.Println(semantics.ToString(doc, v))
	}
}

func truncate(s string, n int) string {
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "xpathquery: %v\n", err)
	os.Exit(1)
}
