// Command xpathgrep evaluates an XPath query against every XML file
// under the given paths and prints matches, grep-style. It is the
// "sophisticated queries over many documents" use case the paper's
// introduction motivates, backed by the Auto strategy so each query
// runs with the best algorithm its fragment admits.
//
//	xpathgrep '//dependency[scope = "test"]/artifactId' ./projects
//	xpathgrep -l '//todo' docs/            # list files with matches
//	xpathgrep -count '//row' exports/*.xml
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
)

func main() {
	listOnly := flag.Bool("l", false, "print only names of files with matches")
	countOnly := flag.Bool("count", false, "print match counts per file")
	strategy := flag.String("strategy", "auto", "evaluation strategy")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: xpathgrep [-l] [-count] <query> [path ...]")
		os.Exit(2)
	}
	q, err := core.Compile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathgrep: %v\n", err)
		os.Exit(2)
	}
	strat, ok := core.StrategyByName(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "xpathgrep: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	roots := flag.Args()[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}

	exit := 1 // grep convention: 1 when nothing matched
	for _, root := range roots {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(strings.ToLower(path), ".xml") {
				return nil
			}
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xpathgrep: %s: %v\n", path, err)
				return nil
			}
			doc, err := core.Parse(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "xpathgrep: %s: %v\n", path, err)
				return nil
			}
			nodes, err := core.NewEngine(doc, strat).Select(q)
			if err != nil {
				fmt.Fprintf(os.Stderr, "xpathgrep: %s: %v\n", path, err)
				return nil
			}
			if len(nodes) == 0 {
				return nil
			}
			exit = 0
			switch {
			case *listOnly:
				fmt.Println(path)
			case *countOnly:
				fmt.Printf("%s:%d\n", path, len(nodes))
			default:
				for _, n := range nodes {
					fmt.Printf("%s: <%s> %s\n", path, doc.Name(n), oneLine(doc.StringValue(n)))
				}
			}
			return nil
		})
	}
	os.Exit(exit)
}

func oneLine(s string) string {
	s = strings.Join(strings.Fields(s), " ")
	if len(s) > 80 {
		return s[:80] + "…"
	}
	return s
}
