// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark runs can be persisted as artifacts and
// compared across commits instead of scrolling away in CI logs — and
// diffs two such artifacts so CI can gate on regressions.
//
// Usage:
//
//	go test -bench . -run '^$' . | benchjson -out BENCH_42.json
//	go test -bench Serving -run '^$' . | benchjson -dir benchruns
//	benchjson diff -threshold 10 BENCH_41.json BENCH_42.json
//
// With -out the result goes exactly there; with -dir (and no -out) the
// file is named BENCH_<n>.json for the smallest n not already present
// in the directory, so successive runs form a numbered trajectory.
// Standard input must be the plain (non -json) `go test` output; lines
// that are not benchmark results are preserved under "context" when
// they carry goos/goarch/pkg/cpu metadata and ignored otherwise.
//
// The diff subcommand compares ns/op per benchmark name between an old
// and a new artifact, prints every comparison, and exits 1 when any
// benchmark got slower by more than -threshold percent — the CI gate
// over the artifacts CI already uploads. Benchmarks present in only
// one file are reported but never gate (renames must not fail builds).
//
// The compare subcommand gates within a single artifact: it groups
// sub-benchmarks by their parent (everything before the last '/', at
// the same -cpu), and for every group containing a -target entry
// (default "planned") checks that the target's ns/op is within
// -threshold percent of the best sibling's. This machine-checks the
// adaptive-planner contract — planned Auto must track the best fixed
// strategy within noise on every BenchmarkPlanner* family:
//
//	go test -bench Planner -run '^$' . | benchjson -out planner.json
//	benchjson compare -threshold 25 planner.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line. NsPerOp is pulled out of
// Metrics because every result has it and trend tooling keys on it;
// all other "value unit" pairs (B/op, allocs/op, custom ReportMetric
// units) stay in Metrics. Name is stored without the GOMAXPROCS
// suffix `go test` appends (BenchmarkFoo-8); the suffix lands in CPU
// instead (1 when absent), so runs at different -cpu values are
// distinct entries that never gate against each other.
type benchResult struct {
	Name       string             `json:"name"`
	CPU        int                `json:"cpu"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// key identifies a benchmark across artifacts: the same name measured
// at a different GOMAXPROCS is a different measurement.
func (b benchResult) key() benchKey { return benchKey{b.Name, b.CPU} }

// display renders the key the way `go test` prints it.
func (b benchResult) display() string {
	if b.CPU > 1 {
		return fmt.Sprintf("%s-%d", b.Name, b.CPU)
	}
	return b.Name
}

type benchKey struct {
	Name string
	CPU  int
}

// splitCPUSuffix splits the `-N` GOMAXPROCS suffix off a benchmark
// name; a name without one ran at GOMAXPROCS=1 (`go test` omits the
// suffix then).
func splitCPUSuffix(name string) (string, int) {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
			return name[:i], n
		}
	}
	return name, 1
}

type benchFile struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []benchResult     `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		os.Exit(runDiff(os.Args[2:], os.Stdout))
	}
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:], os.Stdout))
	}
	runConvert(os.Args[1:])
}

func runConvert(args []string) {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	in := fs.String("in", "", "read `go test -bench` output from this file instead of stdin")
	out := fs.String("out", "", "write JSON here (default: BENCH_<n>.json under -dir)")
	dir := fs.String("dir", ".", "directory for auto-numbered BENCH_<n>.json files")
	fs.Parse(args)

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	parsed, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(parsed.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}
	path := *out
	if path == "" {
		path, err = nextBenchPath(*dir)
		if err != nil {
			fatal(err)
		}
	}
	buf, err := json.MarshalIndent(parsed, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(parsed.Benchmarks), path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// runDiff implements `benchjson diff [-threshold pct] old.json new.json`,
// returning the process exit code: 0 when no benchmark regressed
// beyond the threshold, 1 when at least one did, 2 on usage or read
// errors.
func runDiff(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("benchjson diff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 5, "max tolerated ns/op regression in percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) != 2 {
		fmt.Fprintln(os.Stderr, "benchjson diff: want exactly two files: old.json new.json")
		return 2
	}
	oldFile, err := loadBenchFile(rest[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson diff: %v\n", err)
		return 2
	}
	newFile, err := loadBenchFile(rest[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson diff: %v\n", err)
		return 2
	}
	report, regressions := diffBenchFiles(oldFile, newFile, *threshold)
	fmt.Fprint(w, report)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchjson diff: %d benchmark(s) regressed beyond %.1f%%\n", regressions, *threshold)
		return 1
	}
	return 0
}

// runCompare implements `benchjson compare [-threshold pct] [-target
// name] file.json`, returning the process exit code: 0 when the target
// sub-benchmark tracked the best sibling in every group, 1 when it
// lagged beyond the threshold somewhere, 2 on usage/read errors or
// when no group carries the target at all (an artifact that measured
// nothing must not pass the gate silently).
func runCompare(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("benchjson compare", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 25, "max tolerated ns/op gap between the target and the best sibling, in percent")
	target := fs.String("target", "planned", "sub-benchmark that must track the best sibling in its group")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) != 1 {
		fmt.Fprintln(os.Stderr, "benchjson compare: want exactly one file: bench.json")
		return 2
	}
	f, err := loadBenchFile(rest[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson compare: %v\n", err)
		return 2
	}
	report, failures, groups := compareBenchFile(f, *target, *threshold)
	fmt.Fprint(w, report)
	if groups == 0 {
		fmt.Fprintf(os.Stderr, "benchjson compare: no benchmark group has a %q sub-benchmark\n", *target)
		return 2
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchjson compare: %q slower than the best sibling beyond %.1f%% in %d group(s)\n", *target, *threshold, failures)
		return 1
	}
	return 0
}

// compareBenchFile groups sub-benchmarks by (parent name, cpu) and, in
// every group with a target entry, checks the target's ns/op against
// the group minimum. Duplicate entries for the same child — a run with
// -count=N — collapse to their minimum first, so the gate compares the
// best observed timing on both sides rather than whichever repetition
// was parsed last. It returns the rendered report, the number of
// groups where the target lagged beyond threshold percent, and the
// number of gated groups.
func compareBenchFile(f *benchFile, target string, threshold float64) (string, int, int) {
	groups := map[benchKey]map[string]float64{}
	var order []benchKey
	for _, b := range f.Benchmarks {
		i := strings.LastIndexByte(b.Name, '/')
		if i <= 0 {
			continue // not a sub-benchmark; nothing to group
		}
		key := benchKey{b.Name[:i], b.CPU}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
			groups[key] = map[string]float64{}
		}
		child := b.Name[i+1:]
		if prev, ok := groups[key][child]; !ok || (b.NsPerOp > 0 && b.NsPerOp < prev) {
			groups[key][child] = b.NsPerOp
		}
	}
	var sb strings.Builder
	failures, gated := 0, 0
	for _, key := range order {
		targetNs := -1.0
		bestNs, bestChild := -1.0, ""
		for child, ns := range groups[key] {
			if child == target {
				targetNs = ns
			}
			if ns > 0 && (bestNs < 0 || ns < bestNs || (ns == bestNs && child < bestChild)) {
				bestNs, bestChild = ns, child
			}
		}
		if targetNs < 0 || bestNs <= 0 {
			continue // no target entry (or no usable timings): nothing to gate
		}
		gated++
		name := key.Name
		if key.CPU > 1 {
			name = fmt.Sprintf("%s-%d", key.Name, key.CPU)
		}
		gap := (targetNs - bestNs) / bestNs * 100
		verdict := "ok"
		if gap > threshold {
			verdict = "LAGGING"
			failures++
		}
		fmt.Fprintf(&sb, "%-40s %s %12.0f  best %-15s %12.0f  %+7.1f%%  %s\n",
			name, target, targetNs, bestChild, bestNs, gap, verdict)
	}
	return sb.String(), failures, gated
}

func loadBenchFile(path string) (*benchFile, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	// Artifacts written before the cpu field carried the GOMAXPROCS
	// suffix inside the name; normalize so (name, cpu) keying holds
	// across old and new files.
	for i, b := range f.Benchmarks {
		if b.CPU == 0 {
			f.Benchmarks[i].Name, f.Benchmarks[i].CPU = splitCPUSuffix(b.Name)
		}
	}
	return &f, nil
}

// diffBenchFiles compares ns/op per (benchmark name, cpu) pair and
// renders one line per comparison; a positive delta is a slowdown. It
// returns the rendered report and how many benchmarks regressed beyond
// threshold percent. Only keys present in both files can gate;
// additions and removals are listed informationally — in particular a
// run at a new -cpu value never gates against the other value's
// numbers.
func diffBenchFiles(oldFile, newFile *benchFile, threshold float64) (string, int) {
	oldNs := map[benchKey]float64{}
	for _, b := range oldFile.Benchmarks {
		oldNs[b.key()] = b.NsPerOp
	}
	var sb strings.Builder
	regressions := 0
	seen := map[benchKey]bool{}
	for _, b := range newFile.Benchmarks {
		old, ok := oldNs[b.key()]
		if !ok {
			fmt.Fprintf(&sb, "%-60s %12s %12.0f  (new)\n", b.display(), "-", b.NsPerOp)
			continue
		}
		seen[b.key()] = true
		if old <= 0 {
			fmt.Fprintf(&sb, "%-60s %12.0f %12.0f  (old is zero, skipped)\n", b.display(), old, b.NsPerOp)
			continue
		}
		delta := (b.NsPerOp - old) / old * 100
		verdict := "ok"
		if delta > threshold {
			verdict = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(&sb, "%-60s %12.0f %12.0f  %+7.1f%%  %s\n", b.display(), old, b.NsPerOp, delta, verdict)
	}
	var gone []benchResult
	for _, b := range oldFile.Benchmarks {
		if !seen[b.key()] {
			gone = append(gone, b)
		}
	}
	sort.Slice(gone, func(i, j int) bool {
		if gone[i].Name != gone[j].Name {
			return gone[i].Name < gone[j].Name
		}
		return gone[i].CPU < gone[j].CPU
	})
	for _, b := range gone {
		fmt.Fprintf(&sb, "%-60s %12.0f %12s  (removed)\n", b.display(), oldNs[b.key()], "-")
	}
	return sb.String(), regressions
}

// parse consumes `go test -bench` output: metadata lines (goos:,
// goarch:, pkg:, cpu:) land in Context, Benchmark* result lines are
// parsed, everything else is skipped.
func parse(r io.Reader) (*benchFile, error) {
	out := &benchFile{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch key {
			case "goos", "goarch", "pkg", "cpu":
				out.Context[key] = strings.TrimSpace(val)
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		out.Benchmarks = append(out.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Record the distinct GOMAXPROCS values measured (the -cpu list of
	// the run), so an artifact tells apart 1-CPU and multicore runs at
	// a glance.
	cpuSet := map[int]bool{}
	for _, b := range out.Benchmarks {
		cpuSet[b.CPU] = true
	}
	if len(cpuSet) > 0 {
		var cpus []int
		for c := range cpuSet {
			cpus = append(cpus, c)
		}
		sort.Ints(cpus)
		parts := make([]string, len(cpus))
		for i, c := range cpus {
			parts[i] = strconv.Itoa(c)
		}
		out.Context["gomaxprocs"] = strings.Join(parts, ",")
	}
	if len(out.Context) == 0 {
		out.Context = nil
	}
	return out, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   1234   987654 ns/op   16 B/op   2 allocs/op
//
// Fields after the iteration count come in "value unit" pairs.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	name, cpu := splitCPUSuffix(fields[0])
	res := benchResult{Name: name, CPU: cpu, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
		}
		res.Metrics[unit] = v
	}
	if len(res.Metrics) == 0 {
		return benchResult{}, false
	}
	return res, true
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n not yet
// taken, starting at 1.
func nextBenchPath(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	taken := map[int]bool{}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		if n, err := strconv.Atoi(base); err == nil {
			taken[n] = true
		}
	}
	n := 1
	for taken[n] {
		n++
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n)), nil
}
