// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark runs can be persisted as artifacts and
// compared across commits instead of scrolling away in CI logs.
//
// Usage:
//
//	go test -bench . -run '^$' . | benchjson -out BENCH_42.json
//	go test -bench Serving -run '^$' . | benchjson -dir benchruns
//
// With -out the result goes exactly there; with -dir (and no -out) the
// file is named BENCH_<n>.json for the smallest n not already present
// in the directory, so successive runs form a numbered trajectory.
// Standard input must be the plain (non -json) `go test` output; lines
// that are not benchmark results are preserved under "context" when
// they carry goos/goarch/pkg/cpu metadata and ignored otherwise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line. NsPerOp is pulled out of
// Metrics because every result has it and trend tooling keys on it;
// all other "value unit" pairs (B/op, allocs/op, custom ReportMetric
// units) stay in Metrics.
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type benchFile struct {
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []benchResult     `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "read `go test -bench` output from this file instead of stdin")
	out := flag.String("out", "", "write JSON here (default: BENCH_<n>.json under -dir)")
	dir := flag.String("dir", ".", "directory for auto-numbered BENCH_<n>.json files")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	parsed, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(parsed.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines found in input"))
	}
	path := *out
	if path == "" {
		path, err = nextBenchPath(*dir)
		if err != nil {
			fatal(err)
		}
	}
	buf, err := json.MarshalIndent(parsed, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(parsed.Benchmarks), path)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}

// parse consumes `go test -bench` output: metadata lines (goos:,
// goarch:, pkg:, cpu:) land in Context, Benchmark* result lines are
// parsed, everything else is skipped.
func parse(r io.Reader) (*benchFile, error) {
	out := &benchFile{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if key, val, ok := strings.Cut(line, ": "); ok && !strings.HasPrefix(line, "Benchmark") {
			switch key {
			case "goos", "goarch", "pkg", "cpu":
				out.Context[key] = strings.TrimSpace(val)
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		out.Benchmarks = append(out.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Context) == 0 {
		out.Context = nil
	}
	return out, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   1234   987654 ns/op   16 B/op   2 allocs/op
//
// Fields after the iteration count come in "value unit" pairs.
func parseBenchLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return benchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	res := benchResult{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
		}
		res.Metrics[unit] = v
	}
	if len(res.Metrics) == 0 {
		return benchResult{}, false
	}
	return res, true
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n not yet
// taken, starting at 1.
func nextBenchPath(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	taken := map[int]bool{}
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		if n, err := strconv.Atoi(base); err == nil {
			taken[n] = true
		}
	}
	n := 1
	for taken[n] {
		n++
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n)), nil
}
