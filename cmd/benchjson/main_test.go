package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU
BenchmarkServingCachedVsCold/cold-8         	    1201	    987654 ns/op	  512 B/op	      12 allocs/op
BenchmarkServingCachedVsCold/cached-8       	   26400	     45123 ns/op
BenchmarkServingBatchWorkers/workers=4-8    	     800	   1500000 ns/op	      42.5 queries/ms
PASS
ok  	repro	12.345s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got.Context["goos"] != "linux" || got.Context["pkg"] != "repro" {
		t.Fatalf("context = %v", got.Context)
	}
	if len(got.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got.Benchmarks))
	}
	b := got.Benchmarks[0]
	if b.Name != "BenchmarkServingCachedVsCold/cold-8" || b.Iterations != 1201 || b.NsPerOp != 987654 {
		t.Fatalf("first benchmark = %+v", b)
	}
	if b.Metrics["B/op"] != 512 || b.Metrics["allocs/op"] != 12 {
		t.Fatalf("first benchmark metrics = %v", b.Metrics)
	}
	if got.Benchmarks[2].Metrics["queries/ms"] != 42.5 {
		t.Fatalf("custom metric lost: %+v", got.Benchmarks[2])
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	got, err := parse(strings.NewReader("hello\nBenchmarkBroken\nok  repro 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage", len(got.Benchmarks))
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("first path = %s, want BENCH_1.json", p)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_9.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_3.json" {
		t.Fatalf("next path = %s, want BENCH_3.json (first gap)", p)
	}
}
