package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU
BenchmarkServingCachedVsCold/cold-8         	    1201	    987654 ns/op	  512 B/op	      12 allocs/op
BenchmarkServingCachedVsCold/cached-8       	   26400	     45123 ns/op
BenchmarkServingBatchWorkers/workers=4-8    	     800	   1500000 ns/op	      42.5 queries/ms
PASS
ok  	repro	12.345s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got.Context["goos"] != "linux" || got.Context["pkg"] != "repro" {
		t.Fatalf("context = %v", got.Context)
	}
	if len(got.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got.Benchmarks))
	}
	b := got.Benchmarks[0]
	if b.Name != "BenchmarkServingCachedVsCold/cold-8" || b.Iterations != 1201 || b.NsPerOp != 987654 {
		t.Fatalf("first benchmark = %+v", b)
	}
	if b.Metrics["B/op"] != 512 || b.Metrics["allocs/op"] != 12 {
		t.Fatalf("first benchmark metrics = %v", b.Metrics)
	}
	if got.Benchmarks[2].Metrics["queries/ms"] != 42.5 {
		t.Fatalf("custom metric lost: %+v", got.Benchmarks[2])
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	got, err := parse(strings.NewReader("hello\nBenchmarkBroken\nok  repro 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage", len(got.Benchmarks))
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("first path = %s, want BENCH_1.json", p)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_9.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_3.json" {
		t.Fatalf("next path = %s, want BENCH_3.json (first gap)", p)
	}
}

func writeBenchFile(t *testing.T, path string, f *benchFile) {
	t.Helper()
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiffBenchFiles(t *testing.T) {
	oldF := &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkStable-8", NsPerOp: 1000},
		{Name: "BenchmarkSlower-8", NsPerOp: 1000},
		{Name: "BenchmarkFaster-8", NsPerOp: 1000},
		{Name: "BenchmarkRemoved-8", NsPerOp: 500},
	}}
	newF := &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkStable-8", NsPerOp: 1030}, // +3%: within threshold
		{Name: "BenchmarkSlower-8", NsPerOp: 1300}, // +30%: regression
		{Name: "BenchmarkFaster-8", NsPerOp: 600},  // -40%: improvement
		{Name: "BenchmarkAdded-8", NsPerOp: 42},    // new: informational
	}}
	report, regressions := diffBenchFiles(oldF, newF, 5)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regressions, report)
	}
	for _, want := range []string{
		"BenchmarkSlower-8", "REGRESSED", "+30.0%",
		"BenchmarkStable-8", "BenchmarkFaster-8", "-40.0%",
		"(new)", "(removed)",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	// A looser threshold admits the slowdown.
	if _, n := diffBenchFiles(oldF, newF, 50); n != 0 {
		t.Fatalf("threshold 50%% still flagged %d regressions", n)
	}
}

// TestRunDiffExitCodes drives the subcommand end to end through files
// on disk: 0 when clean, 1 on regression, 2 on bad usage.
func TestRunDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBenchFile(t, oldPath, &benchFile{Benchmarks: []benchResult{{Name: "B-8", NsPerOp: 100, Iterations: 1}}})
	writeBenchFile(t, newPath, &benchFile{Benchmarks: []benchResult{{Name: "B-8", NsPerOp: 200, Iterations: 1}}})

	var out strings.Builder
	if code := runDiff([]string{"-threshold", "10", oldPath, newPath}, &out); code != 1 {
		t.Fatalf("regressing diff exit = %d, want 1\n%s", code, out.String())
	}
	out.Reset()
	if code := runDiff([]string{"-threshold", "150", oldPath, newPath}, &out); code != 0 {
		t.Fatalf("tolerant diff exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "B-8") {
		t.Fatalf("report missing benchmark line:\n%s", out.String())
	}
	if code := runDiff([]string{oldPath}, &out); code != 2 {
		t.Fatalf("one-file usage exit = %d, want 2", code)
	}
	if code := runDiff([]string{oldPath, filepath.Join(dir, "missing.json")}, &out); code != 2 {
		t.Fatalf("missing file exit = %d, want 2", code)
	}
}
