package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) CPU
BenchmarkServingCachedVsCold/cold-8         	    1201	    987654 ns/op	  512 B/op	      12 allocs/op
BenchmarkServingCachedVsCold/cached-8       	   26400	     45123 ns/op
BenchmarkServingBatchWorkers/workers=4-8    	     800	   1500000 ns/op	      42.5 queries/ms
PASS
ok  	repro	12.345s
`

func TestParse(t *testing.T) {
	got, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got.Context["goos"] != "linux" || got.Context["pkg"] != "repro" {
		t.Fatalf("context = %v", got.Context)
	}
	if len(got.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got.Benchmarks))
	}
	b := got.Benchmarks[0]
	if b.Name != "BenchmarkServingCachedVsCold/cold" || b.CPU != 8 || b.Iterations != 1201 || b.NsPerOp != 987654 {
		t.Fatalf("first benchmark = %+v", b)
	}
	if b.Metrics["B/op"] != 512 || b.Metrics["allocs/op"] != 12 {
		t.Fatalf("first benchmark metrics = %v", b.Metrics)
	}
	if got.Benchmarks[2].Metrics["queries/ms"] != 42.5 {
		t.Fatalf("custom metric lost: %+v", got.Benchmarks[2])
	}
	if got.Context["gomaxprocs"] != "8" {
		t.Fatalf("gomaxprocs context = %q, want \"8\"", got.Context["gomaxprocs"])
	}
}

// TestParseCPUSuffix pins the suffix rules: `go test` omits the -N
// suffix at GOMAXPROCS=1, sub-benchmark parameters keep their digits,
// and a -cpu list yields one entry per value.
func TestParseCPUSuffix(t *testing.T) {
	input := "BenchmarkAxesEval/doc=50000 100 2000 ns/op\n" +
		"BenchmarkAxesEval/doc=50000-4 100 600 ns/op\n" +
		"BenchmarkExp4/k=20 50 9000 ns/op\n"
	got, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		name string
		cpu  int
	}{
		{"BenchmarkAxesEval/doc=50000", 1},
		{"BenchmarkAxesEval/doc=50000", 4},
		{"BenchmarkExp4/k=20", 1},
	}
	if len(got.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d", len(got.Benchmarks), len(want))
	}
	for i, w := range want {
		if got.Benchmarks[i].Name != w.name || got.Benchmarks[i].CPU != w.cpu {
			t.Fatalf("benchmark %d = %q cpu=%d, want %q cpu=%d",
				i, got.Benchmarks[i].Name, got.Benchmarks[i].CPU, w.name, w.cpu)
		}
	}
	if got.Context["gomaxprocs"] != "1,4" {
		t.Fatalf("gomaxprocs context = %q, want \"1,4\"", got.Context["gomaxprocs"])
	}
}

func TestParseSkipsGarbage(t *testing.T) {
	got, err := parse(strings.NewReader("hello\nBenchmarkBroken\nok  repro 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 0 {
		t.Fatalf("parsed %d benchmarks from garbage", len(got.Benchmarks))
	}
}

func TestNextBenchPath(t *testing.T) {
	dir := t.TempDir()
	p, err := nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("first path = %s, want BENCH_1.json", p)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_9.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = nextBenchPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_3.json" {
		t.Fatalf("next path = %s, want BENCH_3.json (first gap)", p)
	}
}

func writeBenchFile(t *testing.T, path string, f *benchFile) {
	t.Helper()
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDiffBenchFiles(t *testing.T) {
	oldF := &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkStable", CPU: 8, NsPerOp: 1000},
		{Name: "BenchmarkSlower", CPU: 8, NsPerOp: 1000},
		{Name: "BenchmarkFaster", CPU: 8, NsPerOp: 1000},
		{Name: "BenchmarkRemoved", CPU: 8, NsPerOp: 500},
	}}
	newF := &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkStable", CPU: 8, NsPerOp: 1030}, // +3%: within threshold
		{Name: "BenchmarkSlower", CPU: 8, NsPerOp: 1300}, // +30%: regression
		{Name: "BenchmarkFaster", CPU: 8, NsPerOp: 600},  // -40%: improvement
		{Name: "BenchmarkAdded", CPU: 8, NsPerOp: 42},    // new: informational
	}}
	report, regressions := diffBenchFiles(oldF, newF, 5)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1\n%s", regressions, report)
	}
	for _, want := range []string{
		"BenchmarkSlower-8", "REGRESSED", "+30.0%",
		"BenchmarkStable-8", "BenchmarkFaster-8", "-40.0%",
		"(new)", "(removed)",
	} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
	// A looser threshold admits the slowdown.
	if _, n := diffBenchFiles(oldF, newF, 50); n != 0 {
		t.Fatalf("threshold 50%% still flagged %d regressions", n)
	}
}

// TestDiffKeysByNameAndCPU pins the multicore gating rule: the same
// benchmark at different -cpu values is two independent entries. A
// 4-CPU run being slower per op than last week's 1-CPU run is not a
// regression; only the matching (name, cpu) pair gates.
func TestDiffKeysByNameAndCPU(t *testing.T) {
	oldF := &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkAxes", CPU: 1, NsPerOp: 1000},
		{Name: "BenchmarkAxes", CPU: 4, NsPerOp: 400},
	}}
	newF := &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkAxes", CPU: 1, NsPerOp: 1010}, // fine at cpu=1
		{Name: "BenchmarkAxes", CPU: 4, NsPerOp: 900},  // regressed at cpu=4
	}}
	report, regressions := diffBenchFiles(oldF, newF, 10)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (only the cpu=4 entry)\n%s", regressions, report)
	}
	if !strings.Contains(report, "BenchmarkAxes-4") {
		t.Fatalf("report does not name the cpu=4 entry:\n%s", report)
	}
	// A -cpu value with no old counterpart is informational, never a gate.
	withNewCPU := &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkAxes", CPU: 1, NsPerOp: 1010},
		{Name: "BenchmarkAxes", CPU: 16, NsPerOp: 5000},
	}}
	report, regressions = diffBenchFiles(oldF, withNewCPU, 10)
	if regressions != 0 {
		t.Fatalf("new -cpu value gated: %d regressions\n%s", regressions, report)
	}
	if !strings.Contains(report, "(new)") {
		t.Fatalf("cpu=16 entry not listed as new:\n%s", report)
	}
}

// TestLoadBenchFileNormalizesLegacy covers artifacts written before
// the cpu field existed: the suffix still inside the name is split out
// on load, so old and new files diff against each other.
func TestLoadBenchFileNormalizesLegacy(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.json")
	writeBenchFile(t, path, &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkOld/k=5-8", NsPerOp: 100, Iterations: 1},
		{Name: "BenchmarkOld/k=5", NsPerOp: 300, Iterations: 1},
	}})
	f, err := loadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Benchmarks[0].Name != "BenchmarkOld/k=5" || f.Benchmarks[0].CPU != 8 {
		t.Fatalf("legacy suffixed entry = %+v", f.Benchmarks[0])
	}
	if f.Benchmarks[1].Name != "BenchmarkOld/k=5" || f.Benchmarks[1].CPU != 1 {
		t.Fatalf("legacy bare entry = %+v", f.Benchmarks[1])
	}
}

// TestRunDiffExitCodes drives the subcommand end to end through files
// on disk: 0 when clean, 1 on regression, 2 on bad usage.
func TestRunDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBenchFile(t, oldPath, &benchFile{Benchmarks: []benchResult{{Name: "B-8", NsPerOp: 100, Iterations: 1}}})
	writeBenchFile(t, newPath, &benchFile{Benchmarks: []benchResult{{Name: "B-8", NsPerOp: 200, Iterations: 1}}})

	var out strings.Builder
	if code := runDiff([]string{"-threshold", "10", oldPath, newPath}, &out); code != 1 {
		t.Fatalf("regressing diff exit = %d, want 1\n%s", code, out.String())
	}
	out.Reset()
	if code := runDiff([]string{"-threshold", "150", oldPath, newPath}, &out); code != 0 {
		t.Fatalf("tolerant diff exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "B-8") {
		t.Fatalf("report missing benchmark line:\n%s", out.String())
	}
	if code := runDiff([]string{oldPath}, &out); code != 2 {
		t.Fatalf("one-file usage exit = %d, want 2", code)
	}
	if code := runDiff([]string{oldPath, filepath.Join(dir, "missing.json")}, &out); code != 2 {
		t.Fatalf("missing file exit = %d, want 2", code)
	}
}

func TestCompareBenchFile(t *testing.T) {
	f := &benchFile{Benchmarks: []benchResult{
		// planned tracks the best sibling: within any sane threshold.
		{Name: "BenchmarkPlannerExp1/planned", CPU: 1, NsPerOp: 105},
		{Name: "BenchmarkPlannerExp1/topdown", CPU: 1, NsPerOp: 100},
		{Name: "BenchmarkPlannerExp1/mincontext", CPU: 1, NsPerOp: 400},
		// planned IS the best sibling: gap is negative, never gates.
		{Name: "BenchmarkPlannerExp4/planned", CPU: 1, NsPerOp: 90},
		{Name: "BenchmarkPlannerExp4/corexpath", CPU: 1, NsPerOp: 100},
		// a group without a planned entry is ignored, not failed.
		{Name: "BenchmarkEnginesGeneral/naive", CPU: 1, NsPerOp: 1e6},
		// a top-level benchmark (no '/') is never grouped.
		{Name: "BenchmarkParser", CPU: 1, NsPerOp: 50},
	}}
	report, failures, gated := compareBenchFile(f, "planned", 25)
	if failures != 0 || gated != 2 {
		t.Fatalf("failures = %d gated = %d, want 0 and 2\n%s", failures, gated, report)
	}
	if !strings.Contains(report, "best topdown") || !strings.Contains(report, "best planned") {
		t.Fatalf("report does not name the best siblings:\n%s", report)
	}

	_, failures, _ = compareBenchFile(f, "planned", 2)
	if failures != 1 {
		t.Fatalf("failures at 2%% threshold = %d, want 1 (planned is 5%% off topdown)", failures)
	}
}

func TestCompareKeysByCPU(t *testing.T) {
	// The same family at different GOMAXPROCS forms separate groups: a
	// 4-CPU planned entry must not gate against 1-CPU siblings.
	f := &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkPlannerExp3/planned", CPU: 1, NsPerOp: 100},
		{Name: "BenchmarkPlannerExp3/topdown", CPU: 1, NsPerOp: 100},
		{Name: "BenchmarkPlannerExp3/planned", CPU: 4, NsPerOp: 30},
		{Name: "BenchmarkPlannerExp3/topdown", CPU: 4, NsPerOp: 500},
	}}
	report, failures, gated := compareBenchFile(f, "planned", 5)
	if failures != 0 || gated != 2 {
		t.Fatalf("failures = %d gated = %d, want 0 and 2\n%s", failures, gated, report)
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	lagging := filepath.Join(dir, "lagging.json")
	writeBenchFile(t, lagging, &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkPlannerExp1/planned", CPU: 1, NsPerOp: 300, Iterations: 1},
		{Name: "BenchmarkPlannerExp1/topdown", CPU: 1, NsPerOp: 100, Iterations: 1},
	}})
	var out strings.Builder
	if code := runCompare([]string{"-threshold", "25", lagging}, &out); code != 1 {
		t.Fatalf("lagging compare exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "LAGGING") {
		t.Fatalf("report missing LAGGING verdict:\n%s", out.String())
	}
	out.Reset()
	if code := runCompare([]string{"-threshold", "250", lagging}, &out); code != 0 {
		t.Fatalf("tolerant compare exit = %d, want 0\n%s", code, out.String())
	}

	// An artifact with no planned entries anywhere must not pass: that
	// is a mis-scoped bench run, not a healthy planner.
	empty := filepath.Join(dir, "noplanned.json")
	writeBenchFile(t, empty, &benchFile{Benchmarks: []benchResult{
		{Name: "BenchmarkParser", CPU: 1, NsPerOp: 50, Iterations: 1},
	}})
	if code := runCompare([]string{empty}, &out); code != 2 {
		t.Fatalf("no-target compare exit = %d, want 2", code)
	}
	if code := runCompare([]string{}, &out); code != 2 {
		t.Fatalf("no-file usage exit = %d, want 2", code)
	}
}
