package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/semantics"
	"repro/internal/store"
	"repro/internal/xpath"
)

// maxNodesInResponse caps how many node-set members a response renders;
// the full cardinality is always reported in "count".
const maxNodesInResponse = 100

// maxStringBytes caps every rendered string value. Element string-
// values are document-sized in the worst case (the root's string-value
// is all text in the document), so without this cap a //* query could
// buffer responses orders of magnitude larger than the document.
const maxStringBytes = 64 << 10

// defaultMaxBodyBytes bounds request bodies (documents arrive inline
// as JSON) so one oversized POST cannot exhaust memory.
const defaultMaxBodyBytes = 32 << 20

// defaultMaxDocuments bounds how many documents the server retains;
// parsed documents live until replaced, so without a cap repeated
// small POSTs to /documents would grow memory without limit.
const defaultMaxDocuments = 64

// server routes HTTP requests onto an engine.Engine and the document
// store: every named document is an engine.Session held in a sharded
// store.Store, so lookups on different documents never contend on one
// lock and the corpus is bounded by the store's entry and byte
// budgets. The layering is store (placement + memory accounting) →
// engine (compile cache + evaluation) → this server (wire format).
type server struct {
	eng     *engine.Engine
	maxBody int64
	docs    store.Store[*engine.Session]
}

func newServer(eng *engine.Engine, cfg store.Config) *server {
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = defaultMaxDocuments
	}
	return &server{
		eng:     eng,
		maxBody: defaultMaxBodyBytes,
		docs:    store.NewSharded[*engine.Session](cfg),
	}
}

// addDocument parses xml and registers it under name, replacing any
// previous document with that name. The document is accounted against
// the store's byte budget at its serialized size. It returns the node
// count.
func (s *server) addDocument(name, xml string) (int, error) {
	d, err := core.ParseString(xml)
	if err != nil {
		return 0, err
	}
	if err := s.docs.Put(name, s.eng.NewSession(d), int64(len(xml))); err != nil {
		return 0, err
	}
	return d.Len(), nil
}

func (s *server) session(name string) (*engine.Session, bool) {
	return s.docs.Get(name)
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/documents", s.handleDocuments)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/stats", s.handleStats)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		mux.ServeHTTP(w, r)
	})
}

type documentRequest struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
}

type queryRequest struct {
	Doc   string `json:"doc"`
	Query string `json:"query"`
}

type batchRequest struct {
	Doc     string   `json:"doc"`
	Queries []string `json:"queries"`
}

// valueJSON renders a semantics.Value: "string" always carries the
// XPath string conversion; the kind-specific field carries the typed
// value, with node sets truncated to maxNodesInResponse entries.
type valueJSON struct {
	Kind      string     `json:"kind"`
	String    string     `json:"string"`
	Truncated bool       `json:"truncated,omitempty"`
	Number    *float64   `json:"number,omitempty"`
	Boolean   *bool      `json:"boolean,omitempty"`
	Count     *int       `json:"count,omitempty"`
	Nodes     []nodeJSON `json:"nodes,omitempty"`
}

type nodeJSON struct {
	Type      string `json:"type"`
	Name      string `json:"name,omitempty"`
	Value     string `json:"value"`
	Truncated bool   `json:"truncated,omitempty"`
}

// clip bounds s to maxStringBytes without splitting a UTF-8 sequence.
func clip(s string) (string, bool) {
	if len(s) <= maxStringBytes {
		return s, false
	}
	cut := maxStringBytes
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut], true
}

type queryResponse struct {
	Query    string     `json:"query"`
	Fragment string     `json:"fragment"`
	Strategy string     `json:"strategy"`
	Fallback bool       `json:"fallback,omitempty"`
	Value    *valueJSON `json:"value,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// batchLine is one streamed /batch result: the query's input index plus
// the same shape /query responds with. Lines are emitted in completion
// order; consumers reassemble input order from "index".
type batchLine struct {
	Index int `json:"index"`
	queryResponse
}

// kindName renders a value kind for the JSON API (the xpath package's
// String() forms are the paper's terse type names).
func kindName(k xpath.Type) string {
	switch k {
	case xpath.TypeNumber:
		return "number"
	case xpath.TypeString:
		return "string"
	case xpath.TypeBoolean:
		return "boolean"
	default:
		return "node-set"
	}
}

func renderValue(d *core.Document, v core.Value) *valueJSON {
	out := &valueJSON{Kind: kindName(v.Kind)}
	out.String, out.Truncated = clip(semantics.ToString(d, v))
	switch v.Kind {
	case xpath.TypeNumber:
		out.Number = &v.Num
	case xpath.TypeBoolean:
		out.Boolean = &v.Bool
	case xpath.TypeNodeSet:
		n := len(v.Set)
		out.Count = &n
		for i, id := range v.Set {
			if i == maxNodesInResponse {
				break
			}
			node := d.Node(id)
			nj := nodeJSON{Type: node.Type.String()}
			nj.Value, nj.Truncated = clip(d.StringValue(id))
			if node.Type.HasName() {
				nj.Name = node.Name
			}
			out.Nodes = append(out.Nodes, nj)
		}
	}
	return out
}

// render turns an evaluation outcome into a response, annotating it
// with the fragment classification and chosen algorithm straight off
// the compiled query (no second cache lookup, so /stats counts each
// served query exactly once). A result rescued by the table-limit
// fallback reports the strategy that actually produced the value.
func (s *server) render(sess *engine.Session, res engine.Result) queryResponse {
	resp := queryResponse{Query: res.Query}
	if res.Compiled != nil {
		resp.Fragment = res.Compiled.Fragment().String()
		resp.Strategy = sess.StrategyFor(res.Compiled).String()
	}
	if res.FellBack {
		resp.Strategy = core.MinContext.String()
		resp.Fallback = true
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
		return resp
	}
	resp.Value = renderValue(sess.Document(), res.Value)
	return resp
}

// handleDocuments manages the corpus: POST registers, GET lists with
// shard placement, DELETE evicts.
func (s *server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleDocumentPost(w, r)
	case http.MethodGet:
		type docInfo struct {
			Name  string `json:"name"`
			Nodes int    `json:"nodes"`
			Bytes int64  `json:"bytes"`
		}
		docs := []docInfo{}
		s.docs.Range(func(name string, sess *engine.Session, size int64) bool {
			docs = append(docs, docInfo{Name: name, Nodes: sess.Document().Len(), Bytes: size})
			return true
		})
		sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
		writeJSON(w, http.StatusOK, map[string]any{"documents": docs})
	case http.MethodDelete:
		name := r.URL.Query().Get("name")
		if name == "" {
			httpError(w, http.StatusBadRequest, "name is required")
			return
		}
		if !s.docs.Delete(name) {
			httpError(w, http.StatusNotFound, "unknown document %q", name)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
	default:
		httpError(w, http.StatusMethodNotAllowed, "POST a {name, xml} object, GET to list, DELETE ?name= to evict")
	}
}

func (s *server) handleDocumentPost(w http.ResponseWriter, r *http.Request) {
	var req documentRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" || req.XML == "" {
		httpError(w, http.StatusBadRequest, "both name and xml are required")
		return
	}
	n, err := s.addDocument(req.Name, req.XML)
	switch {
	case errors.Is(err, store.ErrFull):
		httpError(w, http.StatusInsufficientStorage, "document store full: %v; delete or replace a document, or raise -max-docs/-maxbytes", err)
		return
	case errors.Is(err, store.ErrTooLarge):
		httpError(w, http.StatusRequestEntityTooLarge, "document %s exceeds the per-shard byte budget: %v", req.Name, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "parse %s: %v", req.Name, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": req.Name, "nodes": n})
}

// handleQuery accepts POST {doc, query} or GET ?doc=...&q=... (the
// curl-friendly form). Evaluation is tied to the request context: a
// client that disconnects stops its query at the next checkpoint.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.Doc = r.URL.Query().Get("doc")
		req.Query = r.URL.Query().Get("q")
	case http.MethodPost:
		if !decodeJSON(w, r, &req) {
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET ?doc=&q= or POST {doc, query}")
		return
	}
	if req.Doc == "" || req.Query == "" {
		httpError(w, http.StatusBadRequest, "both doc and query are required")
		return
	}
	sess, ok := s.session(req.Doc)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown document %q", req.Doc)
		return
	}
	resp := s.render(sess, sess.DoContext(r.Context(), req.Query))
	status := http.StatusOK
	if resp.Error != "" {
		status = http.StatusUnprocessableEntity
	}
	writeJSON(w, status, resp)
}

// handleBatch streams per-query results as chunked JSON lines
// (application/x-ndjson): each line carries the query's input index
// and is written the moment its worker finishes, so the first results
// are on the wire while later queries are still evaluating. The batch
// is wired to the request context end to end — when the client
// disconnects, queued queries are never dispatched and in-flight
// evaluations stop at their next cancellation checkpoint.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST a {doc, queries} object")
		return
	}
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Doc == "" {
		httpError(w, http.StatusBadRequest, "doc is required")
		return
	}
	sess, ok := s.session(req.Doc)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown document %q", req.Doc)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	sess.StreamBatch(ctx, req.Queries, func(i int, res engine.Result) {
		if ctx.Err() != nil {
			return // client is gone; drop the line, workers are winding down
		}
		enc.Encode(batchLine{Index: i, queryResponse: s.render(sess, res)})
		if fl != nil {
			fl.Flush()
		}
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.eng.Stats()
	docs := map[string]int{}
	s.docs.Range(func(name string, sess *engine.Session, _ int64) bool {
		docs[name] = sess.Document().Len()
		return true
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"cache": map[string]any{
			"hits":               st.Hits,
			"misses":             st.Misses,
			"evictions":          st.Evictions,
			"size":               st.Size,
			"capacity":           st.Capacity,
			"hit_rate":           st.HitRate(),
			"compile_ns_saved":   st.CompileNanosSaved,
			"compile_time_saved": (time.Duration(st.CompileNanosSaved)).String(),
		},
		"in_flight": st.InFlight,
		"fallbacks": st.Fallbacks,
		"strategy":  s.eng.Strategy().String(),
		"documents": docs,
		"store":     s.docs.Stats(),
	})
}

// decodeJSON parses a request body into dst, writing the error
// response itself on failure: 413 when the body tripped the size
// limit, 400 for malformed JSON.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	err := json.NewDecoder(r.Body).Decode(dst)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		return false
	}
	httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// docNames returns the registered document names, sorted (for logs).
func (s *server) docNames() []string {
	var names []string
	s.docs.Range(func(name string, _ *engine.Session, _ int64) bool {
		names = append(names, name)
		return true
	})
	sort.Strings(names)
	return names
}

// parseDocFlag splits a -doc value of the form name=path.
func parseDocFlag(v string) (name, path string, err error) {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return "", "", fmt.Errorf("-doc wants name=path, got %q", v)
	}
	return name, path, nil
}
