package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"unicode/utf8"

	"repro/internal/engine"
	"repro/internal/workload"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(engine.New(engine.Options{CacheSize: 64, Workers: 4}))
	if _, err := srv.addDocument("catalog", workload.Catalog(12).XMLString()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	val := out["value"].(map[string]any)
	if val["number"] != 12.0 {
		t.Fatalf("count(//product) = %v, want 12", val["number"])
	}
	if out["strategy"] != "optmincontext" && out["strategy"] != "corexpath" && out["strategy"] != "xpatterns" {
		t.Fatalf("strategy = %v", out["strategy"])
	}

	resp, out = postJSON(t, ts.URL+"/query", map[string]any{"doc": "catalog", "query": "//product[child::discontinued]/child::name"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	val = out["value"].(map[string]any)
	if val["kind"] != "node-set" {
		t.Fatalf("kind = %v, want node-set", val["kind"])
	}
	if _, ok := val["count"]; !ok {
		t.Fatalf("node-set value missing count: %v", val)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := getJSON(t, ts.URL+"/query?doc=nope&q=//a")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown doc status = %d, want 404", resp.StatusCode)
	}
	resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=//[")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad query status = %d, want 422", resp.StatusCode)
	}
	if out["error"] == "" {
		t.Fatal("bad query returned no error message")
	}
	resp, _ = getJSON(t, ts.URL+"/query?doc=catalog")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing q status = %d, want 400", resp.StatusCode)
	}
}

func TestDocumentsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postJSON(t, ts.URL+"/documents", documentRequest{Name: "mini", XML: "<a><b/><b/></a>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	_, out = getJSON(t, ts.URL+"/query?doc=mini&q=count(//b)")
	if val := out["value"].(map[string]any); val["number"] != 2.0 {
		t.Fatalf("count(//b) = %v, want 2", val["number"])
	}
	resp, _ = postJSON(t, ts.URL+"/documents", documentRequest{Name: "bad", XML: "<a>"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed XML status = %d, want 400", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := testServer(t)
	queries := []string{"count(//product)", "//[", "sum(//price) > 0"}
	resp, out := postJSON(t, ts.URL+"/batch", batchRequest{Doc: "catalog", Queries: queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, r := range results {
		if q := r.(map[string]any)["query"]; q != queries[i] {
			t.Fatalf("result %d is for %v, want %q", i, q, queries[i])
		}
	}
	if errMsg, ok := results[1].(map[string]any)["error"]; !ok || errMsg == "" {
		t.Fatal("invalid query in batch carried no error")
	}
	if val := results[2].(map[string]any)["value"].(map[string]any); val["boolean"] != true {
		t.Fatalf("sum(//price) > 0 = %v, want true", val["boolean"])
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)")
	}
	_, out := getJSON(t, ts.URL+"/stats")
	cache := out["cache"].(map[string]any)
	// Each served query counts exactly one cache event: 1 miss then 2
	// hits. Annotating fragment/strategy must not re-consult the cache.
	if cache["misses"].(float64) != 1 || cache["hits"].(float64) != 2 {
		t.Fatalf("cache stats = %v, want exactly 1 miss and 2 hits", cache)
	}
	if rate := cache["hit_rate"].(float64); rate != 2.0/3.0 {
		t.Fatalf("hit_rate = %v, want 2/3", rate)
	}
	docs := out["documents"].(map[string]any)
	if _, ok := docs["catalog"]; !ok {
		t.Fatalf("documents = %v, want catalog", docs)
	}
}

func TestBodySizeLimit(t *testing.T) {
	srv := newServer(engine.New(engine.Options{}))
	srv.maxBody = 256
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	big := documentRequest{Name: "big", XML: "<a>" + strings.Repeat("x", 4096) + "</a>"}
	resp, out := postJSON(t, ts.URL+"/documents", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, body %v, want 413", resp.StatusCode, out)
	}
	if _, err := srv.addDocument("small", "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	if resp, _ := getJSON(t, ts.URL+"/query?doc=small&q=count(//b)"); resp.StatusCode != http.StatusOK {
		t.Fatalf("server unusable after oversized request: %d", resp.StatusCode)
	}
}

// TestDocumentLimit checks the retained-document cap: new names past
// the cap are rejected with 507, replacements always go through.
func TestDocumentLimit(t *testing.T) {
	srv := newServer(engine.New(engine.Options{}))
	srv.maxDocs = 2
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	for _, name := range []string{"one", "two"} {
		if resp, out := postJSON(t, ts.URL+"/documents", documentRequest{Name: name, XML: "<a/>"}); resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: %d %v", name, resp.StatusCode, out)
		}
	}
	resp, out := postJSON(t, ts.URL+"/documents", documentRequest{Name: "three", XML: "<a/>"})
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-cap status = %d, body %v, want 507", resp.StatusCode, out)
	}
	if resp, out := postJSON(t, ts.URL+"/documents", documentRequest{Name: "two", XML: "<a><b/></a>"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("replacement at cap: %d %v", resp.StatusCode, out)
	}
}

// TestResponseTruncation checks that huge string values are clipped in
// responses (flagged via "truncated") rather than buffered whole.
func TestResponseTruncation(t *testing.T) {
	srv := newServer(engine.New(engine.Options{}))
	text := strings.Repeat("é", 40<<10) // 80KB of 2-byte runes > maxStringBytes
	if _, err := srv.addDocument("big", "<a><b>"+text+"</b></a>"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	_, out := getJSON(t, ts.URL+"/query?doc=big&q=//b")
	val := out["value"].(map[string]any)
	node := val["nodes"].([]any)[0].(map[string]any)
	if node["truncated"] != true {
		t.Fatalf("node = %v, want truncated", node)
	}
	got := node["value"].(string)
	if len(got) > maxStringBytes || !utf8.ValidString(got) {
		t.Fatalf("clipped value: %d bytes, valid UTF-8 %v", len(got), utf8.ValidString(got))
	}
}

// TestServerConcurrentTraffic exercises the full HTTP path from many
// goroutines while documents are being replaced, under -race.
func TestServerConcurrentTraffic(t *testing.T) {
	srv, ts := testServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch (g + i) % 3 {
				case 0:
					resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)")
					if resp.StatusCode != http.StatusOK {
						t.Errorf("query status %d: %v", resp.StatusCode, out)
						return
					}
				case 1:
					postJSON(t, ts.URL+"/batch", batchRequest{
						Doc:     "catalog",
						Queries: []string{"count(//product)", "sum(//price)"},
					})
				default:
					postJSON(t, ts.URL+"/documents", documentRequest{
						Name: "catalog", XML: workload.Catalog(12).XMLString(),
					})
				}
			}
		}(g)
	}
	wg.Wait()
	if st := srv.eng.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight leaked: %+v", st)
	}
}
