// Command xpathserve is an HTTP/JSON server for XPath 1.0 queries: the
// sharded document store of internal/store and the concurrent serving
// layer of internal/engine behind the wire format of internal/serve.
//
// Usage:
//
//	xpathserve -addr :8080 -doc catalog=catalog.xml -doc site=site.xml
//
// Endpoints:
//
//	POST   /documents  {"name": "d", "xml": "<a><b/></a>"}   register a document
//	GET    /documents                                         list documents (+ idle ages)
//	GET    /documents?name=d                                  fetch one document (incl. xml)
//	DELETE /documents?name=d                                  evict a document
//	GET    /query?doc=d&q=//b                                 evaluate one query
//	POST   /query      {"doc": "d", "query": "count(//b)"}    same, JSON body
//	POST   /batch      {"doc": "d", "queries": ["//b", ...]}  streaming batch (JSON lines)
//	GET    /stats                                             cache + store + in-flight stats
//	GET    /healthz                                           liveness probe (+ uptime, build info)
//	GET    /metrics                                           Prometheus text-format metrics
//	GET    /debug/traces                                      recent request span trees (JSON)
//
// Observability: every request carries an X-Request-Id (minted here or
// adopted from the router), ?trace=1 on /query returns the request's
// span tree inline, -slow-query logs the span tree of slow requests,
// -log-level tunes the structured (slog) log, and -debug-addr serves
// net/http/pprof on a side address.
//
// Documents are spread over -shards independently locked store shards
// (FNV routing) with per-shard byte accounting against -maxbytes and
// the -evict policy; -maxidle additionally evicts documents that have
// not been queried for that long. Compiled queries are cached (LRU,
// -cache entries); batches fan out over -workers goroutines and stream
// each result the moment it finishes. Evaluation is tied to the
// request context: disconnected clients stop burning CPU at the next
// cancellation checkpoint. A fleet of these nodes scales out behind
// cmd/xpathrouter, which partitions documents across them with the
// same FNV routing the store uses for shards.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr mux
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/planner"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/store"
)

// parallelOption maps the -parallel flag (0 = sequential) onto
// engine.Options.Parallelism (-1 = sequential, 0 = GOMAXPROCS).
func parallelOption(flag int) int {
	if flag <= 0 {
		return -1
	}
	return flag
}

// docFlags collects repeated -doc name=path flags.
type docFlags []string

func (d *docFlags) String() string     { return fmt.Sprint(*d) }
func (d *docFlags) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var docs docFlags
	addr := flag.String("addr", ":8080", "listen address")
	strategy := flag.String("strategy", "auto", "evaluation strategy: auto|naive|datapool|bottomup|topdown|mincontext|optmincontext|corexpath|xpatterns")
	plannerMode := flag.String("planner", "adaptive", "how the auto strategy is resolved per query: adaptive (shape rules refined by latency observations) | rules (shape rules only) | off (static fragment switch)")
	cacheSize := flag.Int("cache", engine.DefaultCacheSize, "compiled-query cache capacity")
	workers := flag.Int("workers", 0, "batch worker pool size (0 = GOMAXPROCS)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "per-query worker budget for the multicore kernels (0 = sequential)")
	naiveBudget := flag.Int64("naive-budget", 0, "step budget for naive/datapool strategies (0 = unlimited)")
	maxRows := flag.Int("maxrows", 0, "context-value table row limit for the bottomup strategy (0 = unlimited)")
	fallback := flag.Bool("fallback", true, "retry queries that trip the bottomup table limit on mincontext instead of erroring")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBodyBytes, "request body size limit in bytes")
	maxDocs := flag.Int("max-docs", serve.DefaultMaxDocuments, "maximum number of retained documents")
	shards := flag.Int("shards", store.DefaultShards, "document store shard count")
	maxBytes := flag.Int64("maxbytes", 0, "document store byte budget, divided evenly among shards and enforced per shard (0 = unlimited)")
	evict := flag.String("evict", "lru", "store policy when the byte budget is exhausted: lru|reject")
	maxIdle := flag.Duration("maxidle", 0, "evict documents not queried for this long (0 = never)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	slowQuery := flag.Duration("slow-query", 0, "log the full span tree of requests at least this slow (0 = off)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")
	faultSpec := flag.String("fault-spec", "", "inject faults into matching requests, e.g. 'latency:path=/query;d=200ms,err:p=0.1;code=503' (empty = off)")
	faultSeed := flag.Int64("fault-seed", 0, "seed for probabilistic fault injection (0 = nondeterministic)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight requests")
	flag.Var(&docs, "doc", "document to serve, as name=path (repeatable)")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathserve: %v\n", err)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	slog.SetDefault(logger)

	strat, ok := core.StrategyByName(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "xpathserve: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	policy, ok := store.PolicyByName(*evict)
	if !ok {
		fmt.Fprintf(os.Stderr, "xpathserve: unknown eviction policy %q\n", *evict)
		os.Exit(2)
	}
	pmode, ok := planner.ModeByName(*plannerMode)
	if !ok {
		fmt.Fprintf(os.Stderr, "xpathserve: unknown planner mode %q\n", *plannerMode)
		os.Exit(2)
	}
	eng := engine.New(engine.Options{
		Strategy:     strat,
		Planner:      pmode,
		CacheSize:    *cacheSize,
		Workers:      *workers,
		Parallelism:  parallelOption(*parallel),
		NaiveBudget:  *naiveBudget,
		MaxTableRows: *maxRows,
		Fallback:     *fallback,
	})
	srv := serve.New(eng, store.Config{
		Shards:     *shards,
		MaxBytes:   *maxBytes,
		MaxEntries: *maxDocs,
		Policy:     policy,
	})
	srv.SetMaxBody(*maxBody)
	srv.SetLogger(logger)
	srv.SetSlowQuery(*slowQuery)
	if *faultSpec != "" {
		faults, err := resilience.ParseFaults(*faultSpec, *faultSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xpathserve: %v\n", err)
			os.Exit(2)
		}
		srv.SetFaults(faults)
		logger.Warn("fault injection active", "spec", *faultSpec, "seed", *faultSeed)
	}
	for _, spec := range docs {
		name, path, err := parseDocFlag(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xpathserve: %v\n", err)
			os.Exit(2)
		}
		xml, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xpathserve: %v\n", err)
			os.Exit(1)
		}
		n, _, err := srv.AddDocument(name, string(xml))
		if err != nil {
			fmt.Fprintf(os.Stderr, "xpathserve: %v\n", err)
			os.Exit(1)
		}
		logger.Info("loaded document", "name", name, "path", path, "nodes", n)
	}

	if *maxIdle > 0 {
		// The janitor wakes a few times per idle window so a document is
		// evicted within ~1.25× -maxidle of its last query.
		interval := *maxIdle / 4
		if interval < time.Second {
			interval = time.Second
		}
		go func() {
			for range time.Tick(interval) {
				if evicted := srv.EvictIdle(*maxIdle); len(evicted) > 0 {
					logger.Info("evicted idle documents", "count", len(evicted), "names", strings.Join(evicted, ", "))
				}
			}
		}()
	}

	if *debugAddr != "" {
		go func() {
			logger.Info("pprof listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				logger.Error("pprof server failed", "err", err)
			}
		}()
	}

	logger.Info("xpathserve listening",
		"addr", *addr, "strategy", strat.String(), "planner", pmode.String(),
		"cache", *cacheSize, "shards", *shards, "docs", fmt.Sprint(srv.DocNames()))
	// Header/idle timeouts bound connection abuse; per-request bodies
	// are capped by the handler's MaxBytesReader. No WriteTimeout:
	// large batches on big documents legitimately take a while, and
	// /batch streams for as long as the client stays.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGTERM/SIGINT drain: flip /healthz to 503 so the router's prober
	// stops routing here, then let in-flight requests finish before the
	// listener closes.
	sigCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	case <-sigCtx.Done():
		logger.Info("draining", "timeout", *drainTimeout)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Warn("drain incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("drained")
	}
}

// parseDocFlag splits a -doc value of the form name=path.
func parseDocFlag(v string) (name, path string, err error) {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return "", "", fmt.Errorf("-doc wants name=path, got %q", v)
	}
	return name, path, nil
}
