// Command xpathexplain shows how this library sees a query: the
// normalized (unabbreviated) form of Section 5, the parse tree with
// static types and relevant contexts (Section 8.2, as in the paper's
// Example 8.2), the fragment classification of Figure 1, and — through
// the strategy planner — the shape features, candidate engines and
// chosen algorithm, with the rule or observed-latency rationale. It is
// the EXPLAIN of this stack: what a server running with the same
// -planner mode would decide for this query, debuggable offline.
//
//	xpathexplain '//a[5]/b[parent::a/child::* = "c"]'
//	xpathexplain -planner rules -doc catalog.xml 'count(//product)'
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/xpath"
)

func main() {
	mode := flag.String("planner", "adaptive", "planner mode to explain under: adaptive|rules|off")
	docPath := flag.String("doc", "", "XML document to plan against (planning is document-size aware; default: a tiny placeholder)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: xpathexplain [-planner adaptive|rules|off] [-doc file.xml] <query>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	q, err := core.Compile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathexplain: %v\n", err)
		os.Exit(1)
	}
	pmode, ok := planner.ModeByName(*mode)
	if !ok {
		fmt.Fprintf(os.Stderr, "xpathexplain: unknown planner mode %q\n", *mode)
		os.Exit(2)
	}
	doc, err := core.ParseString("<x/>")
	if *docPath != "" {
		f, ferr := os.Open(*docPath)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "xpathexplain: %v\n", ferr)
			os.Exit(1)
		}
		doc, err = core.Parse(f)
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathexplain: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("query:       %s\n", q)
	fmt.Printf("normalized:  %s\n", q.Expr())
	fmt.Printf("fragment:    %s\n", q.Fragment())

	if pmode == planner.Off {
		// No planner: Auto resolves by the static fragment switch.
		fmt.Printf("auto picks:  %s (planner off: static fragment switch)\n", core.NewEngine(doc, core.Auto).StrategyFor(q))
	} else {
		// A fresh planner has no latency observations, so this prints
		// the decision a cold server in the same mode would make; the
		// candidate table shows where a warm server would plug in its
		// evidence (sources: entry, class, matrix, rule).
		p := planner.New(planner.Config{Mode: pmode})
		dec := p.Peek(q, doc.Len())
		fmt.Printf("shape:       %s\n", dec.Shape)
		fmt.Printf("class:       %s\n", dec.Class)
		fmt.Println("candidates (rule-preference order):")
		for _, c := range dec.Candidates {
			mark := " "
			if c.Strategy == dec.Strategy {
				mark = "*"
			}
			est := "no observations"
			if c.Seconds >= 0 {
				est = fmt.Sprintf("~%.3gms observed (%s)", c.Seconds*1e3, c.Source)
			}
			banned := ""
			if c.Banned {
				banned = "  [banned]"
			}
			fmt.Printf("  %s %-14s %s%s\n", mark, c.Strategy, est, banned)
		}
		fmt.Printf("chosen:      %s\n", dec.Strategy)
		fmt.Printf("rationale:   %s\n", dec.Rationale)
	}

	fmt.Println("\nparse tree (type : relevant context):")
	fmt.Print(xpath.TreeString(q.Expr()))
}
