// Command xpathexplain shows how this library sees a query: the
// normalized (unabbreviated) form of Section 5, the parse tree with
// static types and relevant contexts (Section 8.2, as in the paper's
// Example 8.2), the fragment classification of Figure 1, and the
// algorithm the Auto strategy would dispatch to.
//
//	xpathexplain '//a[5]/b[parent::a/child::* = "c"]'
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/xpath"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: xpathexplain <query>")
		os.Exit(2)
	}
	q, err := core.Compile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathexplain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("query:       %s\n", q)
	fmt.Printf("normalized:  %s\n", q.Expr())
	fmt.Printf("fragment:    %s\n", q.Fragment())
	d, _ := core.ParseString("<x/>") // strategy choice is data independent
	fmt.Printf("auto picks:  %s\n\n", core.NewEngine(d, core.Auto).StrategyFor(q))
	fmt.Println("parse tree (type : relevant context):")
	fmt.Print(xpath.TreeString(q.Expr()))
}
