package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// TestRepositoryIsClean is the smoke test the CI gate relies on: the
// full analyzer suite over the whole module must produce no findings.
// It calls the same load + run pipeline main does, so a regression in
// either the analyzers or the tree fails `go test` too, not only the
// standalone `go run ./cmd/xpathlint ./...`.
func TestRepositoryIsClean(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := load.Packages(root, "./...")
	if err != nil {
		t.Fatalf("loading packages: %v", err)
	}
	findings, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("finding: %s", f)
	}
}

// TestDriverExitsZero runs the actual binary the way CI invokes it,
// covering the flag parsing and exit-code contract.
func TestDriverExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the driver binary")
	}
	root := moduleRoot(t)
	cmd := exec.Command("go", "run", "./cmd/xpathlint", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./cmd/xpathlint ./... failed: %v\n%s", err, out)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatalf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
