// Command xpathlint is the multichecker driver for the repository's
// analyzer suite (internal/lint): cancelcheck, lockshard, sharedset,
// wiretag and ctxhttp. It loads the packages matched by its arguments
// (default ./...), runs every analyzer, prints the surviving findings
// as file:line:col: message (analyzer), and exits 1 when there are
// any — the CI gate contract.
//
// Suppress an individual finding with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above. The reason is mandatory, and
// stale suppressions (directives that no longer match a finding) are
// themselves reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: xpathlint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "xpathlint: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "xpathlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
