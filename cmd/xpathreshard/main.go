// Command xpathreshard moves a document corpus between placement
// rings: when the cluster's peer set changes (a node added for
// capacity, a node retired), it streams every document from the old
// ring and writes it through the new ring's placement — owner plus
// -replicas successors — preserving each document's monotonic
// version, so replicas and router answer caches keep detecting
// staleness across the migration.
//
// Usage:
//
//	xpathreshard -from http://n1:8080,http://n2:8080 \
//	    -to http://n1:8080,http://n2:8080,http://n3:8080 \
//	    -replicas 1 [-dry-run] [-prune] [-timeout 10s]
//
// The run is idempotent and resumable: nodes are inventoried first
// (old and new), copies that are already in place at the right
// version are skipped, and stale writes are refused by the backends
// themselves — re-running a completed reshard copies nothing, and an
// interrupted run picks up where it stopped. -dry-run prints the
// movement plan (one "copy A -> B" line per pending copy) without
// touching anything. -prune deletes each document's off-placement
// copies once its new-ring copies have all landed; without it the old
// copies stay, which makes a migration trivially abortable.
//
// During the migration, point the router at the new ring with
// -drain-peers set to the old ring: read misses on the new ring are
// forwarded to the old one, so clients keep their answers while
// documents move. Exit status is 0 on a clean run, 1 when any copy or
// prune failed (re-run to reconcile), 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	from := flag.String("from", "", "old ring: comma-separated backend base URLs (required)")
	to := flag.String("to", "", "new ring: comma-separated backend base URLs (required)")
	replicas := flag.Int("replicas", 0, "new ring's replication factor: copies per document beyond the owner")
	fromGen := flag.Uint64("from-generation", 1, "old ring's placement generation")
	toGen := flag.Uint64("to-generation", 0, "new ring's placement generation (default from-generation+1)")
	dryRun := flag.Bool("dry-run", false, "print the movement plan without copying or pruning")
	prune := flag.Bool("prune", false, "delete off-placement copies after a document's copies all land")
	timeout := flag.Duration("timeout", cluster.DefaultTimeout, "per-node call timeout")
	logLevel := flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	flag.Parse()

	// Errors go through slog on stderr; the movement plan itself stays
	// plain lines on stdout (Log below), where scripts expect it.
	level, lerr := obs.ParseLogLevel(*logLevel)
	if lerr != nil {
		fmt.Fprintf(os.Stderr, "xpathreshard: %v\n", lerr)
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, level)
	slog.SetDefault(logger)

	fromNodes, err := cluster.ParsePeers(*from, *timeout)
	if err != nil {
		logger.Error("invalid -from", "err", err)
		os.Exit(2)
	}
	toNodes, err := cluster.ParsePeers(*to, *timeout)
	if err != nil {
		logger.Error("invalid -to", "err", err)
		os.Exit(2)
	}
	// Interrupting the migration is safe (the run is resumable), so
	// SIGINT/SIGTERM cancel the context and the copy pass stops at the
	// next per-document call instead of being killed mid-stream.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sum, err := cluster.Reshard(ctx, cluster.ReshardOptions{
		From:           fromNodes,
		To:             toNodes,
		FromGeneration: *fromGen,
		ToGeneration:   *toGen,
		Replicas:       *replicas,
		DryRun:         *dryRun,
		Prune:          *prune,
		Timeout:        *timeout,
		Log:            os.Stdout,
	})
	if err != nil {
		logger.Error("reshard failed", "err", err, "copy_errors", sum.Errors)
		if sum.Errors > 0 {
			os.Exit(1)
		}
		os.Exit(2)
	}
}
