// Quickstart: parse a document, compile a query, evaluate it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const doc = `
<library>
  <book id="b1" year="1994"><title>TCP/IP Illustrated</title><price>65.5</price></book>
  <book id="b2" year="2000"><title>Data on the Web</title><price>39.5</price></book>
  <book id="b3" year="2002"><title>XQuery from the Experts</title><price>49.5</price></book>
</library>`

func main() {
	d, err := core.ParseString(doc)
	if err != nil {
		log.Fatal(err)
	}

	// One-shot selection with the automatic strategy.
	books, err := core.Select(d, "//book[price > 45]/title")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("books over $45:")
	for _, n := range books {
		fmt.Printf("  - %s\n", d.StringValue(n))
	}

	// Compile once, inspect, evaluate.
	q := core.MustCompile("//book[@year > 1999][position() != last()]")
	fmt.Printf("\nquery:    %s\nfragment: %s\n", q, q.Fragment())

	en := core.NewEngine(d, core.Auto)
	fmt.Printf("strategy: %s\n", en.StrategyFor(q))
	hits, err := en.Select(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range hits {
		if v, ok := d.Attr(n, "id"); ok {
			fmt.Printf("  hit: book id=%s\n", v)
		}
	}

	// Scalar queries work too.
	total, err := en.EvalString(core.MustCompile("sum(//price)"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsum(//price) = %s\n", total)
}
