// Bookstore: a realistic catalog workload exercising predicates,
// positions, id() cross-references, and fragment classification — the
// kind of queries the paper's introduction motivates (tree patterns
// with value and structural conditions).
//
//	go run ./examples/bookstore
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xpath"
)

func main() {
	// workload.Catalog builds an ID-cross-referenced product catalog.
	d := workload.Catalog(50)
	en := core.NewEngine(d, core.Auto)

	queries := []string{
		// Structural: Core XPath, runs on the linear-time algebra.
		"//product[discontinued]/name",
		// Value comparison against a constant: XPatterns.
		"//product[@category = 'audio']/name",
		// Positions: Extended Wadler Fragment → OptMinContext.
		"//product[position() = last()]/name",
		// Aggregation: full XPath → OptMinContext (MinContext bounds).
		"count(//product[price > 50])",
		// ID dereference: follow each accessory reference.
		"id(//product/accessory)/name",
	}
	for _, src := range queries {
		q, err := core.Compile(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query:    %s\n", src)
		fmt.Printf("fragment: %s  →  strategy %s\n", q.Fragment(), en.StrategyFor(q))
		v, err := en.Evaluate(q, core.Context{Node: d.RootID(), Pos: 1, Size: 1})
		if err != nil {
			log.Fatal(err)
		}
		if v.Kind == xpath.TypeNodeSet {
			fmt.Printf("result:   %d node(s)", len(v.Set))
			for i, n := range v.Set {
				if i == 3 {
					fmt.Printf(" …")
					break
				}
				fmt.Printf("  %q", d.StringValue(n))
			}
			fmt.Println()
		} else {
			s, _ := en.EvalString(q)
			fmt.Printf("result:   %s\n", s)
		}
		fmt.Println()
	}
}
