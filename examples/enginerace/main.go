// Enginerace: the paper's headline result as a demo. The same
// antagonist-axis query family (Experiment 1) is evaluated by the naive
// engine — modeling XALAN, XT, Saxon and IE6 — and by the polynomial
// top-down engine of Section 7. Watch the naive times double with every
// appended /parent::a/b while the top-down times stay flat.
//
//	go run ./examples/enginerace
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	d := workload.Doc(2) // ⟨a⟩⟨b/⟩⟨b/⟩⟨/a⟩, the paper's Experiment 1 document
	naiveEn := core.NewEngine(d, core.Naive)
	topdownEn := core.NewEngine(d, core.TopDown)

	fmt.Println("query family: //a/b(/parent::a/b)^k over DOC(2)")
	fmt.Printf("%4s %16s %16s\n", "k", "naive", "topdown")
	for k := 1; k <= 18; k++ {
		q := core.MustCompile(workload.Exp1Query(k))

		start := time.Now()
		if _, err := naiveEn.Select(q); err != nil {
			fmt.Println("naive error:", err)
			return
		}
		naiveTime := time.Since(start)

		start = time.Now()
		if _, err := topdownEn.Select(q); err != nil {
			fmt.Println("topdown error:", err)
			return
		}
		topdownTime := time.Since(start)

		fmt.Printf("%4d %16s %16s\n", k, naiveTime.Round(time.Microsecond), topdownTime.Round(time.Microsecond))
		if naiveTime > 2*time.Second {
			fmt.Println("… naive engine is now exponential territory; stopping.")
			break
		}
	}
}
