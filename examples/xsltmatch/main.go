// Xsltmatch: template matching à la XSLT using the linear-time pattern
// evaluators. An XSLT processor must decide, for every node of the
// input document, which template pattern it matches — exactly the
// workload the XSLT Patterns'98 language (Section 10.2) was designed
// for. MatchSet computes the full match set of a pattern in one
// O(|D|·|Q|) pass, so template dispatch over the whole document is
// linear overall.
//
//	go run ./examples/xsltmatch
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/xmltree"
	"repro/internal/xpatterns"
)

const doc = `
<article>
  <title>On Polynomial XPath</title>
  <section id="s1">
    <title>Introduction</title>
    <para>XPath engines <em>should</em> scale.</para>
    <para>They often do not.</para>
  </section>
  <section id="s2">
    <title>Algorithms</title>
    <para>Context-value tables fix this.</para>
    <note>See VLDB 2002.</note>
  </section>
</article>`

// templates are (pattern, handler-name) pairs, most specific first —
// the usual XSLT dispatch discipline.
var templates = []struct {
	pattern string
	name    string
}{
	{"//section/title", "section-heading"},
	{"/article/title", "document-title"},
	{"//para[em]", "emphasised-paragraph"},
	{"//para", "plain-paragraph"},
	{"//note", "margin-note"},
}

func main() {
	d, err := core.ParseString(doc)
	if err != nil {
		log.Fatal(err)
	}
	ev := xpatterns.New(d)

	// Precompute each pattern's match set once (linear time each).
	sets := make([]core.NodeSet, len(templates))
	for i, t := range templates {
		q := core.MustCompile(t.pattern)
		s, err := ev.MatchSet(q.Expr())
		if err != nil {
			log.Fatalf("pattern %s: %v", t.pattern, err)
		}
		sets[i] = s
	}

	// Dispatch: walk the document, report the first matching template.
	fmt.Println("template dispatch:")
	for i := 0; i < d.Len(); i++ {
		n := xmltree.NodeID(i)
		if d.Type(n) != xmltree.Element {
			continue
		}
		for ti, s := range sets {
			if s.Contains(n) {
				fmt.Printf("  <%s> %-28q → %s\n", d.Name(n),
					clip(d.StringValue(n), 24), templates[ti].name)
				break
			}
		}
	}
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}
