// Idgraph: navigating ID/IDREF cross-references with the XPatterns
// fragment (Section 10.2). A small citation graph is traversed through
// the id axis — forwards and, via the ref relation of Theorem 10.7,
// backwards — all in linear time.
//
//	go run ./examples/idgraph
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/xpatterns"
)

const doc = `
<papers>
  <paper id="codd70"><title>A Relational Model of Data</title></paper>
  <paper id="chamberlin74"><cites>codd70</cites><title>SEQUEL</title></paper>
  <paper id="gottlob02"><cites>codd70</cites><cites>chamberlin74</cites><title>Efficient XPath</title></paper>
  <paper id="grust04"><cites>gottlob02</cites><title>Accelerating XPath</title></paper>
</papers>`

func main() {
	d, err := core.ParseString(doc)
	if err != nil {
		log.Fatal(err)
	}
	en := core.NewEngine(d, core.Auto)

	show := func(src string) {
		q := core.MustCompile(src)
		nodes, err := en.Select(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s (%s)\n", src, q.Fragment())
		for _, n := range nodes {
			if id, ok := d.Attr(n, "id"); ok {
				fmt.Printf("  - %s\n", id)
			} else {
				fmt.Printf("  - %q\n", d.StringValue(n))
			}
		}
		fmt.Println()
	}

	// Forward id navigation: what does gottlob02 cite?
	show("id(id('gottlob02')/cites)")
	// Titles of everything citing through one hop from grust04.
	show("id(id('grust04')/cites)/title")
	// Which papers cite codd70? (The ref relation answers this without
	// scanning: the engine propagates backwards through id⁻¹.)
	show("//paper[cites = 'codd70']")

	// The XSLT'98 unary predicates of Table VI, exposed by the
	// xpatterns package.
	xp := xpatterns.New(d)
	fmt.Println("first-of-type elements:")
	fot, err := xp.FirstOfType()
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range fot {
		fmt.Printf("  - <%s>\n", d.Name(n))
	}
}
