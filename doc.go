// Package repro reproduces Gottlob, Koch and Pichler, "Efficient
// Algorithms for Processing XPath Queries" (VLDB 2002): a complete
// XPath 1.0 engine with every evaluation algorithm the paper develops —
// from the exponential naive baseline to the polynomial context-value-
// table algorithms and the linear-time fragment evaluators — plus the
// benchmark harness regenerating the paper's experiments.
//
// The repository is layered:
//
//   - internal/xmltree, internal/xpath, internal/semantics — the data
//     model, parser and effective semantics shared by every engine.
//     xmltree doubles as the performance layer under the evaluation
//     core: packed []uint64 bitsets (word-parallel set algebra), a
//     lazily built, cached per-document structural index (subtree
//     intervals from the preorder arena, a label→NodeSet name index
//     with O(1) prefix content counts, and a pooled evaluator-scratch
//     allocator), and a shared GOMAXPROCS-sized worker pool behind the
//     multicore kernels (ParUnion/ParIntersect/ParMinus, the parallel
//     Accumulator flush). internal/axes evaluates the recursive axes
//     as O(output) interval arithmetic over that index —
//     allocation-free in steady state — instead of the worklist
//     closures of Algorithm 3.2, which survive as the executable
//     specification in the axes property tests; EvalPar and friends
//     fill large axis images in subtree-aligned chunks across the
//     pool, bit-identical to the sequential path they fall back to
//     below a span threshold.
//   - internal/naive … internal/xpatterns — one package per algorithm
//     of the paper (naive, datapool, bottomup, topdown, mincontext,
//     optmincontext/wadler, corexpath, xpatterns).
//   - internal/core — the public engine API: compile a query once,
//     evaluate it with a selectable strategy; Auto picks the best
//     algorithm per query via fragment classification. EvaluateContext
//     carries a uniform cancellation contract: every engine, from the
//     linear fragment evaluators to the exponential baseline, stops at
//     a throttled checkpoint once the context is done (parallel
//     workers bill their own chunks). Engine.Parallelism threads the
//     per-query worker budget into the fragment engines' multicore
//     kernels — the serving flag is -parallel, default GOMAXPROCS.
//   - internal/engine — the concurrent serving layer: a thread-safe
//     LRU cache of compiled queries (compile once per distinct query
//     under sustained traffic), Sessions binding documents (each
//     tracking when it was last queried, the idle-eviction signal), a
//     bounded worker pool with streaming batch evaluation, and
//     automatic fallback to MinContext when a bottom-up table limit
//     trips.
//   - internal/store — the storage layer: a sharded, byte-accounted
//     document store (FNV-1a routing via store.KeyShard, per-shard
//     locks, LRU or reject eviction) holding one Session per
//     registered document.
//   - internal/serve — the wire format: the HTTP/JSON server binding
//     store + engine behind /query, streaming /batch, /documents,
//     /stats and /healthz; cmd/xpathserve is its flag-parsing shell.
//   - internal/cluster — the multi-process layer: a Remote
//     implementation of store.Store over a peer's document API, and a
//     Router that partitions documents across N backend nodes with the
//     same KeyShard routing, forwards /query to the owning node (with
//     replica retry), and fans /batch out scatter-gather style into
//     one completion-order NDJSON stream tagged with index/doc/node;
//     cmd/xpathrouter is its binary.
//   - cmd/ — xpathserve and xpathrouter as above; the other tools
//     (xpathquery, xpathbench, xpathgrep, xpathexplain, xmlgen,
//     benchjson with its regression-gating diff subcommand) are
//     one-shot CLIs.
//
// The serving stack is layered store → engine → serve → cluster, so
// each level scales independently: shards within a process, processes
// within a fleet.
//
// See internal/core for the engine API, internal/engine for the
// serving layer, README.md for the strategy table, server examples and
// the cluster-mode quickstart, and bench_test.go for the benchmarks
// regenerating the paper's figures plus the serving-layer cache and
// worker-pool measurements.
package repro
