// Package repro reproduces Gottlob, Koch and Pichler, "Efficient
// Algorithms for Processing XPath Queries" (VLDB 2002): a complete
// XPath 1.0 engine with every evaluation algorithm the paper develops —
// from the exponential naive baseline to the polynomial context-value-
// table algorithms and the linear-time fragment evaluators — plus the
// benchmark harness regenerating the paper's experiments.
//
// The repository is layered:
//
//   - internal/xmltree, internal/xpath, internal/semantics — the data
//     model, parser and effective semantics shared by every engine.
//   - internal/naive … internal/xpatterns — one package per algorithm
//     of the paper (naive, datapool, bottomup, topdown, mincontext,
//     optmincontext/wadler, corexpath, xpatterns).
//   - internal/core — the public engine API: compile a query once,
//     evaluate it with a selectable strategy (EvaluateContext for
//     cancellable evaluation); Auto picks the best algorithm per query
//     via fragment classification.
//   - internal/engine — the concurrent serving layer: a thread-safe
//     LRU cache of compiled queries (compile once per distinct query
//     under sustained traffic), Sessions binding documents, a bounded
//     worker pool with streaming batch evaluation, and automatic
//     fallback to MinContext when a bottom-up table limit trips.
//   - internal/store — the storage layer: a sharded, byte-accounted
//     document store (FNV routing, per-shard locks, LRU or reject
//     eviction) holding one Session per registered document.
//   - cmd/xpathserve — an HTTP/JSON server over store + engine with
//     /query, streaming /batch, /documents and /stats endpoints; the
//     other cmd/ tools (xpathquery, xpathbench, xpathgrep,
//     xpathexplain, xmlgen, benchjson) are one-shot CLIs.
//
// See internal/core for the engine API, internal/engine for the
// serving layer, README.md for the strategy table and server examples,
// and bench_test.go for the benchmarks regenerating the paper's
// figures plus the serving-layer cache and worker-pool measurements.
package repro
