// Package repro reproduces Gottlob, Koch and Pichler, "Efficient
// Algorithms for Processing XPath Queries" (VLDB 2002): a complete
// XPath 1.0 engine with every evaluation algorithm the paper develops —
// from the exponential naive baseline to the polynomial context-value-
// table algorithms and the linear-time fragment evaluators — plus the
// benchmark harness regenerating the paper's experiments.
//
// See internal/core for the public engine API, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for measured results.
package repro
