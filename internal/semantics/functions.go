package semantics

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Context is an XPath evaluation context ⟨x, k, n⟩: context node, context
// position, context size (Section 5).
type Context struct {
	Node xmltree.NodeID
	Pos  int
	Size int
}

// CallFunction evaluates a core-library function for a context, given
// already-evaluated argument values. It implements every function row of
// Table II plus the number and string functions the paper elides
// (floor, ceiling, round, concat, starts-with, contains, substring,
// substring-before, substring-after, string-length, normalize-space,
// translate, lang) and the name functions its footnote 6 skips
// (local-name, namespace-uri, name).
//
// Location paths, position() and last() are *not* handled here: their
// semantics depend on the evaluation strategy and live in the engines.
// position() and last() are included for engines that resolve them
// uniformly via the context.
func CallFunction(d *xmltree.Document, name string, ctx Context, args []Value) (Value, error) {
	switch name {
	case "position":
		return Number(float64(ctx.Pos)), nil
	case "last":
		return Number(float64(ctx.Size)), nil
	case "count":
		if err := wantNodeSet(name, args, 0); err != nil {
			return Value{}, err
		}
		return Number(float64(len(args[0].Set))), nil
	case "sum":
		if err := wantNodeSet(name, args, 0); err != nil {
			return Value{}, err
		}
		s := 0.0
		for _, n := range args[0].Set {
			s += StringToNumber(d.StringValue(n))
		}
		return Number(s), nil
	case "id":
		// F[[id: nset→nset]](S) = ⋃ deref_ids(strval(n));
		// F[[id: str→nset]](s) = deref_ids(s).
		if args[0].Kind == xpath.TypeNodeSet {
			var out xmltree.NodeSet
			for _, n := range args[0].Set {
				out = out.Union(d.DerefIDs(d.StringValue(n)))
			}
			return NodeSet(out), nil
		}
		return NodeSet(d.DerefIDs(ToString(d, args[0]))), nil
	case "local-name", "name", "namespace-uri":
		target := ctx.Node
		if len(args) == 1 {
			if err := wantNodeSet(name, args, 0); err != nil {
				return Value{}, err
			}
			if args[0].Set.IsEmpty() {
				return String(""), nil
			}
			target = args[0].Set.First()
		}
		full := d.Name(target)
		switch name {
		case "name":
			return String(full), nil
		case "local-name":
			if i := strings.LastIndexByte(full, ':'); i >= 0 {
				return String(full[i+1:]), nil
			}
			return String(full), nil
		default: // namespace-uri: prefix lookup is out of scope (§4);
			// return the prefix's declared URI when an in-scope
			// namespace node declares it, else "".
			i := strings.IndexByte(full, ':')
			if i < 0 {
				return String(""), nil
			}
			prefix := full[:i]
			for n := target; n != xmltree.NilNode; n = d.Parent(n) {
				for c := d.FirstChild(n); c != xmltree.NilNode; c = d.NextSibling(c) {
					if d.Type(c) == xmltree.Namespace && d.Name(c) == prefix {
						return String(d.Node(c).Data), nil
					}
				}
			}
			return String(""), nil
		}
	case "string":
		if len(args) == 0 {
			return String(d.StringValue(ctx.Node)), nil
		}
		return String(ToString(d, args[0])), nil
	case "concat":
		var b strings.Builder
		for _, a := range args {
			b.WriteString(ToString(d, a))
		}
		return String(b.String()), nil
	case "starts-with":
		return Boolean(strings.HasPrefix(ToString(d, args[0]), ToString(d, args[1]))), nil
	case "contains":
		return Boolean(strings.Contains(ToString(d, args[0]), ToString(d, args[1]))), nil
	case "substring-before":
		s, sub := ToString(d, args[0]), ToString(d, args[1])
		if i := strings.Index(s, sub); i >= 0 {
			return String(s[:i]), nil
		}
		return String(""), nil
	case "substring-after":
		s, sub := ToString(d, args[0]), ToString(d, args[1])
		if i := strings.Index(s, sub); i >= 0 {
			return String(s[i+len(sub):]), nil
		}
		return String(""), nil
	case "substring":
		return String(substring(d, args)), nil
	case "string-length":
		s := ""
		if len(args) == 0 {
			s = d.StringValue(ctx.Node)
		} else {
			s = ToString(d, args[0])
		}
		return Number(float64(len([]rune(s)))), nil
	case "normalize-space":
		s := ""
		if len(args) == 0 {
			s = d.StringValue(ctx.Node)
		} else {
			s = ToString(d, args[0])
		}
		return String(strings.Join(strings.Fields(s), " ")), nil
	case "translate":
		return String(translate(ToString(d, args[0]), ToString(d, args[1]), ToString(d, args[2]))), nil
	case "boolean":
		return Boolean(ToBoolean(args[0])), nil
	case "not":
		return Boolean(!ToBoolean(args[0])), nil
	case "true":
		return Boolean(true), nil
	case "false":
		return Boolean(false), nil
	case "lang":
		want := strings.ToLower(ToString(d, args[0]))
		have := strings.ToLower(d.Lang(ctx.Node))
		if have == "" {
			return Boolean(false), nil
		}
		return Boolean(have == want || strings.HasPrefix(have, want+"-")), nil
	case "number":
		if len(args) == 0 {
			return Number(StringToNumber(d.StringValue(ctx.Node))), nil
		}
		return Number(ToNumber(d, args[0])), nil
	case "floor":
		return Number(math.Floor(ToNumber(d, args[0]))), nil
	case "ceiling":
		return Number(math.Ceil(ToNumber(d, args[0]))), nil
	case "round":
		return Number(round(ToNumber(d, args[0]))), nil
	case "first-of-type", "last-of-type", "first-of-any", "last-of-any":
		return Boolean(siblingBoundary(d, name, ctx.Node)), nil
	default:
		return Value{}, fmt.Errorf("semantics: unknown function %s()", name)
	}
}

// siblingBoundary evaluates the XSLT Patterns'98 unary predicates of
// Table VI for one node: whether it is the first/last among its
// element siblings (of-any) or among its same-named element siblings
// (of-type). Non-element nodes never satisfy the -of-type forms; the
// -of-any forms consider element siblings only, matching the '98
// draft's pattern semantics.
func siblingBoundary(d *xmltree.Document, name string, n xmltree.NodeID) bool {
	if n == xmltree.NilNode || d.Type(n) != xmltree.Element {
		return false
	}
	forward := name == "first-of-type" || name == "first-of-any"
	byType := name == "first-of-type" || name == "last-of-type"
	step := d.PrevSibling
	if !forward {
		step = d.NextSibling
	}
	for s := step(n); s != xmltree.NilNode; s = step(s) {
		if d.Type(s) != xmltree.Element {
			continue
		}
		if !byType || d.Name(s) == d.Name(n) {
			return false
		}
	}
	return true
}

func wantNodeSet(name string, args []Value, i int) error {
	if args[i].Kind != xpath.TypeNodeSet {
		return fmt.Errorf("semantics: %s() requires a node-set argument, got %v", name, args[i].Kind)
	}
	return nil
}

// round implements XPath 1.0 round(): round half towards +∞, preserving
// NaN and infinities.
func round(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return v
	}
	return math.Floor(v + 0.5)
}

// substring implements the two- and three-argument XPath substring()
// with its rounding rules: characters whose position p satisfies
// p >= round(start) and, with a length, p < round(start) + round(length).
// Positions are 1-based; NaN bounds yield the empty string.
func substring(d *xmltree.Document, args []Value) string {
	runes := []rune(ToString(d, args[0]))
	start := round(ToNumber(d, args[1]))
	if math.IsNaN(start) {
		return ""
	}
	end := math.Inf(1)
	if len(args) == 3 {
		l := round(ToNumber(d, args[2]))
		if math.IsNaN(l) {
			return ""
		}
		end = start + l
	}
	var b strings.Builder
	for i, r := range runes {
		p := float64(i + 1)
		if p >= start && p < end {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// translate implements translate(s, from, to): occurrences of the i-th
// rune of from are replaced by the i-th rune of to, or removed when to is
// shorter.
func translate(s, from, to string) string {
	fromR, toR := []rune(from), []rune(to)
	m := make(map[rune]rune, len(fromR))
	drop := make(map[rune]bool)
	for i, r := range fromR {
		if _, dup := m[r]; dup || drop[r] {
			continue // first occurrence wins
		}
		if i < len(toR) {
			m[r] = toR[i]
		} else {
			drop[r] = true
		}
	}
	var b strings.Builder
	for _, r := range s {
		if drop[r] {
			continue
		}
		if rep, ok := m[r]; ok {
			b.WriteRune(rep)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}
