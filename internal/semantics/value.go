// Package semantics implements the effective semantics functions F[[Op]]
// of Table II: the XPath 1.0 value domain (number, string, boolean, node
// set), the type-conversion functions string/number/boolean, the
// comparison operators with their type-directed dispatch, arithmetic, and
// the complete core function library. Every evaluation engine in this
// repository delegates its per-operator work to this package, so the
// engines differ only in *how often* and *in which order* they evaluate
// subexpressions — which is exactly the paper's subject.
package semantics

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Value is an XPath 1.0 value: exactly one of the four types is active,
// indicated by Kind.
type Value struct {
	Kind xpath.Type
	Num  float64
	Str  string
	Bool bool
	Set  xmltree.NodeSet
}

// Number wraps a float64.
func Number(v float64) Value { return Value{Kind: xpath.TypeNumber, Num: v} }

// String wraps a string.
func String(s string) Value { return Value{Kind: xpath.TypeString, Str: s} }

// Boolean wraps a bool.
func Boolean(b bool) Value { return Value{Kind: xpath.TypeBoolean, Bool: b} }

// NodeSet wraps a node set.
func NodeSet(s xmltree.NodeSet) Value { return Value{Kind: xpath.TypeNodeSet, Set: s} }

// Equal reports deep value equality (not the XPath = operator; see
// Compare). Useful in tests and memo tables.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case xpath.TypeNumber:
		return v.Num == w.Num || math.IsNaN(v.Num) && math.IsNaN(w.Num)
	case xpath.TypeString:
		return v.Str == w.Str
	case xpath.TypeBoolean:
		return v.Bool == w.Bool
	default:
		return v.Set.Equal(w.Set)
	}
}

// NumberToString converts a number to its XPath string form
// (to_string of Section 4): integers print without a decimal point,
// NaN prints "NaN", infinities print "Infinity"/"-Infinity".
func NumberToString(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "Infinity"
	case math.IsInf(v, -1):
		return "-Infinity"
	case v == 0:
		return "0" // covers -0
	default:
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
}

// StringToNumber converts a string to a number (to_number of Section 4):
// optional whitespace, optional minus, decimal digits; anything else is
// NaN.
func StringToNumber(s string) float64 {
	s = strings.TrimSpace(s)
	if s == "" {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

// ToString implements F[[string]] for all four argument types. The
// document is needed for node sets (string value of the first node in
// document order).
func ToString(d *xmltree.Document, v Value) string {
	switch v.Kind {
	case xpath.TypeString:
		return v.Str
	case xpath.TypeNumber:
		return NumberToString(v.Num)
	case xpath.TypeBoolean:
		if v.Bool {
			return "true"
		}
		return "false"
	default:
		if v.Set.IsEmpty() {
			return ""
		}
		return d.StringValue(v.Set.First())
	}
}

// ToNumber implements F[[number]] for all four argument types.
func ToNumber(d *xmltree.Document, v Value) float64 {
	switch v.Kind {
	case xpath.TypeNumber:
		return v.Num
	case xpath.TypeString:
		return StringToNumber(v.Str)
	case xpath.TypeBoolean:
		if v.Bool {
			return 1
		}
		return 0
	default:
		return StringToNumber(ToString(d, v))
	}
}

// ToBoolean implements F[[boolean]] for all four argument types.
func ToBoolean(v Value) bool {
	switch v.Kind {
	case xpath.TypeBoolean:
		return v.Bool
	case xpath.TypeNumber:
		return v.Num != 0 && !math.IsNaN(v.Num)
	case xpath.TypeString:
		return v.Str != ""
	default:
		return !v.Set.IsEmpty()
	}
}

// Arith implements F[[ArithOp]]: +, -, *, div, mod on numbers. Operands
// are converted with ToNumber by the caller. div is IEEE division; mod
// takes the sign of the dividend (math.Mod), matching XPath 1.0.
func Arith(op xpath.BinOp, a, b float64) float64 {
	switch op {
	case xpath.OpAdd:
		return a + b
	case xpath.OpSub:
		return a - b
	case xpath.OpMul:
		return a * b
	case xpath.OpDiv:
		return a / b
	case xpath.OpMod:
		return math.Mod(a, b)
	default:
		panic("semantics: not an arithmetic operator: " + op.String())
	}
}

func cmpNum(op xpath.BinOp, a, b float64) bool {
	switch op {
	case xpath.OpEq:
		return a == b
	case xpath.OpNeq:
		return a != b
	case xpath.OpLt:
		return a < b
	case xpath.OpLe:
		return a <= b
	case xpath.OpGt:
		return a > b
	case xpath.OpGe:
		return a >= b
	default:
		panic("semantics: not a RelOp: " + op.String())
	}
}

func cmpStr(op xpath.BinOp, a, b string) bool {
	switch op {
	case xpath.OpEq:
		return a == b
	case xpath.OpNeq:
		return a != b
	default:
		// GtOp on strings compares their numeric values (XPath 1.0
		// §3.4; Table II routes GtOp through F[[number]]).
		return cmpNum(op, StringToNumber(a), StringToNumber(b))
	}
}

// flip mirrors a comparison operator so that Compare can normalize
// "scalar RelOp nset" to "nset flipped(RelOp) scalar".
func flip(op xpath.BinOp) xpath.BinOp {
	switch op {
	case xpath.OpLt:
		return xpath.OpGt
	case xpath.OpLe:
		return xpath.OpGe
	case xpath.OpGt:
		return xpath.OpLt
	case xpath.OpGe:
		return xpath.OpLe
	default:
		return op // = and != are symmetric
	}
}

// Compare implements the RelOp rows of Table II, covering every pairing
// of the four types with the existential semantics on node sets:
//
//	F[[RelOp: nset×nset]](S1,S2) = ∃n1∈S1, n2∈S2: strval(n1) RelOp strval(n2)
//	F[[RelOp: nset×num ]](S,v)   = ∃n∈S: to_number(strval(n)) RelOp v
//	F[[RelOp: nset×str ]](S,s)   = ∃n∈S: strval(n) RelOp s
//	F[[RelOp: nset×bool]](S,b)   = boolean(S) RelOp b
//	F[[EqOp:  bool×any ]](b,x)   = b EqOp boolean(x)
//	F[[EqOp:  num×(str∪num)]](v,x) = v EqOp number(x)
//	F[[EqOp:  str×str  ]](s1,s2) = s1 EqOp s2
//	F[[GtOp:  scalar×scalar]](x1,x2) = number(x1) GtOp number(x2)
func Compare(d *xmltree.Document, op xpath.BinOp, v1, v2 Value) bool {
	if !op.IsRelOp() {
		panic("semantics: Compare on non-RelOp " + op.String())
	}
	n1, n2 := v1.Kind == xpath.TypeNodeSet, v2.Kind == xpath.TypeNodeSet
	switch {
	case n1 && n2:
		// The most costly operator of Theorem 6.6. Existential over
		// both sets on string values; GtOp compares numerically via
		// cmpStr's number route.
		for _, a := range v1.Set {
			sa := d.StringValue(a)
			for _, b := range v2.Set {
				if cmpStr(op, sa, d.StringValue(b)) {
					return true
				}
			}
		}
		return false
	case n1:
		switch v2.Kind {
		case xpath.TypeNumber:
			for _, a := range v1.Set {
				if cmpNum(op, StringToNumber(d.StringValue(a)), v2.Num) {
					return true
				}
			}
			return false
		case xpath.TypeString:
			for _, a := range v1.Set {
				if cmpStr(op, d.StringValue(a), v2.Str) {
					return true
				}
			}
			return false
		default: // boolean
			return cmpBool(op, ToBoolean(v1), v2.Bool)
		}
	case n2:
		return Compare(d, flip(op), v2, v1)
	}
	// Scalar × scalar.
	if op == xpath.OpEq || op == xpath.OpNeq {
		switch {
		case v1.Kind == xpath.TypeBoolean || v2.Kind == xpath.TypeBoolean:
			return cmpBool(op, ToBoolean(v1), ToBoolean(v2))
		case v1.Kind == xpath.TypeNumber || v2.Kind == xpath.TypeNumber:
			return cmpNum(op, ToNumber(d, v1), ToNumber(d, v2))
		default:
			return cmpStr(op, v1.Str, v2.Str)
		}
	}
	return cmpNum(op, ToNumber(d, v1), ToNumber(d, v2))
}

func cmpBool(op xpath.BinOp, a, b bool) bool {
	n := func(x bool) float64 {
		if x {
			return 1
		}
		return 0
	}
	return cmpNum(op, n(a), n(b))
}
