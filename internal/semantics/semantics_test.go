package semantics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

var doc = xmltree.MustParseString(`<a><b>1</b><b>2</b><c>hello</c><d>2.5</d></a>`)

func setOf(names ...string) xmltree.NodeSet {
	var out []xmltree.NodeID
	for i := 0; i < doc.Len(); i++ {
		for _, n := range names {
			if doc.Name(xmltree.NodeID(i)) == n && doc.Type(xmltree.NodeID(i)) == xmltree.Element {
				out = append(out, xmltree.NodeID(i))
			}
		}
	}
	return xmltree.NewNodeSet(out...)
}

func TestNumberToString(t *testing.T) {
	cases := map[float64]string{
		0: "0", 1: "1", -1: "-1", 1.5: "1.5", 100: "100",
		0.5: "0.5", -2.25: "-2.25",
	}
	for v, want := range cases {
		if got := NumberToString(v); got != want {
			t.Errorf("NumberToString(%v) = %q, want %q", v, got, want)
		}
	}
	if got := NumberToString(math.NaN()); got != "NaN" {
		t.Errorf("NaN = %q", got)
	}
	if got := NumberToString(math.Inf(1)); got != "Infinity" {
		t.Errorf("+Inf = %q", got)
	}
	if got := NumberToString(math.Inf(-1)); got != "-Infinity" {
		t.Errorf("-Inf = %q", got)
	}
	if got := NumberToString(math.Copysign(0, -1)); got != "0" {
		t.Errorf("-0 = %q", got)
	}
}

func TestStringToNumber(t *testing.T) {
	cases := map[string]float64{
		"1": 1, " 2.5 ": 2.5, "-3": -3, "0": 0,
	}
	for s, want := range cases {
		if got := StringToNumber(s); got != want {
			t.Errorf("StringToNumber(%q) = %v, want %v", s, got, want)
		}
	}
	for _, s := range []string{"", "abc", "1.2.3", "--1"} {
		if got := StringToNumber(s); !math.IsNaN(got) {
			t.Errorf("StringToNumber(%q) = %v, want NaN", s, got)
		}
	}
}

func TestConversions(t *testing.T) {
	if got := ToString(doc, NodeSet(setOf("b"))); got != "1" {
		t.Errorf("string(nset) = %q, want first node's value", got)
	}
	if got := ToString(doc, NodeSet(nil)); got != "" {
		t.Errorf("string(empty nset) = %q", got)
	}
	if got := ToString(doc, Boolean(true)); got != "true" {
		t.Errorf("string(true) = %q", got)
	}
	if got := ToNumber(doc, String("2.5")); got != 2.5 {
		t.Errorf("number('2.5') = %v", got)
	}
	if got := ToNumber(doc, Boolean(true)); got != 1 {
		t.Errorf("number(true) = %v", got)
	}
	if got := ToNumber(doc, NodeSet(setOf("d"))); got != 2.5 {
		t.Errorf("number(nset d) = %v", got)
	}
	if !ToBoolean(Number(5)) || ToBoolean(Number(0)) || ToBoolean(Number(math.NaN())) {
		t.Error("boolean(num) wrong")
	}
	if !ToBoolean(String("x")) || ToBoolean(String("")) {
		t.Error("boolean(str) wrong")
	}
	if !ToBoolean(NodeSet(setOf("b"))) || ToBoolean(NodeSet(nil)) {
		t.Error("boolean(nset) wrong")
	}
}

func TestArith(t *testing.T) {
	if Arith(xpath.OpAdd, 2, 3) != 5 || Arith(xpath.OpSub, 2, 3) != -1 ||
		Arith(xpath.OpMul, 2, 3) != 6 || Arith(xpath.OpDiv, 3, 2) != 1.5 {
		t.Error("basic arithmetic wrong")
	}
	if Arith(xpath.OpMod, 5, 2) != 1 || Arith(xpath.OpMod, -5, 2) != -1 ||
		Arith(xpath.OpMod, 5, -2) != 1 {
		t.Error("mod sign behaviour wrong (must follow dividend)")
	}
	if !math.IsInf(Arith(xpath.OpDiv, 1, 0), 1) {
		t.Error("1 div 0 should be +Infinity")
	}
	if !math.IsNaN(Arith(xpath.OpDiv, 0, 0)) {
		t.Error("0 div 0 should be NaN")
	}
}

func TestCompareScalars(t *testing.T) {
	type tc struct {
		op     xpath.BinOp
		v1, v2 Value
		want   bool
	}
	cases := []tc{
		{xpath.OpEq, Number(1), Number(1), true},
		{xpath.OpNeq, Number(1), Number(2), true},
		{xpath.OpEq, String("a"), String("a"), true},
		{xpath.OpEq, String("a"), String("b"), false},
		{xpath.OpEq, Number(1), String("1"), true},     // num×str via number
		{xpath.OpEq, Boolean(true), String("x"), true}, // bool×str via boolean
		{xpath.OpEq, Boolean(false), String(""), true}, // "" is false
		{xpath.OpLt, String("1"), String("2"), true},   // GtOp via numbers
		{xpath.OpGe, Number(2), Number(2), true},
		{xpath.OpGt, Boolean(true), Boolean(false), true}, // 1 > 0
		{xpath.OpLt, String("abc"), Number(1), false},     // NaN comparisons false
	}
	for _, c := range cases {
		if got := Compare(doc, c.op, c.v1, c.v2); got != c.want {
			t.Errorf("Compare(%v, %+v, %+v) = %v, want %v", c.op, c.v1, c.v2, got, c.want)
		}
	}
}

func TestCompareNodeSets(t *testing.T) {
	bs := NodeSet(setOf("b")) // values "1", "2"
	cs := NodeSet(setOf("c")) // "hello"
	ds := NodeSet(setOf("d")) // "2.5"
	empty := NodeSet(nil)

	// nset × str: existential string comparison.
	if !Compare(doc, xpath.OpEq, bs, String("2")) {
		t.Error("bs = '2' should hold")
	}
	if Compare(doc, xpath.OpEq, bs, String("3")) {
		t.Error("bs = '3' should not hold")
	}
	// nset × num: existential numeric.
	if !Compare(doc, xpath.OpGt, bs, Number(1.5)) {
		t.Error("bs > 1.5 should hold (node '2')")
	}
	if Compare(doc, xpath.OpGt, cs, Number(0)) {
		t.Error("'hello' > 0 is NaN comparison, false")
	}
	// nset × nset: existential pairs.
	if !Compare(doc, xpath.OpLt, bs, ds) {
		t.Error("∃ b < d: 1 < 2.5")
	}
	if Compare(doc, xpath.OpEq, bs, cs) {
		t.Error("no b equals 'hello'")
	}
	// The classic XPath oddity: S = S and S != S can both be true.
	if !Compare(doc, xpath.OpEq, bs, bs) || !Compare(doc, xpath.OpNeq, bs, bs) {
		t.Error("existential semantics: bs = bs and bs != bs both hold")
	}
	// Empty sets compare false against everything except boolean.
	if Compare(doc, xpath.OpEq, empty, String("")) {
		t.Error("empty nset = '' is false (no witness)")
	}
	if !Compare(doc, xpath.OpEq, empty, Boolean(false)) {
		t.Error("empty nset = false() holds via boolean conversion")
	}
	// Flipped operand order.
	if !Compare(doc, xpath.OpLt, Number(1.5), bs) {
		t.Error("1.5 < bs should hold (node '2')")
	}
}

func ctx() Context { return Context{Node: doc.RootID(), Pos: 1, Size: 1} }

func call(t *testing.T, name string, args ...Value) Value {
	t.Helper()
	v, err := CallFunction(doc, name, ctx(), args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func TestPositionLastCountSum(t *testing.T) {
	v, _ := CallFunction(doc, "position", Context{Node: 1, Pos: 3, Size: 7}, nil)
	if v.Num != 3 {
		t.Errorf("position = %v", v.Num)
	}
	v, _ = CallFunction(doc, "last", Context{Node: 1, Pos: 3, Size: 7}, nil)
	if v.Num != 7 {
		t.Errorf("last = %v", v.Num)
	}
	if got := call(t, "count", NodeSet(setOf("b"))); got.Num != 2 {
		t.Errorf("count = %v", got.Num)
	}
	if got := call(t, "sum", NodeSet(setOf("b"))); got.Num != 3 {
		t.Errorf("sum = %v", got.Num)
	}
	if got := call(t, "sum", NodeSet(setOf("b", "d"))); got.Num != 5.5 {
		t.Errorf("sum with d = %v", got.Num)
	}
}

func TestStringFunctions(t *testing.T) {
	if got := call(t, "concat", String("a"), String("b"), Number(1)); got.Str != "ab1" {
		t.Errorf("concat = %q", got.Str)
	}
	if got := call(t, "starts-with", String("hello"), String("he")); !got.Bool {
		t.Error("starts-with")
	}
	if got := call(t, "contains", String("hello"), String("ell")); !got.Bool {
		t.Error("contains")
	}
	if got := call(t, "substring-before", String("1999/04/01"), String("/")); got.Str != "1999" {
		t.Errorf("substring-before = %q", got.Str)
	}
	if got := call(t, "substring-after", String("1999/04/01"), String("/")); got.Str != "04/01" {
		t.Errorf("substring-after = %q", got.Str)
	}
	if got := call(t, "substring-before", String("abc"), String("x")); got.Str != "" {
		t.Errorf("substring-before miss = %q", got.Str)
	}
	// The W3C substring examples.
	if got := call(t, "substring", String("12345"), Number(1.5), Number(2.6)); got.Str != "234" {
		t.Errorf("substring(12345,1.5,2.6) = %q", got.Str)
	}
	if got := call(t, "substring", String("12345"), Number(0), Number(3)); got.Str != "12" {
		t.Errorf("substring(12345,0,3) = %q", got.Str)
	}
	if got := call(t, "substring", String("12345"), Number(math.NaN()), Number(3)); got.Str != "" {
		t.Errorf("substring NaN start = %q", got.Str)
	}
	if got := call(t, "substring", String("12345"), Number(2)); got.Str != "2345" {
		t.Errorf("substring(12345,2) = %q", got.Str)
	}
	if got := call(t, "string-length", String("héllo")); got.Num != 5 {
		t.Errorf("string-length = %v (must count runes)", got.Num)
	}
	if got := call(t, "normalize-space", String("  a  b \n c ")); got.Str != "a b c" {
		t.Errorf("normalize-space = %q", got.Str)
	}
	if got := call(t, "translate", String("bar"), String("abc"), String("ABC")); got.Str != "BAr" {
		t.Errorf("translate = %q", got.Str)
	}
	if got := call(t, "translate", String("--aaa--"), String("abc-"), String("ABC")); got.Str != "AAA" {
		t.Errorf("translate remove = %q", got.Str)
	}
}

func TestNumberFunctions(t *testing.T) {
	if got := call(t, "floor", Number(2.7)); got.Num != 2 {
		t.Errorf("floor = %v", got.Num)
	}
	if got := call(t, "ceiling", Number(2.1)); got.Num != 3 {
		t.Errorf("ceiling = %v", got.Num)
	}
	if got := call(t, "round", Number(2.5)); got.Num != 3 {
		t.Errorf("round(2.5) = %v", got.Num)
	}
	if got := call(t, "round", Number(-2.5)); got.Num != -2 {
		t.Errorf("round(-2.5) = %v (round half toward +inf)", got.Num)
	}
	if got := call(t, "round", Number(math.NaN())); !math.IsNaN(got.Num) {
		t.Errorf("round(NaN) = %v", got.Num)
	}
}

func TestBooleanFunctions(t *testing.T) {
	if got := call(t, "not", Boolean(false)); !got.Bool {
		t.Error("not(false)")
	}
	if got := call(t, "true"); !got.Bool {
		t.Error("true()")
	}
	if got := call(t, "false"); got.Bool {
		t.Error("false()")
	}
	if got := call(t, "boolean", NodeSet(setOf("b"))); !got.Bool {
		t.Error("boolean(nset)")
	}
}

func TestIDFunction(t *testing.T) {
	d := xmltree.MustParseString(`<r><x id="one">two</x><y id="two"/></r>`)
	// id(string)
	v, err := CallFunction(d, "id", Context{Node: d.RootID(), Pos: 1, Size: 1},
		[]Value{String("one two")})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 2 {
		t.Errorf("id('one two') = %v", v.Set)
	}
	// id(nodeset): dereference each node's string value.
	x := d.IDOf("one") // strval "two"
	v, err = CallFunction(d, "id", Context{Node: d.RootID(), Pos: 1, Size: 1},
		[]Value{NodeSet(xmltree.NodeSet{x})})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 1 || v.Set[0] != d.IDOf("two") {
		t.Errorf("id(nset) = %v", v.Set)
	}
}

func TestNameFunctions(t *testing.T) {
	d := xmltree.MustParseString(`<p:a xmlns:p="urn:x"><b/></p:a>`)
	a := d.DocumentElement()
	v, _ := CallFunction(d, "name", Context{Node: a, Pos: 1, Size: 1}, nil)
	if v.Str != "p:a" {
		t.Errorf("name() = %q", v.Str)
	}
	v, _ = CallFunction(d, "local-name", Context{Node: a, Pos: 1, Size: 1}, nil)
	if v.Str != "a" {
		t.Errorf("local-name() = %q", v.Str)
	}
	v, _ = CallFunction(d, "namespace-uri", Context{Node: a, Pos: 1, Size: 1}, nil)
	if v.Str != "urn:x" {
		t.Errorf("namespace-uri() = %q", v.Str)
	}
	v, _ = CallFunction(d, "local-name", Context{Node: a, Pos: 1, Size: 1},
		[]Value{NodeSet(nil)})
	if v.Str != "" {
		t.Errorf("local-name(empty) = %q", v.Str)
	}
}

func TestLangFunction(t *testing.T) {
	d := xmltree.MustParseString(`<a xml:lang="en-US"><b/></a>`)
	b := d.Children(d.DocumentElement())[0]
	v, _ := CallFunction(d, "lang", Context{Node: b, Pos: 1, Size: 1}, []Value{String("en")})
	if !v.Bool {
		t.Error("lang('en') under en-US should be true")
	}
	v, _ = CallFunction(d, "lang", Context{Node: b, Pos: 1, Size: 1}, []Value{String("de")})
	if v.Bool {
		t.Error("lang('de') should be false")
	}
}

func TestUnknownFunction(t *testing.T) {
	if _, err := CallFunction(doc, "nonesuch", ctx(), nil); err == nil {
		t.Error("unknown function should error")
	}
	if _, err := CallFunction(doc, "count", ctx(), []Value{String("x")}); err == nil {
		t.Error("count(string) should error")
	}
}

func TestConversionProperties(t *testing.T) {
	// boolean(number(boolean(x))) == boolean(x) for numbers.
	if err := quick.Check(func(f float64) bool {
		b := ToBoolean(Number(f))
		n := ToNumber(doc, Boolean(b))
		return ToBoolean(Number(n)) == b
	}, nil); err != nil {
		t.Error(err)
	}
	// string(number(v)) round-trips finite numbers through to_number.
	if err := quick.Check(func(f float64) bool {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
		s := NumberToString(f)
		return StringToNumber(s) == f || f == 0
	}, nil); err != nil {
		t.Error(err)
	}
	// Compare is consistent under operand flip for all scalar kinds.
	if err := quick.Check(func(a, b float64) bool {
		lt := Compare(doc, xpath.OpLt, Number(a), Number(b))
		gt := Compare(doc, xpath.OpGt, Number(b), Number(a))
		return lt == gt
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestValueEqual(t *testing.T) {
	if !Number(math.NaN()).Equal(Number(math.NaN())) {
		t.Error("NaN values should be Equal for memo purposes")
	}
	if Number(1).Equal(String("1")) {
		t.Error("different kinds are not Equal")
	}
	if !NodeSet(setOf("b")).Equal(NodeSet(setOf("b"))) {
		t.Error("equal node sets")
	}
}
