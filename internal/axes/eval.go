package axes

import (
	"slices"

	"repro/internal/xmltree"
)

// This file evaluates the typed axis function χ(S) of Section 4 using
// the document's structural index (xmltree.Index) instead of the
// literal worklist closures of Algorithm 3.2. Because the node arena is
// in document order (preorder), the subtree of x is the contiguous
// interval [x, subtreeEnd(x)), which turns the recursive axes into
// interval arithmetic:
//
//	descendant(S)          = ⋃ (x, end(x))            merged interval fills
//	descendant-or-self(S)  = ⋃ [x, end(x))
//	following(S)           = [min_{x∈S} end(x), |dom|)
//	preceding(S)           = [0, max(S)) − ancestors(max(S))
//	ancestor(S)            = parent-chain walks, visited-deduped
//
// Each evaluates in O(output) (plus O(|S|) to inspect the input), a
// strict improvement over the O(|dom|) closure bound of Lemma 3.3. The
// one-step axes (child, parent, siblings, attribute, namespace) walk
// the primitive links directly. Equivalence with the closure-based
// definition is asserted by reference_test.go, which keeps the paper's
// Algorithm 3.2 evaluator alive as an executable specification.
//
// Evaluator scratch (a visited bitset for merging overlapping chains)
// comes from the document's per-document pool and is only acquired on
// the multi-node paths that need it; singleton context sets — the
// dominant shape in the per-node engines — never touch the pool. With
// a caller-reused output buffer (EvalInto), steady-state evaluation
// performs zero heap allocations.

// Eval computes the typed XPath axis function χ(S) of Section 4 as a
// document-ordered NodeSet:
//
//	attribute(S) = child₀(S) ∩ T(attribute())
//	namespace(S) = child₀(S) ∩ T(namespace())
//	χ(S)         = χ₀(S) − (T(attribute()) ∪ T(namespace()))   otherwise
//
// with the W3C-conformant refinement that the self contribution of self,
// descendant-or-self and ancestor-or-self retains attribute and namespace
// context nodes (a context attribute node is its own self).
func Eval(d *xmltree.Document, a Axis, s xmltree.NodeSet) xmltree.NodeSet {
	if len(s) == 0 {
		return nil
	}
	return EvalInto(d, a, s, nil)
}

// EvalInto is Eval appending into dst[:0], reusing its capacity.
func EvalInto(d *xmltree.Document, a Axis, s xmltree.NodeSet, dst xmltree.NodeSet) xmltree.NodeSet {
	dst = dst[:0]
	if len(s) == 0 {
		return dst
	}
	if a == IDAxis {
		return append(dst, EvalID(d, s)...)
	}
	return evalIndexed(d, d.Index(), a, s, dst)
}

// EvalNode computes χ({x}).
func EvalNode(d *xmltree.Document, a Axis, x xmltree.NodeID) xmltree.NodeSet {
	return Eval(d, a, xmltree.NodeSet{x})
}

// evalIndexed dispatches one typed axis over the structural index. Any
// scratch bits set are cleared again before returning, keeping the
// scratch round trip proportional to work done.
func evalIndexed(d *xmltree.Document, ix *xmltree.Index, a Axis, s xmltree.NodeSet, dst xmltree.NodeSet) xmltree.NodeSet {
	switch a {
	case Self:
		// Every context node is its own self, attribute and namespace
		// nodes included.
		return append(dst, s...)

	case Descendant, DescendantOrSelf:
		// Merged interval fill: nested context nodes fall inside an
		// earlier interval (subtree intervals nest) and are skipped.
		// The self contribution of descendant-or-self keeps context
		// attribute/namespace nodes; those members of S are marked up
		// front (scratch is needed only when they exist) and survive
		// the type filter wherever their interval position falls.
		var sc *xmltree.Scratch
		if a == DescendantOrSelf {
			for _, x := range s {
				if d.Node(x).IsAttrOrNS() {
					if sc == nil {
						sc = ix.AcquireScratch()
					}
					sc.Mark.Add(x)
				}
			}
		}
		end := xmltree.NodeID(0)
		for _, x := range s {
			if x < end {
				continue
			}
			lo, hi := x, ix.SubtreeEnd(x)
			if a == Descendant {
				lo++
			}
			for id := lo; id < hi; id++ {
				if !d.Node(id).IsAttrOrNS() || (sc != nil && sc.Mark.Has(id)) {
					dst = append(dst, id)
				}
			}
			end = hi
		}
		if sc != nil {
			for _, x := range s {
				sc.Mark.Remove(x)
			}
			ix.ReleaseScratch(sc)
		}
		return dst

	case Following:
		// Everything after the earliest subtree end.
		min := ix.SubtreeEnd(s[0])
		for _, x := range s[1:] {
			if e := ix.SubtreeEnd(x); e < min {
				min = e
			}
		}
		for id, n := min, xmltree.NodeID(d.Len()); id < n; id++ {
			if !d.Node(id).IsAttrOrNS() {
				dst = append(dst, id)
			}
		}
		return dst

	case Preceding:
		// [0, max(S)) minus the ancestors of max(S): for any y < max,
		// y is in preceding(x) for some x ∈ S unless y's subtree
		// contains every later member of S — i.e. y is an ancestor of
		// the maximum. Ancestors are recognized by their subtree
		// interval straddling max, so no marking is needed: the scan
		// emits whole non-ancestor subtrees and steps into ancestors.
		max := s[len(s)-1]
		for id := xmltree.NodeID(0); id < max; {
			if end := ix.SubtreeEnd(id); end <= max {
				for ; id < end; id++ {
					if !d.Node(id).IsAttrOrNS() {
						dst = append(dst, id)
					}
				}
			} else {
				id++ // ancestor of max: excluded, descend into it
			}
		}
		return dst

	case Ancestor, AncestorOrSelf:
		if len(s) == 1 {
			// Single chain: collected root-ward (descending), then
			// reversed into document order. No scratch needed.
			x := s[0]
			if a == AncestorOrSelf {
				dst = append(dst, x)
			}
			for p := d.Parent(x); p != xmltree.NilNode; p = d.Parent(p) {
				dst = append(dst, p)
			}
			return dst.Reversed()
		}
		// Parent-chain walks; the visited bitset merges chains so each
		// ancestor is emitted once even for wide context sets.
		sc := ix.AcquireScratch()
		for _, x := range s {
			if a == AncestorOrSelf && !sc.Visited.Has(x) {
				sc.Visited.Add(x)
				dst = append(dst, x)
			}
			for p := d.Parent(x); p != xmltree.NilNode && !sc.Visited.Has(p); p = d.Parent(p) {
				sc.Visited.Add(p)
				dst = append(dst, p)
			}
		}
		for _, y := range dst {
			sc.Visited.Remove(y)
		}
		ix.ReleaseScratch(sc)
		slices.Sort(dst)
		// Ancestors proper are never attribute or namespace nodes; the
		// self contribution may be, and is kept (context nodes only).
		return dst

	case Child:
		// Child sets of distinct parents are disjoint: no dedup needed,
		// only a sort when context nodes are nested.
		for _, x := range s {
			for c := d.FirstChild(x); c != xmltree.NilNode; c = d.NextSibling(c) {
				if !d.Node(c).IsAttrOrNS() {
					dst = append(dst, c)
				}
			}
		}
		return sortIfNeeded(dst)

	case AttributeAxis, NamespaceAxis:
		// Attribute and namespace nodes sit at the front of the child
		// chain (namespaces first), so the walk stops at the first
		// content node.
		want := xmltree.Attribute
		if a == NamespaceAxis {
			want = xmltree.Namespace
		}
		for _, x := range s {
			for c := d.FirstChild(x); c != xmltree.NilNode && d.Node(c).IsAttrOrNS(); c = d.NextSibling(c) {
				if d.Type(c) == want {
					dst = append(dst, c)
				}
			}
		}
		return sortIfNeeded(dst)

	case Parent:
		if len(s) == 1 {
			if p := d.Parent(s[0]); p != xmltree.NilNode {
				dst = append(dst, p)
			}
			return dst
		}
		sc := ix.AcquireScratch()
		for _, x := range s {
			if p := d.Parent(x); p != xmltree.NilNode && !sc.Visited.Has(p) {
				sc.Visited.Add(p)
				dst = append(dst, p)
			}
		}
		for _, y := range dst {
			sc.Visited.Remove(y)
		}
		ix.ReleaseScratch(sc)
		return sortIfNeeded(dst)

	case FollowingSibling, PrecedingSibling:
		step := d.NextSibling
		if a == PrecedingSibling {
			step = d.PrevSibling
		}
		if len(s) == 1 {
			for y := step(s[0]); y != xmltree.NilNode; y = step(y) {
				if !d.Node(y).IsAttrOrNS() {
					dst = append(dst, y)
				}
			}
			if a == PrecedingSibling {
				dst = dst.Reversed()
			}
			return dst
		}
		// Sibling chains of nodes in the same family overlap; the
		// visited bitset cuts each walk short at the first node an
		// earlier walk already covered, keeping the total O(output).
		sc := ix.AcquireScratch()
		marked := sc.Work[:0]
		for _, x := range s {
			for y := step(x); y != xmltree.NilNode && !sc.Visited.Has(y); y = step(y) {
				sc.Visited.Add(y)
				marked = append(marked, y)
				if !d.Node(y).IsAttrOrNS() {
					dst = append(dst, y)
				}
			}
		}
		for _, y := range marked {
			sc.Visited.Remove(y)
		}
		sc.Work = marked[:0]
		ix.ReleaseScratch(sc)
		return sortIfNeeded(dst)

	default:
		panic("axes: unknown axis " + a.String())
	}
}

// sortIfNeeded sorts dst unless it is already ascending, which is the
// common case (flat context sets produce ordered outputs).
func sortIfNeeded(dst xmltree.NodeSet) xmltree.NodeSet {
	for i := 1; i < len(dst); i++ {
		if dst[i] < dst[i-1] {
			slices.Sort(dst)
			return dst
		}
	}
	return dst
}

// EvalNamed computes χ(S) ∩ {elements named name}: the axis image
// restricted to an exact element name test, served from the label index
// so the recursive axes touch only matching nodes (O(matches·log) via
// binary search into the posting list) instead of materializing and
// scanning the whole image.
func EvalNamed(d *xmltree.Document, a Axis, s xmltree.NodeSet, name string) xmltree.NodeSet {
	return EvalNamedInto(d, a, s, name, nil)
}

// EvalNamedInto is EvalNamed appending into dst[:0].
func EvalNamedInto(d *xmltree.Document, a Axis, s xmltree.NodeSet, name string, dst xmltree.NodeSet) xmltree.NodeSet {
	dst = dst[:0]
	if len(s) == 0 {
		return dst
	}
	ix := d.Index()
	switch a {
	case Self:
		named := ix.Named(name)
		for _, x := range s {
			if named.Contains(x) {
				dst = append(dst, x)
			}
		}
		return dst

	case Descendant, DescendantOrSelf:
		end := xmltree.NodeID(0)
		for _, x := range s {
			if x < end {
				continue
			}
			lo, hi := x, ix.SubtreeEnd(x)
			if a == Descendant {
				lo++
			}
			dst = append(dst, ix.NamedRange(name, lo, hi)...)
			end = hi
		}
		return dst

	case Following:
		min := ix.SubtreeEnd(s[0])
		for _, x := range s[1:] {
			if e := ix.SubtreeEnd(x); e < min {
				min = e
			}
		}
		return append(dst, ix.NamedRange(name, min, xmltree.NodeID(d.Len()))...)

	case Preceding:
		// Ancestors of max(S) are excluded by the straddling-interval
		// test instead of a mark bitset.
		max := s[len(s)-1]
		for _, y := range ix.NamedRange(name, 0, max) {
			if ix.SubtreeEnd(y) <= max {
				dst = append(dst, y)
			}
		}
		return dst

	case Child:
		// {y named name | parent(y) ∈ S}: scan the posting list once,
		// testing parents against S.
		named := ix.Named(name)
		if len(s) == 1 {
			x := s[0]
			// Restrict the scan to x's subtree: children of x lie in
			// (x, end(x)).
			for _, y := range ix.NamedRange(name, x+1, ix.SubtreeEnd(x)) {
				if d.Parent(y) == x {
					dst = append(dst, y)
				}
			}
			return dst
		}
		sc := ix.AcquireScratch()
		sc.Mark.AddSet(s)
		for _, y := range named {
			if p := d.Parent(y); p != xmltree.NilNode && sc.Mark.Has(p) {
				dst = append(dst, y)
			}
		}
		for _, x := range s {
			sc.Mark.Remove(x)
		}
		ix.ReleaseScratch(sc)
		return dst

	default:
		// Small-output axes (parent, ancestor, siblings, id): evaluate
		// the axis, then intersect with the posting list by merge.
		dst = EvalInto(d, a, s, dst)
		named := ix.Named(name)
		out, j := dst[:0], 0
		for _, y := range dst {
			for j < len(named) && named[j] < y {
				j++
			}
			if j < len(named) && named[j] == y {
				out = append(out, y)
			}
		}
		return out
	}
}
