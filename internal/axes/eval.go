package axes

import "repro/internal/xmltree"

// prim identifies one of the four primitive tree relations of Section 3:
// firstchild, nextsibling, and their inverses.
type prim uint8

const (
	firstchild prim = iota
	nextsibling
	firstchildInv
	nextsiblingInv
)

// apply evaluates a primitive relation as a partial function dom → dom,
// returning NilNode where no image exists.
func (p prim) apply(d *xmltree.Document, x xmltree.NodeID) xmltree.NodeID {
	switch p {
	case firstchild:
		return d.FirstChild(x)
	case nextsibling:
		return d.NextSibling(x)
	case firstchildInv:
		return d.FirstChildInv(x)
	case nextsiblingInv:
		return d.PrevSibling(x)
	default:
		panic("axes: bad primitive")
	}
}

// evaluator realizes Algorithm 3.2. It carries a visited bitmap sized to
// the document so that the reflexive-transitive-closure worklist runs in
// O(|dom|) (membership checks in constant time via "a direct-access
// version of S′ maintained in parallel to its list representation").
type evaluator struct {
	d       *xmltree.Document
	visited []bool
}

func newEvaluator(d *xmltree.Document) *evaluator {
	return &evaluator{d: d, visited: make([]bool, d.Len())}
}

// step is eval_R(S) = {R(x) | x ∈ S} for a primitive relation R.
func (e *evaluator) step(p prim, s []xmltree.NodeID) []xmltree.NodeID {
	out := make([]xmltree.NodeID, 0, len(s))
	for _, x := range s {
		if y := p.apply(e.d, x); y != xmltree.NilNode {
			out = append(out, y)
		}
	}
	return out
}

// closure is eval_(R1∪···∪Rn)*(S): the worklist computation of all nodes
// reachable from S in zero or more steps of the given primitive
// relations. The input list is extended in place as in the paper; the
// visited bitmap guarantees each node is appended at most once.
func (e *evaluator) closure(ps []prim, s []xmltree.NodeID) []xmltree.NodeID {
	work := make([]xmltree.NodeID, 0, len(s)*2)
	for _, x := range s {
		if !e.visited[x] {
			e.visited[x] = true
			work = append(work, x)
		}
	}
	for i := 0; i < len(work); i++ {
		x := work[i]
		for _, p := range ps {
			if y := p.apply(e.d, x); y != xmltree.NilNode && !e.visited[y] {
				e.visited[y] = true
				work = append(work, y)
			}
		}
	}
	for _, x := range work {
		e.visited[x] = false // reset for reuse
	}
	return work
}

// untyped evaluates the abstract (untyped) axis function χ₀ of Section 3
// on a list of nodes, composing the regular expressions of Table I:
//
//	child               = firstchild.nextsibling*
//	parent              = (nextsibling⁻¹)*.firstchild⁻¹
//	descendant          = firstchild.(firstchild ∪ nextsibling)*
//	ancestor            = (firstchild⁻¹ ∪ nextsibling⁻¹)*.firstchild⁻¹
//	descendant-or-self  = descendant ∪ self
//	ancestor-or-self    = ancestor ∪ self
//	following           = ancestor-or-self.nextsibling.nextsibling*.descendant-or-self
//	preceding           = ancestor-or-self.nextsibling⁻¹.(nextsibling⁻¹)*.descendant-or-self
//	following-sibling   = nextsibling.nextsibling*
//	preceding-sibling   = (nextsibling⁻¹)*.nextsibling⁻¹
//
// Concatenation composes left to right: eval_{e1.e2}(S) = eval_e2(eval_e1(S)).
func (e *evaluator) untyped(a Axis, s []xmltree.NodeID) []xmltree.NodeID {
	switch a {
	case Self:
		return s
	case Child, AttributeAxis, NamespaceAxis:
		// attribute and namespace are child₀ plus a type filter applied
		// by the caller (Section 4).
		return e.closure([]prim{nextsibling}, e.step(firstchild, s))
	case Parent:
		return e.step(firstchildInv, e.closure([]prim{nextsiblingInv}, s))
	case Descendant:
		return e.closure([]prim{firstchild, nextsibling}, e.step(firstchild, s))
	case Ancestor:
		return e.step(firstchildInv, e.closure([]prim{firstchildInv, nextsiblingInv}, s))
	case DescendantOrSelf:
		return dedup(append(e.untyped(Descendant, s), s...))
	case AncestorOrSelf:
		return dedup(append(e.untyped(Ancestor, s), s...))
	case Following:
		t := e.untyped(AncestorOrSelf, s)
		t = e.closure([]prim{nextsibling}, e.step(nextsibling, t))
		return e.untyped(DescendantOrSelf, t)
	case Preceding:
		t := e.untyped(AncestorOrSelf, s)
		t = e.closure([]prim{nextsiblingInv}, e.step(nextsiblingInv, t))
		return e.untyped(DescendantOrSelf, t)
	case FollowingSibling:
		return e.closure([]prim{nextsibling}, e.step(nextsibling, s))
	case PrecedingSibling:
		return e.step(nextsiblingInv, e.closure([]prim{nextsiblingInv}, s))
	default:
		panic("axes: untyped axis " + a.String())
	}
}

func dedup(s []xmltree.NodeID) []xmltree.NodeID {
	seen := map[xmltree.NodeID]bool{}
	out := s[:0]
	for _, x := range s {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// Eval computes the typed XPath axis function χ(S) of Section 4 as a
// document-ordered NodeSet:
//
//	attribute(S) = child₀(S) ∩ T(attribute())
//	namespace(S) = child₀(S) ∩ T(namespace())
//	χ(S)         = χ₀(S) − (T(attribute()) ∪ T(namespace()))   otherwise
//
// with the W3C-conformant refinement that the self contribution of self,
// descendant-or-self and ancestor-or-self retains attribute and namespace
// context nodes (a context attribute node is its own self).
//
// The running time is O(|dom|) per call (Lemma 3.3).
func Eval(d *xmltree.Document, a Axis, s xmltree.NodeSet) xmltree.NodeSet {
	if len(s) == 0 {
		return nil
	}
	if a == IDAxis {
		return EvalID(d, s)
	}
	e := newEvaluator(d)
	raw := e.untyped(a, s)
	out := make(xmltree.NodeSet, 0, len(raw))
	switch a {
	case AttributeAxis:
		for _, x := range raw {
			if d.Type(x) == xmltree.Attribute {
				out = append(out, x)
			}
		}
	case NamespaceAxis:
		for _, x := range raw {
			if d.Type(x) == xmltree.Namespace {
				out = append(out, x)
			}
		}
	default:
		keepSelf := a == Self || a == DescendantOrSelf || a == AncestorOrSelf
		inS := map[xmltree.NodeID]bool{}
		if keepSelf {
			for _, x := range s {
				inS[x] = true
			}
		}
		for _, x := range raw {
			if !d.Node(x).IsAttrOrNS() || (keepSelf && inS[x]) {
				out = append(out, x)
			}
		}
	}
	return xmltree.NewNodeSet(out...)
}

// EvalNode computes χ({x}).
func EvalNode(d *xmltree.Document, a Axis, x xmltree.NodeID) xmltree.NodeSet {
	return Eval(d, a, xmltree.NodeSet{x})
}

// EvalID computes the id pseudo-axis: id(S) is the set of nodes reachable
// from S and its descendants through the ref relation (Theorem 10.7):
//
//	id(S) = {y | x ∈ descendant-or-self(S), ⟨x,y⟩ ∈ ref}
//
// This runs in linear time.
func EvalID(d *xmltree.Document, s xmltree.NodeSet) xmltree.NodeSet {
	scope := Eval(d, DescendantOrSelf, s)
	var out []xmltree.NodeID
	for _, x := range scope {
		out = append(out, d.Ref(x)...)
	}
	return xmltree.NewNodeSet(out...)
}

// EvalIDInverse computes id⁻¹(S) (Theorem 10.7):
//
//	id⁻¹(S) = ancestor-or-self({x | ⟨x,y⟩ ∈ ref, y ∈ S})
func EvalIDInverse(d *xmltree.Document, s xmltree.NodeSet) xmltree.NodeSet {
	var srcs []xmltree.NodeID
	for _, y := range s {
		srcs = append(srcs, d.RefInv(y)...)
	}
	return Eval(d, AncestorOrSelf, xmltree.NewNodeSet(srcs...))
}

// EvalInverse computes χ⁻¹(S) for any axis including the id pseudo-axis.
func EvalInverse(d *xmltree.Document, a Axis, s xmltree.NodeSet) xmltree.NodeSet {
	if a == IDAxis {
		return EvalIDInverse(d, s)
	}
	if a == AttributeAxis || a == NamespaceAxis {
		// Only attribute/namespace nodes can be reached over these axes,
		// so the preimage is the set of parents of such members.
		var out []xmltree.NodeID
		want := xmltree.Attribute
		if a == NamespaceAxis {
			want = xmltree.Namespace
		}
		for _, x := range s {
			if d.Type(x) == want {
				out = append(out, d.Parent(x))
			}
		}
		return xmltree.NewNodeSet(out...)
	}
	return Eval(d, a.Inverse(), s)
}

// Index returns idx_χ(x, S): the 1-based index of x within S with respect
// to <doc,χ — document order for forward axes, reverse document order for
// reverse axes (Section 4). S must be sorted in document order and
// contain x.
func Index(a Axis, x xmltree.NodeID, s xmltree.NodeSet) int {
	for i, y := range s {
		if y == x {
			if a.IsReverse() {
				return len(s) - i
			}
			return i + 1
		}
	}
	return 0
}
