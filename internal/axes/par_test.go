package axes

// Parallel-vs-sequential equality: EvalPar/EvalNamedPar/EvalInversePar
// must be element-for-element identical to their sequential
// counterparts on randomized documents for every axis and for
// parallelism in {0, 1, 2, 8} — run under -race in CI, so chunk
// handoff and scratch reuse are exercised under the detector. The
// thresholds are shrunk so the small property documents actually take
// the parallel paths.

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/xmltree"
)

// shrinkPar drops the size floors so small documents parallelize, and
// restores them when the test ends.
func shrinkPar(t *testing.T) {
	minSpan, chunkSpan := parMinSpan, parChunkSpan
	parMinSpan, parChunkSpan = 2, 3
	t.Cleanup(func() { parMinSpan, parChunkSpan = minSpan, chunkSpan })
}

func TestEvalParMatchesSequential(t *testing.T) {
	shrinkPar(t)
	r := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for round := 0; round < 40; round++ {
		d := randDoc(r, 5+r.Intn(200))
		for trial := 0; trial < 3; trial++ {
			s := randSet(r, d)
			if len(s) == 0 {
				s = xmltree.NodeSet{d.RootID()}
			}
			for _, a := range allAxes {
				want := Eval(d, a, s)
				for _, p := range []int{0, 1, 2, 8} {
					got, err := EvalPar(ctx, d, a, s, nil, p)
					if err != nil {
						t.Fatalf("EvalPar(%s, p=%d): %v", a, p, err)
					}
					if !got.Equal(want) {
						t.Fatalf("round %d: EvalPar(%s, p=%d) = %v, sequential = %v\ndoc: %s",
							round, a, p, got, want, d.XMLString())
					}
					gotInv, err := EvalInversePar(ctx, d, a, s, nil, p)
					if err != nil {
						t.Fatalf("EvalInversePar(%s, p=%d): %v", a, p, err)
					}
					if wantInv := EvalInverse(d, a, s); !gotInv.Equal(wantInv) {
						t.Fatalf("round %d: EvalInversePar(%s, p=%d) = %v, sequential = %v",
							round, a, p, gotInv, wantInv)
					}
				}
			}
		}
	}
}

func TestEvalNamedParMatchesSequential(t *testing.T) {
	shrinkPar(t)
	r := rand.New(rand.NewSource(12))
	ctx := context.Background()
	for round := 0; round < 40; round++ {
		d := randDoc(r, 5+r.Intn(200))
		for trial := 0; trial < 3; trial++ {
			s := randSet(r, d)
			if len(s) == 0 {
				s = xmltree.NodeSet{d.RootID()}
			}
			for _, a := range allAxes {
				for _, name := range []string{"a", "b", "absent"} {
					want := EvalNamed(d, a, s, name)
					for _, p := range []int{0, 1, 2, 8} {
						got, err := EvalNamedPar(ctx, d, a, s, name, nil, p)
						if err != nil {
							t.Fatalf("EvalNamedPar(%s::%s, p=%d): %v", a, name, p, err)
						}
						if !got.Equal(want) {
							t.Fatalf("round %d: EvalNamedPar(%s::%s, p=%d) = %v, sequential = %v\ndoc: %s",
								round, a, name, s, got, want, d.XMLString())
						}
					}
				}
			}
		}
	}
}

// TestEvalParBufferReuse drives the parallel paths through a reused
// output buffer and randomized parallelism, the way the engines hold
// them: stale buffer contents or dirty pooled scratch would corrupt
// later rounds.
func TestEvalParBufferReuse(t *testing.T) {
	shrinkPar(t)
	r := rand.New(rand.NewSource(13))
	ctx := context.Background()
	d := randDoc(r, 300)
	var buf xmltree.NodeSet
	for round := 0; round < 60; round++ {
		s := randSet(r, d)
		if len(s) == 0 {
			continue
		}
		a := allAxes[r.Intn(len(allAxes))]
		p := []int{0, 1, 2, 8}[r.Intn(4)]
		var err error
		buf, err = EvalPar(ctx, d, a, s, buf, p)
		if err != nil {
			t.Fatal(err)
		}
		if want := Eval(d, a, s); !buf.Equal(want) {
			t.Fatalf("round %d: reused-buffer EvalPar(%s, p=%d) = %v, want %v", round, a, p, buf, want)
		}
	}
}

// TestEvalParCancelled: a pre-cancelled context must abort the
// parallel fill with the context's error.
func TestEvalParCancelled(t *testing.T) {
	shrinkPar(t)
	r := rand.New(rand.NewSource(14))
	d := randDoc(r, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := xmltree.NodeSet{d.RootID()}
	if _, err := EvalPar(ctx, d, Descendant, s, nil, 8); err != context.Canceled {
		t.Fatalf("EvalPar on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := EvalNamedPar(ctx, d, Child, xmltree.NodeSet{0, 1, 2}, "a", nil, 8); err != context.Canceled {
		t.Fatalf("EvalNamedPar on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestEvalParCancelMidEvaluation cancels concurrently with running
// parallel fills: every worker must observe the abort flag and exit —
// proven by EvalPar returning the context error promptly and the
// shared pool staying healthy for the correct evaluation that follows.
func TestEvalParCancelMidEvaluation(t *testing.T) {
	shrinkPar(t)
	r := rand.New(rand.NewSource(15))
	d := randDoc(r, 4000)
	s := xmltree.NodeSet{d.RootID()}
	want := Eval(d, Descendant, s)

	sawCancel := false
	for round := 0; round < 50 && !sawCancel; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(r.Intn(50)) * time.Microsecond)
			cancel()
		}()
		got, err := EvalPar(ctx, d, Descendant, s, nil, 8)
		wg.Wait()
		switch err {
		case nil:
			// Cancel landed after the fill finished: result must be right.
			if !got.Equal(want) {
				t.Fatalf("round %d: uncancelled result diverged", round)
			}
		case context.Canceled:
			sawCancel = true
		default:
			t.Fatalf("round %d: unexpected error %v", round, err)
		}
	}
	if !sawCancel {
		t.Log("no mid-evaluation cancellation landed; timing-dependent")
	}
	// The pool must be fully drained and reusable after cancellation.
	got, err := EvalPar(context.Background(), d, Descendant, s, nil, 8)
	if err != nil || !got.Equal(want) {
		t.Fatalf("post-cancel evaluation broken: err=%v", err)
	}
}
