package axes

import (
	"context"
	"sync/atomic"

	"repro/internal/xmltree"
)

// This file adds intra-query parallelism to the interval-arithmetic
// axes: the preorder range is partitioned into subtree-aligned chunks
// and the chunks are filled by the shared xmltree worker pool. The
// index's content prefix counts (Index.ContentCount) give each chunk's
// exact output offset up front, so workers write disjoint regions of
// one output buffer and the result is element-for-element identical to
// the sequential EvalInto/EvalNamedInto — regardless of worker count,
// scheduling, or chunk execution order.
//
// Cancellation: each worker bills its own chunk by consulting the
// context once per chunk (chunks are parChunkSpan nodes, well above
// the evalutil checkEvery throttle, so the consult rate matches the
// sequential Canceller discipline). The first failure is recorded in a
// shared flag that later chunks observe, so every worker exits
// promptly after cancellation.
//
// Axes that are not interval fills (ancestor, parent, siblings,
// attribute/namespace, id) produce small outputs and stay sequential;
// so do fills below parMinSpan, keeping the p=1 and small-document
// paths byte-for-byte the PR 4 sequential code with zero goroutine
// overhead.

// Variables rather than constants so the property tests can shrink
// them and drive the parallel paths on small randomized documents; the
// defaults are what production callers get.
var (
	// parMinSpan is the raw preorder span (or posting-list length)
	// below which parallel evaluation falls back to the sequential
	// path: a fill that small completes in the time a pool handoff
	// takes.
	parMinSpan = 16384

	// parChunkSpan is the target chunk size in preorder slots. Small
	// enough that uneven attr/ns density balances across workers and
	// cancellation latency stays bounded, large enough that the
	// per-chunk claim (one atomic add) is noise.
	parChunkSpan = 8192
)

// parFail records the first worker error; later chunks observe it and
// return without doing work, so a cancelled evaluation winds down in
// one chunk per worker.
type parFail struct {
	p atomic.Pointer[error]
}

func (f *parFail) set(err error) { f.p.CompareAndSwap(nil, &err) }

func (f *parFail) err() error {
	if e := f.p.Load(); e != nil {
		return *e
	}
	return nil
}

// EvalPar is EvalInto with a worker budget and cooperative
// cancellation: the big interval-fill axes (descendant,
// descendant-or-self, following, preceding) are partitioned across up
// to p workers when the span clears parMinSpan; everything else — and
// every call with p <= 1 — takes the sequential path after one context
// check. The result is always element-for-element identical to
// EvalInto.
func EvalPar(ctx context.Context, d *xmltree.Document, a Axis, s xmltree.NodeSet, dst xmltree.NodeSet, p int) (xmltree.NodeSet, error) {
	if p > 1 && len(s) > 0 {
		ix := d.Index()
		switch a {
		case Descendant, DescendantOrSelf:
			// The self contribution of descendant-or-self keeps context
			// attribute/namespace nodes; that rare shape stays on the
			// sequential path with its mark bitset.
			selfAttrs := false
			if a == DescendantOrSelf {
				for _, x := range s {
					if d.Node(x).IsAttrOrNS() {
						selfAttrs = true
						break
					}
				}
			}
			if !selfAttrs && mergedSpan(ix, a, s) >= parMinSpan {
				return parFillMerged(ctx, d, ix, a, s, dst, p)
			}

		case Following:
			min := ix.SubtreeEnd(s[0])
			for _, x := range s[1:] {
				if e := ix.SubtreeEnd(x); e < min {
					min = e
				}
			}
			if d.Len()-int(min) >= parMinSpan {
				return parFillFollowing(ctx, d, ix, min, dst, p)
			}

		case Preceding:
			if int(s[len(s)-1]) >= parMinSpan {
				return parFillPreceding(ctx, d, ix, s[len(s)-1], dst, p)
			}
		}
	}
	if err := ctxErr(ctx); err != nil {
		return dst[:0], err
	}
	return EvalInto(d, a, s, dst), nil
}

// EvalInversePar is EvalInverse with a worker budget: χ⁻¹ of the
// interval-fill axes (descendant⁻¹ = ancestor is small, but
// following⁻¹ = preceding and friends are fills) parallelizes through
// EvalPar on the inverted axis.
func EvalInversePar(ctx context.Context, d *xmltree.Document, a Axis, s xmltree.NodeSet, dst xmltree.NodeSet, p int) (xmltree.NodeSet, error) {
	if a == IDAxis || a == AttributeAxis || a == NamespaceAxis {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		return EvalInverse(d, a, s), nil
	}
	return EvalPar(ctx, d, a.Inverse(), s, dst, p)
}

// mergedSpan returns the total preorder span of the merged subtree
// intervals of s — the raw slot count a descendant fill will scan.
func mergedSpan(ix *xmltree.Index, a Axis, s xmltree.NodeSet) int {
	span := 0
	end := xmltree.NodeID(0)
	for _, x := range s {
		if x < end {
			continue
		}
		lo, hi := x, ix.SubtreeEnd(x)
		if a == Descendant {
			lo++
		}
		span += int(hi - lo)
		end = hi
	}
	return span
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// growTo returns dst resized to n slots, reusing its capacity.
func growTo(dst xmltree.NodeSet, n int) xmltree.NodeSet {
	if cap(dst) < n {
		return make(xmltree.NodeSet, n)
	}
	return dst[:n]
}

// appendChunks splits the preorder interval [lo, hi) into
// parChunkSpan-sized pieces, appending (pieceLo, pieceHi, dstOff)
// triples to work; off advances by each piece's content count, so
// every chunk knows exactly where its output lands.
func appendChunks(ix *xmltree.Index, work []xmltree.NodeID, lo, hi xmltree.NodeID, off int) ([]xmltree.NodeID, int) {
	for lo < hi {
		ph := lo + xmltree.NodeID(parChunkSpan)
		if ph > hi {
			ph = hi
		}
		work = append(work, lo, ph, xmltree.NodeID(off))
		off += ix.ContentCount(lo, ph)
		lo = ph
	}
	return work, off
}

// parRunFill executes the chunk triples: each chunk scans its preorder
// range and writes the content nodes at its precomputed offset. Chunks
// cover disjoint input ranges and (by the prefix counts) disjoint
// output ranges.
func parRunFill(ctx context.Context, d *xmltree.Document, work []xmltree.NodeID, dst xmltree.NodeSet, p int) error {
	var fail parFail
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	xmltree.ParDo(p, len(work)/3, func(k int) {
		if fail.err() != nil {
			return
		}
		// Each worker bills its own chunk: one consult per
		// parChunkSpan nodes of work.
		if done != nil {
			select {
			case <-done:
				fail.set(ctx.Err())
				return
			default:
			}
		}
		lo, hi, off := work[3*k], work[3*k+1], int(work[3*k+2])
		for id := lo; id < hi; id++ {
			if !d.Node(id).IsAttrOrNS() {
				dst[off] = id
				off++
			}
		}
	})
	return fail.err()
}

// parFillMerged evaluates descendant/descendant-or-self as a parallel
// merged interval fill.
func parFillMerged(ctx context.Context, d *xmltree.Document, ix *xmltree.Index, a Axis, s, dst xmltree.NodeSet, p int) (xmltree.NodeSet, error) {
	sc := ix.AcquireScratch()
	work := sc.Work[:0]
	off := 0
	end := xmltree.NodeID(0)
	for _, x := range s {
		if x < end {
			continue
		}
		lo, hi := x, ix.SubtreeEnd(x)
		if a == Descendant {
			lo++
		}
		work, off = appendChunks(ix, work, lo, hi, off)
		end = hi
	}
	dst = growTo(dst, off)
	err := parRunFill(ctx, d, work, dst, p)
	sc.Work = work[:0]
	ix.ReleaseScratch(sc)
	if err != nil {
		return dst[:0], err
	}
	return dst, nil
}

// parFillFollowing fills [min, |dom|) in parallel.
func parFillFollowing(ctx context.Context, d *xmltree.Document, ix *xmltree.Index, min xmltree.NodeID, dst xmltree.NodeSet, p int) (xmltree.NodeSet, error) {
	sc := ix.AcquireScratch()
	work, off := appendChunks(ix, sc.Work[:0], min, xmltree.NodeID(d.Len()), 0)
	dst = growTo(dst, off)
	err := parRunFill(ctx, d, work, dst, p)
	sc.Work = work[:0]
	ix.ReleaseScratch(sc)
	if err != nil {
		return dst[:0], err
	}
	return dst, nil
}

// parFillPreceding fills [0, max) minus ancestors(max) in parallel:
// the ancestors of max form a root-to-parent chain, and the
// non-ancestor nodes are exactly the gaps between consecutive chain
// members (plus the gap before max), each a contiguous preorder
// interval.
func parFillPreceding(ctx context.Context, d *xmltree.Document, ix *xmltree.Index, max xmltree.NodeID, dst xmltree.NodeSet, p int) (xmltree.NodeSet, error) {
	sc := ix.AcquireScratch()
	// Lay the ancestor chain down ascending (root first) at the front
	// of the scratch slice, then append the gap chunks after it.
	depth := 0
	for a := d.Parent(max); a != xmltree.NilNode; a = d.Parent(a) {
		depth++
	}
	work := sc.Work[:0]
	for len(work) < depth {
		work = append(work, 0)
	}
	i := depth
	for a := d.Parent(max); a != xmltree.NilNode; a = d.Parent(a) {
		i--
		work[i] = a
	}
	off := 0
	for i := 0; i < depth; i++ {
		hi := max
		if i+1 < depth {
			hi = work[i+1]
		}
		work, off = appendChunks(ix, work, work[i]+1, hi, off)
	}
	dst = growTo(dst, off)
	err := parRunFill(ctx, d, work[depth:], dst, p)
	sc.Work = work[:0]
	ix.ReleaseScratch(sc)
	if err != nil {
		return dst[:0], err
	}
	return dst, nil
}

// ------------------------------------------------------------------
// Parallel EvalNamed: posting-list scans
// ------------------------------------------------------------------

// EvalNamedPar is EvalNamedInto with a worker budget: the posting-list
// serving axes (descendant, following, preceding, child) chunk the
// posting sub-slices across workers when the scan length clears
// parMinSpan. Results are element-for-element identical to
// EvalNamedInto.
func EvalNamedPar(ctx context.Context, d *xmltree.Document, a Axis, s xmltree.NodeSet, name string, dst xmltree.NodeSet, p int) (xmltree.NodeSet, error) {
	if p > 1 && len(s) > 0 {
		ix := d.Index()
		switch a {
		case Descendant, DescendantOrSelf:
			return parNamedCopy(ctx, d, ix, a, s, name, dst, p)

		case Following:
			min := ix.SubtreeEnd(s[0])
			for _, x := range s[1:] {
				if e := ix.SubtreeEnd(x); e < min {
					min = e
				}
			}
			return parNamedCopyRange(ctx, d, ix, name, min, xmltree.NodeID(d.Len()), dst, p)

		case Preceding:
			max := s[len(s)-1]
			sub := ix.NamedRange(name, 0, max)
			if len(sub) >= parMinSpan {
				return parNamedFilter(ctx, sub, dst, p, func(y xmltree.NodeID) bool {
					return ix.SubtreeEnd(y) <= max
				})
			}

		case Child:
			if len(s) == 1 {
				x := s[0]
				sub := ix.NamedRange(name, x+1, ix.SubtreeEnd(x))
				if len(sub) >= parMinSpan {
					return parNamedFilter(ctx, sub, dst, p, func(y xmltree.NodeID) bool {
						return d.Parent(y) == x
					})
				}
			} else if named := ix.Named(name); len(named) >= parMinSpan {
				sc := ix.AcquireScratch()
				sc.Mark.AddSet(s)
				out, err := parNamedFilter(ctx, named, dst, p, func(y xmltree.NodeID) bool {
					pa := d.Parent(y)
					return pa != xmltree.NilNode && sc.Mark.Has(pa)
				})
				for _, x := range s {
					sc.Mark.Remove(x)
				}
				ix.ReleaseScratch(sc)
				return out, err
			}
		}
	}
	if err := ctxErr(ctx); err != nil {
		return dst[:0], err
	}
	return EvalNamedInto(d, a, s, name, dst), nil
}

// parNamedCopy copies the posting sub-slices of the merged subtree
// intervals of s into dst in parallel.
func parNamedCopy(ctx context.Context, d *xmltree.Document, ix *xmltree.Index, a Axis, s xmltree.NodeSet, name string, dst xmltree.NodeSet, p int) (xmltree.NodeSet, error) {
	// First pass over s: total matches, to apply the size floor before
	// building chunks.
	total := 0
	end := xmltree.NodeID(0)
	for _, x := range s {
		if x < end {
			continue
		}
		lo, hi := x, ix.SubtreeEnd(x)
		if a == Descendant {
			lo++
		}
		total += len(ix.NamedRange(name, lo, hi))
		end = hi
	}
	if total < parMinSpan {
		if err := ctxErr(ctx); err != nil {
			return dst[:0], err
		}
		return EvalNamedInto(d, a, s, name, dst), nil
	}
	named := ix.Named(name)
	sc := ix.AcquireScratch()
	work := sc.Work[:0]
	off := 0
	end = 0
	for _, x := range s {
		if x < end {
			continue
		}
		lo, hi := x, ix.SubtreeEnd(x)
		if a == Descendant {
			lo++
		}
		sub := ix.NamedRange(name, lo, hi)
		end = hi
		if len(sub) == 0 {
			continue
		}
		work, off = appendPostingChunks(work, namedIndex(named, sub[0]), len(sub), off)
	}
	dst = growTo(dst, off)
	err := parRunCopy(ctx, named, work, dst, p)
	sc.Work = work[:0]
	ix.ReleaseScratch(sc)
	if err != nil {
		return dst[:0], err
	}
	return dst, nil
}

// parNamedCopyRange copies NamedRange(name, lo, hi) into dst in
// parallel.
func parNamedCopyRange(ctx context.Context, d *xmltree.Document, ix *xmltree.Index, name string, lo, hi xmltree.NodeID, dst xmltree.NodeSet, p int) (xmltree.NodeSet, error) {
	sub := ix.NamedRange(name, lo, hi)
	if len(sub) < parMinSpan {
		if err := ctxErr(ctx); err != nil {
			return dst[:0], err
		}
		dst = append(dst[:0], sub...)
		return dst, nil
	}
	named := ix.Named(name)
	sc := ix.AcquireScratch()
	work, off := appendPostingChunks(sc.Work[:0], namedIndex(named, sub[0]), len(sub), 0)
	dst = growTo(dst, off)
	err := parRunCopy(ctx, named, work, dst, p)
	sc.Work = work[:0]
	ix.ReleaseScratch(sc)
	if err != nil {
		return dst[:0], err
	}
	return dst, nil
}

// namedIndex locates the posting-list index of the first element of a
// sub-slice of named (binary search; sub-slices of NamedRange always
// alias named).
func namedIndex(named xmltree.NodeSet, first xmltree.NodeID) int {
	lo, hi := 0, len(named)
	for lo < hi {
		mid := (lo + hi) / 2
		if named[mid] < first {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// appendPostingChunks splits the posting-list index range
// [src, src+n) into parChunkSpan pieces as (srcLo, srcHi, dstOff)
// triples.
func appendPostingChunks(work []xmltree.NodeID, src, n, off int) ([]xmltree.NodeID, int) {
	for n > 0 {
		step := parChunkSpan
		if step > n {
			step = n
		}
		work = append(work, xmltree.NodeID(src), xmltree.NodeID(src+step), xmltree.NodeID(off))
		src, n, off = src+step, n-step, off+step
	}
	return work, off
}

// parRunCopy executes posting-chunk triples as straight copies.
func parRunCopy(ctx context.Context, named xmltree.NodeSet, work []xmltree.NodeID, dst xmltree.NodeSet, p int) error {
	var fail parFail
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	xmltree.ParDo(p, len(work)/3, func(k int) {
		if fail.err() != nil {
			return
		}
		if done != nil {
			select {
			case <-done:
				fail.set(ctx.Err())
				return
			default:
			}
		}
		lo, hi, off := int(work[3*k]), int(work[3*k+1]), int(work[3*k+2])
		copy(dst[off:off+(hi-lo)], named[lo:hi])
	})
	return fail.err()
}

// parNamedFilter restricts a posting sub-slice by a per-node predicate
// with a two-pass count-then-fill, so the output is dense, ordered and
// written without inter-worker coordination.
func parNamedFilter(ctx context.Context, sub xmltree.NodeSet, dst xmltree.NodeSet, p int, keep func(xmltree.NodeID) bool) (xmltree.NodeSet, error) {
	nchunks := (len(sub) + parChunkSpan - 1) / parChunkSpan
	counts := make([]int, nchunks)
	var fail parFail
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	xmltree.ParDo(p, nchunks, func(k int) {
		if fail.err() != nil {
			return
		}
		if done != nil {
			select {
			case <-done:
				fail.set(ctx.Err())
				return
			default:
			}
		}
		lo, hi := k*parChunkSpan, (k+1)*parChunkSpan
		if hi > len(sub) {
			hi = len(sub)
		}
		n := 0
		for _, y := range sub[lo:hi] {
			if keep(y) {
				n++
			}
		}
		counts[k] = n
	})
	if err := fail.err(); err != nil {
		return dst[:0], err
	}
	total := 0
	for k, n := range counts {
		counts[k] = total
		total += n
	}
	dst = growTo(dst, total)
	xmltree.ParDo(p, nchunks, func(k int) {
		if fail.err() != nil {
			return
		}
		if done != nil {
			select {
			case <-done:
				fail.set(ctx.Err())
				return
			default:
			}
		}
		lo, hi := k*parChunkSpan, (k+1)*parChunkSpan
		if hi > len(sub) {
			hi = len(sub)
		}
		off := counts[k]
		for _, y := range sub[lo:hi] {
			if keep(y) {
				dst[off] = y
				off++
			}
		}
	})
	if err := fail.err(); err != nil {
		return dst[:0], err
	}
	return dst, nil
}
