package axes

import (
	"testing"

	"repro/internal/xmltree"
)

// TestEvalInverseMatchesInverseAxis: EvalInverse(χ, S) must equal
// Eval(χ⁻¹, S) for ordinary axes, on a document with every node type.
func TestEvalInverseMatchesInverseAxis(t *testing.T) {
	d, err := xmltree.ParseString(
		`<a x="1"><b><c>t</c></b><!--cm--><?pi p?><e><f/></e></a>`)
	if err != nil {
		t.Fatal(err)
	}
	ordinary := []Axis{Self, Child, Parent, Descendant, Ancestor,
		DescendantOrSelf, AncestorOrSelf, Following, Preceding,
		FollowingSibling, PrecedingSibling}
	for _, ax := range ordinary {
		for i := 0; i < d.Len(); i++ {
			s := xmltree.NodeSet{xmltree.NodeID(i)}
			got := EvalInverse(d, ax, s)
			want := Eval(d, ax.Inverse(), s)
			if !got.Equal(want) {
				t.Errorf("axis %v node %d: EvalInverse %v != Eval(inverse) %v", ax, i, got, want)
			}
		}
	}
}

// TestInverseInvolution: (χ⁻¹)⁻¹ = χ.
func TestInverseInvolution(t *testing.T) {
	for _, ax := range []Axis{Self, Child, Parent, Descendant, Ancestor,
		DescendantOrSelf, AncestorOrSelf, Following, Preceding,
		FollowingSibling, PrecedingSibling} {
		if ax.Inverse().Inverse() != ax {
			t.Errorf("axis %v: double inverse is %v", ax, ax.Inverse().Inverse())
		}
	}
}

// TestAttributeInverseRoundTrip: for every attribute node y of element
// x, x ∈ attribute⁻¹({y}) and y ∈ attribute({x}).
func TestAttributeInverseRoundTrip(t *testing.T) {
	d, err := xmltree.ParseString(`<a p="1" q="2"><b r="3"/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		x := xmltree.NodeID(i)
		if d.Type(x) != xmltree.Element {
			continue
		}
		for _, y := range Eval(d, AttributeAxis, xmltree.NodeSet{x}) {
			back := EvalInverse(d, AttributeAxis, xmltree.NodeSet{y})
			if len(back) != 1 || back[0] != x {
				t.Errorf("attribute⁻¹(%d) = %v, want {%d}", y, back, x)
			}
		}
	}
}

// TestIDAxisInverseConsistency: x ∈ id⁻¹({y}) for every y ∈ id({x}).
func TestIDAxisInverseConsistency(t *testing.T) {
	d, err := xmltree.ParseString(
		`<t id="1"> 2 <t id="2"> 3 </t><t id="3"> 1 </t></t>`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		x := xmltree.NodeID(i)
		for _, y := range EvalID(d, xmltree.NodeSet{x}) {
			back := EvalIDInverse(d, xmltree.NodeSet{y})
			if !back.Contains(x) {
				t.Errorf("id⁻¹(%d) misses %d", y, x)
			}
		}
	}
}

func TestInverseOfIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("IDAxis.Inverse() should panic; use EvalIDInverse")
		}
	}()
	_ = IDAxis.Inverse()
}

func TestEvalEmptySet(t *testing.T) {
	d, _ := xmltree.ParseString(`<a/>`)
	for _, ax := range []Axis{Child, Descendant, Following, IDAxis} {
		if got := Eval(d, ax, nil); !got.IsEmpty() {
			t.Errorf("axis %v on empty set = %v", ax, got)
		}
	}
}
