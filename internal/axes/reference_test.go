package axes

// This file keeps the literal worklist-closure evaluator of Algorithm
// 3.2 — the implementation eval.go replaced with subtree-interval
// arithmetic — alive as an executable specification. The property tests
// in property_test.go assert that the indexed evaluator returns exactly
// the same node sets on randomized documents.

import "repro/internal/xmltree"

// refPrim identifies one of the four primitive tree relations of
// Section 3: firstchild, nextsibling, and their inverses.
type refPrim uint8

const (
	refFirstchild refPrim = iota
	refNextsibling
	refFirstchildInv
	refNextsiblingInv
)

func (p refPrim) apply(d *xmltree.Document, x xmltree.NodeID) xmltree.NodeID {
	switch p {
	case refFirstchild:
		return d.FirstChild(x)
	case refNextsibling:
		return d.NextSibling(x)
	case refFirstchildInv:
		return d.FirstChildInv(x)
	case refNextsiblingInv:
		return d.PrevSibling(x)
	default:
		panic("axes: bad primitive")
	}
}

// refEvaluator realizes Algorithm 3.2 with a visited bitmap sized to
// the document, as in the paper's "direct-access version of S′
// maintained in parallel to its list representation".
type refEvaluator struct {
	d       *xmltree.Document
	visited []bool
}

func newRefEvaluator(d *xmltree.Document) *refEvaluator {
	return &refEvaluator{d: d, visited: make([]bool, d.Len())}
}

// step is eval_R(S) = {R(x) | x ∈ S} for a primitive relation R.
func (e *refEvaluator) step(p refPrim, s []xmltree.NodeID) []xmltree.NodeID {
	out := make([]xmltree.NodeID, 0, len(s))
	for _, x := range s {
		if y := p.apply(e.d, x); y != xmltree.NilNode {
			out = append(out, y)
		}
	}
	return out
}

// closure is eval_(R1∪···∪Rn)*(S): the worklist computation of all
// nodes reachable from S in zero or more steps.
func (e *refEvaluator) closure(ps []refPrim, s []xmltree.NodeID) []xmltree.NodeID {
	work := make([]xmltree.NodeID, 0, len(s)*2)
	for _, x := range s {
		if !e.visited[x] {
			e.visited[x] = true
			work = append(work, x)
		}
	}
	for i := 0; i < len(work); i++ {
		x := work[i]
		for _, p := range ps {
			if y := p.apply(e.d, x); y != xmltree.NilNode && !e.visited[y] {
				e.visited[y] = true
				work = append(work, y)
			}
		}
	}
	for _, x := range work {
		e.visited[x] = false // reset for reuse
	}
	return work
}

// untyped evaluates the abstract axis function χ₀ of Section 3,
// composing the regular expressions of Table I.
func (e *refEvaluator) untyped(a Axis, s []xmltree.NodeID) []xmltree.NodeID {
	switch a {
	case Self:
		return s
	case Child, AttributeAxis, NamespaceAxis:
		return e.closure([]refPrim{refNextsibling}, e.step(refFirstchild, s))
	case Parent:
		return e.step(refFirstchildInv, e.closure([]refPrim{refNextsiblingInv}, s))
	case Descendant:
		return e.closure([]refPrim{refFirstchild, refNextsibling}, e.step(refFirstchild, s))
	case Ancestor:
		return e.step(refFirstchildInv, e.closure([]refPrim{refFirstchildInv, refNextsiblingInv}, s))
	case DescendantOrSelf:
		return refDedup(append(e.untyped(Descendant, s), s...))
	case AncestorOrSelf:
		return refDedup(append(e.untyped(Ancestor, s), s...))
	case Following:
		t := e.untyped(AncestorOrSelf, s)
		t = e.closure([]refPrim{refNextsibling}, e.step(refNextsibling, t))
		return e.untyped(DescendantOrSelf, t)
	case Preceding:
		t := e.untyped(AncestorOrSelf, s)
		t = e.closure([]refPrim{refNextsiblingInv}, e.step(refNextsiblingInv, t))
		return e.untyped(DescendantOrSelf, t)
	case FollowingSibling:
		return e.closure([]refPrim{refNextsibling}, e.step(refNextsibling, s))
	case PrecedingSibling:
		return e.step(refNextsiblingInv, e.closure([]refPrim{refNextsiblingInv}, s))
	default:
		panic("axes: untyped axis " + a.String())
	}
}

func refDedup(s []xmltree.NodeID) []xmltree.NodeID {
	seen := map[xmltree.NodeID]bool{}
	out := s[:0]
	for _, x := range s {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// refEval is the original typed Eval: Algorithm 3.2 plus the Section 4
// type filters, sorted via NewNodeSet.
func refEval(d *xmltree.Document, a Axis, s xmltree.NodeSet) xmltree.NodeSet {
	if len(s) == 0 {
		return nil
	}
	if a == IDAxis {
		return EvalID(d, s)
	}
	e := newRefEvaluator(d)
	raw := e.untyped(a, s)
	out := make(xmltree.NodeSet, 0, len(raw))
	switch a {
	case AttributeAxis:
		for _, x := range raw {
			if d.Type(x) == xmltree.Attribute {
				out = append(out, x)
			}
		}
	case NamespaceAxis:
		for _, x := range raw {
			if d.Type(x) == xmltree.Namespace {
				out = append(out, x)
			}
		}
	default:
		keepSelf := a == Self || a == DescendantOrSelf || a == AncestorOrSelf
		inS := map[xmltree.NodeID]bool{}
		if keepSelf {
			for _, x := range s {
				inS[x] = true
			}
		}
		for _, x := range raw {
			if !d.Node(x).IsAttrOrNS() || (keepSelf && inS[x]) {
				out = append(out, x)
			}
		}
	}
	return xmltree.NewNodeSet(out...)
}
