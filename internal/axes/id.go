package axes

import (
	"sort"

	"repro/internal/xmltree"
)

// EvalID computes the id pseudo-axis: id(S) is the set of nodes reachable
// from S and its descendants through the ref relation (Theorem 10.7):
//
//	id(S) = {y | x ∈ descendant-or-self(S), ⟨x,y⟩ ∈ ref}
//
// This runs in linear time.
func EvalID(d *xmltree.Document, s xmltree.NodeSet) xmltree.NodeSet {
	scope := Eval(d, DescendantOrSelf, s)
	var out []xmltree.NodeID
	for _, x := range scope {
		out = append(out, d.Ref(x)...)
	}
	return xmltree.NewNodeSet(out...)
}

// EvalIDInverse computes id⁻¹(S) (Theorem 10.7):
//
//	id⁻¹(S) = ancestor-or-self({x | ⟨x,y⟩ ∈ ref, y ∈ S})
func EvalIDInverse(d *xmltree.Document, s xmltree.NodeSet) xmltree.NodeSet {
	var srcs []xmltree.NodeID
	for _, y := range s {
		srcs = append(srcs, d.RefInv(y)...)
	}
	return Eval(d, AncestorOrSelf, xmltree.NewNodeSet(srcs...))
}

// EvalInverse computes χ⁻¹(S) for any axis including the id pseudo-axis.
func EvalInverse(d *xmltree.Document, a Axis, s xmltree.NodeSet) xmltree.NodeSet {
	if a == IDAxis {
		return EvalIDInverse(d, s)
	}
	if a == AttributeAxis || a == NamespaceAxis {
		// Only attribute/namespace nodes can be reached over these axes,
		// so the preimage is the set of parents of such members.
		var out []xmltree.NodeID
		want := xmltree.Attribute
		if a == NamespaceAxis {
			want = xmltree.Namespace
		}
		for _, x := range s {
			if d.Type(x) == want {
				out = append(out, d.Parent(x))
			}
		}
		return xmltree.NewNodeSet(out...)
	}
	return Eval(d, a.Inverse(), s)
}

// Index returns idx_χ(x, S): the 1-based index of x within S with respect
// to <doc,χ — document order for forward axes, reverse document order for
// reverse axes (Section 4). S must be sorted in document order and
// contain x; the lookup is a binary search, as this sits on the
// position()-predicate hot path.
func Index(a Axis, x xmltree.NodeID, s xmltree.NodeSet) int {
	i := sort.Search(len(s), func(k int) bool { return s[k] >= x })
	if i == len(s) || s[i] != x {
		return 0
	}
	if a.IsReverse() {
		return len(s) - i
	}
	return i + 1
}
