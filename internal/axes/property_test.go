package axes

// Property tests: the indexed evaluator of eval.go must agree exactly
// with the worklist-closure reference (reference_test.go, the paper's
// Algorithm 3.2) on randomized documents, for every axis, over random
// context sets — including context sets containing attribute and
// namespace nodes, whose self contributions are the subtle cases of the
// Section 4 type filters.

import (
	"math/rand"
	"testing"

	"repro/internal/xmltree"
)

// randDoc builds a random document of roughly n nodes mixing elements
// (from a tiny alphabet so name collisions are common), text, comments,
// attributes and namespace nodes at random depths.
func randDoc(r *rand.Rand, n int) *xmltree.Document {
	b := xmltree.NewBuilder()
	names := []string{"a", "b", "c"}
	open := 0
	b.StartElement(names[r.Intn(len(names))])
	open++
	for i := 0; i < n; i++ {
		switch k := r.Intn(10); {
		case k < 4:
			b.StartElement(names[r.Intn(len(names))])
			open++
			// Attributes and namespace nodes must follow StartElement.
			if r.Intn(3) == 0 {
				b.Attribute("x", "v")
			}
			if r.Intn(8) == 0 {
				b.NamespaceNode("p", "uri")
			}
		case k < 6 && open > 1:
			b.EndElement()
			open--
		case k < 8:
			b.Text("t")
		default:
			b.Comment("c")
		}
	}
	for ; open > 0; open-- {
		b.EndElement()
	}
	return b.MustDone()
}

// randSet picks a random subset of the document's nodes.
func randSet(r *rand.Rand, d *xmltree.Document) xmltree.NodeSet {
	var ids []xmltree.NodeID
	for i := 0; i < d.Len(); i++ {
		if r.Intn(4) == 0 {
			ids = append(ids, xmltree.NodeID(i))
		}
	}
	return xmltree.NewNodeSet(ids...)
}

var allAxes = []Axis{
	Self, Child, Parent, Descendant, Ancestor, DescendantOrSelf,
	AncestorOrSelf, Following, Preceding, FollowingSibling,
	PrecedingSibling, AttributeAxis, NamespaceAxis,
}

func TestEvalMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for round := 0; round < 60; round++ {
		d := randDoc(r, 5+r.Intn(120))
		for trial := 0; trial < 4; trial++ {
			s := randSet(r, d)
			if len(s) == 0 {
				s = xmltree.NodeSet{d.RootID()}
			}
			for _, a := range allAxes {
				got := Eval(d, a, s)
				want := refEval(d, a, s)
				if !got.Equal(want) {
					t.Fatalf("round %d: %s(%v) = %v, reference = %v\ndoc: %s",
						round, a, s, got, want, d.XMLString())
				}
			}
		}
	}
}

// TestEvalIntoReuse exercises the scratch/pool path under buffer reuse:
// consecutive evaluations into the same buffer must not corrupt one
// another (scratch left dirty would).
func TestEvalIntoReuse(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	d := randDoc(r, 200)
	var buf xmltree.NodeSet
	for round := 0; round < 50; round++ {
		s := randSet(r, d)
		if len(s) == 0 {
			continue
		}
		for _, a := range allAxes {
			buf = EvalInto(d, a, s, buf)
			want := refEval(d, a, s)
			if !xmltree.NodeSet(buf).Equal(want) {
				t.Fatalf("reused-buffer %s(%v) = %v, reference = %v", a, s, buf, want)
			}
		}
	}
}

func TestEvalNamedMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for round := 0; round < 60; round++ {
		d := randDoc(r, 5+r.Intn(120))
		for trial := 0; trial < 4; trial++ {
			s := randSet(r, d)
			if len(s) == 0 {
				s = xmltree.NodeSet{d.RootID()}
			}
			for _, a := range allAxes {
				for _, name := range []string{"a", "b", "absent"} {
					got := EvalNamed(d, a, s, name)
					// Reference: full axis image, then the name/type
					// filter of Section 4 for an element name test.
					var want xmltree.NodeSet
					for _, y := range refEval(d, a, s) {
						if d.Type(y) == xmltree.Element && d.Name(y) == name {
							want = append(want, y)
						}
					}
					if !got.Equal(want) {
						t.Fatalf("round %d: %s::%s(%v) = %v, reference = %v\ndoc: %s",
							round, a, name, s, got, want, d.XMLString())
					}
				}
			}
		}
	}
}

// TestSubtreeEnd pins the interval invariant the indexed axes rely on:
// [x, SubtreeEnd(x)) is exactly descendant-or-self₀(x).
func TestSubtreeEnd(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for round := 0; round < 40; round++ {
		d := randDoc(r, 5+r.Intn(100))
		ix := d.Index()
		for i := 0; i < d.Len(); i++ {
			x := xmltree.NodeID(i)
			e := newRefEvaluator(d)
			raw := refDedup(append(e.untyped(Descendant, []xmltree.NodeID{x}), x))
			want := xmltree.NewNodeSet(raw...)
			lo, hi := x, ix.SubtreeEnd(x)
			if int(hi-lo) != len(want) || want[0] != lo || want[len(want)-1] != hi-1 {
				t.Fatalf("subtree interval of %d = [%d,%d), reference %v", x, lo, hi, want)
			}
		}
	}
}
