package axes

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

// testDoc builds the tree of Example 6.4: root r, element a with four
// b children.
func doc4(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString("<a><b/><b/><b/><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// nested builds <a><b><c/><d/></b><e><f/></e></a>.
func nested(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString("<a><b><c/><d/></b><e><f/></e></a>")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func byName(d *xmltree.Document, name string) xmltree.NodeID {
	for i := 0; i < d.Len(); i++ {
		if d.Name(xmltree.NodeID(i)) == name && d.Type(xmltree.NodeID(i)) == xmltree.Element {
			return xmltree.NodeID(i)
		}
	}
	return xmltree.NilNode
}

func names(d *xmltree.Document, s xmltree.NodeSet) []string {
	var out []string
	for _, id := range s {
		n := d.Name(id)
		if n == "" {
			n = d.Type(id).String()
		}
		out = append(out, n)
	}
	return out
}

func TestChildParent(t *testing.T) {
	d := nested(t)
	a := byName(d, "a")
	got := EvalNode(d, Child, a)
	if want := []string{"b", "e"}; !reflect.DeepEqual(names(d, got), want) {
		t.Errorf("child(a) = %v, want %v", names(d, got), want)
	}
	b := byName(d, "b")
	if got := EvalNode(d, Parent, b); len(got) != 1 || got[0] != a {
		t.Errorf("parent(b) = %v", got)
	}
	if got := EvalNode(d, Parent, d.RootID()); !got.IsEmpty() {
		t.Errorf("parent(root) = %v, want empty", got)
	}
}

func TestDescendantAncestor(t *testing.T) {
	d := nested(t)
	a := byName(d, "a")
	got := EvalNode(d, Descendant, a)
	if want := []string{"b", "c", "d", "e", "f"}; !reflect.DeepEqual(names(d, got), want) {
		t.Errorf("descendant(a) = %v, want %v", names(d, got), want)
	}
	f := byName(d, "f")
	anc := EvalNode(d, Ancestor, f)
	if want := []string{"root", "a", "e"}; !reflect.DeepEqual(names(d, anc), want) {
		t.Errorf("ancestor(f) = %v, want %v", names(d, anc), want)
	}
	dos := EvalNode(d, DescendantOrSelf, a)
	if len(dos) != 6 || !dos.Contains(a) {
		t.Errorf("descendant-or-self(a) = %v", names(d, dos))
	}
	aos := EvalNode(d, AncestorOrSelf, f)
	if len(aos) != 4 || !aos.Contains(f) {
		t.Errorf("ancestor-or-self(f) = %v", names(d, aos))
	}
}

func TestSiblingAxes(t *testing.T) {
	d := doc4(t)
	a := d.DocumentElement()
	kids := d.Children(a)
	b1, b2, b3, b4 := kids[0], kids[1], kids[2], kids[3]
	if got := EvalNode(d, FollowingSibling, b1); !got.Equal(xmltree.NewNodeSet(b2, b3, b4)) {
		t.Errorf("following-sibling(b1) = %v", got)
	}
	if got := EvalNode(d, FollowingSibling, b4); !got.IsEmpty() {
		t.Errorf("following-sibling(b4) = %v", got)
	}
	if got := EvalNode(d, PrecedingSibling, b3); !got.Equal(xmltree.NewNodeSet(b1, b2)) {
		t.Errorf("preceding-sibling(b3) = %v", got)
	}
}

func TestFollowingPreceding(t *testing.T) {
	d := nested(t)
	b, c, dd, e, f := byName(d, "b"), byName(d, "c"), byName(d, "d"), byName(d, "e"), byName(d, "f")
	if got := EvalNode(d, Following, c); !got.Equal(xmltree.NewNodeSet(dd, e, f)) {
		t.Errorf("following(c) = %v", names(d, got))
	}
	if got := EvalNode(d, Preceding, f); !got.Equal(xmltree.NewNodeSet(b, c, dd)) {
		t.Errorf("preceding(f) = %v", names(d, got))
	}
	// following excludes descendants; preceding excludes ancestors.
	if got := EvalNode(d, Following, b); got.Contains(c) || got.Contains(dd) {
		t.Errorf("following(b) contains descendants: %v", names(d, got))
	}
	if got := EvalNode(d, Preceding, f); got.Contains(e) {
		t.Errorf("preceding(f) contains ancestor e: %v", names(d, got))
	}
}

func TestAttributeAxis(t *testing.T) {
	d, err := xmltree.ParseString(`<a id="1" x="2"><b y="3"/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	a := d.DocumentElement()
	attrs := EvalNode(d, AttributeAxis, a)
	if len(attrs) != 2 {
		t.Fatalf("attribute(a) = %v", attrs)
	}
	for _, at := range attrs {
		if d.Type(at) != xmltree.Attribute {
			t.Errorf("attribute axis returned %v", d.Type(at))
		}
	}
	// Ordinary axes must not return attribute nodes.
	if got := EvalNode(d, Child, a); len(got) != 1 || d.Name(got[0]) != "b" {
		t.Errorf("child(a) = %v", names(d, got))
	}
	if got := EvalNode(d, Descendant, a); len(got) != 1 {
		t.Errorf("descendant(a) = %v", names(d, got))
	}
	// Self of an attribute keeps the attribute.
	at := attrs[0]
	if got := EvalNode(d, Self, at); len(got) != 1 || got[0] != at {
		t.Errorf("self(attr) = %v", got)
	}
	// Parent of an attribute is its element.
	if got := EvalNode(d, Parent, at); len(got) != 1 || got[0] != a {
		t.Errorf("parent(attr) = %v", got)
	}
	// Inverse of the attribute axis recovers the element.
	if got := EvalInverse(d, AttributeAxis, attrs); len(got) != 1 || got[0] != a {
		t.Errorf("attribute⁻¹ = %v", got)
	}
}

func TestNamespaceAxis(t *testing.T) {
	d, err := xmltree.ParseString(`<a xmlns:p="urn:x"><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	a := d.DocumentElement()
	ns := EvalNode(d, NamespaceAxis, a)
	if len(ns) != 1 || d.Type(ns[0]) != xmltree.Namespace {
		t.Fatalf("namespace(a) = %v", ns)
	}
	if got := EvalNode(d, Child, a); len(got) != 1 || d.Name(got[0]) != "b" {
		t.Errorf("child(a) = %v", names(d, got))
	}
}

func TestInverseProperty(t *testing.T) {
	// Lemma 10.1: x χ y iff y χ⁻¹ x, for every axis and node pair.
	d, err := xmltree.ParseString(`<a><b><c/><d>t</d></b><e x="1"><f/><g/></e></a>`)
	if err != nil {
		t.Fatal(err)
	}
	axesToCheck := []Axis{Self, Child, Parent, Descendant, Ancestor,
		DescendantOrSelf, AncestorOrSelf, Following, Preceding,
		FollowingSibling, PrecedingSibling}
	for _, ax := range axesToCheck {
		for x := 0; x < d.Len(); x++ {
			xs := EvalNode(d, ax, xmltree.NodeID(x))
			for _, y := range xs {
				back := EvalNode(d, ax.Inverse(), y)
				if !back.Contains(xmltree.NodeID(x)) {
					// The attr/ns filter makes pairs involving such
					// nodes legitimately asymmetric; skip them.
					if d.Node(xmltree.NodeID(x)).IsAttrOrNS() || d.Node(y).IsAttrOrNS() {
						continue
					}
					t.Errorf("axis %v: %d→%d but inverse misses", ax, x, y)
				}
			}
		}
	}
}

func TestSelfUnionDecomposition(t *testing.T) {
	// descendant-or-self = descendant ∪ self, ancestor-or-self likewise.
	d := nested(t)
	for x := 0; x < d.Len(); x++ {
		id := xmltree.NodeID(x)
		if d.Node(id).IsAttrOrNS() {
			continue
		}
		dos := EvalNode(d, DescendantOrSelf, id)
		want := EvalNode(d, Descendant, id).Union(xmltree.NodeSet{id})
		if !dos.Equal(want) {
			t.Errorf("descendant-or-self(%d) = %v, want %v", id, dos, want)
		}
		aos := EvalNode(d, AncestorOrSelf, id)
		want = EvalNode(d, Ancestor, id).Union(xmltree.NodeSet{id})
		if !aos.Equal(want) {
			t.Errorf("ancestor-or-self(%d) = %v, want %v", id, aos, want)
		}
	}
}

func TestDocPartition(t *testing.T) {
	// For any element x: {x} ∪ ancestors ∪ descendants ∪ following ∪
	// preceding partitions the element/text/comment/PI nodes of dom.
	d, err := xmltree.ParseString(`<a><b><c/>t</b><e><f/><g>u</g></e><h/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < d.Len(); x++ {
		id := xmltree.NodeID(x)
		if d.Node(id).IsAttrOrNS() {
			continue
		}
		parts := []xmltree.NodeSet{
			{id},
			EvalNode(d, Ancestor, id),
			EvalNode(d, Descendant, id),
			EvalNode(d, Following, id),
			EvalNode(d, Preceding, id),
		}
		var all xmltree.NodeSet
		total := 0
		for _, p := range parts {
			total += len(p)
			all = all.Union(p)
		}
		if total != len(all) {
			t.Errorf("node %d: partition overlaps (total %d, union %d)", id, total, len(all))
		}
		if len(all) != d.Len() {
			t.Errorf("node %d: partition misses nodes (%d of %d)", id, len(all), d.Len())
		}
	}
}

func TestEvalSetSemantics(t *testing.T) {
	// Definition 3.1: χ(X0) = {x | ∃x0 ∈ X0 : x0 χ x} — set evaluation
	// must equal union of per-node evaluations.
	d := nested(t)
	all := []Axis{Child, Parent, Descendant, Ancestor, Following, Preceding,
		FollowingSibling, PrecedingSibling, DescendantOrSelf, AncestorOrSelf}
	S := xmltree.NewNodeSet(byName(d, "b"), byName(d, "e"))
	for _, ax := range all {
		got := Eval(d, ax, S)
		want := EvalNode(d, ax, S[0]).Union(EvalNode(d, ax, S[1]))
		if !got.Equal(want) {
			t.Errorf("axis %v: set eval %v != union %v", ax, got, want)
		}
	}
}

func TestIndex(t *testing.T) {
	d := doc4(t)
	kids := xmltree.NodeSet(d.Children(d.DocumentElement()))
	// Forward axis: idx is position in document order.
	if got := Index(FollowingSibling, kids[1], kids); got != 2 {
		t.Errorf("forward idx = %d, want 2", got)
	}
	// Reverse axis: idx counts from the end (proximity order).
	if got := Index(PrecedingSibling, kids[1], kids); got != 3 {
		t.Errorf("reverse idx = %d, want 3", got)
	}
	if got := Index(Child, 99, kids); got != 0 {
		t.Errorf("missing node idx = %d, want 0", got)
	}
}

func TestIDAxis(t *testing.T) {
	d, err := xmltree.ParseString(`<t id="1"> 3 <t id="2"> 1 </t><t id="3"> 1 2 </t></t>`)
	if err != nil {
		t.Fatal(err)
	}
	n1, n2, n3 := d.IDOf("1"), d.IDOf("2"), d.IDOf("3")
	// id({n2}) = {n1} (text " 1 " references id 1).
	if got := EvalID(d, xmltree.NodeSet{n2}); !got.Equal(xmltree.NodeSet{n1}) {
		t.Errorf("id(n2) = %v", got)
	}
	// id of a set including n1 collects refs from descendants too:
	// descendant-or-self(n1) = {n1,n2,n3}, so refs = {n1,n2,n3}.
	got := EvalID(d, xmltree.NodeSet{n1})
	if !got.Equal(xmltree.NewNodeSet(n1, n2, n3)) {
		t.Errorf("id(n1) = %v", got)
	}
	// Inverse: id⁻¹({n1}) = ancestor-or-self({n2, n3}) = {root, n1, n2, n3}.
	inv := EvalIDInverse(d, xmltree.NodeSet{n1})
	if !inv.Equal(xmltree.NewNodeSet(d.RootID(), n1, n2, n3)) {
		t.Errorf("id⁻¹(n1) = %v", inv)
	}
}

func TestAxisNames(t *testing.T) {
	for _, name := range []string{"self", "child", "parent", "descendant",
		"ancestor", "descendant-or-self", "ancestor-or-self", "following",
		"preceding", "following-sibling", "preceding-sibling", "attribute",
		"namespace"} {
		a, ok := ByName(name)
		if !ok {
			t.Errorf("ByName(%q) failed", name)
			continue
		}
		if a.String() != name {
			t.Errorf("round trip %q -> %v", name, a)
		}
	}
	if _, ok := ByName("sideways"); ok {
		t.Error("ByName accepted a bogus axis")
	}
	if _, ok := ByName("id"); ok {
		t.Error("ByName must not resolve the id pseudo-axis")
	}
}

func TestPrincipalTypes(t *testing.T) {
	if AttributeAxis.PrincipalType() != xmltree.Attribute {
		t.Error("attribute principal type")
	}
	if NamespaceAxis.PrincipalType() != xmltree.Namespace {
		t.Error("namespace principal type")
	}
	if Child.PrincipalType() != xmltree.Element || Following.PrincipalType() != xmltree.Element {
		t.Error("element principal type")
	}
}

// TestAxisDisjointness uses randomized documents to check the
// partitioning property and inverse symmetry at scale.
func TestAxisPropertiesRandomized(t *testing.T) {
	gen := func(r *rand.Rand) *xmltree.Document {
		b := xmltree.NewBuilder()
		var build func(depth int)
		build = func(depth int) {
			n := r.Intn(4)
			for i := 0; i < n; i++ {
				b.StartElement(string(rune('a' + r.Intn(4))))
				if depth < 3 {
					build(depth + 1)
				}
				b.EndElement()
			}
		}
		b.StartElement("doc")
		build(0)
		b.EndElement()
		return b.MustDone()
	}
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(gen(r))
		},
	}
	if err := quick.Check(func(d *xmltree.Document) bool {
		for x := 0; x < d.Len(); x++ {
			id := xmltree.NodeID(x)
			parts := []xmltree.NodeSet{
				{id},
				EvalNode(d, Ancestor, id),
				EvalNode(d, Descendant, id),
				EvalNode(d, Following, id),
				EvalNode(d, Preceding, id),
			}
			var all xmltree.NodeSet
			total := 0
			for _, p := range parts {
				total += len(p)
				all = all.Union(p)
			}
			if total != len(all) || len(all) != d.Len() {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
