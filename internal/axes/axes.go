// Package axes implements the XPath axes of Gottlob, Koch and Pichler,
// Sections 3 and 4: the thirteen navigational axes defined as limited
// regular expressions over the primitive tree relations "firstchild" and
// "nextsibling" (Table I), the linear-time set-at-a-time evaluator of
// Algorithm 3.2, typed-axis filtering of attribute and namespace nodes,
// axis inverses (Lemma 10.1), and the per-axis document orders <doc,χ.
//
// The package also provides the "id" pseudo-axis used by XPatterns
// (Section 10.2) and the Extended Wadler Fragment (Section 11), defined
// via the document's ref relation (Theorem 10.7).
package axes

import (
	"fmt"

	"repro/internal/xmltree"
)

// Axis enumerates the XPath axes plus the id pseudo-axis.
type Axis uint8

// The XPath axes. Values are stable and ordered as in Table I.
const (
	Self Axis = iota
	Child
	Parent
	Descendant
	Ancestor
	DescendantOrSelf
	AncestorOrSelf
	Following
	Preceding
	FollowingSibling
	PrecedingSibling
	AttributeAxis
	NamespaceAxis
	// IDAxis is the "id" axis of Section 10.2: x id y iff
	// y ∈ deref_ids(strval(x)), realized through the ref relation.
	IDAxis
)

var axisNames = map[Axis]string{
	Self: "self", Child: "child", Parent: "parent",
	Descendant: "descendant", Ancestor: "ancestor",
	DescendantOrSelf: "descendant-or-self", AncestorOrSelf: "ancestor-or-self",
	Following: "following", Preceding: "preceding",
	FollowingSibling: "following-sibling", PrecedingSibling: "preceding-sibling",
	AttributeAxis: "attribute", NamespaceAxis: "namespace",
	IDAxis: "id",
}

// String returns the XPath name of the axis.
func (a Axis) String() string {
	if s, ok := axisNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Axis(%d)", uint8(a))
}

// ByName resolves an axis name as written in a query. The id pseudo-axis
// is not nameable in XPath syntax and is not resolved here.
func ByName(name string) (Axis, bool) {
	for a, s := range axisNames {
		if a != IDAxis && s == name {
			return a, true
		}
	}
	return 0, false
}

// Inverse returns the natural inverse of the axis (Lemma 10.1):
// self⁻¹ = self, child⁻¹ = parent, descendant⁻¹ = ancestor, and so on.
func (a Axis) Inverse() Axis {
	switch a {
	case Self:
		return Self
	case Child:
		return Parent
	case Parent:
		return Child
	case Descendant:
		return Ancestor
	case Ancestor:
		return Descendant
	case DescendantOrSelf:
		return AncestorOrSelf
	case AncestorOrSelf:
		return DescendantOrSelf
	case Following:
		return Preceding
	case Preceding:
		return Following
	case FollowingSibling:
		return PrecedingSibling
	case PrecedingSibling:
		return FollowingSibling
	case AttributeAxis, NamespaceAxis:
		// The inverse of attribute/namespace is "parent restricted to
		// elements"; Parent is the correct navigational inverse here
		// because attribute and namespace nodes only ever appear as
		// abstract children of elements.
		return Parent
	case IDAxis:
		panic("axes: IDAxis inverse is not an axis; use EvalIDInverse")
	default:
		panic("axes: unknown axis")
	}
}

// IsReverse reports whether <doc,χ is reverse document order for this
// axis (Section 4): true for parent, ancestor, ancestor-or-self,
// preceding and preceding-sibling.
func (a Axis) IsReverse() bool {
	switch a {
	case Parent, Ancestor, AncestorOrSelf, Preceding, PrecedingSibling:
		return true
	default:
		return false
	}
}

// PrincipalType returns the principal node type of the axis (Section 4):
// attribute for the attribute axis, namespace for the namespace axis,
// and element for every other axis.
func (a Axis) PrincipalType() xmltree.NodeType {
	switch a {
	case AttributeAxis:
		return xmltree.Attribute
	case NamespaceAxis:
		return xmltree.Namespace
	default:
		return xmltree.Element
	}
}
