// Package conformance cross-checks every evaluation engine against the
// naive reference implementation of the W3C semantics: identical queries
// over identical documents must produce identical values. The paper's
// correctness theorems (6.2, 7.4, 9.2) assert exactly these agreements.
package conformance

import (
	"testing"

	"repro/internal/bottomup"
	"repro/internal/datapool"
	"repro/internal/mincontext"
	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/topdown"
	"repro/internal/wadler"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// engine is the common evaluation interface.
type engine interface {
	Evaluate(e xpath.Expr, c semantics.Context) (semantics.Value, error)
}

// engines returns all general-purpose engines for a document, keyed by
// name. The naive engine is the reference.
func engines(d *xmltree.Document) map[string]engine {
	dp, _ := datapool.NewEvaluator(d)
	return map[string]engine{
		"naive":         naive.New(d),
		"datapool":      dp,
		"bottomup":      bottomup.New(d),
		"bottomup-pair": bottomup.NewPair(d),
		"topdown":       topdown.New(d),
		"mincontext":    mincontext.New(d),
		"optmincontext": wadler.New(d),
	}
}

// docs are the test documents: the paper's figures plus structural
// variety (depth, text, attributes, ids, mixed types).
var docs = map[string]string{
	"doc4":   `<a><b/><b/><b/><b/></a>`,
	"doc2":   `<a><b/><b/></a>`,
	"docP3":  `<a><b>c</b><b>c</b><b>c</b></a>`,
	"fig8":   `<a id="10"><b id="11"><c id="12">21 22</c><c id="13">23 24</c><d id="14">100</d></b><b id="21"><c id="22">11 12</c><d id="23">13 14</d><d id="24">100</d></b></a>`,
	"deep":   `<b><b><b><b><b/></b></b></b></b>`,
	"mixed":  `<r><x a="1">one<y>two</y></x><x a="2">three</x><z><!--c--><?pi d?>4</z></r>`,
	"idsdoc": `<t id="1"> 3 <t id="2"> 1 </t><t id="3"> 1 2 </t></t>`,
	"wide":   `<r><a>1</a><b>2</b><a>3</a><c>4</c><a>5</a><b>6</b></r>`,
}

// queries is the conformance battery. Every query must be accepted by
// the parser and produce equal values in every engine on every document.
var queries = []string{
	// Paths and axes.
	"/",
	"/child::a",
	"/descendant::b",
	"//b",
	"//*",
	"/descendant-or-self::node()",
	"//b/parent::*",
	"//b/ancestor::*",
	"//*/following-sibling::*",
	"//*/preceding-sibling::*",
	"//*/following::*",
	"//*/preceding::*",
	"//*/ancestor-or-self::*",
	"//text()",
	"//comment()",
	"//processing-instruction()",
	"//node()",
	"//@*",
	"//@a",
	"//x/@a/parent::*",
	"self::node()",
	"..",
	".",
	// Example 6.4.
	"descendant::b/following-sibling::*[position() != last()]",
	// Experiment-style antagonist-axis queries.
	"//a/b/parent::a/b",
	"//a/b/parent::a/b/parent::a/b",
	"//*[parent::a/child::* = 'c']",
	"//a/b[count(parent::a/b) > 1]",
	"count(//b/following::b)",
	"count(//b//b)",
	// Positions.
	"//b[1]",
	"//b[last()]",
	"//b[position() = 2]",
	"//b[position() mod 2 = 1]",
	"//*[position() = last()]",
	"(//b)[2]",
	"(//b)[last()]",
	// Predicates: existence, nesting, boolean ops.
	"//*[child::b]",
	"//*[not(child::*)]",
	"//*[child::a and child::b]",
	"//*[child::a or child::c]",
	"//*[child::*[child::b]]",
	"//b[following-sibling::b[following-sibling::b]]",
	// Values, arithmetic, strings.
	"count(//*)",
	"sum(//a)",
	"count(//*) + count(//@*)",
	"count(//*) * 2 - 1",
	"count(//*) div 2",
	"count(//*) mod 3",
	"-count(//*)",
	"string(//b)",
	"string-length(string(//x))",
	"concat(string(//a), '-', string(//c))",
	"normalize-space(string(/))",
	"boolean(//b)",
	"boolean(//nonexistent)",
	"number('42') + 1",
	"floor(count(//*) div 2)",
	"ceiling(count(//*) div 2)",
	"round(count(//*) div 3)",
	"translate(string(//x), '123', 'abc')",
	"substring(string(/), 2, 3)",
	"starts-with(string(//b), '2')",
	"contains(string(/), '2')",
	// Comparisons with all type pairings.
	"//*[. = '100']",
	"//*[. = 100]",
	"//c = //d",
	"//c != //d",
	"//c < //d",
	"//b = 'c'",
	"2 > 1",
	"'a' = 'a'",
	"true() != false()",
	"//b > 1",
	// id().
	"id('1')",
	"id('10')",
	"id('11 21')",
	"id('12')/parent::*",
	"count(id('2 3'))",
	// Unions.
	"//a | //b",
	"//a | //a",
	"//a[1] | //b[last()]",
	// Name functions.
	"name(//*[last()])",
	"local-name(//*[2])",
	"count(//*[name() = 'b'])",
	// XSLT'98 extension predicates (Section 10.2).
	"//*[first-of-type()]",
	"//*[last-of-type()]",
	"//*[first-of-any()]",
	"//*[last-of-any()]",
	"//b[first-of-type()]/following-sibling::*",
	// Filter expressions with trailing steps.
	"(//b)[1]/parent::*",
	"(//*)[2]/child::*",
	// Deeply mixed: the paper's Example 8.1 and 11.2 shapes.
	"/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]",
	"/child::a/descendant::*[boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)]",
	"/descendant::a[count(descendant::b/child::c) + position() < last()]/child::d",
}

func TestEnginesAgree(t *testing.T) {
	for dname, src := range docs {
		d := xmltree.MustParseString(src)
		es := engines(d)
		ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
		for _, q := range queries {
			e, err := xpath.Parse(q)
			if err != nil {
				t.Fatalf("parse %q: %v", q, err)
			}
			ref, err := es["naive"].Evaluate(e, ctx)
			if err != nil {
				t.Fatalf("doc %s query %q: naive: %v", dname, q, err)
			}
			for name, eng := range es {
				if name == "naive" {
					continue
				}
				got, err := eng.Evaluate(e, ctx)
				if err != nil {
					t.Errorf("doc %s query %q: %s: %v", dname, q, name, err)
					continue
				}
				if !got.Equal(ref) {
					t.Errorf("doc %s query %q: %s = %+v, naive = %+v", dname, q, name, got, ref)
				}
			}
		}
	}
}

// TestExample64 checks the worked Example 6.4: query over DOC(4) from
// context ⟨a,1,1⟩ returns {b2, b3}.
func TestExample64(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/><b/><b/></a>`)
	a := d.DocumentElement()
	kids := d.Children(a)
	e := xpath.MustParse("descendant::b/following-sibling::*[position() != last()]")
	want := xmltree.NewNodeSet(kids[1], kids[2])
	for name, eng := range engines(d) {
		v, err := eng.Evaluate(e, semantics.Context{Node: a, Pos: 1, Size: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.Set.Equal(want) {
			t.Errorf("%s = %v, want %v", name, v.Set, want)
		}
	}
}

// TestExample81 checks the running example of Section 8: the query over
// the Figure 8 document selects {x13, x14, x21, x22, x23, x24}.
func TestExample81(t *testing.T) {
	d := xmltree.MustParseString(docs["fig8"])
	x10 := d.IDOf("10")
	e := xpath.MustParse("/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]")
	want := xmltree.NewNodeSet(d.IDOf("13"), d.IDOf("14"), d.IDOf("21"),
		d.IDOf("22"), d.IDOf("23"), d.IDOf("24"))
	for name, eng := range engines(d) {
		v, err := eng.Evaluate(e, semantics.Context{Node: x10, Pos: 1, Size: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.Set.Equal(want) {
			t.Errorf("%s = %v, want %v", name, v.Set, want)
		}
	}
}

// TestExample112 checks the worked Example 11.2: the query over Figure 8
// selects {x11, x12, x13, x14, x22}.
func TestExample112(t *testing.T) {
	d := xmltree.MustParseString(docs["fig8"])
	e := xpath.MustParse("/child::a/descendant::*[boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)]")
	want := xmltree.NewNodeSet(d.IDOf("11"), d.IDOf("12"), d.IDOf("13"),
		d.IDOf("14"), d.IDOf("22"))
	for name, eng := range engines(d) {
		v, err := eng.Evaluate(e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.Set.Equal(want) {
			t.Errorf("%s = %v, want %v", name, v.Set, want)
		}
	}
}

// TestDataPoolSharing verifies the pool actually shares work: evaluating
// an Experiment-3 style query must hit the pool.
func TestDataPoolSharing(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/><b/><b/><b/><b/><b/><b/><b/><b/></a>`)
	ev, pool := datapool.NewEvaluator(d)
	q := "//a/b[count(parent::a/b[count(parent::a/b) > 1]) > 1]"
	e := xpath.MustParse(q)
	if _, err := ev.Evaluate(e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if pool.Hits == 0 {
		t.Error("data pool recorded no hits on a sharing-heavy query")
	}
	if pool.Size() == 0 {
		t.Error("data pool stored nothing")
	}
}

// TestNaiveBudget verifies the step budget aborts exponential runs.
func TestNaiveBudget(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/></a>`)
	ev := naive.New(d)
	ev.Budget = 1000
	q := "//a/b"
	for i := 0; i < 12; i++ {
		q += "/parent::a/b"
	}
	_, err := ev.Evaluate(xpath.MustParse(q), semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
}

// TestExponentialSharingGap demonstrates the paper's core observation as
// a unit test: on the Experiment-1 query family, naive work grows
// superlinearly with query size while the pooled evaluator's does not.
func TestExponentialSharingGap(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/></a>`)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	build := func(k int) xpath.Expr {
		q := "//a/b"
		for i := 0; i < k; i++ {
			q += "/parent::a/b"
		}
		return xpath.MustParse(q)
	}
	naiveSteps := func(k int) int64 {
		ev := naive.New(d)
		if _, err := ev.Evaluate(build(k), ctx); err != nil {
			t.Fatal(err)
		}
		return ev.Steps()
	}
	pooledSteps := func(k int) int64 {
		ev, _ := datapool.NewEvaluator(d)
		if _, err := ev.Evaluate(build(k), ctx); err != nil {
			t.Fatal(err)
		}
		return ev.Steps()
	}
	// Doubling per appended parent::a/b (Section 2's discussion).
	n8, n10 := naiveSteps(8), naiveSteps(10)
	if n10 < 3*n8 {
		t.Errorf("naive growth too slow to be exponential: steps(8)=%d steps(10)=%d", n8, n10)
	}
	p8, p10 := pooledSteps(8), pooledSteps(10)
	if p10 > 2*p8 {
		t.Errorf("pooled growth not polynomial: steps(8)=%d steps(10)=%d", p8, p10)
	}
}
