package conformance

import (
	"testing"

	"repro/internal/core"
	"repro/internal/semantics"
	"repro/internal/workload"
)

// auctionQueries are XMark-flavoured queries over the auction
// document: joins via id(), aggregation, positional selection, and
// string functions, mirroring the mixes real XPath consumers issue.
var auctionQueries = []string{
	// Q1-style: lookup by id chain.
	"id(//open_auction[1]/bidder/personref)/name",
	// Regional filters.
	"//europe/item[shipping]/name",
	"count(//africa/item) + count(//asia/item)",
	// Existential joins.
	"//open_auction[bidder/personref = 'person1']",
	"//person[emailaddress][creditcard]/name",
	// Aggregates with arithmetic.
	"sum(//current) div count(//open_auction) > 10",
	"count(//item[quantity > 2])",
	// Positions within heterogeneous parents.
	"//open_auction/bidder[last()]/increase",
	"//open_auction[count(bidder) > 2]/@id",
	// Strings.
	"//person[starts-with(emailaddress, 'p1@')]/name",
	"count(//item[payment = 'cash'])",
	// Deep structural conditions.
	"//open_auction[bidder[position() = 1]/increase < current]",
}

// TestAuctionIntegration cross-checks all engines over the realistic
// document and pins a few invariants of the generator.
func TestAuctionIntegration(t *testing.T) {
	d := workload.Auction(42, 24)
	es := engines(d)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	for _, src := range auctionQueries {
		q := core.MustCompile(src)
		ref, err := es["naive"].Evaluate(q.Expr(), ctx)
		if err != nil {
			t.Fatalf("naive(%q): %v", src, err)
		}
		for name, eng := range es {
			if name == "naive" {
				continue
			}
			got, err := eng.Evaluate(q.Expr(), ctx)
			if err != nil {
				t.Errorf("%s(%q): %v", name, src, err)
				continue
			}
			if !got.Equal(ref) {
				t.Errorf("%s(%q) = %+v, naive = %+v", name, src, got, ref)
			}
		}
	}
}

// TestAuctionReferentialIntegrity checks every personref resolves — a
// pure id() workout.
func TestAuctionReferentialIntegrity(t *testing.T) {
	d := workload.Auction(7, 30)
	en := core.NewEngine(d, core.Auto)
	refs, err := en.Select(core.MustCompile("//personref"))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("no personref elements generated")
	}
	resolved, err := en.Select(core.MustCompile("id(//personref)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) == 0 {
		t.Fatal("id(//personref) resolved nothing")
	}
	for _, n := range resolved {
		if d.Name(n) != "person" {
			t.Errorf("personref resolved to <%s>", d.Name(n))
		}
	}
}

// TestAuctionFragmentMix confirms the realistic query mix spans the
// whole Figure 1 lattice.
func TestAuctionFragmentMix(t *testing.T) {
	seen := map[core.Fragment]bool{}
	for _, src := range auctionQueries {
		seen[core.MustCompile(src).Fragment()] = true
	}
	for _, f := range []core.Fragment{core.FragmentCoreXPath,
		core.FragmentXPatterns, core.FragmentFullXPath} {
		if !seen[f] {
			t.Errorf("query mix exercises no %v query", f)
		}
	}
}
