package conformance

import (
	"testing"

	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// edgeDoc exercises attribute contexts, mixed content and duplicate
// values.
const edgeDoc = `<r a="5" b="x"><p i="1">5</p><p i="2">x<q/>y</p><p>5</p><empty/></r>`

// edgeQueries are semantic corner cases each engine must agree on.
var edgeQueries = []string{
	// Reverse-axis positions (proximity order).
	"//q/ancestor::*[1]",
	"//q/ancestor::*[2]",
	"//empty/preceding-sibling::*[1]",
	"//empty/preceding-sibling::*[position() = 1]",
	"//p[last()]/preceding::*[last()]",
	// Predicates over attributes.
	"//p[@i]",
	"//p[@i = '2']",
	"//p[not(@i)]",
	"//@i[. = '1']",
	"//@i/..",
	// Attribute node contexts flowing through further steps.
	"//@a/parent::r",
	"//@*[. = 'x']",
	// Multiple predicates apply left to right over shrinking sets.
	"//p[@i][2]",
	"//p[2][@i]",
	"//p[position() > 1][1]",
	// Equality over node sets with duplicates in value space.
	"//p = //@a",
	"//p[. = //@a]",
	"//p = //p",
	// Empty-set comparisons.
	"//nothing = //p",
	"//nothing = ''",
	"not(//nothing = '')",
	"boolean(//nothing | //p)",
	// Mixed content string values.
	"string(//p[2])",
	"string-length(//p[2])",
	"normalize-space(' a  b ')",
	// Arithmetic edge cases.
	"1 div 0 > 1000000",
	"-1 div 0 < -1000000",
	"string(0 div 0)",
	"string(-0)",
	"5 mod 2",
	"5.5 mod 2",
	"number('  12  ') = 12",
	"number('x') != number('x')", // NaN != NaN
	// Union keeps document order and dedups.
	"count(//p | //p)",
	"count(//p | //@i)",
	"(//p | //q)[1]",
	// Filter expressions with trailing paths.
	"(//p)[2]/child::q",
	"(//p[@i])[last()]/@i",
	// Nested functions.
	"concat(string(count(//p)), '-', string(count(//@i)))",
	"substring(string(//p[2]), string-length(string(//p[2])))",
	// position() inside nested predicate refers to inner context.
	"//p[child::node()[position() = 2]]",
	// self axis with node tests.
	"//p/self::p",
	"//p/self::q",
	"//@a/self::node()",
	// lang() with no xml:lang returns false everywhere.
	"count(//*[lang('en')])",
}

func TestEdgeCasesAgree(t *testing.T) {
	d := xmltree.MustParseString(edgeDoc)
	es := engines(d)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	for _, q := range edgeQueries {
		e, err := xpath.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		ref, err := es["naive"].Evaluate(e, ctx)
		if err != nil {
			t.Fatalf("naive(%q): %v", q, err)
		}
		for name, eng := range es {
			if name == "naive" {
				continue
			}
			got, err := eng.Evaluate(e, ctx)
			if err != nil {
				t.Errorf("%s(%q): %v", name, q, err)
				continue
			}
			if !got.Equal(ref) {
				t.Errorf("%s(%q) = %+v, naive = %+v", name, q, got, ref)
			}
		}
	}
}

// TestW3CSemanticsPinned pins down specific W3C-mandated answers
// (rather than mere engine agreement).
func TestW3CSemanticsPinned(t *testing.T) {
	d := xmltree.MustParseString(edgeDoc)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	eng := engines(d)["topdown"]
	expectNum := func(q string, want float64) {
		t.Helper()
		v, err := eng.Evaluate(xpath.MustParse(q), ctx)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if v.Num != want {
			t.Errorf("%s = %v, want %v", q, v.Num, want)
		}
	}
	expectBool := func(q string, want bool) {
		t.Helper()
		v, err := eng.Evaluate(xpath.MustParse(q), ctx)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if v.Bool != want {
			t.Errorf("%s = %v, want %v", q, v.Bool, want)
		}
	}
	expectNum("count(//p)", 3)
	expectNum("count(//@*)", 4)
	expectNum("count(//p | //p)", 3) // union dedups
	expectNum("5.5 mod 2", 1.5)
	expectBool("//p = //@a", true) // both contain value "5"
	expectBool("//p != //p", true) // existential inequality
	expectBool("//nothing = //nothing", false)
	expectBool("//nothing = ''", false)
	expectBool("not(//nothing = '')", true)
	expectBool("number('x') = number('x')", false) // NaN
	// Reverse-axis proximity: ancestor::*[1] of q is its parent p.
	v, err := eng.Evaluate(xpath.MustParse("//q/ancestor::*[1]"), ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 1 || d.Name(v.Set[0]) != "p" {
		t.Errorf("ancestor::*[1] = %v, want the parent p", v.Set)
	}
}

// TestContextPositionVariants evaluates from non-root contexts with
// explicit positions, which exercise position()/last() at the top
// level.
func TestContextPositionVariants(t *testing.T) {
	d := xmltree.MustParseString(edgeDoc)
	es := engines(d)
	ps := d.Children(d.DocumentElement())
	for _, q := range []string{"position()", "last()", "position() = last()",
		"self::*[position() = 1]"} {
		e := xpath.MustParse(q)
		for i, p := range ps {
			ctx := semantics.Context{Node: p, Pos: i + 1, Size: len(ps)}
			ref, err := es["naive"].Evaluate(e, ctx)
			if err != nil {
				t.Fatalf("naive(%q): %v", q, err)
			}
			for name, eng := range es {
				if name == "bottomup" && ctx.Pos > ctx.Size {
					continue
				}
				got, err := eng.Evaluate(e, ctx)
				if err != nil {
					t.Errorf("%s(%q) at pos %d: %v", name, q, i+1, err)
					continue
				}
				if !got.Equal(ref) {
					t.Errorf("%s(%q) at pos %d = %+v, want %+v", name, q, i+1, got, ref)
				}
			}
		}
	}
}
