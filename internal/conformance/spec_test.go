package conformance

import (
	"testing"

	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// specDoc is a fixed document for golden-answer tests. Node names are
// chosen so expected node sets can be written as name lists.
const specDoc = `<doc lang="en">
<chapter id="c1"><title>One</title><p>first</p><p>second</p></chapter>
<chapter id="c2"><title>Two</title><p>third</p><section><p>fourth</p></section></chapter>
<appendix id="a1"><title>App</title><p>fifth</p></appendix>
</doc>`

// specCase pins the exact expected answer of one query.
type specCase struct {
	query string
	// Exactly one of the following is used.
	nodeStrings []string // string values of expected node set, in doc order
	num         *float64
	str         *string
	boolean     *bool
}

func num(v float64) *float64 { return &v }
func str(s string) *string   { return &s }
func bl(b bool) *bool        { return &b }

var specCases = []specCase{
	// Basic paths.
	{query: "/doc/chapter/title", nodeStrings: []string{"One", "Two"}},
	{query: "//p", nodeStrings: []string{"first", "second", "third", "fourth", "fifth"}},
	{query: "/doc/*/p", nodeStrings: []string{"first", "second", "third", "fifth"}},
	{query: "//section/p", nodeStrings: []string{"fourth"}},
	{query: "//chapter//p", nodeStrings: []string{"first", "second", "third", "fourth"}},
	// Axes.
	{query: "//section/ancestor::chapter/title", nodeStrings: []string{"Two"}},
	{query: "//appendix/preceding-sibling::chapter/title", nodeStrings: []string{"One", "Two"}},
	{query: "//chapter[1]/following-sibling::*/title", nodeStrings: []string{"Two", "App"}},
	{query: "//p[. = 'fourth']/ancestor::*[last()]/@lang", nodeStrings: []string{"en"}},
	{query: "//p[. = 'third']/following::p", nodeStrings: []string{"fourth", "fifth"}},
	{query: "//p[. = 'fourth']/preceding::p", nodeStrings: []string{"first", "second", "third"}},
	// Positions.
	{query: "//p[1]", nodeStrings: []string{"first", "third", "fourth", "fifth"}},
	{query: "(//p)[1]", nodeStrings: []string{"first"}},
	{query: "//p[last()]", nodeStrings: []string{"second", "third", "fourth", "fifth"}},
	{query: "(//p)[last()]", nodeStrings: []string{"fifth"}},
	{query: "//chapter[2]/p[1]", nodeStrings: []string{"third"}},
	{query: "//p[position() = 2]", nodeStrings: []string{"second"}},
	// Predicates.
	{query: "//chapter[section]/title", nodeStrings: []string{"Two"}},
	{query: "//*[title and p][not(section)]/@id", nodeStrings: []string{"c1", "a1"}},
	{query: "//chapter[title = 'One']/p", nodeStrings: []string{"first", "second"}},
	{query: "//*[@id = 'c2']/title", nodeStrings: []string{"Two"}},
	// id().
	{query: "id('c1')/title", nodeStrings: []string{"One"}},
	{query: "id('c1 a1')/title", nodeStrings: []string{"One", "App"}},
	{query: "id('zzz')", nodeStrings: []string{}},
	// Unions.
	{query: "//chapter/title | //appendix/title", nodeStrings: []string{"One", "Two", "App"}},
	{query: "//title | //title", nodeStrings: []string{"One", "Two", "App"}},
	// Numbers.
	{query: "count(//p)", num: num(5)},
	{query: "count(//chapter) * 10 + count(//appendix)", num: num(21)},
	{query: "count(//p[string-length(.) = 5])", num: num(3)}, // first third fifth
	{query: "string-length(string(//title))", num: num(3)},
	{query: "floor(7 div 2)", num: num(3)},
	{query: "ceiling(7 div 2)", num: num(4)},
	{query: "round(2.5)", num: num(3)},
	{query: "round(-2.5)", num: num(-2)},
	{query: "7 mod 3", num: num(1)},
	// Strings.
	{query: "string(//title)", str: str("One")},
	{query: "concat(//title, '-', //appendix/title)", str: str("One-App")},
	{query: "substring-before('1999/04/01', '/')", str: str("1999")},
	{query: "substring-after('1999/04/01', '/')", str: str("04/01")},
	{query: "substring('12345', 2, 3)", str: str("234")},
	{query: "normalize-space('  a   b  ')", str: str("a b")},
	{query: "translate('bar', 'abc', 'ABC')", str: str("BAr")},
	{query: "string(1 = 1)", str: str("true")},
	{query: "string(count(//p) > 100)", str: str("false")},
	{query: "name(//*[@id = 'a1'])", str: str("appendix")},
	{query: "local-name((//@id)[1])", str: str("id")},
	// Booleans.
	{query: "boolean(//section)", boolean: bl(true)},
	{query: "boolean(//nosuch)", boolean: bl(false)},
	{query: "not(//nosuch)", boolean: bl(true)},
	{query: "contains(string(//p[2]), 'eco')", boolean: bl(true)},
	{query: "starts-with('abc', 'ab')", boolean: bl(true)},
	{query: "lang('en')", boolean: bl(false)}, // context is the root, outside doc's lang scope? root inherits nothing
	{query: "//p = 'third'", boolean: bl(true)},
	{query: "//p != //title", boolean: bl(true)},
	{query: "count(//p) > count(//title)", boolean: bl(true)},
	{query: "2 = '2'", boolean: bl(true)},
	{query: "true() > false()", boolean: bl(true)},
}

func TestSpecGoldenAnswers(t *testing.T) {
	d := xmltree.MustParseString(specDoc)
	es := engines(d)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	for _, tc := range specCases {
		e, err := xpath.Parse(tc.query)
		if err != nil {
			t.Errorf("parse %q: %v", tc.query, err)
			continue
		}
		for name, eng := range es {
			v, err := eng.Evaluate(e, ctx)
			if err != nil {
				t.Errorf("%s(%q): %v", name, tc.query, err)
				continue
			}
			switch {
			case tc.nodeStrings != nil:
				if v.Kind != xpath.TypeNodeSet {
					t.Errorf("%s(%q): kind %v, want nset", name, tc.query, v.Kind)
					continue
				}
				if len(v.Set) != len(tc.nodeStrings) {
					t.Errorf("%s(%q) = %d nodes, want %d", name, tc.query, len(v.Set), len(tc.nodeStrings))
					continue
				}
				for i, n := range v.Set {
					if got := d.StringValue(n); got != tc.nodeStrings[i] {
						t.Errorf("%s(%q)[%d] = %q, want %q", name, tc.query, i, got, tc.nodeStrings[i])
					}
				}
			case tc.num != nil:
				if v.Kind != xpath.TypeNumber || v.Num != *tc.num {
					t.Errorf("%s(%q) = %+v, want num %v", name, tc.query, v, *tc.num)
				}
			case tc.str != nil:
				if v.Kind != xpath.TypeString || v.Str != *tc.str {
					t.Errorf("%s(%q) = %+v, want str %q", name, tc.query, v, *tc.str)
				}
			case tc.boolean != nil:
				if v.Kind != xpath.TypeBoolean || v.Bool != *tc.boolean {
					t.Errorf("%s(%q) = %+v, want bool %v", name, tc.query, v, *tc.boolean)
				}
			}
		}
	}
}
