package conformance

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/semantics"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// queryGen generates random XPath queries whose cost stays tractable
// for the naive reference engine (bounded depth and step count).
type queryGen struct {
	r *rand.Rand
}

var genAxes = []string{
	"child", "descendant", "parent", "ancestor", "self",
	"descendant-or-self", "ancestor-or-self", "following",
	"preceding", "following-sibling", "preceding-sibling",
}

var genTags = []string{"a", "b", "c", "*"}

func (g *queryGen) step(depth int) string {
	axis := genAxes[g.r.Intn(len(genAxes))]
	tag := genTags[g.r.Intn(len(genTags))]
	s := axis + "::" + tag
	if depth > 0 && g.r.Intn(3) == 0 {
		s += "[" + g.pred(depth-1) + "]"
	}
	return s
}

func (g *queryGen) path(depth int) string {
	n := 1 + g.r.Intn(3)
	s := ""
	if g.r.Intn(2) == 0 {
		s = "/"
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			s += "/"
		}
		s += g.step(depth)
	}
	return s
}

func (g *queryGen) pred(depth int) string {
	switch g.r.Intn(6) {
	case 0:
		return g.path(depth)
	case 1:
		return fmt.Sprintf("position() %s %d", []string{"=", "!=", "<", ">"}[g.r.Intn(4)], 1+g.r.Intn(3))
	case 2:
		return "position() != last()"
	case 3:
		return fmt.Sprintf("%s = '%d'", g.path(depth), g.r.Intn(5))
	case 4:
		if depth > 0 {
			return "not(" + g.pred(depth-1) + ")"
		}
		return "true()"
	default:
		if depth > 0 {
			op := []string{"and", "or"}[g.r.Intn(2)]
			return g.pred(depth-1) + " " + op + " " + g.pred(depth-1)
		}
		return g.path(depth)
	}
}

func (g *queryGen) query() string {
	switch g.r.Intn(5) {
	case 0:
		return "count(" + g.path(1) + ")"
	case 1:
		return "boolean(" + g.path(1) + ")"
	case 2:
		return g.path(1) + " | " + g.path(1)
	default:
		return g.path(2)
	}
}

// randomTextDoc builds a small random document with text values that
// the generated comparisons can hit.
func randomTextDoc(r *rand.Rand) *xmltree.Document {
	b := xmltree.NewBuilder()
	var build func(depth int)
	build = func(depth int) {
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			b.StartElement(genTags[r.Intn(3)]) // a, b, or c
			if r.Intn(3) == 0 {
				b.Text(fmt.Sprintf("%d", r.Intn(5)))
			}
			if depth < 3 {
				build(depth + 1)
			}
			b.EndElement()
		}
	}
	b.StartElement("r")
	build(0)
	b.EndElement()
	return b.MustDone()
}

// TestDifferentialRandomQueries cross-checks all engines on randomly
// generated queries over randomly generated documents. Failures print
// a standalone reproduction.
func TestDifferentialRandomQueries(t *testing.T) {
	const rounds = 400
	r := rand.New(rand.NewSource(20020811)) // VLDB 2002 conference date
	g := &queryGen{r: r}
	for i := 0; i < rounds; i++ {
		d := randomTextDoc(r)
		if d.Len() < 2 {
			continue
		}
		src := g.query()
		e, err := xpath.Parse(src)
		if err != nil {
			t.Fatalf("generated query %q does not parse: %v", src, err)
		}
		es := engines(d)
		// Evaluate from a random context node, not just the root.
		node := xmltree.NodeID(r.Intn(d.Len()))
		if d.Node(node).IsAttrOrNS() {
			node = d.RootID()
		}
		ctx := semantics.Context{Node: node, Pos: 1, Size: 1}
		ref, err := es["naive"].Evaluate(e, ctx)
		if err != nil {
			t.Fatalf("round %d: naive(%q): %v", i, src, err)
		}
		for name, eng := range es {
			if name == "naive" {
				continue
			}
			got, err := eng.Evaluate(e, ctx)
			if err != nil {
				t.Errorf("round %d: %s(%q) over doc %q (ctx %d): %v",
					i, name, src, d.XMLString(), node, err)
				continue
			}
			if !got.Equal(ref) {
				t.Errorf("round %d: %s(%q) = %+v, naive = %+v\ndoc: %s\nctx node: %d",
					i, name, src, got, ref, d.XMLString(), node)
			}
		}
		if t.Failed() && i > 10 {
			t.Fatal("stopping after failures")
		}
	}
}

// TestDifferentialCatalog runs the same differential check over the
// realistic catalog workload with handcrafted query templates that
// exercise ids and values.
func TestDifferentialCatalog(t *testing.T) {
	d := workload.Catalog(25)
	es := engines(d)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	queries := []string{
		"//product[@category = 'audio']",
		"//product[price > 40 and price < 80]",
		"//product[accessory]/name",
		"id(//accessory)",
		"id(//accessory)/price",
		"//product[not(discontinued)][position() < 3]",
		"count(//product[price = 10])",
		"sum(//price) > 100",
		"//product[starts-with(name, 'Product 1')]",
		"//name[contains(., '7')]",
		"//product[substring(name, 9) = '3']",
	}
	for _, src := range queries {
		e := xpath.MustParse(src)
		ref, err := es["naive"].Evaluate(e, ctx)
		if err != nil {
			t.Fatalf("naive(%q): %v", src, err)
		}
		for name, eng := range es {
			got, err := eng.Evaluate(e, ctx)
			if err != nil {
				t.Errorf("%s(%q): %v", name, src, err)
				continue
			}
			if !got.Equal(ref) {
				t.Errorf("%s(%q) = %+v, naive = %+v", name, src, got, ref)
			}
		}
	}
}
