package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bottomup"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestCompileCaches(t *testing.T) {
	e := New(Options{})
	q1, err := e.Compile("//product/name")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.Compile("//product/name")
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("second Compile did not return the cached query")
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, size 1", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestCompileErrorNotCached(t *testing.T) {
	e := New(Options{})
	for i := 0; i < 2; i++ {
		if _, err := e.Compile("//["); err == nil {
			t.Fatal("want compile error")
		}
	}
	if st := e.Stats(); st.Size != 0 {
		t.Fatalf("error was cached: %+v", st)
	}
}

func TestSessionQuery(t *testing.T) {
	e := New(Options{})
	s := e.NewSession(workload.Catalog(10))
	v, err := s.Query("count(//product)")
	if err != nil {
		t.Fatal(err)
	}
	if v.Num != 10 {
		t.Fatalf("count(//product) = %v, want 10", v.Num)
	}
}

func TestBatchOrderAndErrors(t *testing.T) {
	e := New(Options{Workers: 4})
	s := e.NewSession(workload.Catalog(25))
	queries := []string{
		"count(//product)",
		"//[",            // compile error
		"$undefined + 1", // unbound variable
		"count(//product[child::discontinued])",
		"count(//no-such-tag)",
	}
	results := s.Batch(queries)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, res := range results {
		if res.Query != queries[i] {
			t.Fatalf("result %d is for %q, want %q (order not preserved)", i, res.Query, queries[i])
		}
	}
	if results[0].Err != nil || results[0].Value.Num != 25 {
		t.Fatalf("result 0 = %+v, want 25", results[0])
	}
	if results[1].Err == nil || results[2].Err == nil {
		t.Fatal("invalid queries did not report errors")
	}
	if results[4].Err != nil || results[4].Value.Num != 0 {
		t.Fatalf("result 4 = %+v, want 0", results[4])
	}
}

// TestBatchLargeConcurrent pushes a batch much larger than the pool
// through every worker count under -race and checks every slot.
func TestBatchLargeConcurrent(t *testing.T) {
	d := workload.Catalog(40)
	for _, workers := range []int{1, 2, 8} {
		e := New(Options{Workers: workers, CacheSize: 16})
		s := e.NewSession(d)
		const n = 200
		queries := make([]string, n)
		for i := range queries {
			// 8 distinct query strings so the cache serves most of the
			// batch while every result stays predictable.
			queries[i] = fmt.Sprintf("count(//product) + %d", i%8)
		}
		results := s.Batch(queries)
		for i, res := range results {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if want := float64(40 + i%8); res.Value.Num != want {
				t.Fatalf("workers=%d result %d = %v, want %v", workers, i, res.Value.Num, want)
			}
		}
		if st := e.Stats(); st.Hits == 0 || st.InFlight != 0 {
			t.Fatalf("workers=%d stats = %+v, want hits > 0 and no in-flight left", workers, st)
		}
	}
}

// TestSharedQueryAcrossDocuments is the regression test for compiled-
// query reuse: two goroutines evaluate the *same* compiled query
// (shared via the cache) over two different documents concurrently and
// must not interfere — compiled queries hold no evaluation state.
func TestSharedQueryAcrossDocuments(t *testing.T) {
	e := New(Options{})
	small := e.NewSession(workload.Catalog(15))
	large := e.NewSession(workload.Catalog(60))
	const src = "count(//product[child::price])"
	// Establish per-document expectations once, sequentially.
	wantSmall, err := small.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	wantLarge, err := large.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if wantSmall.Num == wantLarge.Num {
		t.Fatalf("test documents are indistinguishable (both %v)", wantSmall.Num)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	run := func(s *Session, want core.Value) {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			v, err := s.Query(src)
			if err != nil {
				errs <- err
				return
			}
			if !v.Equal(want) {
				errs <- fmt.Errorf("document %d nodes: got %v, want %v",
					s.Document().Len(), v.Num, want.Num)
				return
			}
		}
	}
	wg.Add(2)
	go run(small, wantSmall)
	go run(large, wantLarge)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly one compile for one distinct query", st)
	}
}

// TestConcurrentMixedTraffic drives many goroutines, documents and
// query strings through one engine under -race: the serving scenario.
func TestConcurrentMixedTraffic(t *testing.T) {
	e := New(Options{CacheSize: 4, Workers: 2})
	sessions := []*Session{
		e.NewSession(workload.Catalog(10)),
		e.NewSession(workload.Catalog(20)),
		e.NewSession(workload.Auction(1, 30)),
	}
	queries := []string{
		"count(//product)",
		"//product[child::discontinued]/child::name",
		"count(descendant::*)",
		"sum(//price)",
		"count(//item)",
		"//person/child::name",
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := sessions[(g+i)%len(sessions)]
				if (g+i)%2 == 0 {
					if _, err := s.Query(queries[i%len(queries)]); err != nil {
						t.Error(err)
						return
					}
				} else {
					for _, res := range s.Batch(queries[:3]) {
						if res.Err != nil {
							t.Error(res.Err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := e.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight count leaked: %+v", st)
	}
	if st.Size > 4 {
		t.Fatalf("cache overflowed its capacity: %+v", st)
	}
}

// TestSessionMaxTableRows checks that the engine's MaxTableRows option
// reaches the bottom-up evaluator as a detectable typed error.
func TestSessionMaxTableRows(t *testing.T) {
	e := New(Options{Strategy: core.BottomUp, MaxTableRows: 8})
	s := e.NewSession(workload.Catalog(30))
	_, err := s.Query("//product[position() = last()]")
	if !errors.Is(err, bottomup.ErrTableLimit) {
		t.Fatalf("err = %v, want bottomup.ErrTableLimit", err)
	}
}
