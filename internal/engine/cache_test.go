package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestCacheHitMissEviction(t *testing.T) {
	c := newQueryCache(2)
	k := func(i int) cacheKey { return cacheKey{src: fmt.Sprintf("/q%d", i), strategy: core.Auto} }
	q := func(i int) *core.Query { return core.MustCompile(fmt.Sprintf("/q%d", i)) }

	if _, ok := c.get(k(0)); ok {
		t.Fatal("hit on empty cache")
	}
	c.add(k(0), q(0), 10)
	c.add(k(1), q(1), 10)
	if _, ok := c.get(k(0)); !ok {
		t.Fatal("miss after add")
	}
	// 0 is now most recent; adding 2 must evict 1.
	c.add(k(2), q(2), 10)
	if _, ok := c.get(k(1)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.get(k(0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	hits, misses, evictions, saved, size, capacity := c.snapshot()
	if hits != 2 || misses != 2 || evictions != 1 || size != 2 || capacity != 2 {
		t.Fatalf("snapshot = hits %d misses %d evictions %d size %d cap %d, want 2 2 1 2 2",
			hits, misses, evictions, size, capacity)
	}
	if saved != 2*10 {
		t.Fatalf("savedNanos = %d, want 20 (two hits at 10ns recorded compile cost)", saved)
	}
}

func TestCacheKeyIncludesStrategy(t *testing.T) {
	c := newQueryCache(8)
	q := core.MustCompile("//a")
	c.add(cacheKey{src: "//a", strategy: core.Auto}, q, 10)
	if _, ok := c.get(cacheKey{src: "//a", strategy: core.Naive}); ok {
		t.Fatal("strategy is not part of the cache key")
	}
}

// TestCacheConcurrent hammers a small cache from many goroutines with a
// key space larger than the capacity, so gets, adds and evictions race
// under -race. Invariants: a get after a miss+add returns an equivalent
// compiled query, and the size never exceeds capacity.
func TestCacheConcurrent(t *testing.T) {
	const capacity, keys, goroutines, reps = 8, 32, 8, 200
	c := newQueryCache(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				n := (g*reps + i) % keys
				src := fmt.Sprintf("/child::tag%d", n)
				k := cacheKey{src: src, strategy: core.Auto}
				q, ok := c.get(k)
				if !ok {
					compiled, err := core.Compile(src)
					if err != nil {
						t.Error(err)
						return
					}
					q = c.add(k, compiled, 10)
				}
				if q.String() != src {
					t.Errorf("cache returned query %q for key %q", q.String(), src)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, evictions, _, size, _ := c.snapshot()
	if size > capacity {
		t.Fatalf("cache size %d exceeds capacity %d", size, capacity)
	}
	if hits+misses != goroutines*reps {
		t.Fatalf("hits %d + misses %d != %d lookups", hits, misses, goroutines*reps)
	}
	if evictions == 0 {
		t.Fatal("expected evictions with key space > capacity")
	}
}

// TestCacheConcurrentAddSameKey checks the first-add-wins contract:
// when several goroutines compile the same query concurrently, add
// returns one canonical *core.Query for all of them.
func TestCacheConcurrentAddSameKey(t *testing.T) {
	c := newQueryCache(4)
	k := cacheKey{src: "//a/b", strategy: core.Auto}
	const goroutines = 16
	got := make([]*core.Query, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = c.add(k, core.MustCompile("//a/b"), 10)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatal("concurrent adds of one key returned different queries")
		}
	}
}
