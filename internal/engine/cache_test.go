package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestCacheHitMissEviction(t *testing.T) {
	c := newQueryCache(2)
	k := func(i int) string { return fmt.Sprintf("/q%d", i) }
	q := func(i int) *core.Query { return core.MustCompile(fmt.Sprintf("/q%d", i)) }

	if _, ok := c.get(k(0)); ok {
		t.Fatal("hit on empty cache")
	}
	c.add(k(0), q(0), 10)
	c.add(k(1), q(1), 10)
	if _, ok := c.get(k(0)); !ok {
		t.Fatal("miss after add")
	}
	// 0 is now most recent; adding 2 (same compile cost, so admission
	// admits it) must evict 1.
	c.add(k(2), q(2), 10)
	if _, ok := c.get(k(1)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.get(k(0)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	hits, misses, evictions, rejects, saved, size, capacity := c.snapshot()
	if hits != 2 || misses != 2 || evictions != 1 || rejects != 0 || size != 2 || capacity != 2 {
		t.Fatalf("snapshot = hits %d misses %d evictions %d rejects %d size %d cap %d, want 2 2 1 0 2 2",
			hits, misses, evictions, rejects, size, capacity)
	}
	if saved != 2*10 {
		t.Fatalf("savedNanos = %d, want 20 (two hits at 10ns recorded compile cost)", saved)
	}
}

// TestCacheSharedAcrossStrategies pins the shared-compilation
// contract: the cache is keyed on query source alone, so one entry —
// one parse/normalize — serves every strategy the planner might route
// the query to.
func TestCacheSharedAcrossStrategies(t *testing.T) {
	c := newQueryCache(8)
	q := core.MustCompile("//a")
	added := c.add("//a", q, 10)
	got, ok := c.get("//a")
	if !ok || got != added {
		t.Fatal("source-keyed lookup missed the shared entry")
	}
	// Per-strategy state hangs off the one shared entry.
	added.observeStrategy(core.TopDown, 0.010)
	added.observeStrategy(core.MinContext, 0.002)
	if v, ok := got.StrategySeconds(core.TopDown); !ok || v != 0.010 {
		t.Fatalf("TopDown EWMA = %v, %v; want 0.010, true", v, ok)
	}
	if v, ok := got.StrategySeconds(core.MinContext); !ok || v != 0.002 {
		t.Fatalf("MinContext EWMA = %v, %v; want 0.002, true", v, ok)
	}
	if _, ok := got.StrategySeconds(core.BottomUp); ok {
		t.Fatal("unobserved strategy reported an EWMA")
	}
}

// TestCacheCostAwareAdmission checks that a cheap newcomer cannot
// evict an expensive LRU victim, that the rejection is counted, that
// the rejected entry is still returned usable, and that repeated
// contests (strikes) eventually decay the victim's protection.
func TestCacheCostAwareAdmission(t *testing.T) {
	c := newQueryCache(1)
	expensive := c.add("/expensive", core.MustCompile("/expensive"), 1000)
	cheap := c.add("/cheap", core.MustCompile("/cheap"), 10)
	if cheap == nil || cheap.q.String() != "/cheap" {
		t.Fatal("rejected add did not return a usable detached entry")
	}
	if _, ok := c.get("/cheap"); ok {
		t.Fatal("cheap entry was admitted over an expensive victim")
	}
	if got, ok := c.get("/expensive"); !ok || got != expensive {
		t.Fatal("expensive entry should have survived the admission contest")
	}
	_, _, _, rejects, _, _, _ := c.snapshot()
	if rejects != 1 {
		t.Fatalf("rejects = %d, want 1", rejects)
	}
	// A hit reset the strikes above; contest again without intervening
	// hits. Each rejection halves the effective cost: 1000 → 500 →
	// 250 → 125 → 62 → 31 → 15 → 7, so the 8th attempt at cost 10
	// displaces the victim.
	for i := 0; i < 7; i++ {
		c.add("/cheap", core.MustCompile("/cheap"), 10)
		if _, ok := c.get("/cheap"); ok {
			t.Fatalf("cheap entry admitted after only %d contests", i+1)
		}
	}
	c.add("/cheap", core.MustCompile("/cheap"), 10)
	if _, ok := c.get("/cheap"); !ok {
		t.Fatal("strike decay never let fresh traffic displace the dead expensive entry")
	}
	if _, ok := c.get("/expensive"); ok {
		t.Fatal("expensive entry survived past its strike budget")
	}
}

// TestCacheConcurrent hammers a small cache from many goroutines with a
// key space larger than the capacity, so gets, adds and evictions race
// under -race. Invariants: a get after a miss+add returns an equivalent
// compiled query, and the size never exceeds capacity.
func TestCacheConcurrent(t *testing.T) {
	const capacity, keys, goroutines, reps = 8, 32, 8, 200
	c := newQueryCache(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				n := (g*reps + i) % keys
				src := fmt.Sprintf("/child::tag%d", n)
				e, ok := c.get(src)
				if !ok {
					compiled, err := core.Compile(src)
					if err != nil {
						t.Error(err)
						return
					}
					e = c.add(src, compiled, 10)
				}
				if e.q.String() != src {
					t.Errorf("cache returned query %q for key %q", e.q.String(), src)
					return
				}
				// Exercise the lock-free per-strategy EWMAs under race.
				e.observeStrategy(core.TopDown, 0.001)
				e.StrategySeconds(core.TopDown)
			}
		}(g)
	}
	wg.Wait()
	hits, misses, evictions, _, _, size, _ := c.snapshot()
	if size > capacity {
		t.Fatalf("cache size %d exceeds capacity %d", size, capacity)
	}
	if hits+misses != goroutines*reps {
		t.Fatalf("hits %d + misses %d != %d lookups", hits, misses, goroutines*reps)
	}
	// Equal compile costs admit like pure LRU, so the oversubscribed
	// key space must keep cycling entries.
	if evictions == 0 {
		t.Fatal("expected evictions with key space > capacity")
	}
}

// TestCacheConcurrentAddSameKey checks the first-add-wins contract:
// when several goroutines compile the same query concurrently, add
// returns one canonical entry for all of them.
func TestCacheConcurrentAddSameKey(t *testing.T) {
	c := newQueryCache(4)
	const goroutines = 16
	got := make([]*cacheEntry, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = c.add("//a/b", core.MustCompile("//a/b"), 10)
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatal("concurrent adds of one key returned different entries")
		}
	}
}
