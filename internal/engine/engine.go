// Package engine is the concurrent serving layer on top of
// internal/core: it amortizes query compilation across requests with a
// thread-safe LRU cache of compiled queries, and parallelizes batch
// evaluation over a bounded worker pool.
//
// The layering mirrors the combined processor of the paper's
// introduction — internal/core picks the best algorithm per query — but
// adds what a production deployment needs around it: compile-once
// semantics under sustained traffic (in the spirit of the compiled-
// query reuse of Gottlob/Orsi/Pieris's rewriting systems), bounded
// concurrency, and observable cache/in-flight statistics.
//
// Concurrency model: a Document is immutable after parsing (its lazy
// strval memo is mutex-guarded), a compiled *core.Query is immutable
// after Compile, and core.Engine.Evaluate builds per-call evaluator
// state. One Engine and its Sessions may therefore be shared freely by
// any number of goroutines; internal/core's TestConcurrentEvaluation
// and this package's race tests pin that contract down.
package engine

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/planner"
)

// DefaultCacheSize is the compiled-query cache capacity used when
// Options.CacheSize is zero.
const DefaultCacheSize = 1024

// Options configures an Engine. The zero value is a sensible serving
// default: Auto strategy, DefaultCacheSize cache, GOMAXPROCS workers.
type Options struct {
	// Strategy is the evaluation strategy handed to internal/core for
	// every session (default Auto: the combined processor).
	Strategy core.Strategy

	// CacheSize bounds the compiled-query LRU cache (default
	// DefaultCacheSize).
	CacheSize int

	// Workers bounds the per-batch worker pool (default GOMAXPROCS).
	Workers int

	// Parallelism is the per-query worker budget for the multicore
	// evaluation kernels (default GOMAXPROCS; set -1 to force fully
	// sequential evaluation); see core.Engine.Parallelism.
	Parallelism int

	// NaiveBudget bounds naive/datapool-strategy evaluations
	// (0 = unlimited); see core.Engine.NaiveBudget.
	NaiveBudget int64

	// MaxTableRows bounds bottom-up context-value tables
	// (0 = unlimited); see core.Engine.MaxTableRows.
	MaxTableRows int

	// Planner selects how the Auto strategy is resolved per query:
	// planner.Off (the default) keeps the static fragment switch,
	// planner.Rules routes on structural shape rules, and
	// planner.Adaptive additionally refines the rules online from
	// latency observations. Ignored unless Strategy is Auto. Queries
	// the planner routes to bottomup always fall back to MinContext on
	// a table-limit trip, whether or not Fallback is set — a planning
	// mistake must never surface a resource-limit error the caller's
	// own strategy choice could not have hit.
	Planner planner.Mode

	// Fallback, when set, transparently retries a query whose
	// evaluation tripped bottomup.ErrTableLimit on the MinContext
	// strategy (polynomial space) instead of surfacing the error; each
	// retry is counted in Stats.Fallbacks. Off by default so callers
	// that configured an explicit resource limit still see it fire.
	Fallback bool

	// Metrics is the observability registry the engine records into
	// (nil: the engine creates its own). The serving layer passes the
	// registry on so engine, HTTP and store instruments share one
	// /metrics exposition.
	Metrics *obs.Registry
}

// Engine caches compiled queries and spawns Sessions over documents.
// It is safe for concurrent use.
type Engine struct {
	opts      Options
	cache     *queryCache
	reg       *obs.Registry
	metrics   *engineMetrics
	planner   *planner.Planner // nil unless Options.Planner is on and Strategy is Auto
	inFlight  atomic.Int64
	fallbacks atomic.Uint64
}

// New creates an Engine. Zero-valued Options fields take defaults.
func New(opts Options) *Engine {
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case opts.Parallelism == 0:
		opts.Parallelism = runtime.GOMAXPROCS(0)
	case opts.Parallelism < 0:
		opts.Parallelism = 1
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	e := &Engine{opts: opts, cache: newQueryCache(opts.CacheSize), reg: opts.Metrics}
	e.metrics = newEngineMetrics(e.reg, e)
	if opts.Planner != planner.Off && opts.Strategy == core.Auto {
		// The planner reads the engine's own (fragment, strategy)
		// latency matrix as fleet-level evidence and registers its
		// decision counters next to the engine's instruments.
		e.planner = planner.New(planner.Config{
			Mode:     opts.Planner,
			Matrix:   e.metrics.query,
			Registry: e.reg,
		})
	}
	return e
}

// Planner returns the engine's strategy planner (nil when planning is
// off or the engine's strategy is not Auto). Serving layers read its
// Stats for /stats; tests seed it with observations.
func (e *Engine) Planner() *planner.Planner { return e.planner }

// Metrics returns the registry the engine records into, so upper
// layers (serve, cmd wiring) can add their own instruments to the same
// /metrics exposition.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// Parallelism returns the per-query worker budget the engine hands to
// its sessions (1 = sequential).
func (e *Engine) Parallelism() int { return e.opts.Parallelism }

// Strategy returns the engine's configured evaluation strategy.
func (e *Engine) Strategy() core.Strategy { return e.opts.Strategy }

// Compile returns the compiled form of src, consulting the cache first
// so each distinct query string is parsed and classified once under
// sustained traffic. Compilation errors are not cached.
func (e *Engine) Compile(src string) (*core.Query, error) {
	return e.CompileContext(context.Background(), src)
}

// CompileContext is Compile with trace plumbing: when ctx carries an
// obs trace, the cache probe and (on a miss) the compilation each get
// a span, with the cache outcome recorded as an attribute.
func (e *Engine) CompileContext(ctx context.Context, src string) (*core.Query, error) {
	entry, err := e.compileEntry(ctx, src)
	if err != nil {
		return nil, err
	}
	return entry.q, nil
}

// compileEntry is the shared compile path: cache probe, compile on a
// miss, cost-aware admission. The returned entry carries the compiled
// query and its per-strategy latency EWMAs (it may be detached when
// admission rejected it; it is still fully usable for this request).
func (e *Engine) compileEntry(ctx context.Context, src string) (*cacheEntry, error) {
	_, lookup := obs.StartSpan(ctx, "cache_lookup")
	if entry, ok := e.cache.get(src); ok {
		lookup.SetAttr("outcome", "hit")
		lookup.End()
		return entry, nil
	}
	lookup.SetAttr("outcome", "miss")
	lookup.End()
	_, span := obs.StartSpan(ctx, "compile")
	start := time.Now()
	q, err := core.Compile(src)
	if err != nil {
		span.End()
		return nil, err
	}
	entry := e.cache.add(src, q, uint64(time.Since(start)))
	span.SetAttr("fragment", fragLabel(q.Fragment()))
	span.End()
	e.metrics.stage.With("compile").ObserveSince(start)
	return entry, nil
}

// Stats is a point-in-time reading of the engine's observable state.
type Stats struct {
	// Hits, Misses and Evictions count compiled-query cache events
	// since the engine was created. Rejects counts compilations the
	// cost-aware admission policy declined to cache because the LRU
	// victim was more expensive to recompile.
	Hits, Misses, Evictions, Rejects uint64
	// CompileNanosSaved is the cumulative compile time cache hits
	// avoided re-spending, summed from each entry's own recorded
	// compilation cost.
	CompileNanosSaved uint64
	// Size and Capacity describe the cache's current fill.
	Size, Capacity int
	// InFlight counts evaluations currently executing across all
	// sessions.
	InFlight int64
	// Fallbacks counts queries transparently retried on MinContext
	// after tripping bottomup.ErrTableLimit (see Options.Fallback).
	Fallbacks uint64
}

// HitRate returns the cache hit fraction in [0, 1] (0 before any
// lookup).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns current cache and in-flight statistics.
func (e *Engine) Stats() Stats {
	hits, misses, evictions, rejects, saved, size, capacity := e.cache.snapshot()
	return Stats{
		Hits: hits, Misses: misses, Evictions: evictions, Rejects: rejects,
		CompileNanosSaved: saved,
		Size:              size, Capacity: capacity,
		InFlight:  e.inFlight.Load(),
		Fallbacks: e.fallbacks.Load(),
	}
}
