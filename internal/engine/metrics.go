package engine

import (
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/planner"
)

// engineMetrics are the engine's instruments in the shared obs
// registry. Cache and fallback counts are CounterFuncs over the same
// atomics Stats reads, so /metrics and /stats can never disagree.
type engineMetrics struct {
	// queries counts evaluations dispatched; errors the subset that
	// returned one (including cancellations).
	queries *obs.Counter
	errors  *obs.Counter

	// stage is the per-stage latency family (xpath_stage_seconds); the
	// serving layer registers its own stages into the same family via
	// the shared registry's get-or-create semantics.
	stage *obs.HistogramVec

	// query is the (fragment class, strategy)-keyed evaluation latency
	// family — the observation shape the ROADMAP's adaptive strategy
	// planner will consume to pick algorithms per query class.
	query *obs.HistogramVec
}

// newEngineMetrics registers the engine's instruments in reg.
func newEngineMetrics(reg *obs.Registry, e *Engine) *engineMetrics {
	m := &engineMetrics{
		queries: reg.Counter("xpath_queries_total", "queries evaluated (all sessions)"),
		errors:  reg.Counter("xpath_query_errors_total", "queries that returned an error"),
		stage:   reg.HistogramVec("xpath_stage_seconds", "per-stage request latency in seconds", nil, "stage"),
		query:   reg.HistogramVec("xpath_query_seconds", "evaluation latency in seconds by fragment class and strategy", nil, "fragment", "strategy"),
	}
	reg.CounterFunc("xpath_compile_cache_hits_total", "compiled-query cache hits", func() float64 {
		hits, _, _, _, _, _, _ := e.cache.snapshot()
		return float64(hits)
	})
	reg.CounterFunc("xpath_compile_cache_misses_total", "compiled-query cache misses", func() float64 {
		_, misses, _, _, _, _, _ := e.cache.snapshot()
		return float64(misses)
	})
	reg.CounterFunc("xpath_compile_cache_evictions_total", "compiled-query cache evictions", func() float64 {
		_, _, evictions, _, _, _, _ := e.cache.snapshot()
		return float64(evictions)
	})
	reg.CounterFunc("xpath_compile_cache_rejects_total", "compilations the cost-aware admission policy declined to cache", func() float64 {
		_, _, _, rejects, _, _, _ := e.cache.snapshot()
		return float64(rejects)
	})
	reg.CounterFunc("xpath_fallbacks_total", "queries retried on MinContext after a table-limit trip", func() float64 {
		return float64(e.fallbacks.Load())
	})
	reg.GaugeFunc("xpath_inflight", "evaluations currently executing", func() float64 {
		return float64(e.inFlight.Load())
	})
	reg.GaugeFunc("xpath_parallelism", "per-query worker budget", func() float64 {
		return float64(e.opts.Parallelism)
	})
	return m
}

// StageSeconds returns the engine's per-stage latency family so the
// serving layer can record its own stages (parse, index_warm,
// serialize, route) into the same xpath_stage_seconds histogram the
// compile and evaluate stages use.
func (e *Engine) StageSeconds() *obs.HistogramVec { return e.metrics.stage }

// fragLabel maps a fragment class to its snake_case metric label. The
// vocabulary lives in internal/planner (the planner keys its shape
// classes and matrix probes on the same strings); delegating keeps the
// two layers incapable of disagreeing.
func fragLabel(f core.Fragment) string { return planner.FragmentLabel(f) }
