package engine

import (
	"sync"

	"repro/internal/core"
)

// Session binds a parsed document to an Engine. All evaluations run
// from the document root with the engine's strategy and share the
// engine's compiled-query cache. A Session is safe for concurrent use;
// many sessions (one per document) may share one Engine.
type Session struct {
	eng     *Engine
	doc     *core.Document
	en      *core.Engine
	workers int
}

// NewSession creates a session over a document.
func (e *Engine) NewSession(d *core.Document) *Session {
	en := core.NewEngine(d, e.opts.Strategy)
	en.NaiveBudget = e.opts.NaiveBudget
	en.MaxTableRows = e.opts.MaxTableRows
	return &Session{eng: e, doc: d, en: en, workers: e.opts.Workers}
}

// Document returns the session's document.
func (s *Session) Document() *core.Document { return s.doc }

// Result is the full outcome of one query: the compiled form (nil when
// compilation failed) and exactly one of Value and Err.
type Result struct {
	Query    string
	Compiled *core.Query
	Value    core.Value
	Err      error
}

// Do compiles src through the engine's cache and evaluates it from the
// document root, returning the full outcome. Callers that need the
// fragment classification or chosen algorithm read them off
// Result.Compiled without a second cache lookup.
func (s *Session) Do(src string) Result {
	res := Result{Query: src}
	q, err := s.eng.Compile(src)
	if err != nil {
		res.Err = err
		return res
	}
	res.Compiled = q
	res.Value, res.Err = s.Evaluate(q)
	return res
}

// Query compiles src through the engine's cache and evaluates it from
// the document root.
func (s *Session) Query(src string) (core.Value, error) {
	res := s.Do(src)
	return res.Value, res.Err
}

// StrategyFor reports the concrete algorithm the session would run q
// with (resolving Auto by fragment).
func (s *Session) StrategyFor(q *core.Query) core.Strategy { return s.en.StrategyFor(q) }

// Evaluate runs an already-compiled query from the document root.
func (s *Session) Evaluate(q *core.Query) (core.Value, error) {
	s.eng.inFlight.Add(1)
	defer s.eng.inFlight.Add(-1)
	return s.en.Evaluate(q, core.Context{Node: s.doc.RootID(), Pos: 1, Size: 1})
}

// Batch evaluates queries concurrently over a worker pool bounded by
// Options.Workers and returns results in input order. One failing
// query does not abort the rest; each Result carries its own error.
func (s *Session) Batch(queries []string) []Result {
	out := make([]Result, len(queries))
	workers := s.workers
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, src := range queries {
			out[i] = s.Do(src)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = s.Do(queries[i])
			}
		}()
	}
	for i := range queries {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
