package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bottomup"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/planner"
)

// Session binds a parsed document to an Engine. All evaluations run
// from the document root with the engine's strategy and share the
// engine's compiled-query cache. A Session is safe for concurrent use;
// many sessions (one per document) may share one Engine. Sessions are
// what the serving layer's document store holds: one entry per
// registered document.
type Session struct {
	eng     *Engine
	doc     *core.Document
	en      *core.Engine
	fb      *core.Engine // MinContext engine for ErrTableLimit fallback
	workers int

	// lastUsed is the unix-nano timestamp of the most recent query
	// dispatched against this session (its creation time before any
	// query). The serving layer's idle eviction reads it through
	// LastUsed/IdleFor to trim documents that have gone cold.
	lastUsed atomic.Int64
}

// NewSession creates a session over a document.
func (e *Engine) NewSession(d *core.Document) *Session {
	en := core.NewEngine(d, e.opts.Strategy)
	en.NaiveBudget = e.opts.NaiveBudget
	en.MaxTableRows = e.opts.MaxTableRows
	en.Parallelism = e.opts.Parallelism
	if e.planner != nil {
		// StrategyFor on the session's core engine answers through the
		// planner too (side-effect-free Peek), so explain paths agree
		// with serving decisions.
		en.Planner = e.planner
	}
	s := &Session{eng: e, doc: d, en: en, workers: e.opts.Workers}
	if e.opts.Fallback || e.planner != nil {
		// With a planner the fallback engine always exists: a planned
		// bottomup pick that trips the table limit must be retried, not
		// surfaced — the caller never asked for bottomup.
		s.fb = core.NewEngine(d, core.MinContext)
		s.fb.Parallelism = e.opts.Parallelism
	}
	// Build the document's structural index now, at registration time,
	// so the first query served does not pay the O(|dom|) index build.
	en.Warm()
	s.lastUsed.Store(time.Now().UnixNano())
	return s
}

// Document returns the session's document.
func (s *Session) Document() *core.Document { return s.doc }

// LastUsed returns the time the most recent query against this session
// began (the session's creation time if it has never been queried).
func (s *Session) LastUsed() time.Time {
	return time.Unix(0, s.lastUsed.Load())
}

// IdleFor reports how long the session has gone without a query.
func (s *Session) IdleFor() time.Duration {
	return time.Since(s.LastUsed())
}

// Result is the full outcome of one query: the compiled form (nil when
// compilation failed) and exactly one of Value and Err. FellBack
// reports that the chosen strategy tripped its resource limit and the
// value was produced by the MinContext retry instead.
type Result struct {
	Query    string
	Compiled *core.Query
	Value    core.Value
	Err      error
	FellBack bool
	// Strategy is the concrete algorithm that actually produced the
	// value — post-planning and post-fallback. Reporting layers must
	// use it verbatim rather than re-deriving the strategy from the
	// query: under an adaptive planner a second derivation can
	// legitimately differ from what ran.
	Strategy core.Strategy
	// Planned reports that Strategy was chosen by the engine's
	// planner rather than the static Auto fragment switch or a fixed
	// configured strategy.
	Planned bool
}

// Do compiles src through the engine's cache and evaluates it from the
// document root, returning the full outcome. Callers that need the
// fragment classification or chosen algorithm read them off
// Result.Compiled without a second cache lookup.
func (s *Session) Do(src string) Result {
	return s.DoContext(context.Background(), src)
}

// DoContext is Do with cancellation: evaluation is abandoned with ctx's
// error (in Result.Err) once ctx is done.
func (s *Session) DoContext(ctx context.Context, src string) Result {
	res := Result{Query: src}
	entry, err := s.eng.compileEntry(ctx, src)
	if err != nil {
		res.Err = err
		return res
	}
	res.Compiled = entry.q
	res.Value, res.Strategy, res.Planned, res.FellBack, res.Err = s.evaluate(ctx, entry.q, entry)
	return res
}

// Query compiles src through the engine's cache and evaluates it from
// the document root.
func (s *Session) Query(src string) (core.Value, error) {
	res := s.Do(src)
	return res.Value, res.Err
}

// StrategyFor reports the concrete algorithm the session would run q
// with (resolving Auto by fragment).
func (s *Session) StrategyFor(q *core.Query) core.Strategy { return s.en.StrategyFor(q) }

// Evaluate runs an already-compiled query from the document root.
func (s *Session) Evaluate(q *core.Query) (core.Value, error) {
	return s.EvaluateContext(context.Background(), q)
}

// EvaluateContext runs an already-compiled query from the document
// root, abandoning the evaluation once ctx is done.
func (s *Session) EvaluateContext(ctx context.Context, q *core.Query) (core.Value, error) {
	v, _, _, _, err := s.evaluate(ctx, q, nil)
	return v, err
}

// evaluate is the one evaluation path: in-flight accounting, strategy
// planning, and — when a fallback engine exists and the strategy
// tripped bottomup.ErrTableLimit — a transparent retry on MinContext,
// whose tables are polynomial in the document and so cannot trip a row
// limit.
//
// The strategy is decided exactly once, before evaluation, and
// returned as part of the outcome: with an adaptive planner in the
// loop, deciding is stateful (trial accounting, exploration
// schedules), so "what ran" must be pinned here rather than re-derived
// by a reporting layer. entry, when non-nil, is the query's shared
// cache entry; its per-strategy latency EWMAs feed the decision and
// are updated with this evaluation's outcome.
func (s *Session) evaluate(ctx context.Context, q *core.Query, entry *cacheEntry) (core.Value, core.Strategy, bool, bool, error) {
	s.lastUsed.Store(time.Now().UnixNano())
	s.eng.inFlight.Add(1)
	defer s.eng.inFlight.Add(-1)
	m := s.eng.metrics
	m.queries.Inc()
	frag := fragLabel(q.Fragment())
	var strat core.Strategy
	var sh planner.Shape
	planned := false
	explored := false
	p := s.eng.planner
	if p != nil {
		// Planned path: the shape comes from the cache entry's memo when
		// there is one, and the decision goes through Route — the
		// allocation-free committed decide — rather than StrategyFor,
		// which would run a second, uncommitted planning pass.
		if entry != nil {
			sh = entry.queryShape().WithDoc(s.doc.Len())
		} else {
			sh = planner.Extract(q, s.doc.Len())
		}
		var es planner.EntryStats
		if entry != nil {
			es = entry
		}
		strat, explored = p.Route(sh, es)
		planned = true
	} else {
		strat = s.en.StrategyFor(q)
	}
	ectx, span := obs.StartSpan(ctx, "evaluate")
	span.SetAttr("fragment", frag)
	span.SetAttr("strategy", strat.String())
	if planned {
		span.SetAttr("planned", "true")
	}
	if explored {
		span.SetAttr("explored", "true")
	}
	start := time.Now()
	root := core.Context{Node: s.doc.RootID(), Pos: 1, Size: 1}
	v, err := s.en.EvaluateStrategy(ectx, q, root, strat)
	fell := false
	if err != nil && s.fb != nil && errors.Is(err, bottomup.ErrTableLimit) {
		// Record the structural failure before retrying: the planner
		// bans the strategy for this shape class so the next request
		// does not walk into the same wall.
		if planned {
			p.ObserveShape(sh, strat, time.Since(start), true)
		}
		s.eng.fallbacks.Add(1)
		span.SetAttr("fallback", "true")
		strat = core.MinContext
		v, err = s.fb.EvaluateContext(ectx, q, root)
		fell = true
	}
	span.End()
	elapsed := time.Since(start)
	m.stage.With("evaluate").Observe(elapsed.Seconds())
	m.query.With(frag, strat.String()).Observe(elapsed.Seconds())
	if err != nil {
		m.errors.Inc()
	} else {
		// Successful latency feeds both evidence stores: the query's
		// own cache entry (most specific) and the planner's shape
		// class. Fixed-strategy traffic trains the planner too.
		if entry != nil {
			entry.observeStrategy(strat, elapsed.Seconds())
		}
		if p != nil {
			p.ObserveShape(sh, strat, elapsed, false)
		}
	}
	return v, strat, planned, fell, err
}

// Batch evaluates queries concurrently over a worker pool bounded by
// Options.Workers and returns results in input order. One failing
// query does not abort the rest; each Result carries its own error.
func (s *Session) Batch(queries []string) []Result {
	out := make([]Result, len(queries))
	s.StreamBatch(context.Background(), queries, func(i int, res Result) { out[i] = res })
	return out
}

// StreamBatch evaluates queries concurrently over the session's worker
// pool and hands each Result to emit the moment it is ready, tagged
// with the query's input index — no buffering, no input-order barrier.
// Calls to emit are serialized (emit itself need not be thread-safe)
// but arrive in completion order. When ctx is cancelled, in-flight
// evaluations are abandoned at their next checkpoint, not-yet-started
// queries are never dispatched, and StreamBatch returns ctx's error;
// it returns nil after emitting every result.
func (s *Session) StreamBatch(ctx context.Context, queries []string, emit func(int, Result)) error {
	workers := s.workers
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, src := range queries {
			if err := ctx.Err(); err != nil {
				return err
			}
			emit(i, s.DoContext(ctx, src))
		}
		return ctx.Err()
	}
	var mu sync.Mutex
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res := s.DoContext(ctx, queries[i])
				mu.Lock()
				emit(i, res)
				mu.Unlock()
			}
		}()
	}
	for i := range queries {
		select {
		case idx <- i:
		case <-ctx.Done():
			close(idx)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}
