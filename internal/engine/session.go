package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bottomup"
	"repro/internal/core"
	"repro/internal/obs"
)

// Session binds a parsed document to an Engine. All evaluations run
// from the document root with the engine's strategy and share the
// engine's compiled-query cache. A Session is safe for concurrent use;
// many sessions (one per document) may share one Engine. Sessions are
// what the serving layer's document store holds: one entry per
// registered document.
type Session struct {
	eng     *Engine
	doc     *core.Document
	en      *core.Engine
	fb      *core.Engine // MinContext engine for ErrTableLimit fallback
	workers int

	// lastUsed is the unix-nano timestamp of the most recent query
	// dispatched against this session (its creation time before any
	// query). The serving layer's idle eviction reads it through
	// LastUsed/IdleFor to trim documents that have gone cold.
	lastUsed atomic.Int64
}

// NewSession creates a session over a document.
func (e *Engine) NewSession(d *core.Document) *Session {
	en := core.NewEngine(d, e.opts.Strategy)
	en.NaiveBudget = e.opts.NaiveBudget
	en.MaxTableRows = e.opts.MaxTableRows
	en.Parallelism = e.opts.Parallelism
	s := &Session{eng: e, doc: d, en: en, workers: e.opts.Workers}
	if e.opts.Fallback {
		s.fb = core.NewEngine(d, core.MinContext)
		s.fb.Parallelism = e.opts.Parallelism
	}
	// Build the document's structural index now, at registration time,
	// so the first query served does not pay the O(|dom|) index build.
	en.Warm()
	s.lastUsed.Store(time.Now().UnixNano())
	return s
}

// Document returns the session's document.
func (s *Session) Document() *core.Document { return s.doc }

// LastUsed returns the time the most recent query against this session
// began (the session's creation time if it has never been queried).
func (s *Session) LastUsed() time.Time {
	return time.Unix(0, s.lastUsed.Load())
}

// IdleFor reports how long the session has gone without a query.
func (s *Session) IdleFor() time.Duration {
	return time.Since(s.LastUsed())
}

// Result is the full outcome of one query: the compiled form (nil when
// compilation failed) and exactly one of Value and Err. FellBack
// reports that the configured strategy tripped its resource limit and
// the value was produced by the MinContext retry instead.
type Result struct {
	Query    string
	Compiled *core.Query
	Value    core.Value
	Err      error
	FellBack bool
}

// Do compiles src through the engine's cache and evaluates it from the
// document root, returning the full outcome. Callers that need the
// fragment classification or chosen algorithm read them off
// Result.Compiled without a second cache lookup.
func (s *Session) Do(src string) Result {
	return s.DoContext(context.Background(), src)
}

// DoContext is Do with cancellation: evaluation is abandoned with ctx's
// error (in Result.Err) once ctx is done.
func (s *Session) DoContext(ctx context.Context, src string) Result {
	res := Result{Query: src}
	q, err := s.eng.CompileContext(ctx, src)
	if err != nil {
		res.Err = err
		return res
	}
	res.Compiled = q
	res.Value, res.FellBack, res.Err = s.evaluate(ctx, q)
	return res
}

// Query compiles src through the engine's cache and evaluates it from
// the document root.
func (s *Session) Query(src string) (core.Value, error) {
	res := s.Do(src)
	return res.Value, res.Err
}

// StrategyFor reports the concrete algorithm the session would run q
// with (resolving Auto by fragment).
func (s *Session) StrategyFor(q *core.Query) core.Strategy { return s.en.StrategyFor(q) }

// Evaluate runs an already-compiled query from the document root.
func (s *Session) Evaluate(q *core.Query) (core.Value, error) {
	return s.EvaluateContext(context.Background(), q)
}

// EvaluateContext runs an already-compiled query from the document
// root, abandoning the evaluation once ctx is done.
func (s *Session) EvaluateContext(ctx context.Context, q *core.Query) (core.Value, error) {
	v, _, err := s.evaluate(ctx, q)
	return v, err
}

// evaluate is the one evaluation path: in-flight accounting, the
// engine's strategy, and — when Options.Fallback is set and the
// strategy tripped bottomup.ErrTableLimit — a transparent retry on
// MinContext, whose tables are polynomial in the document and so
// cannot trip a row limit.
func (s *Session) evaluate(ctx context.Context, q *core.Query) (core.Value, bool, error) {
	s.lastUsed.Store(time.Now().UnixNano())
	s.eng.inFlight.Add(1)
	defer s.eng.inFlight.Add(-1)
	m := s.eng.metrics
	m.queries.Inc()
	frag := fragLabel(q.Fragment())
	strat := s.en.StrategyFor(q)
	ectx, span := obs.StartSpan(ctx, "evaluate")
	span.SetAttr("fragment", frag)
	span.SetAttr("strategy", strat.String())
	start := time.Now()
	root := core.Context{Node: s.doc.RootID(), Pos: 1, Size: 1}
	v, err := s.en.EvaluateContext(ectx, q, root)
	fell := false
	if err != nil && s.fb != nil && errors.Is(err, bottomup.ErrTableLimit) {
		s.eng.fallbacks.Add(1)
		span.SetAttr("fallback", "true")
		strat = core.MinContext
		v, err = s.fb.EvaluateContext(ectx, q, root)
		fell = true
	}
	span.End()
	m.stage.With("evaluate").ObserveSince(start)
	m.query.With(frag, strat.String()).ObserveSince(start)
	if err != nil {
		m.errors.Inc()
	}
	return v, fell, err
}

// Batch evaluates queries concurrently over a worker pool bounded by
// Options.Workers and returns results in input order. One failing
// query does not abort the rest; each Result carries its own error.
func (s *Session) Batch(queries []string) []Result {
	out := make([]Result, len(queries))
	s.StreamBatch(context.Background(), queries, func(i int, res Result) { out[i] = res })
	return out
}

// StreamBatch evaluates queries concurrently over the session's worker
// pool and hands each Result to emit the moment it is ready, tagged
// with the query's input index — no buffering, no input-order barrier.
// Calls to emit are serialized (emit itself need not be thread-safe)
// but arrive in completion order. When ctx is cancelled, in-flight
// evaluations are abandoned at their next checkpoint, not-yet-started
// queries are never dispatched, and StreamBatch returns ctx's error;
// it returns nil after emitting every result.
func (s *Session) StreamBatch(ctx context.Context, queries []string, emit func(int, Result)) error {
	workers := s.workers
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers <= 1 {
		for i, src := range queries {
			if err := ctx.Err(); err != nil {
				return err
			}
			emit(i, s.DoContext(ctx, src))
		}
		return ctx.Err()
	}
	var mu sync.Mutex
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res := s.DoContext(ctx, queries[i])
				mu.Lock()
				emit(i, res)
				mu.Unlock()
			}
		}()
	}
	for i := range queries {
		select {
		case idx <- i:
		case <-ctx.Done():
			close(idx)
			wg.Wait()
			return ctx.Err()
		}
	}
	close(idx)
	wg.Wait()
	return ctx.Err()
}
