package engine

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/planner"
	"repro/internal/workload"
)

// TestPlannedBottomUpFallsBackOnceAndBans is the planner/fallback
// interaction contract: a planned bottomup choice that trips
// ErrTableLimit must (1) fall back to MinContext exactly once and
// still produce the value, (2) record the failure against the shape
// class, and (3) not re-pick bottomup for the same class on the next
// request — even though the caller never configured Fallback.
func TestPlannedBottomUpFallsBackOnceAndBans(t *testing.T) {
	e := New(Options{
		Strategy:     core.Auto,
		Planner:      planner.Adaptive,
		MaxTableRows: 4, // trips on any multi-row context-value table
		CacheSize:    8,
	})
	p := e.Planner()
	if p == nil {
		t.Fatal("adaptive options did not construct a planner")
	}
	p.SetExploreEvery(0) // deterministic decisions for the test
	doc := workload.Catalog(30)
	sess := e.NewSession(doc)

	const src = "count(//product[position() = last()])"
	q := core.MustCompile(src)
	// Seed the class so bottomup looks fastest: the planner has no
	// other evidence, so the next decision must pick it.
	p.Observe(q, doc.Len(), core.BottomUp, time.Microsecond, false)

	res := sess.Do(src)
	if res.Err != nil {
		t.Fatalf("planned bottomup trip was not rescued: %v", res.Err)
	}
	if !res.Planned {
		t.Fatal("result not marked as planned")
	}
	if !res.FellBack || res.Strategy != core.MinContext {
		t.Fatalf("result = fellback %v strategy %v, want the MinContext rescue reported", res.FellBack, res.Strategy)
	}
	if res.Value.Num != 1 {
		t.Fatalf("value = %v, want 1", res.Value.Num)
	}
	if got := e.Stats().Fallbacks; got != 1 {
		t.Fatalf("fallbacks = %d, want exactly 1", got)
	}
	if got := p.Stats().Bans; got != 1 {
		t.Fatalf("planner bans = %d, want 1 (failure recorded against the shape class)", got)
	}

	// Same class next request: bottomup is banned, so no second trip
	// and no second fallback.
	res2 := sess.Do(src)
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if res2.Strategy == core.BottomUp {
		t.Fatal("banned bottomup re-picked for the same shape class")
	}
	if res2.FellBack {
		t.Fatal("second request fell back; the ban should have routed around bottomup")
	}
	if got := e.Stats().Fallbacks; got != 1 {
		t.Fatalf("fallbacks = %d after second request, want still 1", got)
	}
}

// TestSharedCompilationAcrossStrategies is the shared-compilation
// acceptance check: when the planner routes the same query source to
// different strategies across requests, the engine compiles it once —
// the second request is a cache hit on the same source-keyed entry,
// not a recompile under a new (source, strategy) key.
func TestSharedCompilationAcrossStrategies(t *testing.T) {
	e := New(Options{Strategy: core.Auto, Planner: planner.Adaptive, CacheSize: 8})
	p := e.Planner()
	p.SetExploreEvery(0)
	doc := workload.Doc(50)
	sess := e.NewSession(doc)

	const src = "count(//a) < count(//b)"
	q := core.MustCompile(src)
	// First request: seeded class evidence routes to TopDown.
	p.Observe(q, doc.Len(), core.TopDown, time.Microsecond, false)
	r1 := sess.Do(src)
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	if r1.Strategy != core.TopDown {
		t.Fatalf("first request ran %v, want seeded TopDown", r1.Strategy)
	}
	// Second request: overwhelming class evidence flips the route to
	// MinContext (the entry's own EWMA only covers TopDown, so the
	// class estimate decides for MinContext).
	for i := 0; i < 8; i++ {
		p.Observe(q, doc.Len(), core.MinContext, time.Nanosecond, false)
	}
	r2 := sess.Do(src)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if r2.Strategy != core.MinContext {
		t.Fatalf("second request ran %v, want MinContext", r2.Strategy)
	}

	st := e.Stats()
	if st.Misses != 1 {
		t.Fatalf("cache misses = %d, want 1: one parse/normalize per source across strategies", st.Misses)
	}
	if st.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1: the re-routed request must hit the shared entry", st.Hits)
	}
}

// TestPlannerOffKeepsStaticAuto pins the default: without a planner,
// Auto resolves by fragment and results are not marked planned.
func TestPlannerOffKeepsStaticAuto(t *testing.T) {
	e := New(Options{Strategy: core.Auto})
	if e.Planner() != nil {
		t.Fatal("planner constructed with Planner mode off")
	}
	sess := e.NewSession(workload.Doc(20))
	res := sess.Do("//a")
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Planned {
		t.Fatal("result marked planned with planning off")
	}
	if res.Strategy != core.CoreXPath {
		t.Fatalf("strategy = %v, want the static fragment pick CoreXPath", res.Strategy)
	}
}

// TestFixedStrategyIgnoresPlanner: a non-Auto engine never plans, even
// when the option is set.
func TestFixedStrategyIgnoresPlanner(t *testing.T) {
	e := New(Options{Strategy: core.TopDown, Planner: planner.Adaptive})
	if e.Planner() != nil {
		t.Fatal("planner constructed for a fixed-strategy engine")
	}
	res := e.NewSession(workload.Doc(20)).Do("//a")
	if res.Err != nil || res.Strategy != core.TopDown || res.Planned {
		t.Fatalf("result = %v strategy %v planned %v, want plain TopDown", res.Err, res.Strategy, res.Planned)
	}
}

// TestEntryEwmaFeedsPlanner: evaluation latencies land on the shared
// cache entry per strategy, giving the planner its most specific
// evidence.
func TestEntryEwmaFeedsPlanner(t *testing.T) {
	e := New(Options{Strategy: core.Auto, Planner: planner.Adaptive, CacheSize: 8})
	e.Planner().SetExploreEvery(0)
	sess := e.NewSession(workload.Doc(50))
	const src = "//a/b"
	res := sess.Do(src)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	entry, ok := e.cache.get(src)
	if !ok {
		t.Fatal("evaluated query not in cache")
	}
	if _, ok := entry.StrategySeconds(res.Strategy); !ok {
		t.Fatalf("no per-entry EWMA recorded for the strategy that ran (%v)", res.Strategy)
	}
}
