package engine

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestStreamBatchEmitsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New(Options{Workers: workers})
		s := e.NewSession(workload.Catalog(20))
		queries := []string{"count(//product)", "//[", "sum(//price) > 0", "count(//name)"}
		seen := make([]bool, len(queries))
		n := 0
		err := s.StreamBatch(context.Background(), queries, func(i int, res Result) {
			if seen[i] {
				t.Errorf("workers=%d index %d emitted twice", workers, i)
			}
			seen[i] = true
			n++
			if res.Query != queries[i] {
				t.Errorf("workers=%d index %d carries query %q, want %q", workers, i, res.Query, queries[i])
			}
		})
		if err != nil {
			t.Fatalf("workers=%d StreamBatch err = %v", workers, err)
		}
		if n != len(queries) {
			t.Fatalf("workers=%d emitted %d results, want %d", workers, n, len(queries))
		}
	}
}

func TestStreamBatchCancelledUpFront(t *testing.T) {
	e := New(Options{Workers: 4})
	s := e.NewSession(workload.Catalog(10))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := make([]string, 64)
	for i := range queries {
		queries[i] = "count(//product)"
	}
	err := s.StreamBatch(ctx, queries, func(int, Result) {})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := e.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight leaked after cancellation: %+v", st)
	}
}

// TestFallbackOnTableLimit checks the serving-layer auto-fallback: with
// Options.Fallback set, a query whose bottom-up tables trip the row
// limit is transparently retried on MinContext and succeeds, and the
// retry is counted.
func TestFallbackOnTableLimit(t *testing.T) {
	e := New(Options{Strategy: core.BottomUp, MaxTableRows: 8, Fallback: true})
	s := e.NewSession(workload.Catalog(30))
	res := s.Do("count(//product[position() = last()])")
	if res.Err != nil {
		t.Fatalf("fallback did not rescue the query: %v", res.Err)
	}
	if !res.FellBack {
		t.Fatal("Result.FellBack = false, want true")
	}
	if res.Value.Num != 1 {
		t.Fatalf("fallback value = %v, want 1", res.Value.Num)
	}
	if st := e.Stats(); st.Fallbacks != 1 {
		t.Fatalf("Stats.Fallbacks = %d, want 1", st.Fallbacks)
	}
}

func TestCompileTimeSavedAccumulates(t *testing.T) {
	e := New(Options{})
	if _, err := e.Compile("count(//product[child::price > 10])"); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.CompileNanosSaved != 0 {
		t.Fatalf("saved %d ns before any hit", st.CompileNanosSaved)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Compile("count(//product[child::price > 10])"); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Hits != 3 || st.CompileNanosSaved == 0 {
		t.Fatalf("stats = %+v, want 3 hits and saved > 0", st)
	}
}
