package engine

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestSessionIdleTracking pins down the idle signal the serving layer's
// -maxidle eviction relies on: a fresh session's LastUsed is its
// creation time, every query refreshes it, and IdleFor grows while the
// session sits cold.
func TestSessionIdleTracking(t *testing.T) {
	d, err := core.ParseString("<a><b/><b/></a>")
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{})
	before := time.Now()
	sess := eng.NewSession(d)
	if lu := sess.LastUsed(); lu.Before(before.Add(-time.Second)) || lu.After(time.Now()) {
		t.Fatalf("fresh session LastUsed = %v, want ~now", lu)
	}

	time.Sleep(20 * time.Millisecond)
	idleBefore := sess.IdleFor()
	if idleBefore < 10*time.Millisecond {
		t.Fatalf("IdleFor = %v after 20ms of silence", idleBefore)
	}

	if res := sess.Do("count(//b)"); res.Err != nil {
		t.Fatal(res.Err)
	}
	if idle := sess.IdleFor(); idle >= idleBefore {
		t.Fatalf("query did not refresh idle clock: %v >= %v", idle, idleBefore)
	}

	// A failing query string never reaches evaluation, so it must not
	// refresh the clock (compile errors are not "use" of the document).
	stamp := sess.LastUsed()
	time.Sleep(5 * time.Millisecond)
	if res := sess.Do("//["); res.Err == nil {
		t.Fatal("malformed query did not error")
	}
	if got := sess.LastUsed(); !got.Equal(stamp) {
		t.Fatalf("compile error refreshed LastUsed: %v -> %v", stamp, got)
	}
}
