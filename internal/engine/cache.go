package engine

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/planner"
)

// numStrategies sizes the per-entry strategy-latency arrays;
// core.XPatterns is the last strategy constant.
const numStrategies = int(core.XPatterns) + 1

// queryCache is a thread-safe LRU cache of compiled queries, keyed on
// the query source alone. Compilation (parse + normalize + fragment
// classification) is strategy-independent, so one entry serves every
// strategy the planner might route the query to — one parse per
// distinct source, no matter how often the routing changes. Under
// sustained traffic with a bounded working set of distinct query
// strings, core.Compile runs once per distinct query; everything else
// is a mutex-guarded map lookup.
//
// Admission is cost-aware: at capacity, a new entry only displaces the
// LRU victim if recompiling the newcomer costs at least as much as
// recompiling the victim, so a stream of cheap one-off queries cannot
// flush the expensive compilations whose reuse the savedNanos
// accounting shows is where the cache earns its keep. Each rejection
// halves the victim's effective cost (a strike), so a dead expensive
// entry cannot pin its slot forever; a hit clears the strikes.
//
// Concurrent misses on the same key may compile the same query more
// than once; the first add wins and the duplicates are discarded.
// Compiled queries are immutable, so handing the same *core.Query to
// many goroutines is safe (see TestConcurrentEvaluation in
// internal/core).
type queryCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
	rejects   uint64
	// savedNanos accumulates, over every cache hit, the compile time
	// the hit avoided re-spending — each entry remembers what its own
	// compilation cost, so the sum is per-query-accurate rather than a
	// fleet average.
	savedNanos uint64
}

// cacheEntry is the shared per-source compilation record: the compiled
// query plus the per-strategy latency EWMAs the adaptive planner reads
// as its most specific evidence. The EWMAs are written lock-free from
// evaluation paths (float64 bits in atomics, 0 = no observation) while
// the entry sits in the LRU; the cache mutex only guards the list and
// the admission bookkeeping.
type cacheEntry struct {
	src string
	q   *core.Query
	// compileNanos is what compiling this entry cost at admission; each
	// hit credits this amount to the cache's savedNanos, and admission
	// weighs it against eviction victims.
	compileNanos uint64
	// strikes counts consecutive admission contests this entry
	// survived as the LRU victim; each halves its effective cost.
	// Guarded by the cache mutex.
	strikes uint8

	// seconds[s] is the EWMA of observed evaluation latency with
	// strategy s for this exact query (float64 bits; 0 = none).
	seconds [numStrategies]atomic.Uint64

	// shape memoizes the planner's document-independent shape features
	// for q: the AST walk is deterministic per query, so planned
	// serving pays it once per compilation, not once per request.
	shapeOnce sync.Once
	shape     planner.Shape
}

// queryShape returns the entry's memoized document-independent shape,
// extracting it on first use.
func (e *cacheEntry) queryShape() planner.Shape {
	e.shapeOnce.Do(func() { e.shape = planner.ExtractQuery(e.q) })
	return e.shape
}

// entryEwmaAlpha matches the planner's class-level smoothing.
const entryEwmaAlpha = 0.3

// observeStrategy folds one successful evaluation latency into the
// entry's per-strategy EWMA.
func (e *cacheEntry) observeStrategy(s core.Strategy, secs float64) {
	if int(s) < 0 || int(s) >= numStrategies {
		return
	}
	a := &e.seconds[s]
	for {
		old := a.Load()
		nv := secs
		if old != 0 {
			nv = (1-entryEwmaAlpha)*math.Float64frombits(old) + entryEwmaAlpha*secs
		}
		if a.CompareAndSwap(old, math.Float64bits(nv)) {
			return
		}
	}
}

// StrategySeconds returns the entry's mean observed latency for a
// strategy; it implements planner.EntryStats.
func (e *cacheEntry) StrategySeconds(s core.Strategy) (float64, bool) {
	if int(s) < 0 || int(s) >= numStrategies {
		return 0, false
	}
	bits := e.seconds[s].Load()
	if bits == 0 {
		return 0, false
	}
	return math.Float64frombits(bits), true
}

func newQueryCache(capacity int) *queryCache {
	if capacity < 1 {
		capacity = 1
	}
	return &queryCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// get returns the cached entry for src, promoting it to most recently
// used.
func (c *queryCache) get(src string) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[src]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	e := el.Value.(*cacheEntry)
	c.savedNanos += e.compileNanos
	e.strikes = 0
	c.ll.MoveToFront(el)
	return e, true
}

// add inserts a compiled query (recording what it cost to compile). If
// another goroutine added the key first, its entry is kept and
// returned. At capacity the newcomer must out-cost the LRU victim's
// strike-discounted compile cost to be admitted; a rejected newcomer
// is still returned as a detached entry, usable for this request but
// not cached.
func (c *queryCache) add(src string, q *core.Query, compileNanos uint64) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[src]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry)
	}
	e := &cacheEntry{src: src, q: q, compileNanos: compileNanos}
	for c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		victim := oldest.Value.(*cacheEntry)
		if compileNanos < victim.compileNanos>>victim.strikes {
			// The victim is worth more than the newcomer. Keep it, but
			// remember the contest: enough rejections and its
			// effective cost decays to the point where fresh traffic
			// displaces it.
			if victim.strikes < 63 {
				victim.strikes++
			}
			c.rejects++
			return e
		}
		c.ll.Remove(oldest)
		delete(c.items, victim.src)
		c.evictions++
	}
	c.items[src] = c.ll.PushFront(e)
	return e
}

// snapshot returns the counters and current size under one lock
// acquisition, so Stats readings are internally consistent.
func (c *queryCache) snapshot() (hits, misses, evictions, rejects, savedNanos uint64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.rejects, c.savedNanos, c.ll.Len(), c.capacity
}
