package engine

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// cacheKey identifies a compiled query in the cache: the literal query
// text plus the strategy it was compiled for. Compilation itself is
// strategy-independent, but keying on the pair keeps the cache correct
// if engines with different strategies ever share one cache, and makes
// the hit-rate numbers attributable to a single serving configuration.
type cacheKey struct {
	src      string
	strategy core.Strategy
}

// queryCache is a thread-safe LRU cache of compiled queries. Under
// sustained traffic with a bounded working set of distinct query
// strings, core.Compile runs once per distinct query; everything else
// is a mutex-guarded map lookup.
//
// Concurrent misses on the same key may compile the same query more
// than once; the first add wins and the duplicates are discarded.
// Compiled queries are immutable, so handing the same *core.Query to
// many goroutines is safe (see TestConcurrentEvaluation in
// internal/core).
type queryCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[cacheKey]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
	// savedNanos accumulates, over every cache hit, the compile time
	// the hit avoided re-spending — each entry remembers what its own
	// compilation cost, so the sum is per-query-accurate rather than a
	// fleet average.
	savedNanos uint64
}

type cacheEntry struct {
	key cacheKey
	q   *core.Query
	// compileNanos is what compiling this entry cost at admission; each
	// hit credits this amount to the cache's savedNanos.
	compileNanos uint64
}

func newQueryCache(capacity int) *queryCache {
	if capacity < 1 {
		capacity = 1
	}
	return &queryCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached compiled query for k, promoting it to most
// recently used.
func (c *queryCache) get(k cacheKey) (*core.Query, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	e := el.Value.(*cacheEntry)
	c.savedNanos += e.compileNanos
	c.ll.MoveToFront(el)
	return e.q, true
}

// add inserts a compiled query (recording what it cost to compile),
// evicting the least recently used entry if the cache is full. If
// another goroutine added the key first, its entry is kept and
// returned.
func (c *queryCache) add(k cacheKey, q *core.Query, compileNanos uint64) *core.Query {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).q
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, q: q, compileNanos: compileNanos})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	return q
}

// snapshot returns the counters and current size under one lock
// acquisition, so Stats readings are internally consistent.
func (c *queryCache) snapshot() (hits, misses, evictions, savedNanos uint64, size, capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.savedNanos, c.ll.Len(), c.capacity
}
