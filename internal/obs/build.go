package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// processStart anchors UptimeMillis; package init runs once per
// process, early enough to count as "start".
var processStart = time.Now()

// UptimeMillis returns milliseconds since the process started.
func UptimeMillis() int64 {
	return time.Since(processStart).Milliseconds()
}

// BuildInfo is the build identity /healthz reports: enough to tell
// which binary answered without shelling into the host.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Version   string `json:"module_version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the process's build info, read once from
// runtime/debug.ReadBuildInfo.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo.GoVersion = runtime.Version()
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.Module = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// writeJSONIndent renders v as indented JSON; obs keeps its own copy
// so the package stays dependency-free within the repo.
func writeJSONIndent(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
