package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync"
	"time"
)

// HeaderRequestID is the wire header the router uses to hand a request
// ID to the backend it forwards to, so one ID names the work on both
// tiers.
const HeaderRequestID = "X-Request-Id"

// maxSpansPerTrace bounds a single trace's span tree; a runaway batch
// can't grow a request's trace without limit. Spans past the cap are
// counted, not recorded.
const maxSpansPerTrace = 512

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// a time-derived ID rather than crashing the request path.
		now := time.Now().UnixNano()
		for i := range b {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyTrace
	ctxKeySpan
)

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// RequestID returns the context's request ID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// Trace is one request's span tree. The zero value is not usable; use
// NewTrace. A nil *Trace is a valid no-op: StartSpan on a context
// without a trace returns a nil span whose methods all no-op, so
// instrumented code never branches on "is tracing on".
type Trace struct {
	requestID string
	start     time.Time

	mu      sync.Mutex
	roots   []*Span
	spans   int // recorded spans, capped at maxSpansPerTrace
	dropped int // spans discarded past the cap
}

// Span is one timed region inside a trace. All mutable state is
// guarded by the owning Trace's mutex so concurrent batch workers can
// add sibling spans safely.
type Span struct {
	t      *Trace
	parent *Span
	name   string
	start  time.Time

	// Guarded by t.mu.
	end      time.Time
	attrs    []spanAttr
	remote   any
	children []*Span
}

type spanAttr struct {
	key string
	val string
}

// NewTrace starts a trace for the given request ID.
func NewTrace(requestID string) *Trace {
	return &Trace{requestID: requestID, start: time.Now()}
}

// RequestID returns the ID the trace was created with.
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	return t.requestID
}

// WithTrace attaches a trace (and its request ID) to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	ctx = WithRequestID(ctx, t.RequestID())
	return context.WithValue(ctx, ctxKeyTrace, t)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKeyTrace).(*Trace)
	return t
}

// StartSpan opens a named span under the context's current span (or as
// a root) and returns a context carrying it as the new parent. Without
// a trace in ctx it returns (ctx, nil) — and every method on a nil
// *Span is a no-op — so callers never guard call sites.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TraceFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(ctxKeySpan).(*Span)
	s := &Span{t: t, parent: parent, name: name, start: time.Now()}
	t.mu.Lock()
	if t.spans >= maxSpansPerTrace {
		t.dropped++
		t.mu.Unlock()
		return ctx, nil
	}
	t.spans++
	if parent != nil {
		parent.children = append(parent.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.mu.Unlock()
	return context.WithValue(ctx, ctxKeySpan, s), s
}

// End closes the span. Idempotent; the first End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.t.mu.Unlock()
}

// SetAttr records a key/value annotation on the span (strategy name,
// fragment class, cache outcome, ...).
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, spanAttr{key, val})
	s.t.mu.Unlock()
}

// AttachRemote hangs a remote tier's trace report (or any JSON-able
// payload) under the span — the router uses it to splice a backend's
// span tree into the forward span.
func (s *Span) AttachRemote(v any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.remote = v
	s.t.mu.Unlock()
}

// TraceJSON is the wire form of a finished trace: the ?trace=1
// response field, the /debug/traces ring entry, and the slow-query log
// payload. Durations are nanoseconds.
type TraceJSON struct {
	RequestID string     `json:"request_id"`
	Start     time.Time  `json:"start"`
	TotalNs   int64      `json:"total_ns"`
	Dropped   int        `json:"dropped_spans,omitempty"`
	Spans     []SpanJSON `json:"spans"`
}

// SpanJSON is one node of a reported span tree. StartNs is the offset
// from the trace start.
type SpanJSON struct {
	Name     string            `json:"name"`
	StartNs  int64             `json:"start_ns"`
	DurNs    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Remote   any               `json:"remote,omitempty"`
	Children []SpanJSON        `json:"children,omitempty"`
}

// Report snapshots the trace as JSON. Open spans are reported as
// ending now; the trace itself stays usable afterwards. Safe to call
// concurrently with span recording.
func (t *Trace) Report() *TraceJSON {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &TraceJSON{
		RequestID: t.requestID,
		Start:     t.start,
		TotalNs:   now.Sub(t.start).Nanoseconds(),
		Dropped:   t.dropped,
		Spans:     make([]SpanJSON, 0, len(t.roots)),
	}
	for _, s := range t.roots {
		out.Spans = append(out.Spans, s.reportLocked(t.start, now))
	}
	return out
}

// reportLocked converts one span subtree; t.mu must be held.
func (s *Span) reportLocked(origin, now time.Time) SpanJSON {
	end := s.end
	if end.IsZero() {
		end = now
	}
	j := SpanJSON{
		Name:    s.name,
		StartNs: s.start.Sub(origin).Nanoseconds(),
		DurNs:   end.Sub(s.start).Nanoseconds(),
		Remote:  s.remote,
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			j.Attrs[a.key] = a.val
		}
	}
	for _, c := range s.children {
		j.Children = append(j.Children, c.reportLocked(origin, now))
	}
	return j
}

// TraceRequested reports whether the client asked for an inline span
// report (?trace=1).
func TraceRequested(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1"
}

// TraceRing is a bounded buffer of recent trace reports, served at
// /debug/traces. Reports are immutable once added, so Snapshot hands
// out shared pointers.
type TraceRing struct {
	cap int

	mu   sync.Mutex
	buf  []*TraceJSON
	next int
}

// DefaultTraceRingSize is the number of recent traces /debug/traces
// retains.
const DefaultTraceRingSize = 64

// NewTraceRing creates a ring retaining the last n reports (n <= 0
// takes DefaultTraceRingSize).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceRingSize
	}
	return &TraceRing{cap: n}
}

// Add records a finished report. Nil reports are ignored.
func (r *TraceRing) Add(t *TraceJSON) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, t)
		return
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % r.cap
}

// Snapshot returns the retained reports, newest first.
func (r *TraceRing) Snapshot() []*TraceJSON {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceJSON, 0, len(r.buf))
	if len(r.buf) < r.cap {
		for i := len(r.buf) - 1; i >= 0; i-- {
			out = append(out, r.buf[i])
		}
		return out
	}
	for i := 0; i < r.cap; i++ {
		out = append(out, r.buf[(r.next-1-i+2*r.cap)%r.cap])
	}
	return out
}

// Handler serves the ring as a JSON array, newest first.
func (r *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSONIndent(w, r.Snapshot())
	})
}
