package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLogLevel maps a -log-level flag value (debug, info, warn,
// error) to its slog level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
	}
}

// NewLogger builds the text-format slog logger the commands share: one
// line per event, greppable request_id attrs.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}
