package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryTextFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests handled")
	c.Add(3)
	g := r.Gauge("test_temperature", "current reading")
	g.Set(2.5)
	r.CounterFunc("test_func_total", "func-backed counter", func() float64 { return 7 })
	h := r.Histogram("test_latency_seconds", "latencies", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	v := r.CounterVec("test_paths_total", "per-path requests", "path")
	v.Inc("/query")
	v.Inc("/query")
	v.Inc("/batch")
	hv := r.HistogramVec("test_stage_seconds", "per-stage latency", []float64{0.1}, "stage")
	hv.With("compile").Observe(0.2)

	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	text := b.String()

	for _, want := range []string{
		"# HELP test_requests_total requests handled",
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		"# TYPE test_temperature gauge",
		"test_temperature 2.5",
		"test_func_total 7",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
		`test_paths_total{path="/query"} 2`,
		`test_paths_total{path="/batch"} 1`,
		`test_stage_seconds_bucket{stage="compile",le="0.1"} 0`,
		`test_stage_seconds_bucket{stage="compile",le="+Inf"} 1`,
		`test_stage_seconds_count{stage="compile"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n---\n%s", want, text)
		}
	}

	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own output does not parse: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "same")
	b := r.Counter("dup_total", "same")
	if a != b {
		t.Error("identical registration should return the same counter")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("signature mismatch should panic")
			}
		}()
		r.Counter("dup_total", "different help")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-snake-case name should panic")
			}
		}()
		r.Counter("BadName", "x")
	}()
}

func TestHistogramBucketsMustAscend(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("non-ascending buckets should panic")
		}
	}()
	r.Histogram("bad_buckets", "x", []float64{1, 1})
}

func TestCounterVecConcurrency(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("conc_total", "x", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Inc("a")
			}
		}()
	}
	wg.Wait()
	if got := v.Value("a"); got != 800 {
		t.Errorf("Value(a) = %d, want 800", got)
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("breaker_state", "per-peer breaker position", "peer")
	if v2 := r.GaugeVec("breaker_state", "per-peer breaker position", "peer"); v2 != v {
		t.Error("identical registration should return the same vec")
	}
	v.Set(2, "node-a")
	v.Set(1, "node-b")
	v.Add(-1, "node-b")
	if got := v.Value("node-a"); got != 2 {
		t.Errorf("Value(node-a) = %v, want 2", got)
	}
	if got := v.Value("node-b"); got != 0 {
		t.Errorf("Value(node-b) = %v, want 0", got)
	}
	if got := v.Value("never"); got != 0 {
		t.Errorf("untouched child = %v, want 0", got)
	}
	var buf strings.Builder
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `# TYPE breaker_state gauge`) ||
		!strings.Contains(out, `breaker_state{peer="node-a"} 2`) {
		t.Errorf("exposition missing gauge vec:\n%s", out)
	}
	samples, err := ParseText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("own output does not parse: %v", err)
	}
	if len(samples) != 2 {
		t.Errorf("samples = %+v, want 2", samples)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Add(1, "node-a")
			}
		}()
	}
	wg.Wait()
	if got := v.Value("node-a"); got != 802 {
		t.Errorf("concurrent Add: Value(node-a) = %v, want 802", got)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "x").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want exposition format", ct)
	}
	samples, err := ParseText(resp.Body)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(samples) != 1 || samples[0].Name != "handler_total" || samples[0].Value != 1 {
		t.Errorf("samples = %+v", samples)
	}
}

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("req123")
	ctx := WithTrace(context.Background(), tr)
	if RequestID(ctx) != "req123" {
		t.Fatalf("RequestID = %q", RequestID(ctx))
	}
	ctx, root := StartSpan(ctx, "route")
	cctx, child := StartSpan(ctx, "evaluate")
	child.SetAttr("strategy", "bottomup")
	_ = cctx
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	rep := tr.Report()
	if rep.RequestID != "req123" {
		t.Errorf("report ID = %q", rep.RequestID)
	}
	if len(rep.Spans) != 1 || rep.Spans[0].Name != "route" {
		t.Fatalf("roots = %+v", rep.Spans)
	}
	kids := rep.Spans[0].Children
	if len(kids) != 1 || kids[0].Name != "evaluate" {
		t.Fatalf("children = %+v", kids)
	}
	if kids[0].Attrs["strategy"] != "bottomup" {
		t.Errorf("attrs = %v", kids[0].Attrs)
	}
	if kids[0].DurNs <= 0 || kids[0].DurNs > rep.Spans[0].DurNs {
		t.Errorf("child dur %d vs parent %d", kids[0].DurNs, rep.Spans[0].DurNs)
	}
	if rep.Spans[0].DurNs > rep.TotalNs {
		t.Errorf("root dur %d exceeds total %d", rep.Spans[0].DurNs, rep.TotalNs)
	}
}

func TestSpanNilSafety(t *testing.T) {
	ctx, s := StartSpan(context.Background(), "no-trace")
	if s != nil {
		t.Fatal("span without trace should be nil")
	}
	// All no-ops; must not panic.
	s.End()
	s.SetAttr("k", "v")
	s.AttachRemote("x")
	if TraceFrom(ctx) != nil {
		t.Error("no trace expected")
	}
	var nilTrace *Trace
	if nilTrace.Report() != nil {
		t.Error("nil trace report should be nil")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("cap")
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, s := StartSpan(ctx, "s")
		s.End()
	}
	rep := tr.Report()
	if len(rep.Spans) != maxSpansPerTrace {
		t.Errorf("recorded %d spans, want %d", len(rep.Spans), maxSpansPerTrace)
	}
	if rep.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", rep.Dropped)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("conc")
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_, s := StartSpan(ctx, "worker")
				s.SetAttr("k", "v")
				s.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Report().Spans); got != 160 {
		t.Errorf("got %d root spans, want 160", got)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(&TraceJSON{RequestID: string(rune('a' + i))})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d", len(snap))
	}
	got := snap[0].RequestID + snap[1].RequestID + snap[2].RequestID
	if got != "edc" {
		t.Errorf("order = %q, want edc (newest first)", got)
	}
	var nilRing *TraceRing
	nilRing.Add(&TraceJSON{})
	if nilRing.Snapshot() != nil {
		t.Error("nil ring snapshot should be nil")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Errorf("ids %q %q", a, b)
	}
}

func TestBuildAndUptime(t *testing.T) {
	bi := Build()
	if bi.GoVersion == "" {
		t.Error("GoVersion empty")
	}
	if UptimeMillis() < 0 {
		t.Error("uptime negative")
	}
}

// TestHistogramVecPeek: Peek reads a cell without creating it — the
// planner probes many (fragment, strategy) cells for evidence and must
// not materialize empty series in the exposition.
func TestHistogramVecPeek(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_query_seconds", "latency", nil, "fragment", "strategy")
	if h := hv.Peek("core_xpath", "topdown"); h != nil {
		t.Fatal("Peek created a child")
	}
	hv.With("core_xpath", "topdown").Observe(0.25)
	h := hv.Peek("core_xpath", "topdown")
	if h == nil || h.Count() != 1 || h.Sum() != 0.25 {
		t.Fatalf("Peek after With = %v, want the observed child", h)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `strategy="mincontext"`) {
		t.Fatal("a peeked-but-never-observed cell leaked into the exposition")
	}
	hv.Peek("core_xpath", "mincontext")
	b.Reset()
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `strategy="mincontext"`) {
		t.Fatal("Peek materialized an empty series")
	}
}
