package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed sample line of a Prometheus text exposition.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for a label name, or "".
func (s Sample) Label(name string) string { return s.Labels[name] }

// ParseText parses Prometheus text exposition format (version 0.0.4)
// into samples. It validates comment lines as # HELP/# TYPE and sample
// lines as name[{labels}] value, which is what the test suites and the
// smoke script use to assert scrapes are well-formed.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if !strings.HasPrefix(rest, "HELP ") && !strings.HasPrefix(rest, "TYPE ") {
				return nil, fmt.Errorf("line %d: comment is neither # HELP nor # TYPE: %q", lineNo, line)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value: %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("empty metric name: %q", line)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set: %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return s, fmt.Errorf("%v in %q", err, line)
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	valStr := strings.TrimSpace(rest)
	// A timestamp after the value is legal in the format; the registry
	// never emits one, but accept it.
	if i := strings.IndexByte(valStr, ' '); i >= 0 {
		valStr = valStr[:i]
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	rest := body
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '='")
		}
		name := rest[:eq]
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("label %q value not quoted", name)
		}
		rest = rest[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				rest = rest[i+1:]
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %q value unterminated", name)
		}
		labels[name] = val.String()
		rest = strings.TrimPrefix(rest, ",")
	}
	return labels, nil
}
