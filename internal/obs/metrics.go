// Package obs is the observability substrate of the serving stack:
// a dependency-free Prometheus-text-format metrics registry (counters,
// gauges, fixed-bucket histograms, and their labeled variants),
// request-scoped span tracing carried in context.Context, and the
// process-level build/uptime surfaces the health endpoints report.
//
// The package sits below every other serving layer — engine, serve and
// cluster all record into it — and deliberately depends on nothing in
// the repository, so instrumenting a layer can never introduce an
// import cycle. It is also the measurement substrate the ROADMAP's
// adaptive strategy planner will read: the engine keys its latency
// histograms by (fragment class, strategy), exactly the shape a
// cost-aware planner needs to compare algorithms per query class.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds: 100µs to 10s, roughly logarithmic. Fixed buckets keep every
// scrape allocation-free and make histograms from different processes
// mergeable.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metricNameRe is the registry's naming rule: snake_case, starting
// with a letter. cmd/xpathlint's metricname analyzer enforces the same
// pattern statically on every registration literal.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// metric is one registered instrument: a name/help/kind description
// plus a text-format renderer.
type metric interface {
	describe() (name, help, kind string)
	// signature distinguishes incompatible registrations of one name
	// (kind, help, buckets, labels); identical signatures may share the
	// instrument.
	signature() string
	write(w io.Writer)
}

// Registry holds a process's metrics and renders them in Prometheus
// text exposition format. Registration is get-or-create: registering a
// name twice with an identical signature returns the existing
// instrument (so layers sharing a registry can share a histogram
// family), while a signature mismatch panics — silent divergence of
// two instruments under one name is a programming error.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]metric
	ordered []string
}

// NewRegistry creates an empty Registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}}
}

// register implements the get-or-create contract shared by every
// constructor.
func (r *Registry) register(name string, m metric) metric {
	if !metricNameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: metric name %q is not snake_case", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[name]; ok {
		if old.signature() != m.signature() {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different signature (%s vs %s)", name, m.signature(), old.signature()))
		}
		return old
	}
	r.byName[name] = m
	r.ordered = append(r.ordered, name)
	return m
}

// WriteTo renders every registered metric in Prometheus text format,
// in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := make([]string, len(r.ordered))
	copy(names, r.ordered)
	metrics := make([]metric, len(names))
	for i, n := range names {
		metrics[i] = r.byName[n]
	}
	r.mu.Unlock()
	cw := &countingWriter{w: w}
	for _, m := range metrics {
		name, help, kind := m.describe()
		fmt.Fprintf(cw, "# HELP %s %s\n", name, escapeHelp(help))
		fmt.Fprintf(cw, "# TYPE %s %s\n", name, kind)
		m.write(cw)
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countingWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

// Handler serves the registry at GET /metrics in text exposition
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteTo(w)
	})
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value; integral values print without a
// fraction so counter samples stay grep-friendly.
func formatValue(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {k="v",...} for parallel name/value slices ("" for
// none).
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing counter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) describe() (string, string, string) { return c.name, c.help, "counter" }
func (c *Counter) signature() string                  { return "counter|" + c.help }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, &Counter{name: name, help: help}).(*Counter)
}

// funcMetric renders a value read from a callback at scrape time — the
// bridge for counters and gauges the layers already track in their own
// atomics (engine cache hits, router retry counts, store fill), so
// /metrics never double-counts what /stats reports.
type funcMetric struct {
	name, help, kind string
	fn               func() float64
}

func (f *funcMetric) describe() (string, string, string) { return f.name, f.help, f.kind }
func (f *funcMetric) signature() string                  { return f.kind + "|func|" + f.help }
func (f *funcMetric) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn()))
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time; fn must be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, &funcMetric{name: name, help: help, kind: "counter", fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &funcMetric{name: name, help: help, kind: "gauge", fn: fn})
}

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) describe() (string, string, string) { return g.name, g.help, "gauge" }
func (g *Gauge) signature() string                  { return "gauge|" + g.help }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.name, formatValue(g.Value()))
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, &Gauge{name: name, help: help}).(*Gauge)
}

// Histogram is a fixed-bucket histogram of observations (latencies in
// seconds, by convention). Observations are lock-free: one atomic add
// into the bucket plus a CAS-add into the sum.
type Histogram struct {
	name, help string
	labelNames []string
	labelVals  []string
	buckets    []float64 // ascending upper bounds; +Inf is implicit
	counts     []atomic.Uint64
	sumBits    atomic.Uint64
	count      atomic.Uint64
}

func newHistogram(name, help string, buckets []float64, labelNames, labelVals []string) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	h := &Histogram{name: name, help: help, buckets: buckets, labelNames: labelNames, labelVals: labelVals}
	h.counts = make([]atomic.Uint64, len(buckets)+1)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// Count returns the number of observations recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) describe() (string, string, string) { return h.name, h.help, "histogram" }
func (h *Histogram) signature() string {
	return "histogram|" + h.help + "|" + fmt.Sprint(h.buckets)
}

func (h *Histogram) write(w io.Writer) {
	names := append(append([]string{}, h.labelNames...), "le")
	cum := uint64(0)
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		vals := append(append([]string{}, h.labelVals...), formatValue(ub))
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, labelPairs(names, vals), cum)
	}
	cum += h.counts[len(h.buckets)].Load()
	vals := append(append([]string{}, h.labelVals...), "+Inf")
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, labelPairs(names, vals), cum)
	pairs := labelPairs(h.labelNames, h.labelVals)
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, pairs, formatValue(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, pairs, cum)
}

// Histogram registers (or returns) an unlabeled histogram. A nil
// buckets slice takes DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, newHistogram(name, help, buckets, nil, nil)).(*Histogram)
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	name, help string
	labels     []string

	mu       sync.RWMutex
	children map[string]*labeledCounter
	order    []string
}

type labeledCounter struct {
	vals []string
	v    atomic.Uint64
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	checkLabels(name, labels)
	return r.register(name, &CounterVec{
		name: name, help: help, labels: labels,
		children: map[string]*labeledCounter{},
	}).(*CounterVec)
}

func (v *CounterVec) describe() (string, string, string) { return v.name, v.help, "counter" }
func (v *CounterVec) signature() string {
	return "counter|" + v.help + "|" + strings.Join(v.labels, ",")
}

func (v *CounterVec) child(values []string) *labeledCounter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c = &labeledCounter{vals: append([]string{}, values...)}
	v.children[key] = c
	v.order = append(v.order, key)
	return c
}

// Inc adds one to the child counter for the given label values.
func (v *CounterVec) Inc(values ...string) { v.child(values).v.Add(1) }

// Add adds n to the child counter for the given label values.
func (v *CounterVec) Add(n uint64, values ...string) { v.child(values).v.Add(n) }

// Value returns the child counter's current count (0 when the child
// has never been touched).
func (v *CounterVec) Value(values ...string) uint64 {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	defer v.mu.RUnlock()
	if c, ok := v.children[key]; ok {
		return c.v.Load()
	}
	return 0
}

func (v *CounterVec) write(w io.Writer) {
	v.mu.RLock()
	keys := append([]string{}, v.order...)
	children := make([]*labeledCounter, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.RUnlock()
	for _, c := range children {
		fmt.Fprintf(w, "%s%s %d\n", v.name, labelPairs(v.labels, c.vals), c.v.Load())
	}
}

// GaugeVec is a family of gauges distinguished by label values — the
// shape the router's per-peer breaker-state export uses.
type GaugeVec struct {
	name, help string
	labels     []string

	mu       sync.RWMutex
	children map[string]*labeledGauge
	order    []string
}

type labeledGauge struct {
	vals []string
	bits atomic.Uint64
}

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	checkLabels(name, labels)
	return r.register(name, &GaugeVec{
		name: name, help: help, labels: labels,
		children: map[string]*labeledGauge{},
	}).(*GaugeVec)
}

func (v *GaugeVec) describe() (string, string, string) { return v.name, v.help, "gauge" }
func (v *GaugeVec) signature() string {
	return "gauge|" + v.help + "|" + strings.Join(v.labels, ",")
}

func (v *GaugeVec) child(values []string) *labeledGauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	g, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[key]; ok {
		return g
	}
	g = &labeledGauge{vals: append([]string{}, values...)}
	v.children[key] = g
	v.order = append(v.order, key)
	return g
}

// Set replaces the child gauge's value for the given label values.
func (v *GaugeVec) Set(val float64, values ...string) {
	v.child(values).bits.Store(math.Float64bits(val))
}

// Add adjusts the child gauge for the given label values by d.
func (v *GaugeVec) Add(d float64, values ...string) {
	g := v.child(values)
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the child gauge's current value (0 when the child has
// never been touched).
func (v *GaugeVec) Value(values ...string) float64 {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	defer v.mu.RUnlock()
	if g, ok := v.children[key]; ok {
		return math.Float64frombits(g.bits.Load())
	}
	return 0
}

func (v *GaugeVec) write(w io.Writer) {
	v.mu.RLock()
	keys := append([]string{}, v.order...)
	children := make([]*labeledGauge, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.RUnlock()
	for _, g := range children {
		fmt.Fprintf(w, "%s%s %s\n", v.name, labelPairs(v.labels, g.vals), formatValue(math.Float64frombits(g.bits.Load())))
	}
}

// HistogramVec is a family of histograms distinguished by label
// values — the shape the engine's per-(fragment, strategy) latency
// family uses.
type HistogramVec struct {
	name, help string
	labels     []string
	buckets    []float64

	mu       sync.RWMutex
	children map[string]*Histogram
	order    []string
}

// HistogramVec registers (or returns) a labeled histogram family. A
// nil buckets slice takes DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	checkLabels(name, labels)
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return r.register(name, &HistogramVec{
		name: name, help: help, labels: labels, buckets: buckets,
		children: map[string]*Histogram{},
	}).(*HistogramVec)
}

func (v *HistogramVec) describe() (string, string, string) { return v.name, v.help, "histogram" }
func (v *HistogramVec) signature() string {
	return "histogram|" + v.help + "|" + fmt.Sprint(v.buckets) + "|" + strings.Join(v.labels, ",")
}

// With returns the child histogram for the given label values (created
// on first use).
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	h, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.children[key]; ok {
		return h
	}
	h = newHistogram(v.name, v.help, v.buckets, v.labels, append([]string{}, values...))
	v.children[key] = h
	v.order = append(v.order, key)
	return h
}

// Peek returns the child histogram for the given label values, or nil
// if that cell has never been observed. Readers that probe many cells
// speculatively — the adaptive planner scans (fragment, strategy)
// pairs for latency evidence — use Peek so the probe does not
// materialize empty series in the /metrics exposition the way With
// would.
func (v *HistogramVec) Peek(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.children[key]
}

func (v *HistogramVec) write(w io.Writer) {
	v.mu.RLock()
	keys := append([]string{}, v.order...)
	children := make([]*Histogram, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.RUnlock()
	for _, h := range children {
		h.write(w)
	}
}

func checkLabels(name string, labels []string) {
	for _, l := range labels {
		if !metricNameRe.MatchString(l) {
			panic(fmt.Sprintf("obs: metric %q label %q is not snake_case", name, l))
		}
	}
}
