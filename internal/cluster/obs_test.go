package cluster

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// scrapeMetrics fetches base's /metrics and indexes samples by
// name{label=value,...}, verifying Prometheus text parseability.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text: %v", err)
	}
	out := map[string]float64{}
	for _, s := range samples {
		key := s.Name
		if len(s.Labels) > 0 {
			pairs := make([]string, 0, len(s.Labels))
			for k, v := range s.Labels {
				pairs = append(pairs, k+"="+v)
			}
			sort.Strings(pairs)
			key += "{" + strings.Join(pairs, ",") + "}"
		}
		out[key] = s.Value
	}
	return out
}

// logSink is a mutex-guarded slog destination; backend log lines land
// after the router's response reaches the client, so reads must not
// race the handler goroutines.
type logSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logSink) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logSink) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func waitForLog(t *testing.T, b *logSink, substr string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(b.String(), substr) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("log never contained %q; log so far:\n%s", substr, b.String())
}

// flattenSpans indexes a span tree by name.
func flattenSpans(spans []obs.SpanJSON, into map[string]obs.SpanJSON) {
	for _, s := range spans {
		into[s.Name] = s
		flattenSpans(s.Children, into)
	}
}

// TestRoutedTraceEndToEnd is the cross-tier acceptance path: one
// ?trace=1 query through the router returns a combined span tree —
// the router's forward span carrying the owning backend's own tree as
// its remote — under a single request ID that also shows up in the
// backend's slog output and moves the per-path counters on both tiers.
func TestRoutedTraceEndToEnd(t *testing.T) {
	_, ts, backends := newCluster(t, 2, Options{}, store.Config{})
	sink := &logSink{}
	for _, b := range backends {
		b.srv.SetLogger(slog.New(slog.NewTextHandler(sink, nil)))
	}
	const doc = "doc-0"
	owner := backends[store.KeyShard(doc, len(backends))]
	if resp, out := postJSON(t, ts.URL+"/documents", map[string]any{"name": doc, "xml": "<a><b/><b/></a>"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d, body %v", resp.StatusCode, out)
	}

	before := scrapeMetrics(t, ts.URL)
	ownerBefore := scrapeMetrics(t, owner.ts.URL)

	resp, err := http.Get(ts.URL + "/query?doc=" + doc + "&q=count(//b)&trace=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get(obs.HeaderRequestID)
	if id == "" {
		t.Fatal("router minted no X-Request-Id")
	}
	var out struct {
		Node  string         `json:"node"`
		Trace *obs.TraceJSON `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("routed ?trace=1 returned no trace")
	}
	if out.Trace.RequestID != id {
		t.Fatalf("trace request_id = %q, response header id = %q", out.Trace.RequestID, id)
	}

	byName := map[string]obs.SpanJSON{}
	flattenSpans(out.Trace.Spans, byName)
	for _, want := range []string{"route", "forward"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("span %q missing from router trace", want)
		}
	}
	fwd := byName["forward"]
	if fwd.DurNs > byName["route"].DurNs || byName["route"].DurNs > out.Trace.TotalNs {
		t.Fatalf("span durations do not nest: forward=%d route=%d total=%d",
			fwd.DurNs, byName["route"].DurNs, out.Trace.TotalNs)
	}
	remote, ok := fwd.Remote.(map[string]any)
	if !ok {
		t.Fatalf("forward span carries no remote backend trace: %#v", fwd.Remote)
	}
	if remote["request_id"] != id {
		t.Fatalf("backend trace request_id = %v, want %q", remote["request_id"], id)
	}

	// The one ID correlates the backend's structured log...
	waitForLog(t, sink, "request_id="+id)

	// ...and the counters moved on both tiers: exactly one more routed
	// /query on the router, at least one on the owning backend (the
	// trace run bypasses the answer cache, so the backend saw it too).
	after := scrapeMetrics(t, ts.URL)
	ownerAfter := scrapeMetrics(t, owner.ts.URL)
	const routerKey = "router_http_requests_total{path=/query}"
	if d := after[routerKey] - before[routerKey]; d != 1 {
		t.Errorf("%s delta = %v, want 1", routerKey, d)
	}
	const backendKey = "xpath_http_requests_total{path=/query}"
	if d := ownerAfter[backendKey] - ownerBefore[backendKey]; d < 1 {
		t.Errorf("%s delta on owner = %v, want >= 1", backendKey, d)
	}
	if after["router_requests_total"] <= before["router_requests_total"] {
		t.Errorf("router_requests_total did not advance: %v -> %v",
			before["router_requests_total"], after["router_requests_total"])
	}
}

// TestRouterBatchRequestIDLines: a scattered batch stream tags every
// merged NDJSON line with the request's ID — whether the line came
// from a backend stream or was synthesized by the router.
func TestRouterBatchRequestIDLines(t *testing.T) {
	_, ts, _ := newCluster(t, 2, Options{}, store.Config{})
	for _, doc := range []string{"doc-0", "doc-1", "doc-2"} {
		if resp, out := postJSON(t, ts.URL+"/documents", map[string]any{"name": doc, "xml": "<a><b/></a>"}); resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s = %d, body %v", doc, resp.StatusCode, out)
		}
	}
	body, _ := json.Marshal(map[string]any{
		"docs":    []string{"doc-0", "doc-1", "doc-2", "missing-doc"},
		"queries": []string{"count(//b)"},
	})
	req, _ := http.NewRequest("POST", ts.URL+"/batch", bytes.NewReader(body))
	req.Header.Set(obs.HeaderRequestID, "batch-ab12")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(obs.HeaderRequestID); got != "batch-ab12" {
		t.Fatalf("batch response id = %q, want batch-ab12", got)
	}
	lines := readNDJSON(t, resp)
	if len(lines) != 4 {
		t.Fatalf("batch lines = %d, want 4", len(lines))
	}
	for _, line := range lines {
		if line["request_id"] != "batch-ab12" {
			t.Fatalf("line %v: request_id = %v, want batch-ab12", line["index"], line["request_id"])
		}
	}
}

// TestRouterHealthUptime: /health carries uptime and build info next
// to the ring description.
func TestRouterHealthUptime(t *testing.T) {
	_, ts, _ := newCluster(t, 2, Options{}, store.Config{})
	resp, out := getJSON(t, ts.URL+"/health")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %d", resp.StatusCode)
	}
	if _, ok := out["uptime_ms"].(float64); !ok {
		t.Fatalf("health uptime_ms missing: %v", out["uptime_ms"])
	}
	if _, ok := out["build"].(map[string]any); !ok {
		t.Fatalf("health build info missing: %v", out["build"])
	}
}

// TestTraceBypassesAnswerCache: a cached answer must not satisfy a
// ?trace=1 request (a stored body cannot carry this request's spans),
// and a trace run must not poison the cache for later plain queries.
func TestTraceBypassesAnswerCache(t *testing.T) {
	_, ts, _ := newCluster(t, 2, Options{AnswerCacheSize: 16}, store.Config{})
	if resp, out := postJSON(t, ts.URL+"/documents", map[string]any{"name": "doc-0", "xml": "<a><b/></a>"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d, body %v", resp.StatusCode, out)
	}
	url := ts.URL + "/query?doc=doc-0&q=count(//b)"

	// Prime the cache, then confirm a traced request still gets a trace.
	getJSON(t, url)
	if _, out := getJSON(t, url+"&trace=1"); out["trace"] == nil {
		t.Fatal("traced request served from the answer cache (no trace attached)")
	}
	// A plain request after the trace run must not return a trace.
	if _, out := getJSON(t, url); out["trace"] != nil {
		t.Fatal("trace leaked into the answer cache")
	}
}
