package cluster

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// routerMetrics are the router's instruments. The routed-work counters
// are CounterFuncs over the same atomics /stats reports, so the two
// surfaces cannot disagree; per-path HTTP counts and stage latencies
// are recorded by the middleware.
type routerMetrics struct {
	httpRequests *obs.CounterVec
	slowQueries  *obs.Counter
	stage        *obs.HistogramVec
}

func (r *Router) initObs() {
	reg := obs.NewRegistry()
	r.reg = reg
	r.traces = obs.NewTraceRing(0)
	r.metrics = &routerMetrics{
		httpRequests: reg.CounterVec("router_http_requests_total", "HTTP requests by normalized path", "path"),
		slowQueries:  reg.Counter("router_slow_queries_total", "traced requests slower than the -slow-query threshold"),
		stage:        reg.HistogramVec("router_stage_seconds", "per-stage routing latency in seconds", nil, "stage"),
	}
	reg.CounterFunc("router_requests_total", "client requests routed", func() float64 {
		return float64(r.requests.Load())
	})
	reg.CounterFunc("router_retries_total", "replica retries after an unreachable or missing owner", func() float64 {
		return float64(r.retried.Load())
	})
	reg.CounterFunc("router_replicated_total", "successful replica mirror writes", func() float64 {
		return float64(r.replicated.Load())
	})
	reg.CounterFunc("router_replica_errors_total", "failed replica mirror writes", func() float64 {
		return float64(r.replicaErrs.Load())
	})
	reg.CounterFunc("router_drained_total", "read misses answered by the drain ring", func() float64 {
		return float64(r.drained.Load())
	})
	reg.CounterFunc("router_answer_cache_hits_total", "answer cache hits", func() float64 {
		if r.cache == nil {
			return 0
		}
		return float64(r.cache.stats().Hits)
	})
	reg.CounterFunc("router_answer_cache_misses_total", "answer cache misses", func() float64 {
		if r.cache == nil {
			return 0
		}
		return float64(r.cache.stats().Misses)
	})
	reg.CounterFunc("router_answer_cache_invalidations_total", "answer cache entries invalidated by version bumps", func() float64 {
		if r.cache == nil {
			return 0
		}
		return float64(r.cache.stats().Invalidations)
	})
	reg.GaugeFunc("router_peers", "peers in the placement ring", func() float64 {
		return float64(r.ring.Len())
	})
	reg.GaugeFunc("router_peers_healthy", "peers healthy at the last probe", func() float64 {
		healthy := 0
		for _, n := range r.ring.Peers() {
			if n.Healthy() {
				healthy++
			}
		}
		return float64(healthy)
	})
	reg.GaugeFunc("router_ring_generation", "placement ring generation", func() float64 {
		return float64(r.ring.Generation())
	})
	reg.CounterFunc("xpathrouter_repair_rounds_total", "anti-entropy repair rounds completed", func() float64 {
		return float64(r.repairRounds.Load())
	})
	reg.CounterFunc("xpathrouter_repair_copies_total", "replica copies issued by anti-entropy repair", func() float64 {
		return float64(r.repairCopies.Load())
	})
	reg.CounterFunc("xpathrouter_repair_errors_total", "anti-entropy repair listing and copy failures", func() float64 {
		return float64(r.repairErrs.Load())
	})
	reg.CounterFunc("xpathrouter_retry_denied_total", "retries rejected by the retry budget", func() float64 {
		return float64(r.budget.Denied())
	})
	reg.CounterFunc("xpathrouter_shed_total", "calls shed by per-peer in-flight bounds", func() float64 {
		return float64(r.shedTotal())
	})
	// Per-peer breaker position as a gauge (0 closed, 1 half-open,
	// 2 open), updated by each breaker's state-change hook.
	breakerState := reg.GaugeVec("xpathrouter_breaker_state", "per-peer circuit breaker state (0=closed, 1=half-open, 2=open)", "peer")
	for _, n := range r.ring.Peers() {
		if br := n.Breaker(); br != nil {
			breakerState.Set(float64(br.State()), n.Name())
			name := n.Name()
			br.OnStateChange(func(s resilience.BreakerState) {
				breakerState.Set(float64(s), name)
			})
		}
	}
}

// Metrics returns the router's observability registry (served at
// /metrics).
func (r *Router) Metrics() *obs.Registry { return r.reg }

// Traces exposes the router's recent-trace ring (served at
// /debug/traces).
func (r *Router) Traces() *obs.TraceRing { return r.traces }

func (r *Router) log() *slog.Logger {
	if r.opts.Logger != nil {
		return r.opts.Logger
	}
	return slog.Default()
}

// routerPath maps a request path onto the router's fixed endpoint set
// so label cardinality stays bounded by the API.
func routerPath(p string) string {
	switch p {
	case "/documents", "/query", "/batch", "/stats", "/health", "/healthz", "/metrics":
		return p
	}
	if strings.HasPrefix(p, "/debug/") {
		return "debug"
	}
	return "other"
}

// routerTraced reports whether requests to the path get a span tree
// and a structured log line; probes and scrapes stay out.
func routerTraced(p string) bool {
	return p == "/query" || p == "/batch" || p == "/documents"
}

// routerStatusWriter captures the response status while preserving the
// http.Flusher the merged NDJSON batch stream requires.
type routerStatusWriter struct {
	http.ResponseWriter
	status int
}

func (w *routerStatusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *routerStatusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument is the router's observability middleware: it mints the
// request ID the whole fan-out shares (backends receive it via
// X-Request-Id and tag their logs and batch lines with it), opens the
// root "route" span for traced paths, and on completion records the
// trace, emits the structured log line, and fires the slow-query log
// past the threshold.
func (r *Router) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		path := routerPath(req.URL.Path)
		r.metrics.httpRequests.Inc(path)
		id := req.Header.Get(obs.HeaderRequestID)
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.HeaderRequestID, id)
		ctx := obs.WithRequestID(req.Context(), id)
		if !routerTraced(path) {
			next.ServeHTTP(w, req.WithContext(ctx))
			return
		}
		tr := obs.NewTrace(id)
		ctx = obs.WithTrace(ctx, tr)
		ctx, root := obs.StartSpan(ctx, "route")
		root.SetAttr("path", path)
		root.SetAttr("method", req.Method)
		sw := &routerStatusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, req.WithContext(ctx))
		elapsed := time.Since(start)
		root.End()
		rep := tr.Report()
		r.traces.Add(rep)
		r.metrics.stage.With("route").Observe(elapsed.Seconds())
		log := r.log()
		if r.opts.SlowQuery > 0 && elapsed >= r.opts.SlowQuery {
			r.metrics.slowQueries.Inc()
			log.Warn("slow query",
				"request_id", id, "method", req.Method, "path", path,
				"status", sw.status, "dur_ms", elapsed.Milliseconds(),
				"trace", routerTraceAttr(rep))
		}
		log.Info("request",
			"request_id", id, "method", req.Method, "path", path,
			"status", sw.status, "dur_ms", elapsed.Milliseconds())
	})
}

// routerTraceAttr renders a span report as one compact JSON log
// attribute for the slow-query log.
func routerTraceAttr(rep *obs.TraceJSON) string {
	b, err := json.Marshal(rep)
	if err != nil {
		return "unserializable trace"
	}
	return string(b)
}
