package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// PeerError is a peer's application-level error response (a status
// this package has no sentinel for): the router relays its status so
// a backend's 400 stays a 400 at the client. It matches ErrPeer under
// errors.Is.
type PeerError struct {
	Node   string
	Status int
	Msg    string
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: peer %s: status %d: %s", e.Node, e.Status, e.Msg)
}

// Is reports that every PeerError is an ErrPeer.
func (e *PeerError) Is(target error) bool { return target == ErrPeer }

// Options configures a Router.
type Options struct {
	// Retries is how many additional peers (in ring order after the
	// owner) a request is retried on when the owner is unreachable —
	// the -replica-retry flag. 0 means the owner is the only candidate.
	Retries int
	// Timeout bounds unary backend calls (default DefaultTimeout).
	// Batch streams are exempt: only their dial and response-header
	// latency are bounded.
	Timeout time.Duration
	// HealthInterval is the period of the background health prober
	// started by Start (default 5s).
	HealthInterval time.Duration
	// MaxBody bounds client request bodies (default
	// serve.DefaultMaxBodyBytes). Size it to match the backends'
	// -max-body: the router must not reject documents its nodes would
	// accept.
	MaxBody int64
}

// Router partitions documents across N backend nodes with the same
// FNV-1a function the in-process store uses for shards
// (store.KeyShard), so a document's owning node is computed, never
// looked up. /documents and /query are forwarded to the owner (with
// replica retry when it is down); /batch fans out scatter-gather
// style, merging every backend's NDJSON stream into one
// completion-order stream whose lines are tagged with the global query
// index, the document, and the node that produced it — per-source
// provenance in the spirit of annotated query answering. A Router
// over one peer is a plain reverse proxy: single-node deployments are
// the degenerate case, not a separate code path.
type Router struct {
	peers []*Node
	opts  Options

	requests atomic.Uint64 // client requests routed
	retried  atomic.Uint64 // replica retries after an unreachable peer

	stop     chan struct{}
	stopOnce sync.Once
}

// New creates a Router over the given peers (at least one).
func New(peers []*Node, opts Options) (*Router, error) {
	if len(peers) == 0 {
		return nil, errors.New("cluster: router needs at least one peer")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 5 * time.Second
	}
	if opts.Retries > len(peers)-1 {
		opts.Retries = len(peers) - 1
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = serve.DefaultMaxBodyBytes
	}
	return &Router{peers: peers, opts: opts, stop: make(chan struct{})}, nil
}

// Peers returns the router's peer nodes in ring order.
func (r *Router) Peers() []*Node { return r.peers }

// Owner returns the node that owns doc under the cluster's
// partitioning function.
func (r *Router) Owner(doc string) *Node {
	return r.peers[store.KeyShard(doc, len(r.peers))]
}

// candidates returns the nodes a request for doc may be served by:
// the owner followed by the next Retries peers in ring order, with
// known-unhealthy nodes moved to the back so a live replica is tried
// before a dead owner (the dead one stays a last resort — health
// information can be stale).
func (r *Router) candidates(doc string) []*Node {
	own := store.KeyShard(doc, len(r.peers))
	ring := make([]*Node, 0, 1+r.opts.Retries)
	for i := 0; i <= r.opts.Retries; i++ {
		ring = append(ring, r.peers[(own+i)%len(r.peers)])
	}
	sort.SliceStable(ring, func(i, j int) bool {
		return ring[i].Healthy() && !ring[j].Healthy()
	})
	return ring
}

// Start launches the background health prober; Stop ends it. Probes
// run immediately and then every HealthInterval.
func (r *Router) Start() {
	go func() {
		t := time.NewTicker(r.opts.HealthInterval)
		defer t.Stop()
		for {
			r.CheckHealth()
			select {
			case <-r.stop:
				return
			case <-t.C:
			}
		}
	}()
}

// Stop ends the background health prober.
func (r *Router) Stop() { r.stopOnce.Do(func() { close(r.stop) }) }

// CheckHealth probes every peer's /healthz once, concurrently, and
// returns how many are healthy.
func (r *Router) CheckHealth() int {
	var wg sync.WaitGroup
	for _, n := range r.peers {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.opts.Timeout)
			defer cancel()
			n.Healthz(ctx)
		}(n)
	}
	wg.Wait()
	healthy := 0
	for _, n := range r.peers {
		if n.Healthy() {
			healthy++
		}
	}
	return healthy
}

// statusFor maps a typed backend error to the HTTP status the router
// answers with: sentinel conditions keep their canonical statuses, a
// PeerError relays the backend's own status, and an unreachable peer
// is a 502.
func statusFor(err error) int {
	var pe *PeerError
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, store.ErrFull):
		return http.StatusInsufficientStorage
	case errors.Is(err, store.ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &pe):
		return pe.Status
	case errors.Is(err, ErrUnavailable):
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

// Handler returns the router's HTTP handler. The surface mirrors a
// single xpathserve node — /documents, /query, /batch, /stats — so
// clients do not care whether they talk to one node or a fleet; the
// additions are /health (per-peer view) and the node/doc tags on
// routed results.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/documents", r.handleDocuments)
	mux.HandleFunc("/query", r.handleQuery)
	mux.HandleFunc("/batch", r.handleBatch)
	mux.HandleFunc("/stats", r.handleStats)
	mux.HandleFunc("/health", r.handleHealth)
	mux.HandleFunc("/healthz", r.handleHealth)
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Body != nil {
			req.Body = http.MaxBytesReader(w, req.Body, r.opts.MaxBody)
		}
		r.requests.Add(1)
		mux.ServeHTTP(w, req)
	})
}

// handleDocuments routes document registration, fetch and eviction to
// the owning node, and merges all peers' listings for the bare GET.
func (r *Router) handleDocuments(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodPost:
		var body serve.DocumentRequest
		if !serve.DecodeJSON(w, req, &body) {
			return
		}
		if body.Name == "" || body.XML == "" {
			serve.HTTPError(w, http.StatusBadRequest, "both name and xml are required")
			return
		}
		r.routeDoc(w, req, body.Name, false, func(n *Node) (any, error) {
			nodes, err := n.PutDocument(req.Context(), body.Name, body.XML)
			if err != nil {
				return nil, err
			}
			return map[string]any{"name": body.Name, "nodes": nodes, "node": n.Name()}, nil
		})
	case http.MethodGet:
		if name := req.URL.Query().Get("name"); name != "" {
			r.routeDoc(w, req, name, true, func(n *Node) (any, error) {
				info, err := n.GetDocument(req.Context(), name)
				if err != nil {
					return nil, err
				}
				return map[string]any{
					"name": info.Name, "nodes": info.Nodes, "bytes": info.Bytes,
					"idle_ms": info.IdleMs, "xml": info.XML, "node": n.Name(),
				}, nil
			})
			return
		}
		r.handleDocumentList(w, req)
	case http.MethodDelete:
		name := req.URL.Query().Get("name")
		if name == "" {
			serve.HTTPError(w, http.StatusBadRequest, "name is required")
			return
		}
		r.routeDoc(w, req, name, true, func(n *Node) (any, error) {
			if err := n.DeleteDocument(req.Context(), name); err != nil {
				return nil, err
			}
			return map[string]any{"deleted": name, "node": n.Name()}, nil
		})
	default:
		serve.HTTPError(w, http.StatusMethodNotAllowed, "POST a {name, xml} object, GET to list (?name= for one), DELETE ?name= to evict")
	}
}

// routeDoc runs one owner-routed call with replica retry: the
// candidates are tried in order and an unreachable peer always falls
// through to the next. readFallback additionally falls through when a
// live candidate answers "not found" — the read half of replica
// failover: a document registered on a replica while its owner was
// down stays readable (and deletable) after the owner recovers,
// because reads probe the rest of the retry ring before reporting the
// 404. Writes must not do this (registration retried past a live
// owner would fork the document), so POST keeps readFallback off.
func (r *Router) routeDoc(w http.ResponseWriter, req *http.Request, doc string, readFallback bool, call func(*Node) (any, error)) {
	var lastErr error
	for i, n := range r.candidates(doc) {
		if i > 0 {
			r.retried.Add(1)
		}
		out, err := call(n)
		if err == nil {
			serve.WriteJSON(w, http.StatusOK, out)
			return
		}
		if lastErr == nil || !errors.Is(err, ErrUnavailable) {
			// Prefer reporting an application answer (the 404) over
			// the transport noise of whichever replica was dead.
			lastErr = err
		}
		if req.Context().Err() != nil {
			break
		}
		if errors.Is(err, ErrUnavailable) || (readFallback && errors.Is(err, ErrNotFound)) {
			continue
		}
		break
	}
	serve.HTTPError(w, statusFor(lastErr), "%v", lastErr)
}

// handleDocumentList merges every peer's listing; entries are tagged
// with the node that holds them, and unreachable peers are reported
// alongside the merged list instead of failing it.
func (r *Router) handleDocumentList(w http.ResponseWriter, req *http.Request) {
	type taggedDoc struct {
		serve.DocInfo
		Node string `json:"node"`
	}
	var mu sync.Mutex
	docs := []taggedDoc{}
	nodeErrs := map[string]string{}
	var wg sync.WaitGroup
	for _, n := range r.peers {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			list, err := n.Documents(req.Context())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				nodeErrs[n.Name()] = err.Error()
				return
			}
			for _, d := range list {
				docs = append(docs, taggedDoc{DocInfo: d, Node: n.Name()})
			}
		}(n)
	}
	wg.Wait()
	sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
	out := map[string]any{"documents": docs}
	if len(nodeErrs) > 0 {
		out["node_errors"] = nodeErrs
	}
	serve.WriteJSON(w, http.StatusOK, out)
}

// handleQuery forwards one query to the owning node (with replica
// retry) and relays the backend's status and body, tagged with the
// node that answered.
func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	var body serve.QueryRequest
	switch req.Method {
	case http.MethodGet:
		body.Doc = req.URL.Query().Get("doc")
		body.Query = req.URL.Query().Get("q")
	case http.MethodPost:
		if !serve.DecodeJSON(w, req, &body) {
			return
		}
	default:
		serve.HTTPError(w, http.StatusMethodNotAllowed, "GET ?doc=&q= or POST {doc, query}")
		return
	}
	if body.Doc == "" || body.Query == "" {
		serve.HTTPError(w, http.StatusBadRequest, "both doc and query are required")
		return
	}
	var lastErr error
	var notFound map[string]any // first live candidate's 404, relayed if nobody has the doc
	for i, n := range r.candidates(body.Doc) {
		if i > 0 {
			r.retried.Add(1)
		}
		status, resp, err := n.Query(req.Context(), body.Doc, body.Query)
		if err == nil {
			resp["node"] = n.Name()
			if status == http.StatusNotFound {
				// Read fallback: the doc may live on a replica it
				// failed over to while this node was down.
				if notFound == nil {
					notFound = resp
				}
				continue
			}
			serve.WriteJSON(w, status, resp)
			return
		}
		lastErr = err
		if !errors.Is(err, ErrUnavailable) || req.Context().Err() != nil {
			break
		}
	}
	if notFound != nil {
		serve.WriteJSON(w, http.StatusNotFound, notFound)
		return
	}
	serve.HTTPError(w, statusFor(lastErr), "%v", lastErr)
}

// routerBatchRequest is the router's /batch body: either one doc (the
// xpathserve-compatible form) or several. With several, the job list
// is the cross product in doc-major order — for docs [a, b] and Q
// queries, job index i covers doc a for i < Q and doc b for Q ≤ i < 2Q
// — and "index" on each streamed line is that global job index.
type routerBatchRequest struct {
	Doc     string   `json:"doc,omitempty"`
	Docs    []string `json:"docs,omitempty"`
	Queries []string `json:"queries"`
}

// handleBatch is the scatter-gather path: one backend /batch stream
// per requested document, all tied to the client's request context,
// merged line by line in completion order. Every line carries the
// global job index, the document, and the producing node; a document
// whose node cannot be reached (after replica retry) yields one typed
// error line per job instead of stalling the stream, so exactly one
// line per job index always arrives.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		serve.HTTPError(w, http.StatusMethodNotAllowed, "POST a {doc|docs, queries} object")
		return
	}
	var body routerBatchRequest
	if !serve.DecodeJSON(w, req, &body) {
		return
	}
	docs := body.Docs
	if body.Doc != "" {
		docs = append([]string{body.Doc}, docs...)
	}
	if len(docs) == 0 || len(body.Queries) == 0 {
		serve.HTTPError(w, http.StatusBadRequest, "doc (or docs) and queries are required")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := req.Context()

	var mu sync.Mutex // serializes enc writes across backend streams
	writeLine := func(line map[string]any) {
		mu.Lock()
		defer mu.Unlock()
		if ctx.Err() != nil {
			return // client is gone; backends are being cancelled
		}
		enc.Encode(line)
		if fl != nil {
			fl.Flush()
		}
	}

	var wg sync.WaitGroup
	for di, doc := range docs {
		wg.Add(1)
		go func(doc string, base int) {
			defer wg.Done()
			r.streamDoc(ctx, doc, base, body.Queries, writeLine)
		}(doc, di*len(body.Queries))
	}
	wg.Wait()
}

// streamDoc relays one document's backend batch stream, re-tagging
// each line with its global index, the document, and the node.
// Replica retry applies only before the first line is on the wire;
// after a mid-stream failure, the queries that already streamed are
// not replayed (the client has their lines) and the rest become error
// lines, so the merged stream still carries exactly one line per job.
func (r *Router) streamDoc(ctx context.Context, doc string, base int, queries []string, writeLine func(map[string]any)) {
	emitted := make([]bool, len(queries))
	var lastErr error
	var lastNode string
	for i, n := range r.candidates(doc) {
		if i > 0 {
			r.retried.Add(1)
		}
		streamed := false
		err := n.StreamBatch(ctx, doc, queries, func(line map[string]any) error {
			streamed = true
			if li, ok := line["index"].(float64); ok {
				local := int(li)
				if local >= 0 && local < len(emitted) {
					emitted[local] = true
				}
				line["index"] = base + local
			}
			line["doc"] = doc
			line["node"] = n.Name()
			writeLine(line)
			return nil
		})
		if err == nil {
			return
		}
		lastErr, lastNode = err, n.Name()
		if ctx.Err() != nil {
			return // client gone; no error lines into a dead stream
		}
		// With nothing on the wire yet, an unreachable peer is the
		// replica-retry case and a live peer's "unknown document" is
		// the read-fallback case (the doc may have failed over to a
		// replica); anything else — or a stream that already delivered
		// lines — ends the attempts.
		if streamed || !(errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotFound)) {
			break
		}
	}
	for j := range queries {
		if emitted[j] {
			continue
		}
		writeLine(map[string]any{
			"index": base + j,
			"doc":   doc,
			"node":  lastNode,
			"query": queries[j],
			"error": lastErr.Error(),
		})
	}
}

// handleStats aggregates the fleet: each peer's raw /stats under its
// node name, the summed store fill, and the router's own counters.
func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		serve.HTTPError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var mu sync.Mutex
	nodes := map[string]any{}
	var total store.Stats
	healthy := 0
	var wg sync.WaitGroup
	for _, n := range r.peers {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			st, err := n.Stats(req.Context())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				nodes[n.Name()] = map[string]string{"error": err.Error()}
				return
			}
			healthy++
			nodes[n.Name()] = st.Raw
			total.Entries += st.Store.Entries
			total.Bytes += st.Store.Bytes
			total.Hits += st.Store.Hits
			total.Misses += st.Store.Misses
			total.Evictions += st.Store.Evictions
		}(n)
	}
	wg.Wait()
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"router": map[string]any{
			"peers":    len(r.peers),
			"healthy":  healthy,
			"requests": r.requests.Load(),
			"retries":  r.retried.Load(),
		},
		"store_total": total,
		"nodes":       nodes,
	})
}

// handleHealth reports the router's view of the fleet from the last
// probes (run by Start's background loop and updated by every routed
// call); it answers 200 as long as any peer is healthy, so a load
// balancer in front of several routers drains one only when its whole
// fleet is gone.
func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		serve.HTTPError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type peerHealth struct {
		Node      string `json:"node"`
		URL       string `json:"url"`
		Healthy   bool   `json:"healthy"`
		LastError string `json:"last_error,omitempty"`
		LastCheck string `json:"last_check,omitempty"`
	}
	peers := make([]peerHealth, len(r.peers))
	healthy := 0
	for i, n := range r.peers {
		ph := peerHealth{Node: n.Name(), URL: n.URL(), Healthy: n.Healthy(), LastError: n.LastErr()}
		if lc := n.LastCheck(); !lc.IsZero() {
			ph.LastCheck = lc.UTC().Format(time.RFC3339Nano)
		}
		if ph.Healthy {
			healthy++
		}
		peers[i] = ph
	}
	status := http.StatusOK
	if healthy == 0 {
		status = http.StatusServiceUnavailable
	}
	serve.WriteJSON(w, status, map[string]any{"ok": healthy > 0, "healthy": healthy, "peers": peers})
}
