package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/store"
)

// PeerError is a peer's application-level error response (a status
// this package has no sentinel for): the router relays its status so
// a backend's 400 stays a 400 at the client. It matches ErrPeer under
// errors.Is.
type PeerError struct {
	Node   string
	Status int
	Msg    string
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: peer %s: status %d: %s", e.Node, e.Status, e.Msg)
}

// Is reports that every PeerError is an ErrPeer.
func (e *PeerError) Is(target error) bool { return target == ErrPeer }

// Options configures a Router.
type Options struct {
	// Retries is how many additional peers (in ring order after the
	// owner) a request is retried on when the owner is unreachable —
	// the -replica-retry flag. 0 means the owner is the only candidate.
	// Reads always probe at least as far as Replicas, so a replication
	// policy implies its own retry budget.
	Retries int
	// Replicas is how many ring successors a registration is mirrored
	// to beyond the owner — the -replicas flag. 0 means writes land on
	// the owner alone.
	Replicas int
	// Generation stamps the router's placement ring (default 1);
	// operators bump it when the peer set changes so placement epochs
	// are tellable apart on /healthz.
	Generation uint64
	// AnswerCacheSize bounds the router's answer cache (entries).
	// 0 means DefaultAnswerCacheSize; negative disables the cache.
	AnswerCacheSize int
	// DrainPeers, when set, is the previous placement ring: a router
	// in drain mode forwards read misses (404s from the current ring)
	// to the old ring, so clients keep their answers while
	// cmd/xpathreshard is still moving documents over.
	DrainPeers []*Node
	// Parallel caps how many backend /batch streams one client request
	// holds open concurrently — the -parallel flag. 0 means uncapped
	// (streams are I/O-bound, so the library default is one stream per
	// owning node); negative (or 1) streams the per-node groups one at
	// a time.
	Parallel int
	// Timeout bounds unary backend calls (default DefaultTimeout).
	// Batch streams are exempt: only their dial and response-header
	// latency are bounded.
	Timeout time.Duration
	// HealthInterval is the period of the background health prober
	// started by Start (default 5s).
	HealthInterval time.Duration
	// MaxBody bounds client request bodies (default
	// serve.DefaultMaxBodyBytes). Size it to match the backends'
	// -max-body: the router must not reject documents its nodes would
	// accept.
	MaxBody int64
	// Logger is the structured logger routed requests report to (nil:
	// slog.Default()). Every line carries the request_id the backends
	// also log, so one grep follows a request across tiers.
	Logger *slog.Logger
	// SlowQuery, when positive, logs the full span tree of any traced
	// request that takes at least this long — the -slow-query flag.
	SlowQuery time.Duration
	// DownAfter is how many consecutive transport failures mark a peer
	// down (default 3 — hysteresis so one lost probe no longer diverts
	// writes; a single success marks the peer back up).
	DownAfter int
	// RetryBudget is the token-bucket retry ratio — how many retries
	// each first attempt funds (the -retry-budget flag; 0.1 = one retry
	// per ten requests). 0 disables budgeting (retries unbounded).
	RetryBudget float64
	// BreakerThreshold is how many consecutive failures open a peer's
	// circuit breaker (0: resilience.DefaultBreakerThreshold; negative
	// disables breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting
	// probe calls through (0: resilience.DefaultBreakerCooldown).
	BreakerCooldown time.Duration
	// RepairInterval is the anti-entropy repair loop's period — the
	// -repair-interval flag. 0 disables repair.
	RepairInterval time.Duration
	// RepairBurst caps how many replica copies one repair round issues
	// (rate limiting; default 32).
	RepairBurst int
	// PeerInflight bounds concurrent calls per peer (load shedding;
	// 0 = unbounded). Shed calls answer 503 with Retry-After.
	PeerInflight int
	// Seed seeds the retry backoff's jitter and is handed to fault
	// injection for reproducible chaos runs. 0 derives from the clock.
	Seed int64
}

// Router fronts a placement Ring of backend nodes: documents are
// partitioned with the same FNV-1a function the in-process store uses
// for shards (store.KeyShard), so a document's owning node is
// computed, never looked up. /documents and /query are forwarded to
// the owner (with replica retry when it is down) and registrations
// are mirrored to the owner's ring successors (-replicas), each copy
// stored at the owner-assigned monotonic version so staleness stays
// detectable. /batch fans out scatter-gather style with one NDJSON
// stream per owning node (not per document), merged line by line in
// completion order, every line tagged with the global job index, the
// document, and the node that produced it — per-source provenance in
// the spirit of annotated query answering. Repeated identical queries
// are answered from an LRU answer cache keyed by (doc, query,
// version) and invalidated when a registration bumps the document's
// version. A Router over one peer is a plain reverse proxy:
// single-node deployments are the degenerate case, not a separate
// code path.
type Router struct {
	ring *Ring
	old  *Ring // drain-mode fallback ring (nil outside migrations)
	opts Options

	cache *answerCache // nil when disabled

	reg     *obs.Registry
	metrics *routerMetrics
	traces  *obs.TraceRing

	budget  *resilience.Budget  // retry token bucket (nil: unbounded)
	backoff *resilience.Backoff // jittered retry pacing

	requests    atomic.Uint64 // client requests routed
	retried     atomic.Uint64 // replica retries after an unreachable peer
	replicated  atomic.Uint64 // successful replica mirror writes
	replicaErrs atomic.Uint64 // failed replica mirror writes
	drained     atomic.Uint64 // read misses answered by the old ring

	repairRounds atomic.Uint64 // anti-entropy rounds completed
	repairCopies atomic.Uint64 // replicas re-copied by repair
	repairErrs   atomic.Uint64 // repair copy/listing failures

	draining atomic.Bool // BeginDrain flips /healthz to 503

	stop     chan struct{}
	stopOnce sync.Once
}

// New creates a Router over the given peers (at least one). The peers
// become a canonically ordered placement Ring, so the same peer set
// yields the same placement regardless of argument order.
func New(peers []*Node, opts Options) (*Router, error) {
	if opts.Generation == 0 {
		opts.Generation = 1
	}
	ring, err := NewRing(peers, opts.Generation)
	if err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 5 * time.Second
	}
	if opts.Retries > ring.Len()-1 {
		opts.Retries = ring.Len() - 1
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	}
	if opts.Replicas > ring.Len()-1 {
		opts.Replicas = ring.Len() - 1
	}
	if opts.Replicas < 0 {
		opts.Replicas = 0
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = serve.DefaultMaxBodyBytes
	}
	switch {
	case opts.Parallel == 0:
		opts.Parallel = ring.Len() // one stream per owning node: no cap
	case opts.Parallel < 1:
		opts.Parallel = 1
	}
	if opts.DownAfter == 0 {
		opts.DownAfter = 3
	}
	if opts.RepairBurst <= 0 {
		opts.RepairBurst = 32
	}
	r := &Router{ring: ring, opts: opts, stop: make(chan struct{})}
	if len(opts.DrainPeers) > 0 {
		// The old ring keeps the generation before this one.
		old, err := NewRing(opts.DrainPeers, opts.Generation-1)
		if err != nil {
			return nil, fmt.Errorf("drain ring: %w", err)
		}
		r.old = old
	}
	if opts.AnswerCacheSize >= 0 {
		r.cache = newAnswerCache(opts.AnswerCacheSize)
	}
	r.budget = resilience.NewBudget(opts.RetryBudget, 0)
	r.backoff = resilience.NewBackoff(0, 0, opts.Seed)
	// Attach resilience state to every node this router talks to —
	// current ring and drain ring alike, each node once.
	seen := map[*Node]bool{}
	for _, n := range append(r.ring.Peers(), opts.DrainPeers...) {
		if seen[n] {
			continue
		}
		seen[n] = true
		n.SetDownAfter(opts.DownAfter)
		n.SetMaxInflight(opts.PeerInflight)
		if opts.BreakerThreshold >= 0 {
			n.SetBreaker(resilience.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown))
		}
	}
	r.initObs()
	return r, nil
}

// BeginDrain puts the router into drain: /healthz answers 503 so load
// balancers stop sending traffic while in-flight requests finish (the
// server's Shutdown handles the listener side).
func (r *Router) BeginDrain() { r.draining.Store(true) }

// beforeAttempt paces one step of a retry chain: attempt 0 funds the
// retry budget and proceeds at once; each later attempt spends a
// token (failing with ErrRetryBudget when the bucket is dry) and then
// waits out the jittered backoff, aborting early if ctx ends.
func (r *Router) beforeAttempt(ctx context.Context, attempt int) error {
	if attempt == 0 {
		r.budget.Deposit()
		return nil
	}
	if !r.budget.Spend() {
		return ErrRetryBudget
	}
	return resilience.Sleep(ctx, r.backoff.Delay(attempt-1))
}

// writeError answers a routed request's terminal error, adding
// Retry-After on the shedding statuses so well-behaved clients pace
// themselves instead of hammering an overloaded fleet.
func (r *Router) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	serve.HTTPError(w, status, "%v", err)
}

// Ring returns the router's placement ring.
func (r *Router) Ring() *Ring { return r.ring }

// Peers returns the router's peer nodes in canonical ring order.
func (r *Router) Peers() []*Node { return r.ring.Peers() }

// Owner returns the node that owns doc under the cluster's
// partitioning function.
func (r *Router) Owner(doc string) *Node { return r.ring.Owner(doc) }

// spread is how far past the owner a request may be served: the
// larger of the retry and replication budgets, so reads always reach
// the nodes writes were mirrored to.
func (r *Router) spread() int {
	if r.opts.Replicas > r.opts.Retries {
		return r.opts.Replicas
	}
	return r.opts.Retries
}

// candidates returns the nodes a request for doc may be served by:
// the owner followed by the next spread() peers in ring order, with
// known-unhealthy nodes moved to the back so a live replica is tried
// before a dead owner (the dead one stays a last resort — health
// information can be stale).
func (r *Router) candidates(doc string) []*Node {
	return r.slotCandidates(r.ring, r.ring.OwnerIndex(doc))
}

// slotCandidates is candidates keyed by ring slot — the form the
// batch path uses, where a whole per-node job group shares one owner
// slot.
func (r *Router) slotCandidates(ring *Ring, slot int) []*Node {
	peers := ring.Peers()
	spread := r.spread()
	if spread > len(peers)-1 {
		spread = len(peers) - 1
	}
	out := make([]*Node, 0, 1+spread)
	for i := 0; i <= spread; i++ {
		out = append(out, peers[(slot+i)%len(peers)])
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Healthy() && !out[j].Healthy()
	})
	return out
}

// Start launches the background health prober and, when
// RepairInterval is positive, the anti-entropy repair loop; Stop ends
// both. Probes run immediately and then every HealthInterval.
func (r *Router) Start() {
	go func() {
		t := time.NewTicker(r.opts.HealthInterval)
		defer t.Stop()
		for {
			r.CheckHealth()
			select {
			case <-r.stop:
				return
			case <-t.C:
			}
		}
	}()
	if r.opts.RepairInterval > 0 {
		go r.repairLoop()
	}
}

// Stop ends the background health prober and the repair loop.
func (r *Router) Stop() { r.stopOnce.Do(func() { close(r.stop) }) }

// shedTotal sums the per-peer load-shed counters.
func (r *Router) shedTotal() uint64 {
	var total uint64
	for _, n := range r.ring.Peers() {
		total += n.Shed()
	}
	return total
}

// CheckHealth probes every peer's /healthz once, concurrently, and
// returns how many are healthy.
func (r *Router) CheckHealth() int {
	var wg sync.WaitGroup
	for _, n := range r.ring.Peers() {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			//lint:ignore ctxhttp the background health prober owns its probes; each is bounded by the configured timeout, and Stop ends the loop between rounds
			ctx, cancel := context.WithTimeout(context.Background(), r.opts.Timeout)
			defer cancel()
			n.Healthz(ctx)
		}(n)
	}
	wg.Wait()
	healthy := 0
	for _, n := range r.ring.Peers() {
		if n.Healthy() {
			healthy++
		}
	}
	return healthy
}

// statusFor maps a typed backend error to the HTTP status the router
// answers with: sentinel conditions keep their canonical statuses, a
// PeerError relays the backend's own status, and an unreachable peer
// is a 502.
func statusFor(err error) int {
	var pe *PeerError
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, store.ErrFull):
		return http.StatusInsufficientStorage
	case errors.Is(err, store.ErrTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.As(err, &pe):
		return pe.Status
	case errors.Is(err, ErrBreakerOpen), errors.Is(err, ErrOverloaded), errors.Is(err, ErrRetryBudget):
		// Shedding conditions: the fleet is protecting itself, the
		// request is safe to retry after a pause — 503, not 502.
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnavailable):
		return http.StatusBadGateway
	default:
		return http.StatusInternalServerError
	}
}

// Handler returns the router's HTTP handler. The surface mirrors a
// single xpathserve node — /documents, /query, /batch, /stats — so
// clients do not care whether they talk to one node or a fleet; the
// additions are /health (per-peer view plus the ring description) and
// the node/doc tags on routed results.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/documents", r.handleDocuments)
	mux.HandleFunc("/query", r.handleQuery)
	mux.HandleFunc("/batch", r.handleBatch)
	mux.HandleFunc("/stats", r.handleStats)
	mux.HandleFunc("/health", r.handleHealth)
	mux.HandleFunc("/healthz", r.handleHealth)
	mux.Handle("/metrics", r.reg.Handler())
	mux.Handle("/debug/traces", r.traces.Handler())
	return r.instrument(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Body != nil {
			req.Body = http.MaxBytesReader(w, req.Body, r.opts.MaxBody)
		}
		r.requests.Add(1)
		mux.ServeHTTP(w, req)
	}))
}

// handleDocuments routes document registration (with replica
// mirroring), fetch and eviction, and merges all peers' listings for
// the bare GET.
func (r *Router) handleDocuments(w http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodPost:
		var body serve.DocumentRequest
		if !serve.DecodeJSON(w, req, &body) {
			return
		}
		if body.Name == "" || body.XML == "" {
			serve.HTTPError(w, http.StatusBadRequest, "both name and xml are required")
			return
		}
		// The explicit-version mirror form is backend-internal (the
		// replication and reshard write paths); through the router
		// every registration is a fresh client write. Forwarding a
		// client-echoed version would let the backends silently skip
		// it as a "stale mirror" while the client sees a 200.
		body.Version = 0
		r.handleDocumentPut(w, req, body)
	case http.MethodGet:
		if name := req.URL.Query().Get("name"); name != "" {
			r.routeDoc(w, req, name, func(ctx context.Context, n *Node) (any, error) {
				info, err := n.GetDocument(ctx, name)
				if err != nil {
					return nil, err
				}
				return map[string]any{
					"name": info.Name, "nodes": info.Nodes, "bytes": info.Bytes,
					"idle_ms": info.IdleMs, "version": info.Version,
					"xml": info.XML, "node": n.Name(),
				}, nil
			})
			return
		}
		r.handleDocumentList(w, req)
	case http.MethodDelete:
		name := req.URL.Query().Get("name")
		if name == "" {
			serve.HTTPError(w, http.StatusBadRequest, "name is required")
			return
		}
		r.handleDocumentDelete(w, req, name)
	default:
		serve.HTTPError(w, http.StatusMethodNotAllowed, "POST a {name, xml} object, GET to list (?name= for one), DELETE ?name= to evict")
	}
}

// handleDocumentPut is the write path: the document lands on its
// owner (failing over along the ring when the owner is unreachable),
// then the owner-assigned version is mirrored to the next Replicas
// ring successors so -replica-retry reads hit a warm copy. Replica
// failures degrade the write, never fail it: the primary copy is
// durable, the response lists which mirrors took, and the health
// prober plus a later reshard reconcile the rest.
func (r *Router) handleDocumentPut(w http.ResponseWriter, req *http.Request, body serve.DocumentRequest) {
	var lastErr error
	// Writes walk the ring in placement order — owner first, NOT
	// health-sorted like reads: a stale "unhealthy" mark on a live
	// owner must not divert the write to a successor, where (without
	// replication) it would be invisible to owner-first reads. The
	// owner is only passed over on an actual unreachable error below.
	cands := r.ring.Replicas(body.Name, r.spread())
	for i, n := range cands {
		if serr := r.beforeAttempt(req.Context(), i); serr != nil {
			if errors.Is(serr, ErrRetryBudget) {
				lastErr = fmt.Errorf("%w; last attempt: %v", ErrRetryBudget, lastErr)
			}
			break
		}
		if i > 0 {
			r.retried.Add(1)
		}
		actx := resilience.WithAttemptsLeft(req.Context(), len(cands)-i)
		nodes, ver, err := n.PutDocumentAt(actx, body.Name, body.XML, body.Version)
		if err == nil {
			out := map[string]any{"name": body.Name, "nodes": nodes, "node": n.Name()}
			if r.opts.Replicas > 0 {
				var mirrored []string
				var errs map[string]string
				ver, mirrored, errs = r.replicate(req.Context(), body.Name, body.XML, ver, n)
				out["replicas"] = mirrored
				if len(errs) > 0 {
					out["replica_errors"] = errs
				}
			}
			out["version"] = ver
			if r.cache != nil {
				r.cache.bump(body.Name, ver)
			}
			serve.WriteJSON(w, http.StatusOK, out)
			return
		}
		if lastErr == nil || !errors.Is(err, ErrUnavailable) {
			lastErr = err
		}
		if req.Context().Err() != nil {
			break
		}
		if !errors.Is(err, ErrUnavailable) {
			// A live owner's application answer (parse error, full
			// store) must not be retried past it: registration retried
			// past a live owner would fork the document.
			break
		}
	}
	r.writeError(w, lastErr)
}

// replicate mirrors a registration at its owner-assigned version to
// the document's ring successors (skipping primary, the node the
// write already landed on). Mirrors run concurrently; it returns the
// version every copy converged on, the nodes that took the copy, and
// the ones that failed.
//
// Versions are assigned from each node's own store counter, so a
// replica that took a failover write while the primary was down may
// hold the document at a version ABOVE what the primary just
// assigned — its stale-write guard would then pin the old content
// forever. A mirror result reporting a higher resident version
// triggers one reconciliation round: the registration is re-written
// to the primary above the highest resident version and re-mirrored,
// so every copy converges on the new content at a version that
// supersedes the divergent one.
func (r *Router) replicate(ctx context.Context, name, xml string, ver uint64, primary *Node) (uint64, []string, map[string]string) {
	round := func(ver uint64) ([]string, map[string]string, uint64) {
		var mu sync.Mutex
		mirrored := []string{}
		errs := map[string]string{}
		var maxResident uint64
		var wg sync.WaitGroup
		for _, n := range r.ring.Replicas(name, r.opts.Replicas) {
			if n == primary {
				continue
			}
			wg.Add(1)
			go func(n *Node) {
				defer wg.Done()
				_, rv, err := n.PutDocumentAt(ctx, name, xml, ver)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					r.replicaErrs.Add(1)
					errs[n.Name()] = err.Error()
					return
				}
				if rv > ver {
					// Stale-write skip: the replica kept its resident
					// copy at a higher version.
					if rv > maxResident {
						maxResident = rv
					}
					return
				}
				r.replicated.Add(1)
				mirrored = append(mirrored, n.Name())
			}(n)
		}
		wg.Wait()
		sort.Strings(mirrored)
		return mirrored, errs, maxResident
	}
	mirrored, errs, maxResident := round(ver)
	if maxResident > ver {
		ver = maxResident + 1
		if _, rv, err := primary.PutDocumentAt(ctx, name, xml, ver); err == nil && rv >= ver {
			ver = rv
			mirrored, errs, _ = round(ver)
		} else if err != nil {
			errs[primary.Name()] = "reconcile: " + err.Error()
		}
	}
	return ver, mirrored, errs
}

// handleDocumentDelete evicts a document from every node that may
// hold it — the owner, the replica successors within spread(), and
// (in drain mode) the same span of the old ring. Any successful
// removal answers 200; a document nobody held is a 404.
func (r *Router) handleDocumentDelete(w http.ResponseWriter, req *http.Request, name string) {
	targets := r.ring.Replicas(name, r.spread())
	if r.old != nil {
		for _, n := range r.old.Replicas(name, r.spread()) {
			targets = append(targets, n)
		}
	}
	seen := map[string]bool{}
	deleted := []string{}
	nodeErrs := map[string]string{}
	var lastErr error
	for i, n := range targets {
		if seen[n.URL()] {
			continue
		}
		seen[n.URL()] = true
		// Not a retry chain — every distinct holder is visited — but a
		// tight caller deadline is still split across the remaining
		// targets so one slow holder cannot consume all of it.
		actx := resilience.WithAttemptsLeft(req.Context(), len(targets)-i)
		err := n.DeleteDocument(actx, name)
		switch {
		case err == nil:
			deleted = append(deleted, n.Name())
		case errors.Is(err, ErrNotFound):
			// Absence on a replica is fine.
		default:
			// An unreachable holder may still have its copy: surface
			// it, so the client knows the delete is partial and the
			// document can resurface when that node recovers (a
			// reshard or a repeated DELETE reconciles it).
			nodeErrs[n.Name()] = err.Error()
			lastErr = err
		}
		if req.Context().Err() != nil {
			break
		}
	}
	if len(deleted) > 0 {
		if r.cache != nil {
			r.cache.forget(name)
		}
		sort.Strings(deleted)
		out := map[string]any{"deleted": name, "nodes": deleted}
		if len(nodeErrs) > 0 {
			out["node_errors"] = nodeErrs
			out["partial"] = true
		}
		serve.WriteJSON(w, http.StatusOK, out)
		return
	}
	if lastErr == nil {
		serve.HTTPError(w, http.StatusNotFound, "unknown document %q", name)
		return
	}
	r.writeError(w, lastErr)
}

// routeDoc runs one owner-routed read with replica retry: the
// candidates are tried in order, an unreachable peer always falls
// through to the next, and a live candidate's "not found" also falls
// through — the read half of replica failover: a document registered
// on a replica while its owner was down stays readable after the
// owner recovers, because reads probe the rest of the retry ring
// before reporting the 404. In drain mode a miss additionally probes
// the old ring before giving up.
func (r *Router) routeDoc(w http.ResponseWriter, req *http.Request, doc string, call func(context.Context, *Node) (any, error)) {
	type cand struct {
		n       *Node
		drained bool
	}
	var cands []cand
	for _, n := range r.candidates(doc) {
		cands = append(cands, cand{n: n})
	}
	if r.old != nil {
		for _, n := range r.slotCandidates(r.old, r.old.OwnerIndex(doc)) {
			cands = append(cands, cand{n: n, drained: true})
		}
	}
	var lastErr error
	seen := map[string]bool{}
	attempt := 0
	for i, c := range cands {
		n := c.n
		if seen[n.URL()] {
			continue
		}
		seen[n.URL()] = true
		if serr := r.beforeAttempt(req.Context(), attempt); serr != nil {
			if errors.Is(serr, ErrRetryBudget) {
				lastErr = fmt.Errorf("%w; last attempt: %v", ErrRetryBudget, lastErr)
			}
			break
		}
		if attempt > 0 {
			r.retried.Add(1)
		}
		attempt++
		out, err := call(resilience.WithAttemptsLeft(req.Context(), len(cands)-i), n)
		if err == nil {
			if c.drained {
				r.drained.Add(1)
				if m, ok := out.(map[string]any); ok {
					m["drained"] = true
				}
			}
			serve.WriteJSON(w, http.StatusOK, out)
			return
		}
		if lastErr == nil || !errors.Is(err, ErrUnavailable) {
			// Prefer reporting an application answer (the 404) over
			// the transport noise of whichever replica was dead.
			lastErr = err
		}
		if req.Context().Err() != nil {
			break
		}
		if errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotFound) {
			continue
		}
		break
	}
	r.writeError(w, lastErr)
}

// handleDocumentList merges every peer's listing; entries are tagged
// with the node that holds them (a replicated document legitimately
// appears once per holder), and unreachable peers are reported
// alongside the merged list instead of failing it.
func (r *Router) handleDocumentList(w http.ResponseWriter, req *http.Request) {
	type taggedDoc struct {
		serve.DocInfo
		Node string `json:"node"`
	}
	var mu sync.Mutex
	docs := []taggedDoc{}
	nodeErrs := map[string]string{}
	var wg sync.WaitGroup
	for _, n := range r.ring.Peers() {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			list, err := n.Documents(req.Context())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				nodeErrs[n.Name()] = err.Error()
				return
			}
			for _, d := range list {
				docs = append(docs, taggedDoc{DocInfo: d, Node: n.Name()})
			}
		}(n)
	}
	wg.Wait()
	sort.Slice(docs, func(i, j int) bool {
		if docs[i].Name != docs[j].Name {
			return docs[i].Name < docs[j].Name
		}
		return docs[i].Node < docs[j].Node
	})
	out := map[string]any{"documents": docs}
	if len(nodeErrs) > 0 {
		out["node_errors"] = nodeErrs
		out["degraded"] = true
	}
	serve.WriteJSON(w, http.StatusOK, out)
}

// respVersion reads the document version a backend response carries.
func respVersion(resp map[string]any) uint64 {
	if f, ok := resp["version"].(float64); ok && f > 0 {
		return uint64(f)
	}
	return 0
}

// handleQuery forwards one query to the owning node (with replica
// retry and, in drain mode, old-ring fallback on a miss) and relays
// the backend's status and body, tagged with the node that answered.
// Successful answers are cached by (doc, query, version); repeated
// identical queries are served from the cache until a registration
// bumps the document's version.
func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	var body serve.QueryRequest
	switch req.Method {
	case http.MethodGet:
		body.Doc = req.URL.Query().Get("doc")
		body.Query = req.URL.Query().Get("q")
	case http.MethodPost:
		if !serve.DecodeJSON(w, req, &body) {
			return
		}
	default:
		serve.HTTPError(w, http.StatusMethodNotAllowed, "GET ?doc=&q= or POST {doc, query}")
		return
	}
	if body.Doc == "" || body.Query == "" {
		serve.HTTPError(w, http.StatusBadRequest, "both doc and query are required")
		return
	}
	// ?trace=1 bypasses the answer cache entirely: a cached body cannot
	// carry this request's span tree, and a traced answer must not fill
	// the cache with a trace-bearing body other clients would replay.
	if r.cache != nil && !obs.TraceRequested(req) {
		_, cs := obs.StartSpan(req.Context(), "cache_lookup")
		cached, ok := r.cache.get(body.Doc, body.Query)
		if ok {
			cs.SetAttr("outcome", "hit")
			cs.End()
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Router-Cache", "hit")
			w.WriteHeader(http.StatusOK)
			w.Write(cached)
			return
		}
		cs.SetAttr("outcome", "miss")
		cs.End()
	}
	notFound, ok := r.forwardQuery(w, req, body, r.ring, false)
	if ok {
		return
	}
	if notFound != nil && r.old != nil {
		// Drain mode: the document may not have migrated yet.
		if _, ok := r.forwardQuery(w, req, body, r.old, true); ok {
			r.drained.Add(1)
			return
		}
	}
	if notFound != nil {
		serve.WriteJSON(w, http.StatusNotFound, notFound)
	}
}

// forwardQuery tries a query against one ring's candidates. It
// reports whether a response was written; when every live candidate
// answered "unknown document" it instead returns the first such
// response for the caller to relay (or to try another ring first). On
// a transport dead end it writes the typed error itself — except on
// the drain ring, whose unreachability must not mask the current
// ring's answer: there it reports false and writes nothing.
func (r *Router) forwardQuery(w http.ResponseWriter, req *http.Request, body serve.QueryRequest, ring *Ring, drainRing bool) (map[string]any, bool) {
	var lastErr error
	var notFound map[string]any
	traceOn := obs.TraceRequested(req)
	cands := r.slotCandidates(ring, ring.OwnerIndex(body.Doc))
	for i, n := range cands {
		if serr := r.beforeAttempt(req.Context(), i); serr != nil {
			if errors.Is(serr, ErrRetryBudget) {
				lastErr = fmt.Errorf("%w; last attempt: %v", ErrRetryBudget, lastErr)
			}
			break
		}
		if i > 0 {
			r.retried.Add(1)
		}
		// The forward span wraps the whole backend round trip; when the
		// client asked for a trace, the backend evaluates with ?trace=1
		// too and its span tree is spliced in as the forward's remote —
		// one report shows both tiers under one request ID.
		fctx, fspan := obs.StartSpan(resilience.WithAttemptsLeft(req.Context(), len(cands)-i), "forward")
		fspan.SetAttr("node", n.Name())
		status, resp, err := n.Query(fctx, body.Doc, body.Query, traceOn)
		fspan.End()
		if err == nil {
			if bt, ok := resp["trace"]; ok && traceOn {
				delete(resp, "trace")
				fspan.AttachRemote(bt)
			}
			resp["node"] = n.Name()
			if status == http.StatusNotFound {
				// Read fallback: the doc may live on a replica it
				// failed over to while this node was down.
				if notFound == nil {
					notFound = resp
				}
				continue
			}
			if traceOn {
				// Reported before the response is written, so the span
				// durations in it sum to within the reported total.
				resp["trace"] = obs.TraceFrom(req.Context()).Report()
			}
			if drainRing {
				resp["drained"] = true
			} else if status == http.StatusOK && r.cache != nil && !traceOn {
				if ver := respVersion(resp); ver > 0 {
					// Marshal once: the same rendered bytes fill the
					// cache and the wire (this matches WriteJSON's
					// indented-encoder output byte for byte).
					if bodyBytes, merr := json.MarshalIndent(resp, "", "  "); merr == nil {
						bodyBytes = append(bodyBytes, '\n')
						r.cache.put(body.Doc, body.Query, ver, bodyBytes)
						w.Header().Set("Content-Type", "application/json")
						w.WriteHeader(status)
						w.Write(bodyBytes)
						return nil, true
					}
				}
			}
			serve.WriteJSON(w, status, resp)
			return nil, true
		}
		lastErr = err
		if !errors.Is(err, ErrUnavailable) || req.Context().Err() != nil {
			break
		}
	}
	if notFound != nil {
		return notFound, false
	}
	if drainRing {
		return nil, false // an unreachable old ring is not this query's error
	}
	r.writeError(w, lastErr)
	return nil, true
}

// routerBatchRequest is the router's /batch body: either one doc (the
// xpathserve-compatible form) or several. With several, the job list
// is the cross product in doc-major order — for docs [a, b] and Q
// queries, job index i covers doc a for i < Q and doc b for Q ≤ i < 2Q
// — and "index" on each streamed line is that global job index.
type routerBatchRequest struct {
	Doc     string   `json:"doc,omitempty"`
	Docs    []string `json:"docs,omitempty"`
	Queries []string `json:"queries"`
}

// handleBatch is the scatter-gather path: jobs are grouped by owning
// node and each node gets ONE backend /batch stream carrying all of
// its jobs (M documents on N nodes opens at most N streams, not M),
// all tied to the client's request context and merged line by line in
// completion order. Every line carries the global job index, the
// document, and the producing node. A node that cannot be reached
// before its stream starts fails over along the ring; a stream that
// dies mid-flight yields one typed error line per unfinished job, so
// exactly one line per job index always arrives. Jobs a live node
// reports "missing" (a document that failed over or hasn't migrated)
// are re-dispatched to the next candidate instead of erroring
// immediately.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		serve.HTTPError(w, http.StatusMethodNotAllowed, "POST a {doc|docs, queries} object")
		return
	}
	var body routerBatchRequest
	if !serve.DecodeJSON(w, req, &body) {
		return
	}
	docs := body.Docs
	if body.Doc != "" {
		docs = append([]string{body.Doc}, docs...)
	}
	if len(docs) == 0 || len(body.Queries) == 0 {
		serve.HTTPError(w, http.StatusBadRequest, "doc (or docs) and queries are required")
		return
	}
	jobs := make([]serve.BatchJob, 0, len(docs)*len(body.Queries))
	for _, doc := range docs {
		for _, q := range body.Queries {
			jobs = append(jobs, serve.BatchJob{Doc: doc, Query: q})
		}
	}
	groups := map[int][]int{} // owner ring slot -> global job indices
	for gi, j := range jobs {
		slot := r.ring.OwnerIndex(j.Doc)
		groups[slot] = append(groups[slot], gi)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := req.Context()

	reqID := obs.RequestID(ctx)
	var mu sync.Mutex // serializes enc writes across backend streams
	writeLine := func(line map[string]any) {
		// Backend lines already carry the propagated ID; the router adds
		// it to the lines it synthesizes itself (stream-failure errors),
		// so every merged line is correlatable.
		if _, ok := line["request_id"]; !ok && reqID != "" {
			line["request_id"] = reqID
		}
		mu.Lock()
		defer mu.Unlock()
		if ctx.Err() != nil {
			return // client is gone; backends are being cancelled
		}
		enc.Encode(line)
		if fl != nil {
			fl.Flush()
		}
	}

	// In drain mode, jobs the whole new-ring candidate chain reports
	// missing are re-grouped under the old ring's placement and tried
	// there — /batch keeps answering for un-migrated documents exactly
	// like /query does.
	var drainFallback func([]int)
	if r.old != nil {
		drainWrite := func(line map[string]any) {
			line["drained"] = true
			writeLine(line)
		}
		drainFallback = func(indices []int) {
			oldGroups := map[int][]int{}
			for _, gi := range indices {
				slot := r.old.OwnerIndex(jobs[gi].Doc)
				oldGroups[slot] = append(oldGroups[slot], gi)
			}
			for slot, oidx := range oldGroups {
				r.streamGroup(ctx, r.slotCandidates(r.old, slot), 0, oidx, jobs, drainWrite, nil)
			}
		}
	}
	// Fan out one goroutine per owning-node group, capped at
	// Options.Parallel concurrent backend streams by a semaphore
	// (Parallel = 1 degenerates to streaming the groups one at a time).
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.opts.Parallel)
	for slot, indices := range groups {
		wg.Add(1)
		sem <- struct{}{}
		go func(slot int, indices []int) {
			defer wg.Done()
			defer func() { <-sem }()
			r.streamGroup(ctx, r.slotCandidates(r.ring, slot), 0, indices, jobs, writeLine, drainFallback)
		}(slot, indices)
	}
	wg.Wait()
}

// streamGroup relays one per-node job group through the candidate at
// the given attempt, re-tagging each line with its global index, its
// document, and the node. Failover applies only before the first line
// is on the wire; after a mid-stream failure the jobs that already
// streamed are not replayed (the client has their lines) and the rest
// become error lines, so the merged stream still carries exactly one
// line per job. Jobs flagged "missing" by a live node are collected
// and re-dispatched to the next candidate — the grouped-stream form
// of per-document read fallback — and jobs still missing after the
// last candidate go to exhausted (the drain-ring fallback) when one
// is set.
func (r *Router) streamGroup(ctx context.Context, cands []*Node, attempt int, indices []int, jobs []serve.BatchJob, writeLine func(map[string]any), exhausted func([]int)) {
	n := cands[attempt]
	if serr := r.beforeAttempt(ctx, attempt); serr != nil {
		if ctx.Err() != nil {
			return // client gone; no error lines into a dead stream
		}
		// Budget denied: the jobs this group still owes get their typed
		// error lines so the one-line-per-job invariant holds.
		for _, gi := range indices {
			writeLine(map[string]any{
				"index": gi,
				"doc":   jobs[gi].Doc,
				"query": jobs[gi].Query,
				"error": serr.Error(),
			})
		}
		return
	}
	if attempt > 0 {
		r.retried.Add(1)
	}
	sub := make([]serve.BatchJob, len(indices))
	for k, gi := range indices {
		sub[k] = jobs[gi]
	}
	emitted := make([]bool, len(indices))
	var missing []int // local positions to re-dispatch past this candidate
	err := n.StreamJobs(ctx, sub, func(line map[string]any) error {
		li, ok := line["index"].(float64)
		if !ok {
			return nil
		}
		local := int(li)
		if local < 0 || local >= len(indices) {
			return nil
		}
		emitted[local] = true
		if m, _ := line["missing"].(bool); m && (attempt+1 < len(cands) || exhausted != nil) {
			missing = append(missing, local)
			return nil
		}
		line["index"] = indices[local]
		if d, _ := line["doc"].(string); d == "" {
			line["doc"] = sub[local].Doc
		}
		line["node"] = n.Name()
		writeLine(line)
		return nil
	})
	if err != nil {
		if ctx.Err() != nil {
			return // client gone; no error lines into a dead stream
		}
		if attempt+1 < len(cands) {
			streamed := false
			for _, e := range emitted {
				streamed = streamed || e
			}
			if !streamed && (errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotFound)) {
				// Nothing on the wire yet: the whole group fails over.
				r.streamGroup(ctx, cands, attempt+1, indices, jobs, writeLine, exhausted)
				return
			}
		}
		for local, done := range emitted {
			if done {
				continue
			}
			writeLine(map[string]any{
				"index": indices[local],
				"doc":   sub[local].Doc,
				"query": sub[local].Query,
				"node":  n.Name(),
				"error": err.Error(),
			})
		}
	}
	if len(missing) > 0 {
		next := make([]int, len(missing))
		for k, local := range missing {
			next[k] = indices[local]
		}
		if attempt+1 < len(cands) {
			r.streamGroup(ctx, cands, attempt+1, next, jobs, writeLine, exhausted)
		} else {
			exhausted(next) // non-nil: missing is only collected at the
			// last candidate when a fallback exists
		}
	}
}

// handleStats aggregates the fleet: each peer's raw /stats under its
// node name, the summed store fill, and the router's own counters —
// placement generation, replication and retry totals, and the answer
// cache's hit/miss/invalidation counts. A down peer degrades the
// aggregation (its entry carries the error and "degraded" flips true)
// instead of failing it.
func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		serve.HTTPError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var mu sync.Mutex
	nodes := map[string]any{}
	var total store.Stats
	healthy := 0
	var wg sync.WaitGroup
	for _, n := range r.ring.Peers() {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			st, err := n.Stats(req.Context())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				nodes[n.Name()] = map[string]string{"error": err.Error()}
				return
			}
			healthy++
			nodes[n.Name()] = st.Raw
			total.Entries += st.Store.Entries
			total.Bytes += st.Store.Bytes
			total.Hits += st.Store.Hits
			total.Misses += st.Store.Misses
			total.Evictions += st.Store.Evictions
		}(n)
	}
	wg.Wait()
	router := map[string]any{
		"peers":          r.ring.Len(),
		"healthy":        healthy,
		"generation":     r.ring.Generation(),
		"replicas":       r.opts.Replicas,
		"requests":       r.requests.Load(),
		"retries":        r.retried.Load(),
		"replicated":     r.replicated.Load(),
		"replica_errors": r.replicaErrs.Load(),
		"retry_denied":   r.budget.Denied(),
		"shed":           r.shedTotal(),
		"repair_rounds":  r.repairRounds.Load(),
		"repair_copies":  r.repairCopies.Load(),
		"repair_errors":  r.repairErrs.Load(),
	}
	if r.old != nil {
		router["drained"] = r.drained.Load()
	}
	if r.cache != nil {
		router["answer_cache"] = r.cache.stats()
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{
		"router":      router,
		"degraded":    healthy < r.ring.Len(),
		"store_total": total,
		"nodes":       nodes,
	})
}

// handleHealth reports the router's view of the fleet from the last
// probes (run by Start's background loop and updated by every routed
// call) plus the placement ring's description; it answers 200 as long
// as any peer is healthy, so a load balancer in front of several
// routers drains one only when its whole fleet is gone.
func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		serve.HTTPError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type peerHealth struct {
		Node      string `json:"node"`
		URL       string `json:"url"`
		Healthy   bool   `json:"healthy"`
		Breaker   string `json:"breaker,omitempty"`
		Shed      uint64 `json:"shed,omitempty"`
		LastError string `json:"last_error,omitempty"`
		LastCheck string `json:"last_check,omitempty"`
	}
	ringPeers := r.ring.Peers()
	peers := make([]peerHealth, len(ringPeers))
	healthy := 0
	for i, n := range ringPeers {
		ph := peerHealth{Node: n.Name(), URL: n.URL(), Healthy: n.Healthy(), LastError: n.LastErr(), Shed: n.Shed()}
		if br := n.Breaker(); br != nil {
			ph.Breaker = br.State().String()
		}
		if lc := n.LastCheck(); !lc.IsZero() {
			ph.LastCheck = lc.UTC().Format(time.RFC3339Nano)
		}
		if ph.Healthy {
			healthy++
		}
		peers[i] = ph
	}
	draining := r.draining.Load()
	status := http.StatusOK
	if healthy == 0 || draining {
		status = http.StatusServiceUnavailable
	}
	out := map[string]any{
		"ok":        healthy > 0 && !draining,
		"healthy":   healthy,
		"peers":     peers,
		"ring":      r.ring.Describe(),
		"uptime_ms": obs.UptimeMillis(),
		"build":     obs.Build(),
	}
	if draining {
		out["draining"] = true
	}
	if r.old != nil {
		out["drain_ring"] = r.old.Describe()
	}
	serve.WriteJSON(w, status, out)
}
