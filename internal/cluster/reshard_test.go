package cluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// TestReshardGrowRing is the migration acceptance test: a corpus
// registered on a 2-node ring is resharded onto a 3-node ring (the
// two old nodes plus a fresh one) with zero lost documents, preserved
// versions, dry-run planning, idempotent re-runs, and prune cleanup.
func TestReshardGrowRing(t *testing.T) {
	backends := make([]*backend, 3)
	for i := range backends {
		backends[i] = newBackend(t, store.Config{})
	}
	oldNodes := []*Node{backends[0].node, backends[1].node}
	newNodes := []*Node{backends[0].node, backends[1].node, backends[2].node}

	// Register a corpus through a router over the old ring.
	oldRouter, err := New(oldNodes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ots := httptest.NewServer(oldRouter.Handler())
	t.Cleanup(ots.Close)
	docs := map[string]string{}
	for i := 0; i < 10; i++ {
		name := "doc-" + string(rune('a'+i))
		docs[name] = "<a><b/><b/></a>"
		if resp, out := postJSON(t, ots.URL+"/documents", map[string]string{"name": name, "xml": docs[name]}); resp.StatusCode != 200 {
			t.Fatalf("register %s: %d %v", name, resp.StatusCode, out)
		}
	}
	// Replace one document so its version is above 1 — the reshard
	// must preserve it.
	if resp, out := postJSON(t, ots.URL+"/documents", map[string]string{"name": "doc-a", "xml": "<a><b/><b/><b/></a>"}); resp.StatusCode != 200 {
		t.Fatalf("replace doc-a: %d %v", resp.StatusCode, out)
	}
	docs["doc-a"] = "<a><b/><b/><b/></a>"
	ctx := context.Background()
	wantVer, err := backends[0].node.GetDocument(ctx, "doc-a")
	if err != nil {
		// doc-a may live on the other node; find it.
		wantVer, err = backends[1].node.GetDocument(ctx, "doc-a")
		if err != nil {
			t.Fatal(err)
		}
	}

	// Dry run: plans copies onto the fresh node, moves nothing.
	var planLog bytes.Buffer
	dry, err := Reshard(ctx, ReshardOptions{
		From: oldNodes, To: newNodes, DryRun: true, Timeout: 5 * time.Second, Log: &planLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dry.Documents != 10 || dry.Copies == 0 {
		t.Fatalf("dry run = %+v, want 10 documents and a nonzero plan", dry)
	}
	if !strings.Contains(planLog.String(), "copy") {
		t.Fatalf("dry-run log carries no movement plan:\n%s", planLog.String())
	}
	if st := backends[2].srv.StoreStats(); st.Entries != 0 {
		t.Fatalf("dry run moved %d documents onto the new node", st.Entries)
	}

	// Real run: every planned copy lands.
	sum, err := Reshard(ctx, ReshardOptions{From: oldNodes, To: newNodes, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("reshard: %v (%+v)", err, sum)
	}
	if sum.Copies != dry.Copies || sum.Errors != 0 {
		t.Fatalf("reshard = %+v, want %d copies and no errors", sum, dry.Copies)
	}

	// Zero lost documents: a router over the NEW ring answers every
	// document from its new owner, with no retry budget to lean on.
	newRouter, err := New(newNodes, Options{Generation: 2, AnswerCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	nts := httptest.NewServer(newRouter.Handler())
	t.Cleanup(nts.Close)
	moved := 0
	for name := range docs {
		resp, out := getJSON(t, nts.URL+"/query?doc="+name+"&q=count(//b)")
		if resp.StatusCode != 200 {
			t.Fatalf("%s lost in reshard: %d %v", name, resp.StatusCode, out)
		}
		want := 2.0
		if name == "doc-a" {
			want = 3.0
		}
		if out["value"].(map[string]any)["number"] != want {
			t.Fatalf("%s answered %v after reshard, want %v", name, out["value"], want)
		}
		if out["node"] == backends[2].node.Name() {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no document is owned by the new node — placement did not change")
	}
	// The replaced document kept its version on its new owner.
	info, err := newRouter.Owner("doc-a").GetDocument(ctx, "doc-a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != wantVer.Version {
		t.Fatalf("doc-a resharded at version %d, want preserved %d", info.Version, wantVer.Version)
	}

	// Idempotent: a second run copies nothing.
	again, err := Reshard(ctx, ReshardOptions{From: oldNodes, To: newNodes, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if again.Copies != 0 || again.Errors != 0 {
		t.Fatalf("re-run = %+v, want zero copies (idempotent)", again)
	}

	// Prune: off-placement copies disappear; every document stays
	// answerable on the new ring.
	pruned, err := Reshard(ctx, ReshardOptions{From: oldNodes, To: newNodes, Prune: true, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Pruned == 0 {
		t.Fatalf("prune run = %+v, want pruned copies", pruned)
	}
	total := 0
	for _, b := range backends {
		total += b.srv.StoreStats().Entries
	}
	if total != 10 {
		t.Fatalf("after prune the fleet holds %d copies, want exactly 10 (one per doc)", total)
	}
	for name := range docs {
		if resp, _ := getJSON(t, nts.URL+"/query?doc="+name+"&q=count(//b)"); resp.StatusCode != 200 {
			t.Fatalf("%s unanswerable after prune: %d", name, resp.StatusCode)
		}
	}
}

// TestReshardWithReplicas reshards onto a replicated placement: each
// document lands on its new owner plus one successor.
func TestReshardWithReplicas(t *testing.T) {
	backends := make([]*backend, 3)
	for i := range backends {
		backends[i] = newBackend(t, store.Config{})
	}
	oldNodes := []*Node{backends[0].node}
	newNodes := []*Node{backends[0].node, backends[1].node, backends[2].node}
	ctx := context.Background()
	for _, name := range []string{"r1", "r2", "r3", "r4"} {
		if _, _, err := backends[0].node.PutDocument(ctx, name, "<a><b/></a>"); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := Reshard(ctx, ReshardOptions{
		From: oldNodes, To: newNodes, Replicas: 1, Prune: true, Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("reshard: %v (%+v)", err, sum)
	}
	newRing, _ := NewRing(newNodes, 2)
	byURL := map[string]*backend{}
	for _, b := range backends {
		byURL[b.node.URL()] = b
	}
	for _, name := range []string{"r1", "r2", "r3", "r4"} {
		for _, n := range newRing.Replicas(name, 1) {
			if _, ok := byURL[n.URL()].srv.Session(name); !ok {
				t.Fatalf("%s missing from its placement node %s", name, n.Name())
			}
		}
	}
	// An unreachable node aborts instead of resharding around a hole.
	backends[1].ts.Close()
	if _, err := Reshard(ctx, ReshardOptions{
		From: oldNodes, To: newNodes, Timeout: time.Second,
	}); err == nil {
		t.Fatal("reshard with an unreachable node did not abort")
	}
}
