package cluster

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/resilience"
)

// repairCopyDelay spaces consecutive repair copies so a repair round
// trickles instead of bursting into live traffic (RepairBurst caps the
// round's total volume).
const repairCopyDelay = 10 * time.Millisecond

// repairLoop is the anti-entropy background loop Start launches when
// RepairInterval is positive: every interval it runs one RepairNow
// round. Stop ends it between rounds and cancels a round in flight.
func (r *Router) repairLoop() {
	//lint:ignore ctxhttp the background repair loop owns its work; every peer call inside a round is bounded by the per-attempt timeout, and Stop cancels the root
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-r.stop
		cancel()
	}()
	t := time.NewTicker(r.opts.RepairInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		r.RepairNow(ctx)
	}
}

// RepairNow runs one anti-entropy round and reports how many replica
// copies it issued: it polls every peer's /documents version listing,
// diffs each document's replica set (ring placement) against the
// authoritative version (the highest any peer holds), and re-copies
// stale or missing replicas at that version. Unreachable peers are
// skipped — their holdings are unknown, not empty, so nothing is
// inferred from their absence — and a round issues at most RepairBurst
// copies, spaced repairCopyDelay apart.
//
// Repair is idempotent against concurrent writes and reshards: copies
// ride the same explicit-version mirror write replication uses, so a
// backend whose resident version moved past the repair's snapshot
// skips the write as stale (serve.Server.AddDocumentAt), and the next
// round sees the new truth.
func (r *Router) RepairNow(ctx context.Context) int {
	defer r.repairRounds.Add(1)
	peers := r.ring.Peers()
	idx := make(map[*Node]int, len(peers))
	for i, n := range peers {
		idx[n] = i
	}

	// Inventory: every reachable peer's doc -> version map.
	inventory := make([]map[string]uint64, len(peers))
	reachable := make([]bool, len(peers))
	for i, n := range peers {
		docs, err := listDocuments(ctx, n, r.backoff)
		if err != nil {
			if ctx.Err() == nil {
				r.repairErrs.Add(1)
			}
			continue
		}
		reachable[i] = true
		inventory[i] = docs
	}

	// Authoritative version per document: the highest any peer holds.
	auth := map[string]uint64{}
	for _, m := range inventory {
		for doc, ver := range m {
			if ver > auth[doc] {
				auth[doc] = ver
			}
		}
	}
	docs := make([]string, 0, len(auth))
	for doc := range auth {
		docs = append(docs, doc)
	}
	sort.Strings(docs)

	copies := 0
	budget := r.opts.RepairBurst
	for _, doc := range docs {
		if ctx.Err() != nil || budget <= 0 {
			break
		}
		ver := auth[doc]
		placement := r.ring.Replicas(doc, r.opts.Replicas)

		// Stale or missing replicas among the reachable placement nodes.
		var targets []*Node
		for _, n := range placement {
			if i := idx[n]; reachable[i] && inventory[i][doc] < ver {
				targets = append(targets, n)
			}
		}
		if len(targets) == 0 {
			continue
		}

		// Fetch the authoritative copy once, from a placement holder
		// when one exists, any other holder otherwise.
		xml, ok := r.fetchAuthoritative(ctx, doc, ver, placement, peers, idx, inventory)
		if !ok {
			if ctx.Err() == nil {
				r.repairErrs.Add(1)
			}
			continue
		}
		for _, n := range targets {
			if ctx.Err() != nil || budget <= 0 {
				break
			}
			budget--
			if _, rv, err := n.PutDocumentAt(ctx, doc, xml, ver); err != nil {
				r.repairErrs.Add(1)
			} else if rv >= ver {
				// rv > ver means a concurrent client write superseded
				// the snapshot mid-copy; the replica is newer either
				// way, so the copy still counts as convergence.
				r.repairCopies.Add(1)
				copies++
			}
			if err := resilience.Sleep(ctx, repairCopyDelay); err != nil {
				break
			}
		}
	}
	return copies
}

// listDocuments fetches one peer's doc -> version inventory, retrying
// a transient transport failure once with backoff.
func listDocuments(ctx context.Context, n *Node, b *resilience.Backoff) (map[string]uint64, error) {
	out := map[string]uint64{}
	err := resilience.Retry(ctx, 2, b, func(actx context.Context) error {
		docs, lerr := n.Documents(actx)
		if lerr != nil {
			return lerr
		}
		clear(out)
		for _, d := range docs {
			out[d.Name] = d.Version
		}
		return nil
	}, func(err error) bool { return errors.Is(err, ErrUnavailable) })
	if err != nil {
		return nil, err
	}
	return out, nil
}

// fetchAuthoritative retrieves doc's XML at exactly the authoritative
// version, trying placement holders first (their copy is the one reads
// route to) and any other holder after.
func (r *Router) fetchAuthoritative(ctx context.Context, doc string, ver uint64, placement, peers []*Node, idx map[*Node]int, inventory []map[string]uint64) (string, bool) {
	tried := map[*Node]bool{}
	sources := append(append([]*Node{}, placement...), peers...)
	for _, n := range sources {
		if tried[n] {
			continue
		}
		tried[n] = true
		i := idx[n]
		if inventory[i] == nil || inventory[i][doc] != ver {
			continue
		}
		info, err := n.GetDocument(ctx, doc)
		if err != nil || info.Version != ver {
			// Unreachable since the listing, or a concurrent write moved
			// the version: this holder no longer has the snapshot.
			continue
		}
		return info.XML, true
	}
	return "", false
}
