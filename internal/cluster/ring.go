package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/store"
)

// ParsePeers turns a comma-separated list of backend base URLs (the
// -peers / -from / -to flag form) into Nodes, rejecting empties and
// duplicates (a duplicate peer would silently skew the partitioning).
func ParsePeers(spec string, timeout time.Duration) ([]*Node, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty peer list (want comma-separated backend URLs)")
	}
	seen := map[string]bool{}
	var nodes []*Node
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		n, err := NewNode(raw, timeout)
		if err != nil {
			return nil, err
		}
		if seen[n.URL()] {
			return nil, fmt.Errorf("duplicate peer %s", n.URL())
		}
		seen[n.URL()] = true
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("no usable URLs in %q", spec)
	}
	return nodes, nil
}

// Ring is the cluster's explicit placement abstraction: an ordered
// peer list plus a generation number. Ownership is computed, never
// looked up — the same FNV-1a function the in-process store uses for
// shards (store.KeyShard) picks a document's owning slot, and the
// peers after that slot in ring order are its replica successors.
//
// Peers are canonically ordered (sorted by URL) at construction, so a
// ring is a value: two rings built from the same peer set in any
// argument order compute identical owners and successors. That makes
// placement stable under -peers reordering — only adding or removing
// a peer changes where documents live, which is exactly the event the
// reshard tool (cmd/xpathreshard) exists for. The generation number
// names a placement epoch: operators bump it when the peer set
// changes, and /healthz exposes it so a drain-mode router and its old
// ring are distinguishable at a glance.
type Ring struct {
	peers []*Node
	gen   uint64
}

// NewRing builds a ring over the given peers (at least one), sorted
// into canonical order, stamped with the given placement generation.
func NewRing(peers []*Node, gen uint64) (*Ring, error) {
	if len(peers) == 0 {
		return nil, errors.New("cluster: ring needs at least one peer")
	}
	sorted := make([]*Node, len(peers))
	copy(sorted, peers)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].URL() < sorted[j].URL() })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].URL() == sorted[i-1].URL() {
			return nil, errors.New("cluster: duplicate peer " + sorted[i].URL())
		}
	}
	return &Ring{peers: sorted, gen: gen}, nil
}

// Len returns the number of peers on the ring.
func (r *Ring) Len() int { return len(r.peers) }

// Generation returns the ring's placement generation.
func (r *Ring) Generation() uint64 { return r.gen }

// Peers returns the peers in canonical ring order. The slice is the
// ring's own; callers must not mutate it.
func (r *Ring) Peers() []*Node { return r.peers }

// OwnerIndex returns the ring slot that owns doc.
func (r *Ring) OwnerIndex(doc string) int {
	return store.KeyShard(doc, len(r.peers))
}

// Owner returns the peer that owns doc.
func (r *Ring) Owner(doc string) *Node {
	return r.peers[r.OwnerIndex(doc)]
}

// At returns the peer k slots after doc's owner in ring order (k = 0
// is the owner itself, k = 1 the first replica successor, and so on,
// wrapping around the ring).
func (r *Ring) At(doc string, k int) *Node {
	return r.peers[(r.OwnerIndex(doc)+k)%len(r.peers)]
}

// Replicas returns the distinct peers that should hold doc under an
// n-replica policy: the owner followed by its next n ring successors.
// On a ring smaller than n+1 peers the whole ring is returned; n is
// clamped to [0, len-1], so the owner is always included — a caller
// computing placement from a bad flag must never see an empty
// placement (the reshard planner would read that as "prune every
// copy").
func (r *Ring) Replicas(doc string, n int) []*Node {
	if n < 0 {
		n = 0
	}
	if n > len(r.peers)-1 {
		n = len(r.peers) - 1
	}
	out := make([]*Node, 0, n+1)
	for k := 0; k <= n; k++ {
		out = append(out, r.At(doc, k))
	}
	return out
}

// RingPeer is one peer of a ring description.
type RingPeer struct {
	Node string `json:"node"`
	URL  string `json:"url"`
}

// RingDesc is the JSON-serializable description of a ring — the
// placement contract a router exposes on /healthz, precise enough for
// an external client (or the reshard tool) to recompute every
// document's owner: peers in canonical ring order, the generation,
// and the partitioning function's name.
type RingDesc struct {
	Generation uint64     `json:"generation"`
	Placement  string     `json:"placement"`
	Peers      []RingPeer `json:"peers"`
}

// Describe returns the ring's serializable description.
func (r *Ring) Describe() RingDesc {
	d := RingDesc{Generation: r.gen, Placement: "fnv1a mod " + strconv.Itoa(len(r.peers)), Peers: make([]RingPeer, len(r.peers))}
	for i, n := range r.peers {
		d.Peers[i] = RingPeer{Node: n.Name(), URL: n.URL()}
	}
	return d
}
