package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/workload"
)

// newCluster boots n real xpathserve backends behind a router.
func newCluster(t *testing.T, n int, opts Options, cfg store.Config) (*Router, *httptest.Server, []*backend) {
	t.Helper()
	backends := make([]*backend, n)
	nodes := make([]*Node, n)
	for i := range backends {
		backends[i] = newBackend(t, cfg)
		nodes[i] = backends[i].node
	}
	router, err := New(nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(router.Handler())
	t.Cleanup(ts.Close)
	return router, ts, backends
}

// namesOwnedBy returns want document names per owner index under the
// cluster's partitioning function.
func namesOwnedBy(n, want int) [][]string {
	out := make([][]string, n)
	need := n * want
	for i := 0; need > 0; i++ {
		name := fmt.Sprintf("doc-%d", i)
		o := store.KeyShard(name, n)
		if len(out[o]) < want {
			out[o] = append(out[o], name)
			need--
		}
	}
	return out
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// readNDJSON consumes a streamed response body line by line.
func readNDJSON(t *testing.T, resp *http.Response) []map[string]any {
	t.Helper()
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestRoutedQueryAndPlacement is the single-document acceptance path:
// documents registered through the router land on exactly their owning
// node, a routed /query answers from that node (tagged with it), and
// /stats aggregates the fleet.
func TestRoutedQueryAndPlacement(t *testing.T) {
	router, ts, backends := newCluster(t, 2, Options{}, store.Config{})
	owned := namesOwnedBy(2, 2)
	for _, names := range owned {
		for _, name := range names {
			resp, out := postJSON(t, ts.URL+"/documents", map[string]string{
				"name": name, "xml": "<a><b/><b/><b/></a>",
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("register %s: %d %v", name, resp.StatusCode, out)
			}
			if out["node"] != router.Owner(name).Name() {
				t.Fatalf("register %s answered by %v, want owner %s", name, out["node"], router.Owner(name).Name())
			}
		}
	}
	// Placement: each backend holds exactly its owned names.
	for i, b := range backends {
		for j, names := range owned {
			for _, name := range names {
				_, ok := b.srv.Session(name)
				if want := i == j; ok != want {
					t.Fatalf("backend %d holds %s = %v, want %v", i, name, ok, want)
				}
			}
		}
	}
	// Routed query, both GET and POST forms, tagged with the owner.
	for owner, names := range owned {
		name := names[0]
		resp, out := getJSON(t, ts.URL+"/query?doc="+name+"&q=count(//b)")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed query status = %d, body %v", resp.StatusCode, out)
		}
		if val := out["value"].(map[string]any); val["number"] != 3.0 {
			t.Fatalf("count(//b) over %s = %v, want 3", name, val["number"])
		}
		if out["node"] != backends[owner].node.Name() {
			t.Fatalf("query %s answered by %v, want %s", name, out["node"], backends[owner].node.Name())
		}
	}
	// Unknown document: typed 404 from the owner, relayed.
	if resp, _ := getJSON(t, ts.URL+"/query?doc=never-registered&q=count(//b)"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown doc status = %d, want 404", resp.StatusCode)
	}
	// Fleet stats: both nodes reporting, store totals summed.
	_, stats := getJSON(t, ts.URL+"/stats")
	if nodes := stats["nodes"].(map[string]any); len(nodes) != 2 {
		t.Fatalf("stats nodes = %v, want 2 entries", nodes)
	}
	if total := stats["store_total"].(map[string]any); total["entries"].(float64) != 4 {
		t.Fatalf("store_total = %v, want 4 entries", total)
	}
	// Merged listing: all 4 documents, each tagged with its node.
	_, listing := getJSON(t, ts.URL+"/documents")
	docs := listing["documents"].([]any)
	if len(docs) != 4 {
		t.Fatalf("merged listing has %d documents, want 4", len(docs))
	}
	for _, d := range docs {
		entry := d.(map[string]any)
		if entry["node"] != router.Owner(entry["name"].(string)).Name() {
			t.Fatalf("listing entry %v not tagged with its owner", entry)
		}
	}
}

// TestScatterGatherBatch fans one batch across both nodes and checks
// the merged NDJSON stream: exactly one line per global job index
// (doc-major), every line tagged with its doc and owning node, results
// from both nodes interleaved into a single stream, and per-query
// errors carried inline.
func TestScatterGatherBatch(t *testing.T) {
	router, ts, _ := newCluster(t, 2, Options{}, store.Config{})
	owned := namesOwnedBy(2, 1)
	docA, docB := owned[0][0], owned[1][0]
	for _, name := range []string{docA, docB} {
		if resp, out := postJSON(t, ts.URL+"/documents", map[string]string{
			"name": name, "xml": "<a><b/><b/></a>",
		}); resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: %d %v", name, resp.StatusCode, out)
		}
	}
	queries := []string{"count(//b)", "//[", "sum(//b) = 0"}
	buf, _ := json.Marshal(map[string]any{"docs": []string{docA, docB}, "queries": queries})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := readNDJSON(t, resp)
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	byIndex := make([]map[string]any, 6)
	nodesSeen := map[string]bool{}
	for _, line := range lines {
		i := int(line["index"].(float64))
		if i < 0 || i >= 6 || byIndex[i] != nil {
			t.Fatalf("bad or duplicate index %d in %v", i, line)
		}
		byIndex[i] = line
		nodesSeen[line["node"].(string)] = true
	}
	if len(nodesSeen) != 2 {
		t.Fatalf("stream carried results from %d node(s), want both: %v", len(nodesSeen), nodesSeen)
	}
	for i, line := range byIndex {
		doc, q := docA, queries[i%3]
		if i >= 3 {
			doc = docB
		}
		if line["doc"] != doc || line["query"] != q {
			t.Fatalf("index %d = (%v, %v), want (%s, %q)", i, line["doc"], line["query"], doc, q)
		}
		if line["node"] != router.Owner(doc).Name() {
			t.Fatalf("index %d produced by %v, want owner %s", i, line["node"], router.Owner(doc).Name())
		}
		if i%3 == 1 {
			if msg, ok := line["error"].(string); !ok || msg == "" {
				t.Fatalf("index %d (invalid query) carried no error: %v", i, line)
			}
		} else if line["value"] == nil {
			t.Fatalf("index %d carried no value: %v", i, line)
		}
	}
}

// slowQuery forces an O(|D|²) tabulation with cancellation checkpoints
// throughout — the workload for the streaming/cancellation tests
// (mirrors the serving layer's).
const slowQuery = "count(//*[count(preceding::*) > count(following::*)])"

// TestBatchStreamsAcrossNodesBeforeCompletion pins the completion-order
// merge: with the slow document on one node and a tiny one on the
// other, the tiny document's line must be on the wire while the other
// node is still evaluating — the router does not buffer per-doc.
func TestBatchStreamsAcrossNodesBeforeCompletion(t *testing.T) {
	_, ts, backends := newCluster(t, 2, Options{}, store.Config{})
	owned := namesOwnedBy(2, 1)
	slowDoc, fastDoc := owned[0][0], owned[1][0]
	if _, err := backends[0].srv.AddDocument(slowDoc, workload.Doc(1500).XMLString()); err != nil {
		t.Fatal(err)
	}
	if _, err := backends[1].srv.AddDocument(fastDoc, "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	buf, _ := json.Marshal(map[string]any{"docs": []string{slowDoc, fastDoc}, "queries": []string{slowQuery}})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(first), &line); err != nil {
		t.Fatal(err)
	}
	if line["doc"] != fastDoc || line["index"].(float64) != 1 {
		t.Fatalf("first merged line = %v, want the fast doc (index 1)", line)
	}
	rest := readNDJSON(t, &http.Response{Body: resp.Body})
	if len(rest) != 1 || rest[0]["doc"] != slowDoc {
		t.Fatalf("remaining lines = %v, want the slow doc's result", rest)
	}
}

// TestBatchCancelMidStream is the cancellation acceptance test: a
// scatter-gather batch is abandoned mid-stream and every backend's
// in-flight evaluation must drain promptly — the router propagates the
// client's disconnect to all of its backend calls.
func TestBatchCancelMidStream(t *testing.T) {
	_, ts, backends := newCluster(t, 2, Options{}, store.Config{})
	owned := namesOwnedBy(2, 1)
	// Big enough that the O(|D|²) tabulation runs for many seconds even
	// on the indexed axis evaluator, keeping the in-flight window
	// observable; cancellation cuts the test short well before that.
	big := workload.Doc(30000).XMLString()
	for i, names := range owned {
		if _, err := backends[i].srv.AddDocument(names[0], big); err != nil {
			t.Fatal(err)
		}
	}
	buf, _ := json.Marshal(map[string]any{
		"docs":    []string{owned[0][0], owned[1][0]},
		"queries": []string{slowQuery},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/batch", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Both backends must be evaluating before we pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for _, b := range backends {
		for b.srv.Engine().Stats().InFlight < 1 {
			if time.Now().After(deadline) {
				t.Fatal("backends never started evaluating")
			}
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	for _, b := range backends {
		for b.srv.Engine().Stats().InFlight != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("backend in-flight work survived cancellation: %+v", b.srv.Engine().Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestDownedPeer pins the failure modes of an unreachable node: with
// no replica budget a routed request answers promptly with a typed 502
// (never hangs), and with -replica-retry the same registration fails
// over to the next live peer. The batch path degrades to per-job typed
// error lines instead of stalling the merged stream.
func TestDownedPeer(t *testing.T) {
	router, ts, backends := newCluster(t, 2, Options{Timeout: 2 * time.Second}, store.Config{})
	owned := namesOwnedBy(2, 1)
	deadDoc, liveDoc := owned[1][0], owned[0][0]
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": liveDoc, "xml": "<a/>"}); resp.StatusCode != 200 {
		t.Fatal("live registration failed")
	}
	backends[1].ts.Close() // the owner of deadDoc goes down

	start := time.Now()
	resp, out := getJSON(t, ts.URL+"/query?doc="+deadDoc+"&q=count(//b)")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("downed-peer query status = %d, body %v, want 502", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "peer unavailable") {
		t.Fatalf("error %q does not carry the typed unavailability", msg)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("downed-peer query took %v, want a prompt typed error", took)
	}

	// The live doc still routes fine around the dead peer.
	if resp, _ := getJSON(t, ts.URL+"/query?doc="+liveDoc+"&q=count(//b)"); resp.StatusCode != http.StatusOK {
		t.Fatalf("live doc unusable with a peer down: %d", resp.StatusCode)
	}

	// Batch over both docs: the dead doc's jobs come back as typed
	// error lines, the live doc's as results; nothing hangs.
	buf, _ := json.Marshal(map[string]any{"docs": []string{liveDoc, deadDoc}, "queries": []string{"count(//b)"}})
	bresp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	lines := readNDJSON(t, bresp)
	if len(lines) != 2 {
		t.Fatalf("got %d batch lines, want 2", len(lines))
	}
	for _, line := range lines {
		if line["doc"] == deadDoc {
			if msg, _ := line["error"].(string); !strings.Contains(msg, "peer unavailable") {
				t.Fatalf("dead doc line = %v, want typed unavailability error", line)
			}
		} else if line["value"] == nil {
			t.Fatalf("live doc line carried no value: %v", line)
		}
	}

	// Replica retry: a router with a failover budget lands the dead
	// peer's documents on the next node in the ring.
	retryRouter, err := New([]*Node{backends[0].node, backends[1].node}, Options{Retries: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(retryRouter.Handler())
	t.Cleanup(rts.Close)
	resp, out = postJSON(t, rts.URL+"/documents", map[string]string{"name": deadDoc, "xml": "<a><b/></a>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover registration status = %d, body %v", resp.StatusCode, out)
	}
	if out["node"] != backends[0].node.Name() {
		t.Fatalf("failover landed on %v, want surviving node %s", out["node"], backends[0].node.Name())
	}
	resp, out = getJSON(t, rts.URL+"/query?doc="+deadDoc+"&q=count(//b)")
	if resp.StatusCode != http.StatusOK || out["value"].(map[string]any)["number"] != 1.0 {
		t.Fatalf("failover query = %d %v", resp.StatusCode, out)
	}
	_ = router
}

// TestReadFallbackAfterOwnerRecovers pins read-your-writes across a
// failover cycle: a document registered on a replica while its owner
// was down must stay readable (query, fetch, batch) and deletable
// through the router after the owner comes back and answers 404 —
// reads probe the retry ring before trusting a live owner's 404.
func TestReadFallbackAfterOwnerRecovers(t *testing.T) {
	_, _, backends := newCluster(t, 2, Options{}, store.Config{})
	owned := namesOwnedBy(2, 1)
	doc := owned[1][0] // owned by backend 1, registered only on backend 0
	if _, err := backends[0].srv.AddDocument(doc, "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	retryRouter, err := New([]*Node{backends[0].node, backends[1].node}, Options{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(retryRouter.Handler())
	t.Cleanup(rts.Close)

	resp, out := getJSON(t, rts.URL+"/query?doc="+doc+"&q=count(//b)")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failed-over doc unreadable past live owner: %d %v", resp.StatusCode, out)
	}
	if out["node"] != backends[0].node.Name() {
		t.Fatalf("answered by %v, want the replica %s", out["node"], backends[0].node.Name())
	}
	if resp, out := getJSON(t, rts.URL+"/documents?name="+doc); resp.StatusCode != http.StatusOK || out["xml"] == "" {
		t.Fatalf("failed-over doc not fetchable: %d %v", resp.StatusCode, out)
	}
	buf, _ := json.Marshal(map[string]any{"doc": doc, "queries": []string{"count(//b)"}})
	bresp, err := http.Post(rts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	lines := readNDJSON(t, bresp)
	if len(lines) != 1 || lines[0]["value"] == nil {
		t.Fatalf("failed-over batch = %v, want one result line", lines)
	}
	req, _ := http.NewRequest(http.MethodDelete, rts.URL+"/documents?name="+doc, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("failed-over doc not deletable: %d", dresp.StatusCode)
	}
	// A doc registered nowhere still reports a plain 404.
	if resp, _ := getJSON(t, rts.URL+"/query?doc=truly-missing&q=count(//b)"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing doc status = %d, want 404", resp.StatusCode)
	}
}

// TestHealthEndpoint pins the router's fleet view: probes mark a
// downed node, /health reports per-peer state, and an all-dead fleet
// answers 503.
func TestHealthEndpoint(t *testing.T) {
	router, ts, backends := newCluster(t, 2, Options{Timeout: time.Second}, store.Config{})
	if h := router.CheckHealth(); h != 2 {
		t.Fatalf("CheckHealth = %d, want 2", h)
	}
	backends[1].ts.Close()
	if h := router.CheckHealth(); h != 1 {
		t.Fatalf("CheckHealth with one down = %d, want 1", h)
	}
	resp, out := getJSON(t, ts.URL+"/health")
	if resp.StatusCode != http.StatusOK || out["ok"] != true {
		t.Fatalf("health = %d %v, want 200 ok", resp.StatusCode, out)
	}
	peers := out["peers"].([]any)
	if len(peers) != 2 {
		t.Fatalf("health lists %d peers, want 2", len(peers))
	}
	downSeen := false
	for _, p := range peers {
		ph := p.(map[string]any)
		if ph["node"] == backends[1].node.Name() {
			downSeen = true
			if ph["healthy"] != false || ph["last_error"] == "" {
				t.Fatalf("downed peer reported %v", ph)
			}
		}
	}
	if !downSeen {
		t.Fatal("downed peer missing from /health")
	}
	backends[0].ts.Close()
	router.CheckHealth()
	if resp, _ := getJSON(t, ts.URL+"/health"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-dead health status = %d, want 503", resp.StatusCode)
	}
}

// TestSinglePeerDegenerate pins the 1-peer deployment: the router is a
// transparent proxy and every surface works unchanged.
func TestSinglePeerDegenerate(t *testing.T) {
	router, ts, backends := newCluster(t, 1, Options{}, store.Config{})
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": "solo", "xml": "<a><b/><b/></a>"}); resp.StatusCode != 200 {
		t.Fatal("registration through 1-peer router failed")
	}
	if router.Owner("solo") != backends[0].node {
		t.Fatal("1-peer owner is not the single peer")
	}
	resp, out := getJSON(t, ts.URL+"/query?doc=solo&q=count(//b)")
	if resp.StatusCode != 200 || out["value"].(map[string]any)["number"] != 2.0 {
		t.Fatalf("1-peer query = %d %v", resp.StatusCode, out)
	}
	buf, _ := json.Marshal(map[string]any{"doc": "solo", "queries": []string{"count(//b)", "1 = 1"}})
	bresp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if lines := readNDJSON(t, bresp); len(lines) != 2 {
		t.Fatalf("1-peer batch returned %d lines, want 2", len(lines))
	}
}
