package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/workload"
)

// newCluster boots n real xpathserve backends behind a router. The
// returned backends are in ring order (the router sorts peers into a
// canonical ring), so backends[i] is the peer store.KeyShard routes
// slot i to.
func newCluster(t *testing.T, n int, opts Options, cfg store.Config) (*Router, *httptest.Server, []*backend) {
	t.Helper()
	backends := make([]*backend, n)
	nodes := make([]*Node, n)
	for i := range backends {
		backends[i] = newBackend(t, cfg)
		nodes[i] = backends[i].node
	}
	router, err := New(nodes, opts)
	if err != nil {
		t.Fatal(err)
	}
	slot := map[string]int{}
	for i, n := range router.Ring().Peers() {
		slot[n.URL()] = i
	}
	sort.Slice(backends, func(i, j int) bool {
		return slot[backends[i].node.URL()] < slot[backends[j].node.URL()]
	})
	ts := httptest.NewServer(router.Handler())
	t.Cleanup(ts.Close)
	return router, ts, backends
}

// namesOwnedBy returns want document names per owner index under the
// cluster's partitioning function.
func namesOwnedBy(n, want int) [][]string {
	out := make([][]string, n)
	need := n * want
	for i := 0; need > 0; i++ {
		name := fmt.Sprintf("doc-%d", i)
		o := store.KeyShard(name, n)
		if len(out[o]) < want {
			out[o] = append(out[o], name)
			need--
		}
	}
	return out
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// readNDJSON consumes a streamed response body line by line.
func readNDJSON(t *testing.T, resp *http.Response) []map[string]any {
	t.Helper()
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestRoutedQueryAndPlacement is the single-document acceptance path:
// documents registered through the router land on exactly their owning
// node, a routed /query answers from that node (tagged with it), and
// /stats aggregates the fleet.
func TestRoutedQueryAndPlacement(t *testing.T) {
	router, ts, backends := newCluster(t, 2, Options{}, store.Config{})
	owned := namesOwnedBy(2, 2)
	for _, names := range owned {
		for _, name := range names {
			resp, out := postJSON(t, ts.URL+"/documents", map[string]string{
				"name": name, "xml": "<a><b/><b/><b/></a>",
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("register %s: %d %v", name, resp.StatusCode, out)
			}
			if out["node"] != router.Owner(name).Name() {
				t.Fatalf("register %s answered by %v, want owner %s", name, out["node"], router.Owner(name).Name())
			}
		}
	}
	// Placement: each backend holds exactly its owned names.
	for i, b := range backends {
		for j, names := range owned {
			for _, name := range names {
				_, ok := b.srv.Session(name)
				if want := i == j; ok != want {
					t.Fatalf("backend %d holds %s = %v, want %v", i, name, ok, want)
				}
			}
		}
	}
	// Routed query, both GET and POST forms, tagged with the owner.
	for owner, names := range owned {
		name := names[0]
		resp, out := getJSON(t, ts.URL+"/query?doc="+name+"&q=count(//b)")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed query status = %d, body %v", resp.StatusCode, out)
		}
		if val := out["value"].(map[string]any); val["number"] != 3.0 {
			t.Fatalf("count(//b) over %s = %v, want 3", name, val["number"])
		}
		if out["node"] != backends[owner].node.Name() {
			t.Fatalf("query %s answered by %v, want %s", name, out["node"], backends[owner].node.Name())
		}
	}
	// Unknown document: typed 404 from the owner, relayed.
	if resp, _ := getJSON(t, ts.URL+"/query?doc=never-registered&q=count(//b)"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown doc status = %d, want 404", resp.StatusCode)
	}
	// Fleet stats: both nodes reporting, store totals summed.
	_, stats := getJSON(t, ts.URL+"/stats")
	if nodes := stats["nodes"].(map[string]any); len(nodes) != 2 {
		t.Fatalf("stats nodes = %v, want 2 entries", nodes)
	}
	if total := stats["store_total"].(map[string]any); total["entries"].(float64) != 4 {
		t.Fatalf("store_total = %v, want 4 entries", total)
	}
	// Merged listing: all 4 documents, each tagged with its node.
	_, listing := getJSON(t, ts.URL+"/documents")
	docs := listing["documents"].([]any)
	if len(docs) != 4 {
		t.Fatalf("merged listing has %d documents, want 4", len(docs))
	}
	for _, d := range docs {
		entry := d.(map[string]any)
		if entry["node"] != router.Owner(entry["name"].(string)).Name() {
			t.Fatalf("listing entry %v not tagged with its owner", entry)
		}
	}
}

// TestScatterGatherBatch fans one batch across both nodes and checks
// the merged NDJSON stream: exactly one line per global job index
// (doc-major), every line tagged with its doc and owning node, results
// from both nodes interleaved into a single stream, and per-query
// errors carried inline.
func TestScatterGatherBatch(t *testing.T) {
	router, ts, _ := newCluster(t, 2, Options{}, store.Config{})
	owned := namesOwnedBy(2, 1)
	docA, docB := owned[0][0], owned[1][0]
	for _, name := range []string{docA, docB} {
		if resp, out := postJSON(t, ts.URL+"/documents", map[string]string{
			"name": name, "xml": "<a><b/><b/></a>",
		}); resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: %d %v", name, resp.StatusCode, out)
		}
	}
	queries := []string{"count(//b)", "//[", "sum(//b) = 0"}
	buf, _ := json.Marshal(map[string]any{"docs": []string{docA, docB}, "queries": queries})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := readNDJSON(t, resp)
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6", len(lines))
	}
	byIndex := make([]map[string]any, 6)
	nodesSeen := map[string]bool{}
	for _, line := range lines {
		i := int(line["index"].(float64))
		if i < 0 || i >= 6 || byIndex[i] != nil {
			t.Fatalf("bad or duplicate index %d in %v", i, line)
		}
		byIndex[i] = line
		nodesSeen[line["node"].(string)] = true
	}
	if len(nodesSeen) != 2 {
		t.Fatalf("stream carried results from %d node(s), want both: %v", len(nodesSeen), nodesSeen)
	}
	for i, line := range byIndex {
		doc, q := docA, queries[i%3]
		if i >= 3 {
			doc = docB
		}
		if line["doc"] != doc || line["query"] != q {
			t.Fatalf("index %d = (%v, %v), want (%s, %q)", i, line["doc"], line["query"], doc, q)
		}
		if line["node"] != router.Owner(doc).Name() {
			t.Fatalf("index %d produced by %v, want owner %s", i, line["node"], router.Owner(doc).Name())
		}
		if i%3 == 1 {
			if msg, ok := line["error"].(string); !ok || msg == "" {
				t.Fatalf("index %d (invalid query) carried no error: %v", i, line)
			}
		} else if line["value"] == nil {
			t.Fatalf("index %d carried no value: %v", i, line)
		}
	}
}

// slowQuery forces an O(|D|²) tabulation with cancellation checkpoints
// throughout — the workload for the streaming/cancellation tests
// (mirrors the serving layer's).
const slowQuery = "count(//*[count(preceding::*) > count(following::*)])"

// TestBatchStreamsAcrossNodesBeforeCompletion pins the completion-order
// merge: with the slow document on one node and a tiny one on the
// other, the tiny document's line must be on the wire while the other
// node is still evaluating — the router does not buffer per-doc.
func TestBatchStreamsAcrossNodesBeforeCompletion(t *testing.T) {
	_, ts, backends := newCluster(t, 2, Options{}, store.Config{})
	owned := namesOwnedBy(2, 1)
	slowDoc, fastDoc := owned[0][0], owned[1][0]
	if _, _, err := backends[0].srv.AddDocument(slowDoc, workload.Doc(1500).XMLString()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := backends[1].srv.AddDocument(fastDoc, "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	buf, _ := json.Marshal(map[string]any{"docs": []string{slowDoc, fastDoc}, "queries": []string{slowQuery}})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	first, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var line map[string]any
	if err := json.Unmarshal([]byte(first), &line); err != nil {
		t.Fatal(err)
	}
	if line["doc"] != fastDoc || line["index"].(float64) != 1 {
		t.Fatalf("first merged line = %v, want the fast doc (index 1)", line)
	}
	rest := readNDJSON(t, &http.Response{Body: resp.Body})
	if len(rest) != 1 || rest[0]["doc"] != slowDoc {
		t.Fatalf("remaining lines = %v, want the slow doc's result", rest)
	}
}

// TestBatchCancelMidStream is the cancellation acceptance test: a
// scatter-gather batch is abandoned mid-stream and every backend's
// in-flight evaluation must drain promptly — the router propagates the
// client's disconnect to all of its backend calls.
func TestBatchCancelMidStream(t *testing.T) {
	_, ts, backends := newCluster(t, 2, Options{}, store.Config{})
	owned := namesOwnedBy(2, 1)
	// Big enough that the O(|D|²) tabulation runs for many seconds even
	// on the indexed axis evaluator, keeping the in-flight window
	// observable; cancellation cuts the test short well before that.
	big := workload.Doc(30000).XMLString()
	for i, names := range owned {
		if _, _, err := backends[i].srv.AddDocument(names[0], big); err != nil {
			t.Fatal(err)
		}
	}
	buf, _ := json.Marshal(map[string]any{
		"docs":    []string{owned[0][0], owned[1][0]},
		"queries": []string{slowQuery},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/batch", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Both backends must be evaluating before we pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for _, b := range backends {
		for b.srv.Engine().Stats().InFlight < 1 {
			if time.Now().After(deadline) {
				t.Fatal("backends never started evaluating")
			}
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	for _, b := range backends {
		for b.srv.Engine().Stats().InFlight != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("backend in-flight work survived cancellation: %+v", b.srv.Engine().Stats())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// TestDownedPeer pins the failure modes of an unreachable node: with
// no replica budget a routed request answers promptly with a typed 502
// (never hangs), and with -replica-retry the same registration fails
// over to the next live peer. The batch path degrades to per-job typed
// error lines instead of stalling the merged stream.
func TestDownedPeer(t *testing.T) {
	router, ts, backends := newCluster(t, 2, Options{Timeout: 2 * time.Second}, store.Config{})
	owned := namesOwnedBy(2, 1)
	deadDoc, liveDoc := owned[1][0], owned[0][0]
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": liveDoc, "xml": "<a/>"}); resp.StatusCode != 200 {
		t.Fatal("live registration failed")
	}
	backends[1].ts.Close() // the owner of deadDoc goes down

	start := time.Now()
	resp, out := getJSON(t, ts.URL+"/query?doc="+deadDoc+"&q=count(//b)")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("downed-peer query status = %d, body %v, want 502", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "peer unavailable") {
		t.Fatalf("error %q does not carry the typed unavailability", msg)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("downed-peer query took %v, want a prompt typed error", took)
	}

	// The live doc still routes fine around the dead peer.
	if resp, _ := getJSON(t, ts.URL+"/query?doc="+liveDoc+"&q=count(//b)"); resp.StatusCode != http.StatusOK {
		t.Fatalf("live doc unusable with a peer down: %d", resp.StatusCode)
	}

	// Batch over both docs: the dead doc's jobs come back as typed
	// error lines, the live doc's as results; nothing hangs.
	buf, _ := json.Marshal(map[string]any{"docs": []string{liveDoc, deadDoc}, "queries": []string{"count(//b)"}})
	bresp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	lines := readNDJSON(t, bresp)
	if len(lines) != 2 {
		t.Fatalf("got %d batch lines, want 2", len(lines))
	}
	for _, line := range lines {
		if line["doc"] == deadDoc {
			if msg, _ := line["error"].(string); !strings.Contains(msg, "peer unavailable") {
				t.Fatalf("dead doc line = %v, want typed unavailability error", line)
			}
		} else if line["value"] == nil {
			t.Fatalf("live doc line carried no value: %v", line)
		}
	}

	// Replica retry: a router with a failover budget lands the dead
	// peer's documents on the next node in the ring.
	retryRouter, err := New([]*Node{backends[0].node, backends[1].node}, Options{Retries: 1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(retryRouter.Handler())
	t.Cleanup(rts.Close)
	resp, out = postJSON(t, rts.URL+"/documents", map[string]string{"name": deadDoc, "xml": "<a><b/></a>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover registration status = %d, body %v", resp.StatusCode, out)
	}
	if out["node"] != backends[0].node.Name() {
		t.Fatalf("failover landed on %v, want surviving node %s", out["node"], backends[0].node.Name())
	}
	resp, out = getJSON(t, rts.URL+"/query?doc="+deadDoc+"&q=count(//b)")
	if resp.StatusCode != http.StatusOK || out["value"].(map[string]any)["number"] != 1.0 {
		t.Fatalf("failover query = %d %v", resp.StatusCode, out)
	}
	_ = router
}

// TestReadFallbackAfterOwnerRecovers pins read-your-writes across a
// failover cycle: a document registered on a replica while its owner
// was down must stay readable (query, fetch, batch) and deletable
// through the router after the owner comes back and answers 404 —
// reads probe the retry ring before trusting a live owner's 404.
func TestReadFallbackAfterOwnerRecovers(t *testing.T) {
	_, _, backends := newCluster(t, 2, Options{}, store.Config{})
	owned := namesOwnedBy(2, 1)
	doc := owned[1][0] // owned by backend 1, registered only on backend 0
	if _, _, err := backends[0].srv.AddDocument(doc, "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	retryRouter, err := New([]*Node{backends[0].node, backends[1].node}, Options{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(retryRouter.Handler())
	t.Cleanup(rts.Close)

	resp, out := getJSON(t, rts.URL+"/query?doc="+doc+"&q=count(//b)")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failed-over doc unreadable past live owner: %d %v", resp.StatusCode, out)
	}
	if out["node"] != backends[0].node.Name() {
		t.Fatalf("answered by %v, want the replica %s", out["node"], backends[0].node.Name())
	}
	if resp, out := getJSON(t, rts.URL+"/documents?name="+doc); resp.StatusCode != http.StatusOK || out["xml"] == "" {
		t.Fatalf("failed-over doc not fetchable: %d %v", resp.StatusCode, out)
	}
	buf, _ := json.Marshal(map[string]any{"doc": doc, "queries": []string{"count(//b)"}})
	bresp, err := http.Post(rts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	lines := readNDJSON(t, bresp)
	if len(lines) != 1 || lines[0]["value"] == nil {
		t.Fatalf("failed-over batch = %v, want one result line", lines)
	}
	req, _ := http.NewRequest(http.MethodDelete, rts.URL+"/documents?name="+doc, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("failed-over doc not deletable: %d", dresp.StatusCode)
	}
	// A doc registered nowhere still reports a plain 404.
	if resp, _ := getJSON(t, rts.URL+"/query?doc=truly-missing&q=count(//b)"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing doc status = %d, want 404", resp.StatusCode)
	}
}

// TestHealthEndpoint pins the router's fleet view: probes mark a
// downed node (after DownAfter consecutive failures — hysteresis
// against flapping), /health reports per-peer state, and an all-dead
// fleet answers 503.
func TestHealthEndpoint(t *testing.T) {
	router, ts, backends := newCluster(t, 2, Options{Timeout: time.Second}, store.Config{})
	if h := router.CheckHealth(); h != 2 {
		t.Fatalf("CheckHealth = %d, want 2", h)
	}
	backends[1].ts.Close()
	// One lost probe no longer marks the peer down: the default
	// DownAfter is 3 consecutive failures.
	if h := router.CheckHealth(); h != 2 {
		t.Fatalf("CheckHealth after one lost probe = %d, want 2 (hysteresis)", h)
	}
	router.CheckHealth()
	if h := router.CheckHealth(); h != 1 {
		t.Fatalf("CheckHealth with one down = %d, want 1", h)
	}
	resp, out := getJSON(t, ts.URL+"/health")
	if resp.StatusCode != http.StatusOK || out["ok"] != true {
		t.Fatalf("health = %d %v, want 200 ok", resp.StatusCode, out)
	}
	peers := out["peers"].([]any)
	if len(peers) != 2 {
		t.Fatalf("health lists %d peers, want 2", len(peers))
	}
	downSeen := false
	for _, p := range peers {
		ph := p.(map[string]any)
		if ph["node"] == backends[1].node.Name() {
			downSeen = true
			if ph["healthy"] != false || ph["last_error"] == "" {
				t.Fatalf("downed peer reported %v", ph)
			}
		}
	}
	if !downSeen {
		t.Fatal("downed peer missing from /health")
	}
	backends[0].ts.Close()
	for i := 0; i < 3; i++ { // DownAfter consecutive failures
		router.CheckHealth()
	}
	if resp, _ := getJSON(t, ts.URL+"/health"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-dead health status = %d, want 503", resp.StatusCode)
	}
}

// TestSinglePeerDegenerate pins the 1-peer deployment: the router is a
// transparent proxy and every surface works unchanged.
func TestSinglePeerDegenerate(t *testing.T) {
	router, ts, backends := newCluster(t, 1, Options{}, store.Config{})
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": "solo", "xml": "<a><b/><b/></a>"}); resp.StatusCode != 200 {
		t.Fatal("registration through 1-peer router failed")
	}
	if router.Owner("solo") != backends[0].node {
		t.Fatal("1-peer owner is not the single peer")
	}
	resp, out := getJSON(t, ts.URL+"/query?doc=solo&q=count(//b)")
	if resp.StatusCode != 200 || out["value"].(map[string]any)["number"] != 2.0 {
		t.Fatalf("1-peer query = %d %v", resp.StatusCode, out)
	}
	buf, _ := json.Marshal(map[string]any{"doc": "solo", "queries": []string{"count(//b)", "1 = 1"}})
	bresp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if lines := readNDJSON(t, bresp); len(lines) != 2 {
		t.Fatalf("1-peer batch returned %d lines, want 2", len(lines))
	}
}

// TestWriteReplication drives the -replicas path end to end: a
// registration through the router lands on the owner AND its ring
// successor at the same version, and killing the owner leaves /query
// and /batch for that document answering correctly from the replica.
func TestWriteReplication(t *testing.T) {
	router, ts, backends := newCluster(t, 2, Options{Replicas: 1, AnswerCacheSize: -1, Timeout: 2 * time.Second}, store.Config{})
	owned := namesOwnedBy(2, 1)
	doc := owned[0][0] // owned by backends[0]; replica on backends[1]
	resp, out := postJSON(t, ts.URL+"/documents", map[string]string{"name": doc, "xml": "<a><b/><b/></a>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %v", resp.StatusCode, out)
	}
	if out["node"] != backends[0].node.Name() {
		t.Fatalf("registration landed on %v, want owner %s", out["node"], backends[0].node.Name())
	}
	reps, _ := out["replicas"].([]any)
	if len(reps) != 1 || reps[0] != backends[1].node.Name() {
		t.Fatalf("replicas = %v, want [%s]", out["replicas"], backends[1].node.Name())
	}
	ver := out["version"].(float64)
	if ver <= 0 {
		t.Fatalf("registration carried version %v, want > 0", ver)
	}
	// Both backends hold the document at the owner-assigned version.
	ctx := context.Background()
	for i, b := range backends {
		info, err := b.node.GetDocument(ctx, doc)
		if err != nil {
			t.Fatalf("backend %d does not hold %s: %v", i, doc, err)
		}
		if info.Version != uint64(ver) {
			t.Fatalf("backend %d holds %s at version %d, want %v", i, doc, info.Version, ver)
		}
	}

	backends[0].ts.Close() // the owner goes down

	resp, out = getJSON(t, ts.URL+"/query?doc="+doc+"&q=count(//b)")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query with owner down = %d %v, want the replica's answer", resp.StatusCode, out)
	}
	if out["node"] != backends[1].node.Name() {
		t.Fatalf("answered by %v, want replica %s", out["node"], backends[1].node.Name())
	}
	if val := out["value"].(map[string]any); val["number"] != 2.0 {
		t.Fatalf("replica answer = %v, want 2", val["number"])
	}
	buf, _ := json.Marshal(map[string]any{"doc": doc, "queries": []string{"count(//b)"}})
	bresp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	lines := readNDJSON(t, bresp)
	if len(lines) != 1 || lines[0]["value"] == nil {
		t.Fatalf("batch with owner down = %v, want one result line", lines)
	}
	if lines[0]["node"] != backends[1].node.Name() {
		t.Fatalf("batch line from %v, want replica %s", lines[0]["node"], backends[1].node.Name())
	}
	_ = router
}

// TestReplicatedDelete checks that DELETE through a replicating
// router evicts every copy, not just the owner's.
func TestReplicatedDelete(t *testing.T) {
	_, ts, backends := newCluster(t, 2, Options{Replicas: 1}, store.Config{})
	doc := namesOwnedBy(2, 1)[0][0]
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": doc, "xml": "<a/>"}); resp.StatusCode != 200 {
		t.Fatal("registration failed")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/documents?name="+doc, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	json.NewDecoder(dresp.Body).Decode(&out)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d %v", dresp.StatusCode, out)
	}
	nodes, _ := out["nodes"].([]any)
	if len(nodes) != 2 {
		t.Fatalf("delete removed from %v, want both holders", out["nodes"])
	}
	for i, b := range backends {
		if _, ok := b.srv.Session(doc); ok {
			t.Fatalf("backend %d still holds %s after replicated delete", i, doc)
		}
	}
}

// TestAnswerCache pins the router answer cache: a repeated identical
// query is served from the cache (visible in the X-Router-Cache
// header and /stats counters), and re-registering the document bumps
// its version, invalidates the entry, and the next query sees the new
// content — never a stale answer.
func TestAnswerCache(t *testing.T) {
	_, ts, _ := newCluster(t, 2, Options{}, store.Config{})
	doc := namesOwnedBy(2, 1)[0][0]
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": doc, "xml": "<a><b/><b/></a>"}); resp.StatusCode != 200 {
		t.Fatal("registration failed")
	}
	get := func() (*http.Response, map[string]any) {
		return getJSON(t, ts.URL+"/query?doc="+doc+"&q=count(//b)")
	}
	resp, out := get()
	if resp.StatusCode != 200 || out["value"].(map[string]any)["number"] != 2.0 {
		t.Fatalf("first query = %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get("X-Router-Cache") == "hit" {
		t.Fatal("first query claimed a cache hit")
	}
	resp, out = get()
	if resp.Header.Get("X-Router-Cache") != "hit" {
		t.Fatal("repeated identical query was not served from the cache")
	}
	if out["value"].(map[string]any)["number"] != 2.0 {
		t.Fatalf("cached answer = %v, want 2", out)
	}
	_, stats := getJSON(t, ts.URL+"/stats")
	cacheStats := stats["router"].(map[string]any)["answer_cache"].(map[string]any)
	if cacheStats["hits"].(float64) < 1 || cacheStats["misses"].(float64) < 1 {
		t.Fatalf("answer_cache stats = %v, want at least one hit and one miss", cacheStats)
	}

	// Replacing the document invalidates: the next query must see the
	// new content, and /stats counts the invalidation.
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": doc, "xml": "<a><b/><b/><b/></a>"}); resp.StatusCode != 200 {
		t.Fatal("replacement failed")
	}
	resp, out = get()
	if resp.Header.Get("X-Router-Cache") == "hit" {
		t.Fatal("query after replacement was served from the stale cache")
	}
	if out["value"].(map[string]any)["number"] != 3.0 {
		t.Fatalf("post-replacement answer = %v, want 3 (stale cache?)", out)
	}
	_, stats = getJSON(t, ts.URL+"/stats")
	cacheStats = stats["router"].(map[string]any)["answer_cache"].(map[string]any)
	if cacheStats["invalidations"].(float64) < 1 {
		t.Fatalf("answer_cache stats = %v, want at least one invalidation", cacheStats)
	}
}

// TestGroupedBatchOneStreamPerNode is the connection-churn acceptance
// check: a routed /batch over many documents opens at most one
// backend /batch stream per owning node, not one per document.
func TestGroupedBatchOneStreamPerNode(t *testing.T) {
	var mu sync.Mutex
	batchCalls := map[string]int{}
	_, ts, backends := newCluster(t, 2, Options{}, store.Config{})
	// Wrap each backend handler to count /batch requests.
	for i, b := range backends {
		name := fmt.Sprintf("backend-%d", i)
		inner := b.srv.Handler()
		b.ts.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/batch" {
				mu.Lock()
				batchCalls[name]++
				mu.Unlock()
			}
			inner.ServeHTTP(w, r)
		})
	}
	owned := namesOwnedBy(2, 3)
	var docs []string
	for i, names := range owned {
		for _, name := range names {
			if _, _, err := backends[i].srv.AddDocument(name, "<a><b/></a>"); err != nil {
				t.Fatal(err)
			}
			docs = append(docs, name)
		}
	}
	buf, _ := json.Marshal(map[string]any{"docs": docs, "queries": []string{"count(//b)", "1 = 1"}})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := readNDJSON(t, resp)
	if want := len(docs) * 2; len(lines) != want {
		t.Fatalf("got %d lines, want %d", len(lines), want)
	}
	seen := map[int]bool{}
	for _, line := range lines {
		if line["error"] != nil {
			t.Fatalf("unexpected error line: %v", line)
		}
		seen[int(line["index"].(float64))] = true
	}
	if len(seen) != len(docs)*2 {
		t.Fatalf("distinct indices = %d, want %d", len(seen), len(docs)*2)
	}
	mu.Lock()
	defer mu.Unlock()
	for name, calls := range batchCalls {
		if calls != 1 {
			t.Fatalf("%s served %d /batch streams for one routed batch, want 1 (calls: %v)", name, calls, batchCalls)
		}
	}
	if len(batchCalls) != 2 {
		t.Fatalf("batch streams reached %d node(s), want 2: %v", len(batchCalls), batchCalls)
	}
}

// TestBatchPeerDiesMidStream kills a backend while its grouped batch
// stream is mid-flight: every job must still yield exactly one NDJSON
// line, with the dead node's unfinished jobs marked as errors and the
// other node's results intact.
func TestBatchPeerDiesMidStream(t *testing.T) {
	_, ts, backends := newCluster(t, 2, Options{Timeout: 5 * time.Second}, store.Config{})
	owned := namesOwnedBy(2, 1)
	victimDoc, liveDoc := owned[0][0], owned[1][0]
	// The victim's group carries a fast job and a slow one; the fast
	// line proves the stream is live before the kill, the slow job is
	// still in flight when the connection dies.
	if _, _, err := backends[0].srv.AddDocument(victimDoc, workload.Doc(20000).XMLString()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := backends[1].srv.AddDocument(liveDoc, "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	buf, _ := json.Marshal(map[string]any{
		"docs":    []string{victimDoc, liveDoc},
		"queries": []string{"count(/*)", slowQuery},
	})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var lines []map[string]any
	killed := false
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
		// The moment the victim's fast result is on the wire, its
		// stream is provably mid-flight: kill the connection.
		if !killed && line["doc"] == victimDoc && line["error"] == nil {
			backends[0].ts.CloseClientConnections()
			killed = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Fatalf("victim node never streamed a result before completing: %v", lines)
	}
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want exactly 4 (one per job): %v", len(lines), lines)
	}
	byIndex := map[int]map[string]any{}
	for _, line := range lines {
		i := int(line["index"].(float64))
		if byIndex[i] != nil {
			t.Fatalf("index %d emitted twice", i)
		}
		byIndex[i] = line
	}
	// Index 1 is the victim's slow job: it must be an error line from
	// the dead node. Indices 2 and 3 (the live doc) must be results.
	if msg, _ := byIndex[1]["error"].(string); msg == "" {
		t.Fatalf("dead node's unfinished job carried no error: %v", byIndex[1])
	}
	for _, i := range []int{2, 3} {
		if byIndex[i]["value"] == nil {
			t.Fatalf("live node's job %d lost its result: %v", i, byIndex[i])
		}
	}
	// The backends must drain their cancelled work.
	deadline := time.Now().Add(10 * time.Second)
	for backends[0].srv.Engine().Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("victim's in-flight work survived the kill: %+v", backends[0].srv.Engine().Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainMode covers online resharding's client-facing half: a
// router over a new (still empty) ring with -drain-peers pointing at
// the old ring forwards read misses to the old ring, so queries keep
// answering while the corpus migrates.
func TestDrainMode(t *testing.T) {
	oldB := newBackend(t, store.Config{})
	newB := newBackend(t, store.Config{})
	if _, _, err := oldB.srv.AddDocument("legacy", "<a><b/><b/></a>"); err != nil {
		t.Fatal(err)
	}
	router, err := New([]*Node{newB.node}, Options{
		Generation: 2,
		DrainPeers: []*Node{oldB.node},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(router.Handler())
	t.Cleanup(ts.Close)

	resp, out := getJSON(t, ts.URL+"/query?doc=legacy&q=count(//b)")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drained query = %d %v", resp.StatusCode, out)
	}
	if out["drained"] != true || out["node"] != oldB.node.Name() {
		t.Fatalf("drained query answered by %v (drained=%v), want the old ring", out["node"], out["drained"])
	}
	if val := out["value"].(map[string]any); val["number"] != 2.0 {
		t.Fatalf("drained answer = %v, want 2", val)
	}
	// Single-document GET drains too, flagged like /query.
	if resp, out := getJSON(t, ts.URL+"/documents?name=legacy"); resp.StatusCode != http.StatusOK || out["xml"] == "" || out["drained"] != true {
		t.Fatalf("drained document fetch = %d %v, want xml with drained=true", resp.StatusCode, out)
	}
	// Once the document reaches the new ring, the new ring answers.
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": "legacy", "xml": "<a><b/><b/><b/></a>"}); resp.StatusCode != 200 {
		t.Fatal("migrating registration failed")
	}
	resp, out = getJSON(t, ts.URL+"/query?doc=legacy&q=count(//b)")
	if out["drained"] == true || out["node"] != newB.node.Name() {
		t.Fatalf("post-migration query still drained: %v", out)
	}
	if val := out["value"].(map[string]any); val["number"] != 3.0 {
		t.Fatalf("post-migration answer = %v, want 3", val)
	}
	// A document on neither ring is a plain 404, and /health shows
	// both ring descriptions.
	if resp, _ := getJSON(t, ts.URL+"/query?doc=nowhere&q=count(//b)"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing-everywhere doc = %d, want 404", resp.StatusCode)
	}
	_, health := getJSON(t, ts.URL+"/health")
	ring := health["ring"].(map[string]any)
	if ring["generation"].(float64) != 2 {
		t.Fatalf("ring generation = %v, want 2", ring["generation"])
	}
	if _, ok := health["drain_ring"]; !ok {
		t.Fatal("health missing drain_ring description")
	}
	_, stats := getJSON(t, ts.URL+"/stats")
	if stats["router"].(map[string]any)["drained"].(float64) < 1 {
		t.Fatalf("stats drained counter = %v, want >= 1", stats["router"])
	}
}

// TestStatsDegraded pins the satellite contract: /stats with a down
// peer reports partial stats flagged "degraded" instead of failing.
func TestStatsDegraded(t *testing.T) {
	_, ts, backends := newCluster(t, 2, Options{Timeout: time.Second}, store.Config{})
	if _, _, err := backends[0].srv.AddDocument("kept", "<a/>"); err != nil {
		t.Fatal(err)
	}
	resp, out := getJSON(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK || out["degraded"] != false {
		t.Fatalf("healthy stats = %d degraded=%v", resp.StatusCode, out["degraded"])
	}
	backends[1].ts.Close()
	resp, out = getJSON(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats with a down peer = %d, want 200", resp.StatusCode)
	}
	if out["degraded"] != true {
		t.Fatalf("stats with a down peer not flagged degraded: %v", out["router"])
	}
	nodes := out["nodes"].(map[string]any)
	dead := nodes[backends[1].node.Name()].(map[string]any)
	if dead["error"] == nil {
		t.Fatalf("dead node entry carries no error: %v", dead)
	}
	if total := out["store_total"].(map[string]any); total["entries"].(float64) != 1 {
		t.Fatalf("partial store_total = %v, want the live node's entry", total)
	}
}

// TestReplicationReconcilesDivergedVersions pins the failover-write
// divergence repair: when a replica holds a document at a HIGHER
// version than the owner just assigned (it took a failover write on
// its own counter while the owner was down), a registration through
// the router must converge every copy on the new content at a version
// above the divergent one — never pin the replica's old content.
func TestReplicationReconcilesDivergedVersions(t *testing.T) {
	_, ts, backends := newCluster(t, 2, Options{Replicas: 1, AnswerCacheSize: -1}, store.Config{})
	doc := namesOwnedBy(2, 1)[0][0] // owner backends[0], replica backends[1]
	ctx := context.Background()
	// The replica took a failover write at a far-ahead version while
	// the owner was down (simulated via a direct mirror write).
	if _, _, err := backends[1].node.PutDocumentAt(ctx, doc, "<a><b/></a>", 500); err != nil {
		t.Fatal(err)
	}
	// The owner is back; a fresh registration goes through the router.
	resp, out := postJSON(t, ts.URL+"/documents", map[string]string{"name": doc, "xml": "<a><b/><b/><b/></a>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %v", resp.StatusCode, out)
	}
	if ver := out["version"].(float64); ver <= 500 {
		t.Fatalf("registration version = %v, want above the replica's divergent 500", ver)
	}
	// Both copies converged on the NEW content above the old version.
	for i, b := range backends {
		info, err := b.node.GetDocument(ctx, doc)
		if err != nil {
			t.Fatalf("backend %d: %v", i, err)
		}
		if info.Version <= 500 {
			t.Fatalf("backend %d still at version %d, want reconciled above 500", i, info.Version)
		}
		if !strings.Contains(info.XML, "<b/><b/><b/>") && strings.Count(info.XML, "<b") != 3 {
			t.Fatalf("backend %d kept the stale content: %q", i, info.XML)
		}
	}
	// And the replica answers with the new content.
	resp, out = getJSON(t, ts.URL+"/query?doc="+doc+"&q=count(//b)")
	if resp.StatusCode != 200 || out["value"].(map[string]any)["number"] != 3.0 {
		t.Fatalf("post-reconcile query = %d %v, want 3", resp.StatusCode, out)
	}
}

// TestDrainRingUnreachable pins the miss semantics when the old ring
// is gone: a document that exists nowhere must stay a 404 — the drain
// ring's unreachability is not the query's error.
func TestDrainRingUnreachable(t *testing.T) {
	oldB := newBackend(t, store.Config{})
	newB := newBackend(t, store.Config{})
	oldB.ts.Close() // the old ring is already decommissioned
	router, err := New([]*Node{newB.node}, Options{
		Generation: 2,
		DrainPeers: []*Node{oldB.node},
		Timeout:    time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(router.Handler())
	t.Cleanup(ts.Close)
	resp, out := getJSON(t, ts.URL+"/query?doc=ghost&q=count(//b)")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing doc with dead drain ring = %d %v, want 404", resp.StatusCode, out)
	}
	_, stats := getJSON(t, ts.URL+"/stats")
	if d := stats["router"].(map[string]any)["drained"].(float64); d != 0 {
		t.Fatalf("drained counter = %v after a failed drain, want 0", d)
	}
}

// TestBatchDrainsMissingJobs pins /batch's drain-mode parity with
// /query: jobs for a document that has not migrated yet are answered
// by the old ring (flagged drained) instead of erroring.
func TestBatchDrainsMissingJobs(t *testing.T) {
	oldB := newBackend(t, store.Config{})
	newB := newBackend(t, store.Config{})
	if _, _, err := oldB.srv.AddDocument("legacy", "<a><b/><b/></a>"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := newB.srv.AddDocument("migrated", "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	router, err := New([]*Node{newB.node}, Options{
		Generation: 2,
		DrainPeers: []*Node{oldB.node},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(router.Handler())
	t.Cleanup(ts.Close)
	buf, _ := json.Marshal(map[string]any{
		"docs":    []string{"legacy", "migrated", "nowhere"},
		"queries": []string{"count(//b)"},
	})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := readNDJSON(t, resp)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %v", len(lines), lines)
	}
	byIndex := make([]map[string]any, 3)
	for _, line := range lines {
		byIndex[int(line["index"].(float64))] = line
	}
	// legacy: answered by the old ring, flagged drained.
	if byIndex[0]["drained"] != true || byIndex[0]["node"] != oldB.node.Name() {
		t.Fatalf("legacy line = %v, want drained from the old ring", byIndex[0])
	}
	if byIndex[0]["value"].(map[string]any)["number"] != 2.0 {
		t.Fatalf("legacy answer = %v, want 2", byIndex[0])
	}
	// migrated: answered by the new ring, not drained.
	if byIndex[1]["drained"] == true || byIndex[1]["node"] != newB.node.Name() {
		t.Fatalf("migrated line = %v, want the new ring's answer", byIndex[1])
	}
	// nowhere: one error line (missing on both rings), not a stall.
	if msg, _ := byIndex[2]["error"].(string); msg == "" {
		t.Fatalf("missing-everywhere job carried no error: %v", byIndex[2])
	}
}
