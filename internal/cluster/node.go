// Package cluster takes the serving stack multi-process around an
// explicit, versioned placement abstraction. Ring is the placement
// layer: a canonically ordered peer list plus a generation number,
// partitioned with the same FNV-1a routing the in-process store uses
// for shards (store.KeyShard). On top of it sit a Remote
// implementation of store.Store over a peer node's HTTP document API;
// a Router that forwards /query to the owning node (with replica
// retry, an answer cache keyed by document version, and drain-mode
// fallback to an old ring mid-migration), mirrors registrations to
// ring successors at the owner-assigned version, and fans /batch out
// scatter-gather style with one stream per owning node; and Reshard
// (cmd/xpathreshard), which moves a corpus between rings
// idempotently, preserving versions.
//
// The layering is store (placement + memory accounting + versions) →
// engine (compile cache + evaluation) → serve (wire format) → cluster
// (this package: multi-process routing). A single-node deployment is
// the degenerate 1-peer case of the router.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/serve"
	"repro/internal/store"
)

// propagateRequestID forwards the context's request ID to the peer via
// the X-Request-Id header, so backend logs, batch lines and traces
// carry the same ID the router minted.
func propagateRequestID(ctx context.Context, req *http.Request) {
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.HeaderRequestID, id)
	}
}

// ErrUnavailable is returned when a peer cannot be reached at all:
// connection refused, DNS failure, timeout before a response. It is
// the signal that triggers replica retry in the router.
var ErrUnavailable = errors.New("cluster: peer unavailable")

// ErrBreakerOpen is returned when the peer's circuit breaker is open:
// the call failed fast without touching the peer. It wraps
// ErrUnavailable so replica retry moves on to the next candidate.
var ErrBreakerOpen = fmt.Errorf("%w: circuit breaker open", ErrUnavailable)

// ErrOverloaded is returned when the peer's in-flight bound is full
// (load shedding). It wraps ErrUnavailable so replica retry moves on.
var ErrOverloaded = fmt.Errorf("%w: peer in-flight limit reached", ErrUnavailable)

// ErrRetryBudget is returned by the router when its retry budget
// denies another attempt. Deliberately NOT ErrUnavailable: an
// exhausted budget must stop the retry chain, not advance it.
var ErrRetryBudget = errors.New("cluster: retry budget exhausted")

// ErrNotFound is returned when a peer answered 404 for a document.
var ErrNotFound = errors.New("cluster: document not found on peer")

// ErrPeer is returned when a peer answered an error status this
// package has no more specific mapping for; the wrapped message
// carries the peer's own error text.
var ErrPeer = errors.New("cluster: peer error")

// DefaultTimeout bounds unary calls to a peer when no timeout is
// configured.
const DefaultTimeout = 10 * time.Second

// responseLimit bounds how much of a peer response is read. JSON
// escaping inflates markup-dense XML up to ~6× over the serve layer's
// 32MB request cap, so this sits far above any legitimate response;
// crossing it is reported as an error, never silently truncated (a
// truncated document must not read as a smaller document).
const responseLimit = 256 << 20

var errOversizeResponse = errors.New("cluster: peer response exceeds read limit")

// readAllLimit reads r fully, failing with errOversizeResponse instead
// of truncating when the body exceeds limit bytes.
func readAllLimit(r io.Reader, limit int64) ([]byte, error) {
	buf, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(buf)) > limit {
		return nil, fmt.Errorf("%w (%d bytes)", errOversizeResponse, limit)
	}
	return buf, nil
}

// Node is one backend xpathserve process: a base URL plus a dedicated
// HTTP client whose transport keeps connections to that peer alive
// across requests. All methods are safe for concurrent use.
type Node struct {
	name string // host:port, used as the "node" tag on routed results
	base string // normalized base URL without trailing slash

	// unary does request/response calls under the configured timeout;
	// stream does /batch, where the response legitimately stays open
	// for as long as the slowest query, so only dial and response-
	// header latency are bounded. Both share one transport, so the
	// node's connection pool is reused across call styles.
	unary  *http.Client
	stream *http.Client

	// timeout is the flat per-attempt bound; do carves each attempt's
	// deadline as min(timeout, remaining caller deadline / attempts
	// left) via resilience.CarveAttempt.
	timeout time.Duration

	// br fails calls fast while the peer is misbehaving; maxInflight
	// bounds concurrent calls (0 = unbounded), shedding the excess.
	// Both are optional: the zero Node admits everything.
	br          *resilience.Breaker
	maxInflight int64
	inflight    atomic.Int64
	shed        atomic.Uint64

	// downAfter is how many consecutive transport failures mark the
	// node unhealthy (hysteresis against probe flapping); one success
	// marks it back up.
	downAfter  int32
	failStreak atomic.Int32

	healthy   atomic.Bool
	lastErr   atomic.Value // string
	lastCheck atomic.Int64 // unix nanos of the last health probe
}

// NewNode creates a Node for a peer base URL like "http://host:8080".
// A zero timeout takes DefaultTimeout.
func NewNode(raw string, timeout time.Duration) (*Node, error) {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	u, err := url.Parse(strings.TrimRight(raw, "/"))
	if err != nil {
		return nil, fmt.Errorf("cluster: peer %q: %v", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("cluster: peer %q: want http(s)://host[:port]", raw)
	}
	tr := &http.Transport{
		DialContext:           (&net.Dialer{Timeout: timeout}).DialContext,
		MaxIdleConnsPerHost:   16,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: timeout,
	}
	n := &Node{
		name: u.Host,
		base: u.String(),
		//lint:ignore ctxhttp unary deadlines are carved per attempt from the caller's context (resilience.CarveAttempt) instead of one flat Client.Timeout, so a tight client deadline is split across retries rather than silently exceeded
		unary: &http.Client{Transport: tr},
		//lint:ignore ctxhttp a batch NDJSON stream legitimately outlives any fixed client timeout; each request is bounded by its context and the transport's dial and header timeouts
		stream:    &http.Client{Transport: tr},
		timeout:   timeout,
		downAfter: 1,
	}
	n.healthy.Store(true) // optimistic until a probe or call says otherwise
	return n, nil
}

// SetBreaker attaches a circuit breaker consulted before every call.
// Set it before the node is shared.
func (n *Node) SetBreaker(br *resilience.Breaker) { n.br = br }

// Breaker returns the node's circuit breaker (nil when none).
func (n *Node) Breaker() *resilience.Breaker { return n.br }

// SetDownAfter sets how many consecutive transport failures mark the
// node unhealthy (< 1 is clamped to 1). Set it before the node is
// shared.
func (n *Node) SetDownAfter(k int) {
	if k < 1 {
		k = 1
	}
	n.downAfter = int32(k)
}

// SetMaxInflight bounds concurrent calls to the peer (0 = unbounded);
// excess calls shed with ErrOverloaded. Set it before the node is
// shared.
func (n *Node) SetMaxInflight(m int) { n.maxInflight = int64(m) }

// Shed returns how many calls the in-flight bound has rejected.
func (n *Node) Shed() uint64 { return n.shed.Load() }

// WrapTransport wraps the node's HTTP transport — the fault-injection
// hook (resilience.Faults.Transport). Set it before the node is
// shared.
func (n *Node) WrapTransport(wrap func(http.RoundTripper) http.RoundTripper) {
	n.unary.Transport = wrap(n.unary.Transport)
	n.stream.Transport = wrap(n.stream.Transport)
}

// admit gates a call on the in-flight bound and the circuit breaker,
// returning the release func for the in-flight slot. The bound is
// checked first so shed calls cannot consume breaker probes.
func (n *Node) admit() (func(), error) {
	if n.maxInflight > 0 && n.inflight.Add(1) > n.maxInflight {
		n.inflight.Add(-1)
		n.shed.Add(1)
		return nil, fmt.Errorf("%w (%s)", ErrOverloaded, n.name)
	}
	release := func() {
		if n.maxInflight > 0 {
			n.inflight.Add(-1)
		}
	}
	if !n.br.Allow() {
		release()
		return nil, fmt.Errorf("%w (%s)", ErrBreakerOpen, n.name)
	}
	return release, nil
}

// noteOK records a completed call whose response shows the peer alive:
// it clears the failure streak, marks the node healthy, and feeds the
// breaker a success.
func (n *Node) noteOK() {
	n.failStreak.Store(0)
	n.healthy.Store(true)
	n.br.OnSuccess()
}

// breakerFailStatus reports whether a peer's response status counts as
// a breaker failure: 5xx server faults do; application conditions with
// dedicated meanings (404 not found, 507 store full, 413 too large) do
// not — a peer answering those is working.
func breakerFailStatus(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Name returns the node's display name (host:port) — the "node" tag
// routed results carry.
func (n *Node) Name() string { return n.name }

// URL returns the node's base URL.
func (n *Node) URL() string { return n.base }

// Healthy reports the node's last observed health.
func (n *Node) Healthy() bool { return n.healthy.Load() }

// LastErr returns the most recent transport or health failure ("" when
// none).
func (n *Node) LastErr() string {
	s, _ := n.lastErr.Load().(string)
	return s
}

// noteErr records a transport failure: it feeds the breaker, and marks
// the node unhealthy once downAfter consecutive failures accumulate
// (hysteresis: one lost probe no longer diverts writes) when the
// failure means the peer is unreachable (not when the peer answered
// with an application error).
func (n *Node) noteErr(err error) {
	if errors.Is(err, ErrUnavailable) {
		n.lastErr.Store(err.Error())
		n.br.OnFailure()
		if n.failStreak.Add(1) >= n.downAfter {
			n.healthy.Store(false)
		}
	}
}

// statusErr maps a peer's error status to this package's typed errors,
// reusing the store's own sentinel errors where the peer's condition
// is a store condition — a remote full store is store.ErrFull to the
// caller, exactly like a local one.
func (n *Node) statusErr(status int, msg string) error {
	switch status {
	case http.StatusNotFound:
		return fmt.Errorf("%w (%s): %s", ErrNotFound, n.name, msg)
	case http.StatusInsufficientStorage:
		return fmt.Errorf("%w (remote %s): %s", store.ErrFull, n.name, msg)
	case http.StatusRequestEntityTooLarge:
		return fmt.Errorf("%w (remote %s): %s", store.ErrTooLarge, n.name, msg)
	default:
		return &PeerError{Node: n.name, Status: status, Msg: msg}
	}
}

// do performs one unary call and decodes the JSON response into out
// (skipped when out is nil). Peer error statuses come back as typed
// errors; transport failures as ErrUnavailable.
func (n *Node) do(ctx context.Context, method, path string, body, out any) error {
	release, err := n.admit()
	if err != nil {
		return err
	}
	defer release()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	// Carve this attempt's deadline from the caller's remaining budget
	// (split across the retry chain's remaining attempts), bounded by
	// the flat per-attempt timeout.
	actx, cancel := resilience.CarveAttempt(ctx, n.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, method, n.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	propagateRequestID(ctx, req)
	resp, err := n.unary.Do(req)
	if err != nil {
		// Only the caller's own context keeps its identity here: the
		// carved attempt deadline tripping (like a slow peer on Go
		// 1.23+, where a tripped Client.Timeout also matches
		// context.DeadlineExceeded) is the peer's fault — it must read
		// as ErrUnavailable so replica retry and health marking fire.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("cluster: node %s: %w", n.name, ctxErr)
		}
		err = fmt.Errorf("%w: %s: %v", ErrUnavailable, n.name, err)
		n.noteErr(err)
		return err
	}
	defer resp.Body.Close()
	raw, err := readAllLimit(resp.Body, responseLimit)
	if err != nil {
		if errors.Is(err, errOversizeResponse) {
			return fmt.Errorf("%w (%s): %v", ErrPeer, n.name, err)
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("cluster: node %s: %w", n.name, ctxErr)
		}
		err = fmt.Errorf("%w: %s: reading response: %v", ErrUnavailable, n.name, err)
		n.noteErr(err)
		return err
	}
	if resp.StatusCode != http.StatusOK {
		if breakerFailStatus(resp.StatusCode) {
			n.br.OnFailure()
		} else {
			n.noteOK()
		}
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(raw, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(raw))
		}
		return n.statusErr(resp.StatusCode, e.Error)
	}
	n.noteOK()
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Healthz probes the peer's liveness endpoint, updating the node's
// health state either way.
func (n *Node) Healthz(ctx context.Context) error {
	err := n.do(ctx, http.MethodGet, "/healthz", nil, nil)
	n.lastCheck.Store(time.Now().UnixNano())
	if err == nil {
		n.lastErr.Store("")
	}
	return err
}

// LastCheck returns the time of the most recent health probe (zero
// before the first).
func (n *Node) LastCheck() time.Time {
	ns := n.lastCheck.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// PutDocument registers (or replaces) a document on the peer,
// returning its node count and the version the peer assigned.
func (n *Node) PutDocument(ctx context.Context, name, xml string) (int, uint64, error) {
	return n.PutDocumentAt(ctx, name, xml, 0)
}

// PutDocumentAt registers a document at an explicit version — the
// mirror write of replication and resharding (see
// serve.Server.AddDocumentAt). A zero version lets the peer
// self-assign. It returns the node count and the version now resident
// under name on the peer (which is the resident version, not ver, when
// the mirror write was stale).
func (n *Node) PutDocumentAt(ctx context.Context, name, xml string, ver uint64) (int, uint64, error) {
	var out struct {
		Nodes   int    `json:"nodes"`
		Version uint64 `json:"version"`
	}
	err := n.do(ctx, http.MethodPost, "/documents", serve.DocumentRequest{Name: name, XML: xml, Version: ver}, &out)
	return out.Nodes, out.Version, err
}

// GetDocument fetches one document, serialized XML included.
func (n *Node) GetDocument(ctx context.Context, name string) (serve.DocInfo, error) {
	var out serve.DocInfo
	err := n.do(ctx, http.MethodGet, "/documents?name="+url.QueryEscape(name), nil, &out)
	return out, err
}

// DeleteDocument evicts a document from the peer.
func (n *Node) DeleteDocument(ctx context.Context, name string) error {
	return n.do(ctx, http.MethodDelete, "/documents?name="+url.QueryEscape(name), nil, nil)
}

// Documents lists the peer's documents (without XML).
func (n *Node) Documents(ctx context.Context) ([]serve.DocInfo, error) {
	var out struct {
		Documents []serve.DocInfo `json:"documents"`
	}
	err := n.do(ctx, http.MethodGet, "/documents", nil, &out)
	return out.Documents, err
}

// NodeStats is a peer's /stats response: the raw JSON for relaying
// plus the store section parsed for aggregation.
type NodeStats struct {
	Raw   json.RawMessage
	Store store.Stats
}

// Stats fetches the peer's statistics.
func (n *Node) Stats(ctx context.Context) (NodeStats, error) {
	var raw json.RawMessage
	if err := n.do(ctx, http.MethodGet, "/stats", nil, &raw); err != nil {
		return NodeStats{}, err
	}
	var parsed struct {
		Store store.Stats `json:"store"`
	}
	json.Unmarshal(raw, &parsed)
	return NodeStats{Raw: raw, Store: parsed.Store}, nil
}

// Query evaluates one query on the peer, returning the peer's HTTP
// status and decoded response object (the router re-tags and relays
// both). A non-nil error means the peer was not reached; application-
// level failures (unknown document, bad query) come back as a status
// plus the peer's response body, exactly as a direct client would see
// them. With trace set the peer evaluates under ?trace=1 and its
// response carries the backend's span tree for the router to splice
// into its own.
func (n *Node) Query(ctx context.Context, doc, query string, trace bool) (int, map[string]any, error) {
	release, err := n.admit()
	if err != nil {
		return 0, nil, err
	}
	defer release()
	buf, err := json.Marshal(serve.QueryRequest{Doc: doc, Query: query})
	if err != nil {
		return 0, nil, err
	}
	path := n.base + "/query"
	if trace {
		path += "?trace=1"
	}
	actx, cancel := resilience.CarveAttempt(ctx, n.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, path, bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	propagateRequestID(ctx, req)
	resp, err := n.unary.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return 0, nil, fmt.Errorf("cluster: node %s: %w", n.name, ctxErr)
		}
		err = fmt.Errorf("%w: %s: %v", ErrUnavailable, n.name, err)
		n.noteErr(err)
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, rerr := readAllLimit(resp.Body, responseLimit)
	if rerr != nil {
		if errors.Is(rerr, errOversizeResponse) {
			return 0, nil, fmt.Errorf("%w (%s): %v", ErrPeer, n.name, rerr)
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return 0, nil, fmt.Errorf("cluster: node %s: %w", n.name, ctxErr)
		}
		rerr = fmt.Errorf("%w: %s: reading response: %v", ErrUnavailable, n.name, rerr)
		n.noteErr(rerr)
		return 0, nil, rerr
	}
	var out map[string]any
	if err := json.Unmarshal(raw, &out); err != nil {
		err = fmt.Errorf("%w: %s: decoding response: %v", ErrUnavailable, n.name, err)
		n.noteErr(err)
		return 0, nil, err
	}
	if out == nil {
		// A 200 carrying JSON null (not an xpathserve peer): hand the
		// router a tag-able map rather than a nil it would panic on.
		out = map[string]any{}
	}
	if breakerFailStatus(resp.StatusCode) {
		n.br.OnFailure()
	} else {
		n.noteOK()
	}
	return resp.StatusCode, out, nil
}

// StreamJobs runs a grouped batch on the peer — one NDJSON stream
// spanning every (doc, query) job, however many documents it covers —
// and hands each line to emit as a decoded object, in the order the
// peer streams them (completion order). This is the cluster's
// one-stream-per-node batch transport: the router sends each backend
// exactly the jobs it owns. The request is tied to ctx: cancelling it
// tears the connection down and the peer stops its in-flight
// evaluations at their next checkpoint. A non-200 response comes back
// as a typed error before emit is ever called.
func (n *Node) StreamJobs(ctx context.Context, jobs []serve.BatchJob, emit func(map[string]any) error) error {
	release, err := n.admit()
	if err != nil {
		return err
	}
	defer release()
	buf, err := json.Marshal(serve.BatchRequest{Jobs: jobs})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.base+"/batch", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	propagateRequestID(ctx, req)
	resp, err := n.stream.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return fmt.Errorf("cluster: node %s: %w", n.name, ctxErr)
		}
		err = fmt.Errorf("%w: %s: %v", ErrUnavailable, n.name, err)
		n.noteErr(err)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var e struct {
			Error string `json:"error"`
		}
		json.Unmarshal(raw, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(raw))
		}
		if breakerFailStatus(resp.StatusCode) {
			n.br.OnFailure()
		} else {
			n.noteOK()
		}
		return n.statusErr(resp.StatusCode, e.Error)
	}
	n.noteOK()
	dec := json.NewDecoder(resp.Body)
	for {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return nil
			}
			if ctx.Err() != nil {
				return fmt.Errorf("cluster: node %s: %w", n.name, ctx.Err())
			}
			err = fmt.Errorf("%w: %s: mid-stream: %v", ErrUnavailable, n.name, err)
			n.noteErr(err)
			return err
		}
		if err := emit(line); err != nil {
			return err
		}
	}
}
