package cluster

import (
	"container/list"
	"strconv"
	"sync"
)

// DefaultAnswerCacheSize is the router answer cache's entry capacity
// when none is configured.
const DefaultAnswerCacheSize = 1024

// answerCache is the router's hot-key absorber: an LRU of fully
// rendered /query response bodies keyed by (doc, query, version).
// Entries for a superseded version become unreachable the moment the
// router learns a newer version for the document (a registration
// through the router, or a backend response carrying a higher
// version), and are dropped eagerly so a hot document's churn cannot
// pin dead bytes in the LRU. Repeated identical queries are answered
// from here without touching a backend.
type answerCache struct {
	mu     sync.Mutex
	cap    int
	lru    *list.List               // front = most recently used
	items  map[string]*list.Element // composite key -> element
	perDoc map[string][]string      // doc -> live composite keys
	latest map[string]uint64        // doc -> newest version seen
	// dead tombstones documents deleted through the router: a query
	// response that was already in flight when the DELETE ran carries
	// the pre-delete version, and without the tombstone its arrival
	// would re-populate the cache for a document that no longer
	// exists. Versions are monotonic per document even across
	// delete + re-register (the store counter never goes backwards),
	// so any version at or below the tombstone is the dead document's.
	dead    map[string]uint64
	hits    uint64
	misses  uint64
	invalid uint64 // entries dropped by version bumps and deletes
}

type answerEntry struct {
	key  string
	doc  string
	body []byte
}

func newAnswerCache(capacity int) *answerCache {
	if capacity <= 0 {
		capacity = DefaultAnswerCacheSize
	}
	return &answerCache{
		cap:    capacity,
		lru:    list.New(),
		items:  map[string]*list.Element{},
		perDoc: map[string][]string{},
		latest: map[string]uint64{},
		dead:   map[string]uint64{},
	}
}

func answerKey(doc, query string, ver uint64) string {
	// \x00 cannot occur in document names or queries that reached a
	// backend, so the composite key is unambiguous.
	return doc + "\x00" + query + "\x00" + strconv.FormatUint(ver, 10)
}

// get returns the cached response body for (doc, query) at the
// document's newest known version, counting a hit or a miss. Unknown
// documents (no version ever observed) always miss.
func (c *answerCache) get(doc, query string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ver, ok := c.latest[doc]
	if ok {
		if el, ok := c.items[answerKey(doc, query, ver)]; ok {
			c.lru.MoveToFront(el)
			c.hits++
			return el.Value.(*answerEntry).body, true
		}
	}
	c.misses++
	return nil, false
}

// put stores a rendered response body for (doc, query, ver), records
// ver as the document's newest version if it is, and evicts LRU
// entries past capacity. Bodies for versions older than the newest
// known are stale on arrival and dropped.
func (c *answerCache) put(doc, query string, ver uint64, body []byte) {
	if ver == 0 {
		return // versionless backends cannot be cached safely
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.dead[doc]; ok {
		if ver <= d {
			return // a dead document's late in-flight answer
		}
		delete(c.dead, doc) // the name was legitimately re-registered
	}
	if cur, ok := c.latest[doc]; !ok || ver > cur {
		c.dropDocLocked(doc)
		c.setLatestLocked(doc, ver)
	} else if ver < cur {
		return // raced with a replacement; the answer is already stale
	}
	key := answerKey(doc, query, ver)
	if el, ok := c.items[key]; ok {
		el.Value.(*answerEntry).body = body
		c.lru.MoveToFront(el)
		return
	}
	c.items[key] = c.lru.PushFront(&answerEntry{key: key, doc: doc, body: body})
	c.perDoc[doc] = append(c.perDoc[doc], key)
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.removeLocked(oldest.Value.(*answerEntry))
	}
}

// bump records that doc now exists at version ver — a write through
// the router, which is authoritative: every cached answer for the
// document is dropped and the watermark moves to ver even when ver is
// numerically LOWER than the old watermark. Versions come from each
// node's own counter, so a failover write can leave the watermark far
// ahead of the owner's counter; treating the new write as "stale"
// because of that would pin the old answer forever. Only the
// tombstone check keeps its guard (a dead name's versions stay dead
// until a registration supersedes them).
func (c *answerCache) bump(doc string, ver uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.dead[doc]; ok {
		if ver <= d {
			return
		}
		delete(c.dead, doc)
	}
	if cur, ok := c.latest[doc]; ok && ver == cur {
		return // echo of the version already current; entries still valid
	}
	c.dropDocLocked(doc)
	c.setLatestLocked(doc, ver)
}

// setLatestLocked records a document's newest version, bounding the
// watermark map so a churn of distinct document names cannot grow it
// without limit: past 4× the LRU capacity, watermarks without any
// cached answers are dropped. Losing a watermark only costs a cache
// miss — the next query re-learns the version from the backend's
// response — never a stale answer, because lookups require it.
func (c *answerCache) setLatestLocked(doc string, ver uint64) {
	c.latest[doc] = ver
	max := 4 * c.cap
	if len(c.latest) <= max {
		return
	}
	for d := range c.latest {
		if len(c.latest) <= max {
			return
		}
		if d != doc && len(c.perDoc[d]) == 0 {
			delete(c.latest, d)
		}
	}
}

// forget drops everything known about doc (a delete through the
// router): cached answers and the version watermark. The watermark
// becomes a tombstone so an answer that was in flight during the
// delete cannot re-populate the cache for the dead document (a
// re-registration clears it — its version is necessarily higher).
// When no watermark was ever learned the tombstone cannot be placed;
// that residual window only exists for documents this router never
// wrote or answered for.
func (c *answerCache) forget(doc string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropDocLocked(doc)
	if v, ok := c.latest[doc]; ok && v > 0 {
		c.dead[doc] = v
		c.trimDeadLocked(doc)
	}
	delete(c.latest, doc)
}

// trimDeadLocked bounds the tombstone map like setLatestLocked bounds
// the watermarks: losing a tombstone only reopens a narrow in-flight
// race for a long-deleted name, which is preferable to unbounded
// growth under name churn.
func (c *answerCache) trimDeadLocked(keep string) {
	max := 4 * c.cap
	for d := range c.dead {
		if len(c.dead) <= max {
			return
		}
		if d != keep {
			delete(c.dead, d)
		}
	}
}

func (c *answerCache) dropDocLocked(doc string) {
	for _, key := range c.perDoc[doc] {
		if el, ok := c.items[key]; ok {
			c.lru.Remove(el)
			delete(c.items, key)
			c.invalid++
		}
	}
	delete(c.perDoc, doc)
}

// removeLocked is plain LRU eviction (capacity, not staleness): the
// entry leaves the cache without counting as an invalidation.
func (c *answerCache) removeLocked(e *answerEntry) {
	if el, ok := c.items[e.key]; ok {
		c.lru.Remove(el)
		delete(c.items, e.key)
	}
	keys := c.perDoc[e.doc]
	for i, k := range keys {
		if k == e.key {
			c.perDoc[e.doc] = append(keys[:i], keys[i+1:]...)
			break
		}
	}
	if len(c.perDoc[e.doc]) == 0 {
		delete(c.perDoc, e.doc)
	}
}

// answerCacheStats is the /stats view of the cache.
type answerCacheStats struct {
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
}

func (c *answerCache) stats() answerCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return answerCacheStats{
		Entries:       c.lru.Len(),
		Capacity:      c.cap,
		Hits:          c.hits,
		Misses:        c.misses,
		Invalidations: c.invalid,
	}
}
