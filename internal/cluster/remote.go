package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// Remote implements store.Store[string] over one peer node's HTTP
// document API: keys are document names, values are serialized XML.
// It is the multi-process counterpart of store.Sharded — the same
// Get/Put/Delete/Range/Stats surface, backed by another process's
// corpus instead of in-process shards, with per-node connection reuse
// and a per-call timeout.
//
// The store.Store interface has no error channel on Get/Delete/Range,
// so those swallow transport failures into their boolean results; the
// most recent failure is retained and readable via Err, and callers
// that need full error reporting use the context-taking methods
// (GetDocument, PutDocument, ...) instead. Put does return errors and
// maps the peer's responses onto the same sentinel errors the local
// store uses: a full remote store is store.ErrFull, an oversized
// document store.ErrTooLarge.
type Remote struct {
	node    *Node
	timeout time.Duration

	mu      sync.Mutex
	lastErr error
}

// Compile-time check: Remote is a drop-in store.Store.
var _ store.Store[string] = (*Remote)(nil)

// NewRemote creates a Remote over a peer node. A zero timeout takes
// DefaultTimeout.
func NewRemote(node *Node, timeout time.Duration) *Remote {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Remote{node: node, timeout: timeout}
}

// Node returns the peer this store speaks to.
func (r *Remote) Node() *Node { return r.node }

// Err returns the most recent transport failure swallowed by an
// interface method (nil when the last such call succeeded).
func (r *Remote) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

func (r *Remote) note(err error) {
	if errors.Is(err, ErrNotFound) {
		err = nil // absence is a result, not a failure
	}
	r.mu.Lock()
	r.lastErr = err
	r.mu.Unlock()
}

func (r *Remote) callCtx() (context.Context, context.CancelFunc) {
	//lint:ignore ctxhttp the store.Store interface methods have no context parameter; each call is bounded by the per-call timeout instead
	return context.WithTimeout(context.Background(), r.timeout)
}

// GetDocument fetches the serialized XML stored under key.
func (r *Remote) GetDocument(ctx context.Context, key string) (string, error) {
	info, err := r.node.GetDocument(ctx, key)
	if err != nil {
		return "", err
	}
	return info.XML, nil
}

// PutDocument registers xml under key on the peer, returning the
// version the peer assigned.
func (r *Remote) PutDocument(ctx context.Context, key, xml string) (uint64, error) {
	_, ver, err := r.node.PutDocument(ctx, key, xml)
	return ver, err
}

// Get returns the document stored under key. Transport failures read
// as absence; check Err to distinguish a missing document from an
// unreachable peer.
func (r *Remote) Get(key string) (string, bool) {
	ctx, cancel := r.callCtx()
	defer cancel()
	xml, err := r.GetDocument(ctx, key)
	r.note(err)
	if err != nil {
		return "", false
	}
	return xml, true
}

// Put stores v (serialized XML) under key, returning the version the
// peer assigned. The size argument is ignored: the peer accounts the
// document at its own serialized size, exactly as a local AddDocument
// would.
func (r *Remote) Put(key string, v string, _ int64) (uint64, error) {
	ctx, cancel := r.callCtx()
	defer cancel()
	ver, err := r.PutDocument(ctx, key, v)
	r.note(err)
	return ver, err
}

// Delete removes key, reporting whether the peer had it.
func (r *Remote) Delete(key string) bool {
	ctx, cancel := r.callCtx()
	defer cancel()
	err := r.node.DeleteDocument(ctx, key)
	r.note(err)
	return err == nil
}

// Range lists the peer's documents, then fetches each one's XML
// lazily until f returns false. The listing is a point-in-time
// snapshot; documents added or removed while ranging may or may not
// be visited, matching the local store's Range contract. Documents
// that vanish between the listing and their fetch are skipped.
func (r *Remote) Range(f func(key string, v string, size int64) bool) {
	r.RangeDocuments(func(info serve.DocInfo) bool {
		return f(info.Name, info.XML, info.Bytes)
	})
}

// RangeDocuments is Range with the full wire-level document record:
// each visited DocInfo carries the serialized XML and the document's
// monotonic version — what the reshard tool streams when it moves a
// corpus between rings while preserving versions.
func (r *Remote) RangeDocuments(f func(info serve.DocInfo) bool) {
	//lint:ignore ctxhttp interface-shaped convenience wrapper; callers with a context use RangeDocumentsContext
	r.RangeDocumentsContext(context.Background(), f)
}

// RangeDocumentsContext is RangeDocuments tied to a caller context:
// every listing and per-document fetch derives its per-call timeout
// from ctx, so cancelling ctx stops the walk at the next call — a
// corpus-sized stream (the reshard copy pass) is abandonable instead
// of running to completion one swallowed timeout at a time.
func (r *Remote) RangeDocumentsContext(ctx context.Context, f func(info serve.DocInfo) bool) {
	lctx, cancel := context.WithTimeout(ctx, r.timeout)
	docs, err := r.node.Documents(lctx)
	cancel()
	r.note(err)
	if err != nil {
		return
	}
	for _, d := range docs {
		if ctx.Err() != nil {
			r.note(ctx.Err())
			return
		}
		fctx, fcancel := context.WithTimeout(ctx, r.timeout)
		info, err := r.node.GetDocument(fctx, d.Name)
		fcancel()
		if errors.Is(err, ErrNotFound) {
			continue
		}
		r.note(err)
		if err != nil {
			return
		}
		if !f(info) {
			return
		}
	}
}

// Stats returns the peer store's statistics (zero on transport
// failure; check Err).
func (r *Remote) Stats() store.Stats {
	ctx, cancel := r.callCtx()
	defer cancel()
	st, err := r.node.Stats(ctx)
	r.note(err)
	return st.Store
}
