package cluster

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func testNodes(t *testing.T, urls ...string) []*Node {
	t.Helper()
	nodes := make([]*Node, len(urls))
	for i, u := range urls {
		n, err := NewNode(u, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	return nodes
}

// TestRingStableUnderReordering is the placement-stability contract:
// rings built from the same peer set in any argument order must
// compute identical owners and successors for every document — a
// reordered -peers flag must never silently move the corpus.
func TestRingStableUnderReordering(t *testing.T) {
	urls := []string{"http://nodeb:8080", "http://nodea:8080", "http://nodec:8080"}
	perms := [][]string{
		{urls[0], urls[1], urls[2]},
		{urls[2], urls[0], urls[1]},
		{urls[1], urls[2], urls[0]},
		{urls[2], urls[1], urls[0]},
	}
	rings := make([]*Ring, len(perms))
	for i, p := range perms {
		r, err := NewRing(testNodes(t, p...), 1)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for i := 0; i < 50; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		owner := rings[0].Owner(doc).URL()
		succ := rings[0].At(doc, 1).URL()
		for _, r := range rings[1:] {
			if r.Owner(doc).URL() != owner {
				t.Fatalf("owner of %s differs across peer orders: %s vs %s", doc, r.Owner(doc).URL(), owner)
			}
			if r.At(doc, 1).URL() != succ {
				t.Fatalf("successor of %s differs across peer orders: %s vs %s", doc, r.At(doc, 1).URL(), succ)
			}
		}
	}
}

// TestRingReplicasAndWraparound pins the replica set: owner plus n
// distinct successors in ring order, wrapping, and clamped to the
// ring size.
func TestRingReplicasAndWraparound(t *testing.T) {
	ring, err := NewRing(testNodes(t, "http://a:1", "http://b:1", "http://c:1"), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		reps := ring.Replicas(doc, 1)
		if len(reps) != 2 {
			t.Fatalf("Replicas(%s, 1) has %d nodes, want 2", doc, len(reps))
		}
		if reps[0] != ring.Owner(doc) {
			t.Fatalf("first replica of %s is not its owner", doc)
		}
		if reps[1] == reps[0] {
			t.Fatalf("successor of %s duplicates the owner", doc)
		}
		// A replica budget past the ring size returns the whole ring.
		if all := ring.Replicas(doc, 7); len(all) != 3 {
			t.Fatalf("Replicas(%s, 7) has %d nodes, want the whole 3-ring", doc, len(all))
		}
	}
	// The successor wraps: the last ring slot's successor is slot 0.
	last := ring.Peers()[2]
	for i := 0; ; i++ {
		doc := fmt.Sprintf("wrap-%d", i)
		if ring.Owner(doc) == last {
			if ring.At(doc, 1) != ring.Peers()[0] {
				t.Fatalf("successor past the last slot did not wrap to slot 0")
			}
			break
		}
		if i > 1000 {
			t.Fatal("no document owned by the last slot in 1000 tries")
		}
	}
}

// TestRingValidationAndDescribe covers construction errors and the
// JSON description /healthz exposes.
func TestRingValidationAndDescribe(t *testing.T) {
	if _, err := NewRing(nil, 1); err == nil {
		t.Fatal("empty ring accepted")
	}
	dup := testNodes(t, "http://a:1", "http://a:1")
	if _, err := NewRing(dup, 1); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	ring, err := NewRing(testNodes(t, "http://b:1", "http://a:1"), 7)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Generation() != 7 {
		t.Fatalf("Generation = %d, want 7", ring.Generation())
	}
	desc := ring.Describe()
	buf, err := json.Marshal(desc)
	if err != nil {
		t.Fatal(err)
	}
	var back RingDesc
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Generation != 7 || len(back.Peers) != 2 {
		t.Fatalf("round-tripped description = %+v", back)
	}
	// Canonical order: sorted by URL regardless of argument order.
	if back.Peers[0].URL != "http://a:1" || back.Peers[1].URL != "http://b:1" {
		t.Fatalf("peers not in canonical order: %+v", back.Peers)
	}
}
