package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/store"
)

// TestCarvedAttemptDeadline pins the per-attempt timeout fix: a tight
// caller deadline split across the retry chain's remaining attempts
// beats the generous flat -timeout, and the carved deadline tripping
// reads as ErrUnavailable (the peer's fault, retryable) while the
// caller's own context stays live.
func TestCarvedAttemptDeadline(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		w.Write([]byte("{}"))
	}))
	defer slow.Close()
	n, err := NewNode(slow.URL, 5*time.Second) // generous flat timeout
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
	defer cancel()
	actx := resilience.WithAttemptsLeft(ctx, 3) // each attempt gets ~200ms
	start := time.Now()
	_, gerr := n.GetDocument(actx, "x")
	elapsed := time.Since(start)
	if !errors.Is(gerr, ErrUnavailable) {
		t.Fatalf("carved-deadline trip = %v, want ErrUnavailable", gerr)
	}
	if ctx.Err() != nil {
		t.Fatal("caller context expired with the carved attempt")
	}
	if elapsed > 450*time.Millisecond {
		t.Fatalf("attempt took %v, want ~200ms (600ms/3 attempts)", elapsed)
	}
}

// TestNodeShedding pins the per-peer in-flight bound: with the bound
// full, further calls shed fast with ErrOverloaded instead of queuing.
func TestNodeShedding(t *testing.T) {
	release := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte("{}"))
	}))
	defer slow.Close()
	n, err := NewNode(slow.URL, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	n.SetMaxInflight(1)
	done := make(chan error, 1)
	go func() {
		_, err := n.GetDocument(context.Background(), "x")
		done <- err
	}()
	// Wait for the first call to occupy the slot.
	deadline := time.Now().Add(2 * time.Second)
	for n.inflight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if _, err := n.GetDocument(context.Background(), "x"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-bound call = %v, want ErrOverloaded", err)
	}
	if n.Shed() != 1 {
		t.Fatalf("Shed = %d, want 1", n.Shed())
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-bound call failed: %v", err)
	}
}

// TestBreakerUnderConcurrentForwards pins breaker behavior on the
// router's forward path under the race detector: a dead owner's
// breaker trips open while concurrent queries keep answering from the
// replica, and the open state is visible on /healthz and as the
// xpathrouter_breaker_state gauge.
func TestBreakerUnderConcurrentForwards(t *testing.T) {
	router, ts, backends := newCluster(t, 2, Options{
		Retries:          1,
		Replicas:         1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // stays open for the test's duration
		Timeout:          time.Second,
	}, store.Config{})
	doc := namesOwnedBy(2, 1)[1][0] // owned by backends[1]
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": doc, "xml": "<a><b/><b/></a>"}); resp.StatusCode != 200 {
		t.Fatal("registration failed")
	}
	backends[1].ts.Close()

	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out := postJSON(t, ts.URL+"/query", map[string]string{"doc": doc, "query": "count(//b)"})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("query status %d: %v", resp.StatusCode, out)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	br := backends[1].node.Breaker()
	if br == nil || br.State() != resilience.BreakerOpen {
		t.Fatalf("dead owner's breaker = %v, want open", br.State())
	}
	if backends[0].node.Breaker().State() != resilience.BreakerClosed {
		t.Fatal("live replica's breaker should stay closed")
	}

	// The open breaker is visible on /healthz...
	_, health := getJSON(t, ts.URL+"/health")
	seen := false
	for _, p := range health["peers"].([]any) {
		ph := p.(map[string]any)
		if ph["node"] == backends[1].node.Name() {
			seen = true
			if ph["breaker"] != "open" {
				t.Fatalf("healthz breaker = %v, want open", ph["breaker"])
			}
		}
	}
	if !seen {
		t.Fatal("dead peer missing from /health")
	}
	// ...and as the per-peer gauge.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	want := fmt.Sprintf("xpathrouter_breaker_state{peer=%q} 2", backends[1].node.Name())
	if !strings.Contains(string(body), want) {
		t.Fatalf("metrics missing %q", want)
	}
	router.Stop()
}

// TestRepairConvergence pins anti-entropy repair: a document written
// only to its owner (a failed mirror write) is re-copied to its
// replica at the authoritative version, and a replica holding a stale
// version converges to the owner's; a second round finds nothing to do.
func TestRepairConvergence(t *testing.T) {
	router, _, backends := newCluster(t, 3, Options{Replicas: 1, Timeout: time.Second}, store.Config{})
	byURL := map[string]*backend{}
	for _, b := range backends {
		byURL[b.node.URL()] = b
	}
	ctx := context.Background()

	// Case 1: the replica never got its mirror copy.
	missing := namesOwnedBy(3, 1)[0][0]
	placement := router.Ring().Replicas(missing, 1)
	owner, replica := byURL[placement[0].URL()], byURL[placement[1].URL()]
	if _, _, err := owner.node.PutDocument(ctx, missing, "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	ownerInfo, err := owner.node.GetDocument(ctx, missing)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := replica.node.GetDocument(ctx, missing); !errors.Is(err, ErrNotFound) {
		t.Fatalf("replica already holds the doc: %v", err)
	}

	// Case 2: the replica holds a stale version.
	stale := namesOwnedBy(3, 2)[1][0]
	splacement := router.Ring().Replicas(stale, 1)
	sowner, sreplica := byURL[splacement[0].URL()], byURL[splacement[1].URL()]
	if _, _, err := sreplica.node.PutDocument(ctx, stale, "<old/>"); err != nil {
		t.Fatal(err)
	}
	// Two owner writes outrun the replica's version counter.
	if _, _, err := sowner.node.PutDocument(ctx, stale, "<mid/>"); err != nil {
		t.Fatal(err)
	}
	if _, sv, err := sowner.node.PutDocument(ctx, stale, "<new/>"); err != nil {
		t.Fatal(err)
	} else if ri, _ := sreplica.node.GetDocument(ctx, stale); ri.Version >= sv {
		t.Fatalf("test setup: replica version %d not stale vs owner %d", ri.Version, sv)
	}

	copies := router.RepairNow(ctx)
	if copies < 2 {
		t.Fatalf("RepairNow copies = %d, want >= 2", copies)
	}

	got, err := replica.node.GetDocument(ctx, missing)
	if err != nil {
		t.Fatalf("replica still missing %q after repair: %v", missing, err)
	}
	if got.Version != ownerInfo.Version {
		t.Fatalf("replica version = %d, owner = %d", got.Version, ownerInfo.Version)
	}

	sownerInfo, err := sowner.node.GetDocument(ctx, stale)
	if err != nil {
		t.Fatal(err)
	}
	sgot, err := sreplica.node.GetDocument(ctx, stale)
	if err != nil {
		t.Fatal(err)
	}
	if sgot.Version != sownerInfo.Version || sgot.XML != sownerInfo.XML {
		t.Fatalf("stale replica did not converge: v%d %q vs owner v%d %q",
			sgot.Version, sgot.XML, sownerInfo.Version, sownerInfo.XML)
	}

	// Idempotence: a converged fleet has nothing to repair.
	if copies := router.RepairNow(ctx); copies != 0 {
		t.Fatalf("second RepairNow copies = %d, want 0", copies)
	}
	if router.repairErrs.Load() != 0 {
		t.Fatalf("repair errors = %d, want 0", router.repairErrs.Load())
	}
}

// TestRepairAfterKilledMirror is the ISSUE's repair scenario end to
// end: a mirror write dies (replica down during registration), the
// replica comes back empty, and the repair loop restores the copy at
// the owner's version without a manual reshard.
func TestRepairAfterKilledMirror(t *testing.T) {
	router, ts, backends := newCluster(t, 2, Options{
		Replicas: 1,
		Timeout:  time.Second,
		// BreakerThreshold stays 0 (defaults on): repair must work with
		// breakers active.
	}, store.Config{})
	doc := namesOwnedBy(2, 1)[0][0] // owned by backends[0], mirrored to backends[1]

	// Kill the mirror target, then register: the write lands on the
	// owner, the mirror fails.
	replicaAddr := backends[1].ts.Listener.Addr().String()
	backends[1].ts.Close()
	resp, out := postJSON(t, ts.URL+"/documents", map[string]string{"name": doc, "xml": "<a><b/><b/></a>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registration = %d %v", resp.StatusCode, out)
	}
	if _, ok := out["replica_errors"]; !ok {
		t.Fatalf("mirror write to a dead replica did not degrade: %v", out)
	}

	// The replica restarts empty at its old address (the ring still
	// points there).
	repl := httptest.NewUnstartedServer(backends[1].srv.Handler())
	l, err := net.Listen("tcp", replicaAddr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", replicaAddr, err)
	}
	repl.Listener = l
	repl.Start()
	t.Cleanup(repl.Close)

	if copies := router.RepairNow(context.Background()); copies < 1 {
		t.Fatalf("RepairNow copies = %d, want >= 1", copies)
	}
	ownerInfo, err := backends[0].node.GetDocument(context.Background(), doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := backends[1].node.GetDocument(context.Background(), doc)
	if err != nil {
		t.Fatalf("replica still missing after repair: %v", err)
	}
	if got.Version != ownerInfo.Version {
		t.Fatalf("replica version = %d, owner = %d", got.Version, ownerInfo.Version)
	}
}

// TestRetryBudgetExhaustion pins the token bucket: a dead owner makes
// every query spend a retry token, and once the bucket is dry the
// router answers 503 with Retry-After instead of retrying.
func TestRetryBudgetExhaustion(t *testing.T) {
	_, ts, backends := newCluster(t, 2, Options{
		Retries:          1,
		Replicas:         1,
		RetryBudget:      0.001, // deposits are negligible; the bucket starts with DefaultBudgetCap tokens
		BreakerThreshold: -1,    // keep the dead owner in play so every query retries
		DownAfter:        1000,  // likewise: health-sorting must not hide the owner
		AnswerCacheSize:  -1,    // every query must reach the fleet, not the cache
		Timeout:          time.Second,
	}, store.Config{})
	doc := namesOwnedBy(2, 1)[1][0]
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": doc, "xml": "<a><b/></a>"}); resp.StatusCode != 200 {
		t.Fatal("registration failed")
	}
	backends[1].ts.Close()

	sawDenied := false
	for i := 0; i < resilience.DefaultBudgetCap+5; i++ {
		resp, out := postJSON(t, ts.URL+"/query", map[string]string{"doc": doc, "query": "count(//b)"})
		switch resp.StatusCode {
		case http.StatusOK:
			// Retry within budget: the replica answered.
		case http.StatusServiceUnavailable:
			sawDenied = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("503 without Retry-After: %v", out)
			}
			if msg, _ := out["error"].(string); !strings.Contains(msg, "retry budget") {
				t.Fatalf("503 body = %v, want retry-budget error", out)
			}
		default:
			t.Fatalf("query %d status = %d: %v", i, resp.StatusCode, out)
		}
	}
	if !sawDenied {
		t.Fatal("budget never denied a retry")
	}
}

// TestRouterDrain pins graceful degradation: BeginDrain flips /healthz
// to 503 (load balancers stop routing) while /query keeps answering
// in-flight traffic.
func TestRouterDrain(t *testing.T) {
	router, ts, _ := newCluster(t, 2, Options{Timeout: time.Second}, store.Config{})
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatal("healthz not OK before drain")
	}
	if resp, _ := postJSON(t, ts.URL+"/documents", map[string]string{"name": "d1", "xml": "<a><b/></a>"}); resp.StatusCode != 200 {
		t.Fatal("registration failed")
	}
	router.BeginDrain()
	resp, out := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || out["draining"] != true {
		t.Fatalf("draining healthz = %d %v, want 503 draining", resp.StatusCode, out)
	}
	if resp, _ := getJSON(t, ts.URL+"/query?doc=d1&q=count(//b)"); resp.StatusCode != http.StatusOK {
		t.Fatal("in-flight traffic must keep answering during drain")
	}
}
