package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/serve"
	"repro/internal/store"
)

// backend is one real xpathserve node under test: the serve.Server (so
// tests can reach through to its engine and store), the httptest
// server carrying it, and a Node client pointed at it.
type backend struct {
	srv  *serve.Server
	ts   *httptest.Server
	node *Node
}

func newBackend(t *testing.T, cfg store.Config) *backend {
	t.Helper()
	srv := serve.New(engine.New(engine.Options{CacheSize: 32, Workers: 2}), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	node, err := NewNode(ts.URL, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return &backend{srv: srv, ts: ts, node: node}
}

// TestRemoteRoundTrip drives the full store.Store surface over a live
// backend: Put, Get, Range, Stats, Delete — the same contract the
// in-process Sharded store satisfies, against another process's corpus.
func TestRemoteRoundTrip(t *testing.T) {
	b := newBackend(t, store.Config{})
	r := NewRemote(b.node, 5*time.Second)

	if _, err := r.Put("alpha", "<a><b/><b/></a>", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("beta", "<x><y/></x>", 0); err != nil {
		t.Fatal(err)
	}
	xml, ok := r.Get("alpha")
	if !ok || xml == "" {
		t.Fatalf("Get(alpha) = %q, %v", xml, ok)
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("Get of a missing document succeeded")
	}
	if err := r.Err(); err != nil {
		t.Fatalf("a miss is not a failure, but Err() = %v", err)
	}

	seen := map[string]bool{}
	r.Range(func(k, v string, size int64) bool {
		if v == "" || size <= 0 {
			t.Errorf("Range(%s) carried no document: %q, %d", k, v, size)
		}
		seen[k] = true
		return true
	})
	if !seen["alpha"] || !seen["beta"] || len(seen) != 2 {
		t.Fatalf("Range visited %v, want alpha and beta", seen)
	}

	if st := r.Stats(); st.Entries != 2 {
		t.Fatalf("Stats().Entries = %d, want 2", st.Entries)
	}
	if !r.Delete("alpha") || r.Delete("alpha") {
		t.Fatal("Delete should report presence exactly once")
	}
	if st := r.Stats(); st.Entries != 1 {
		t.Fatalf("after delete Stats().Entries = %d, want 1", st.Entries)
	}
	// The remote and the backend agree: the backend really holds beta.
	if _, ok := b.srv.Session("beta"); !ok {
		t.Fatal("backend lost beta")
	}
}

// TestRemoteTypedErrors pins the error mapping: a full remote store is
// store.ErrFull (same sentinel as a full local store), malformed XML
// is an ErrPeer with the backend's 400, and an unreachable peer is
// ErrUnavailable — also surfaced through Err() when the interface
// methods had to swallow it.
func TestRemoteTypedErrors(t *testing.T) {
	b := newBackend(t, store.Config{MaxEntries: 1})
	r := NewRemote(b.node, time.Second)

	if _, err := r.Put("one", "<a/>", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("two", "<b/>", 0); !errors.Is(err, store.ErrFull) {
		t.Fatalf("over-cap Put err = %v, want store.ErrFull", err)
	}
	var pe *PeerError
	if _, err := r.Put("one", "<unclosed", 0); !errors.As(err, &pe) || pe.Status != 400 {
		t.Fatalf("malformed XML err = %v, want PeerError with status 400", err)
	}
	if _, err := r.Put("one", "<unclosed", 0); !errors.Is(err, ErrPeer) {
		t.Fatal("PeerError does not match ErrPeer")
	}

	b.ts.Close() // the peer goes away
	if _, err := r.Put("one", "<a/>", 0); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Put against downed peer err = %v, want ErrUnavailable", err)
	}
	if _, ok := r.Get("one"); ok {
		t.Fatal("Get against downed peer succeeded")
	}
	if err := r.Err(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Err() = %v, want ErrUnavailable", err)
	}
	if b.node.Healthy() {
		t.Fatal("node still marked healthy after connection failures")
	}
}

// TestRangeDocumentsContextCancelled pins the regression the ctxhttp
// analyzer guards against: a corpus walk must be tied to its caller's
// context. A cancelled context stops the walk — before the listing
// when cancelled up front, and between per-document fetches when
// cancelled mid-walk — instead of the walk grinding through every
// document on swallowed timeouts.
func TestRangeDocumentsContextCancelled(t *testing.T) {
	b := newBackend(t, store.Config{})
	r := NewRemote(b.node, 5*time.Second)
	for _, name := range []string{"a", "b", "c"} {
		if _, err := r.Put(name, "<d><e/></d>", 0); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	visited := 0
	r.RangeDocumentsContext(ctx, func(serve.DocInfo) bool {
		visited++
		return true
	})
	if visited != 0 {
		t.Fatalf("pre-cancelled walk visited %d documents, want 0", visited)
	}
	if err := r.Err(); err == nil {
		t.Fatal("pre-cancelled walk left Err() nil; the failure was swallowed")
	}

	// Cancelling mid-walk stops before the next fetch.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	visited = 0
	r.RangeDocumentsContext(ctx, func(serve.DocInfo) bool {
		visited++
		cancel()
		return true
	})
	if visited != 1 {
		t.Fatalf("mid-walk cancellation visited %d documents, want 1", visited)
	}

	// An undisturbed context changes nothing: all three visited.
	visited = 0
	r.RangeDocumentsContext(context.Background(), func(serve.DocInfo) bool {
		visited++
		return true
	})
	if visited != 3 {
		t.Fatalf("uncancelled walk visited %d documents, want 3", visited)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("uncancelled walk Err() = %v, want nil", err)
	}
}
