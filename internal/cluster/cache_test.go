package cluster

import (
	"fmt"
	"testing"
)

// TestAnswerCacheTombstone pins the delete race: an answer that was
// in flight when the document was deleted (it carries the pre-delete
// version) must not re-populate the cache, while a legitimate
// re-registration (necessarily at a higher version) revives it.
func TestAnswerCacheTombstone(t *testing.T) {
	c := newAnswerCache(8)
	c.put("d", "q", 5, []byte("v5 answer"))
	if _, ok := c.get("d", "q"); !ok {
		t.Fatal("cached answer not served")
	}
	c.forget("d") // DELETE through the router
	if _, ok := c.get("d", "q"); ok {
		t.Fatal("deleted document still served from cache")
	}
	// The late in-flight answer arrives at the dead version: rejected.
	c.put("d", "q", 5, []byte("v5 answer"))
	if _, ok := c.get("d", "q"); ok {
		t.Fatal("late in-flight answer re-populated the cache after delete")
	}
	// Same for a version-bump echo at or below the tombstone.
	c.bump("d", 5)
	c.put("d", "q", 5, []byte("v5 answer"))
	if _, ok := c.get("d", "q"); ok {
		t.Fatal("stale bump cleared the tombstone")
	}
	// A re-registration at a higher version revives the name.
	c.bump("d", 6)
	c.put("d", "q", 6, []byte("v6 answer"))
	if body, ok := c.get("d", "q"); !ok || string(body) != "v6 answer" {
		t.Fatalf("re-registered document not served: %q, %v", body, ok)
	}
}

// TestAnswerCacheBounds pins the memory bounds: the LRU respects its
// capacity, and the version-watermark and tombstone maps stay bounded
// under unbounded name churn.
func TestAnswerCacheBounds(t *testing.T) {
	c := newAnswerCache(4)
	for i := 0; i < 100; i++ {
		doc := fmt.Sprintf("doc-%d", i)
		c.put(doc, "q", uint64(i+1), []byte("x"))
		c.forget(doc)
	}
	st := c.stats()
	if st.Entries > 4 {
		t.Fatalf("LRU holds %d entries past capacity 4", st.Entries)
	}
	if len(c.latest) > 4*c.cap+1 {
		t.Fatalf("latest map grew to %d entries under name churn", len(c.latest))
	}
	if len(c.dead) > 4*c.cap+1 {
		t.Fatalf("dead map grew to %d entries under name churn", len(c.dead))
	}
}
