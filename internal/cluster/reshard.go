package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/resilience"
	"repro/internal/serve"
)

// ReshardOptions configures one resharding run: move every document
// from the placement implied by the From ring to the placement implied
// by the To ring, preserving versions.
type ReshardOptions struct {
	// From is the old ring's peer set; To the new ring's. Peers may
	// overlap — growing a 2-node ring to 3 keeps the original nodes in
	// both.
	From, To []*Node
	// FromGeneration and ToGeneration stamp the two rings (defaults: 1
	// and FromGeneration+1).
	FromGeneration, ToGeneration uint64
	// Replicas is the new ring's replication factor: each document is
	// placed on its new owner plus this many ring successors.
	Replicas int
	// DryRun plans without writing: the movement plan is logged and
	// counted, nothing is copied or pruned.
	DryRun bool
	// Prune deletes each document from inventoried nodes that are not
	// among its new-ring targets once its copies have all succeeded.
	// Off by default: a migration that keeps the old copies is
	// trivially abortable.
	Prune bool
	// Timeout bounds each per-node call (default DefaultTimeout).
	Timeout time.Duration
	// Log receives one line per planned movement and a summary (nil
	// discards).
	Log io.Writer
}

// ReshardSummary counts what a run did (or, under DryRun, would do).
type ReshardSummary struct {
	Documents int // distinct documents inventoried
	Copies    int // target copies written (planned, under DryRun)
	Skipped   int // target copies already in place at >= the version
	Pruned    int // copies deleted from non-target nodes
	Errors    int // failed copies or prunes
}

// docPlan is one document's movement plan.
type docPlan struct {
	name    string
	ver     uint64
	source  string   // URL of the node to stream the XML from
	targets []string // URLs still needing a copy at ver
	prunes  []string // URLs holding a copy that the new ring does not place
}

// Reshard moves a corpus from the From ring's placement to the To
// ring's: it inventories every node (old and new — so a partially
// migrated corpus resumes instead of restarting), plans the copies
// each document still needs, streams the XML from a holder of the
// newest version via Remote.Range, and writes it through the new ring
// at the preserved version. The write path is Server.AddDocumentAt's
// mirror form, which skips stale writes, so the run is idempotent:
// re-running a completed reshard copies nothing. Documents registered
// mid-run are picked up at whatever version the streaming pass
// observes; a router in drain mode keeps answering for the stragglers
// until a final run reports zero copies.
func Reshard(ctx context.Context, opts ReshardOptions) (ReshardSummary, error) {
	var sum ReshardSummary
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	if opts.Replicas < 0 {
		return sum, fmt.Errorf("replicas must be >= 0, got %d", opts.Replicas)
	}
	if opts.FromGeneration == 0 {
		opts.FromGeneration = 1
	}
	if opts.ToGeneration == 0 {
		opts.ToGeneration = opts.FromGeneration + 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	oldRing, err := NewRing(opts.From, opts.FromGeneration)
	if err != nil {
		return sum, fmt.Errorf("old ring: %w", err)
	}
	newRing, err := NewRing(opts.To, opts.ToGeneration)
	if err != nil {
		return sum, fmt.Errorf("new ring: %w", err)
	}

	// Every distinct node, old ring first: the streaming pass below
	// prefers sourcing from the old ring, whose copies are the ones
	// being retired.
	byURL := map[string]*Node{}
	var nodes []*Node
	for _, n := range append(append([]*Node{}, oldRing.Peers()...), newRing.Peers()...) {
		if byURL[n.URL()] == nil {
			byURL[n.URL()] = n
			nodes = append(nodes, n)
		}
	}

	// Inventory: who holds which document at which version. A transient
	// transport failure is retried once with backoff; a node that stays
	// unreachable aborts the run — resharding around a hole would
	// silently lose whatever only that node held.
	backoff := resilience.NewBackoff(0, 0, 0)
	holders := map[string]map[string]uint64{} // doc -> node URL -> version
	for _, n := range nodes {
		var docs []serve.DocInfo
		err := resilience.Retry(ctx, 2, backoff, func(actx context.Context) error {
			cctx, cancel := context.WithTimeout(actx, opts.Timeout)
			defer cancel()
			var lerr error
			docs, lerr = n.Documents(cctx)
			return lerr
		}, func(err error) bool { return errors.Is(err, ErrUnavailable) })
		if err != nil {
			return sum, fmt.Errorf("inventory %s: %w", n.Name(), err)
		}
		for _, d := range docs {
			if holders[d.Name] == nil {
				holders[d.Name] = map[string]uint64{}
			}
			holders[d.Name][n.URL()] = d.Version
		}
	}

	// Plan: per document, the newest version wins; its copy must reach
	// the new owner and the replica successors that do not already
	// hold it at that version.
	var names []string
	for name := range holders {
		names = append(names, name)
	}
	sort.Strings(names)
	sum.Documents = len(names)
	plans := map[string][]*docPlan{} // source URL -> plans streamed from it
	var planned []*docPlan
	for _, name := range names {
		hs := holders[name]
		var ver uint64
		for _, v := range hs {
			if v > ver {
				ver = v
			}
		}
		targetSet := map[string]bool{}
		p := &docPlan{name: name, ver: ver}
		for _, tn := range newRing.Replicas(name, opts.Replicas) {
			targetSet[tn.URL()] = true
			if hv, ok := hs[tn.URL()]; !ok || hv < ver {
				p.targets = append(p.targets, tn.URL())
			} else {
				sum.Skipped++
			}
		}
		for url := range hs {
			if !targetSet[url] {
				p.prunes = append(p.prunes, url)
			}
		}
		sort.Strings(p.prunes)
		// Source: a holder of the newest version, old-ring nodes first
		// (the nodes slice order).
		for _, n := range nodes {
			if hs[n.URL()] == ver {
				p.source = n.URL()
				break
			}
		}
		if len(p.targets) > 0 || (opts.Prune && len(p.prunes) > 0) {
			planned = append(planned, p)
			plans[p.source] = append(plans[p.source], p)
		}
		for _, target := range p.targets {
			logf("%s v%d: copy %s -> %s", name, ver, byURL[p.source].Name(), byURL[target].Name())
		}
		if opts.Prune {
			for _, prune := range p.prunes {
				logf("%s v%d: prune %s", name, ver, byURL[prune].Name())
			}
		}
	}

	if opts.DryRun {
		for _, p := range planned {
			sum.Copies += len(p.targets)
			if opts.Prune {
				sum.Pruned += len(p.prunes)
			}
		}
		logf("dry run: %d documents, %d copies, %d already placed, %d prunes (generation %d -> %d)",
			sum.Documents, sum.Copies, sum.Skipped, sum.Pruned, oldRing.Generation(), newRing.Generation())
		return sum, nil
	}

	// Copy pass: stream each source node's corpus via Remote.Range and
	// write the planned documents through the new ring at their
	// preserved versions. A document replaced since the inventory
	// streams at its newer version — the mirror write path keeps that
	// consistent on every target.
	failed := map[string]bool{}
	for srcURL, srcPlans := range plans {
		pending := map[string]*docPlan{}
		for _, p := range srcPlans {
			if len(p.targets) > 0 {
				pending[p.name] = p
			}
		}
		if len(pending) == 0 {
			continue
		}
		remote := NewRemote(byURL[srcURL], opts.Timeout)
		remote.RangeDocumentsContext(ctx, func(info serve.DocInfo) bool {
			if len(pending) == 0 {
				return false // every planned copy from this source is done
			}
			p, ok := pending[info.Name]
			if !ok {
				return ctx.Err() == nil
			}
			delete(pending, info.Name)
			// Write at the version the fetch paired with this XML —
			// never the (possibly newer) planned version: labeling old
			// content with a new version would let the stale-write
			// guard pin it. If the fetch saw an older copy than the
			// plan, the copy lands under-versioned and the next run
			// reconciles.
			ver := info.Version
			for _, target := range p.targets {
				cctx, cancel := context.WithTimeout(ctx, opts.Timeout)
				_, _, err := byURL[target].PutDocumentAt(cctx, info.Name, info.XML, ver)
				cancel()
				if err != nil {
					logf("copy %s -> %s failed: %v", info.Name, byURL[target].Name(), err)
					sum.Errors++
					failed[p.name] = true
					continue
				}
				sum.Copies++
			}
			return ctx.Err() == nil
		})
		if err := remote.Err(); err != nil {
			return sum, fmt.Errorf("streaming from %s: %w", byURL[srcURL].Name(), err)
		}
		for name := range pending {
			logf("source %s no longer holds %s; re-run to reconcile", byURL[srcURL].Name(), name)
			sum.Errors++
			failed[name] = true
		}
	}

	// Prune pass: only documents whose copies all landed lose their
	// off-ring copies, so an interrupted run never deletes the last
	// good copy.
	if opts.Prune {
		for _, p := range planned {
			if failed[p.name] {
				continue
			}
			for _, url := range p.prunes {
				cctx, cancel := context.WithTimeout(ctx, opts.Timeout)
				err := byURL[url].DeleteDocument(cctx, p.name)
				cancel()
				if err != nil && !IsNotFound(err) {
					logf("prune %s from %s failed: %v", p.name, byURL[url].Name(), err)
					sum.Errors++
					continue
				}
				sum.Pruned++
			}
		}
	}

	logf("resharded: %d documents, %d copies, %d already placed, %d pruned, %d errors (generation %d -> %d)",
		sum.Documents, sum.Copies, sum.Skipped, sum.Pruned, sum.Errors, oldRing.Generation(), newRing.Generation())
	if sum.Errors > 0 {
		return sum, fmt.Errorf("reshard finished with %d errors; re-run to reconcile", sum.Errors)
	}
	return sum, nil
}

// IsNotFound reports whether err is the typed "document not found on
// peer" condition.
func IsNotFound(err error) bool { return errors.Is(err, ErrNotFound) }
