package xpath

// Relev is the "relevant context" of an expression node (Section 8.2): a
// subset of {cn, cp, cs} saying which of context node, context position
// and context size can influence the expression's value.
type Relev uint8

// Relevant-context components.
const (
	RelevNode Relev = 1 << iota // 'cn'
	RelevPos                    // 'cp'
	RelevSize                   // 'cs'
)

// Has reports whether all components of m are present.
func (r Relev) Has(m Relev) bool { return r&m == m }

// String renders the set like the paper, e.g. "{cn,cp}".
func (r Relev) String() string {
	s := "{"
	if r.Has(RelevNode) {
		s += "cn"
	}
	if r.Has(RelevPos) {
		if len(s) > 1 {
			s += ","
		}
		s += "cp"
	}
	if r.Has(RelevSize) {
		if len(s) > 1 {
			s += ","
		}
		s += "cs"
	}
	return s + "}"
}

// RelevantContext computes Relev(N) by the bottom-up rules of Section
// 8.2:
//
//   - constants and true()/false(): ∅;
//   - position(): {cp}; last(): {cs};
//   - location steps, and parameterless core functions that refer to the
//     context node (string(), number(), …): {cn};
//   - location paths: {cn} if relative, ∅ if absolute (an absolute path
//     ignores its context entirely); a filter-expression head contributes
//     its own relevant context;
//   - all other compound expressions: the union over their children.
//
// Note that predicates inside a location step do NOT propagate upward:
// the step evaluates them in fresh contexts, so a step's relevant
// context is always {cn} (or ∅ under an absolute path).
//
// The computation is O(|Q|) and depends only on the query (Section 8.2).
func RelevantContext(e Expr) Relev {
	switch x := e.(type) {
	case *Number, *Literal:
		return 0
	case *VarRef:
		// Unresolved variables are constants-to-be; no context needed.
		return 0
	case *Negate:
		return RelevantContext(x.X)
	case *Binary:
		return RelevantContext(x.Left) | RelevantContext(x.Right)
	case *Call:
		switch x.Name {
		case "position":
			return RelevPos
		case "last":
			return RelevSize
		case "true", "false":
			return 0
		case "string", "number", "string-length", "normalize-space",
			"local-name", "namespace-uri", "name":
			if len(x.Args) == 0 {
				return RelevNode // defaults to the context node
			}
		case "first-of-type", "last-of-type", "first-of-any", "last-of-any":
			// XSLT'98 unary predicates inspect the context node's
			// siblings.
			return RelevNode
		case "lang":
			// lang() inspects the context node's ancestors in addition
			// to its argument.
			r := RelevNode
			for _, a := range x.Args {
				r |= RelevantContext(a)
			}
			return r
		}
		var r Relev
		for _, a := range x.Args {
			r |= RelevantContext(a)
		}
		return r
	case *FilterExpr:
		return RelevantContext(x.Primary)
	case *Path:
		if x.Filter != nil {
			return RelevantContext(x.Filter)
		}
		if x.Absolute {
			return 0
		}
		return RelevNode
	default:
		return RelevNode | RelevPos | RelevSize // conservative
	}
}
