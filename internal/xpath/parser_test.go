package xpath

import (
	"strings"
	"testing"

	"repro/internal/axes"
)

func parse(t *testing.T, q string) Expr {
	t.Helper()
	e, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return e
}

func asPath(t *testing.T, e Expr) *Path {
	t.Helper()
	p, ok := e.(*Path)
	if !ok {
		t.Fatalf("expected *Path, got %T (%s)", e, e)
	}
	return p
}

func TestParseSimplePaths(t *testing.T) {
	p := asPath(t, parse(t, "/descendant::a/child::b"))
	if !p.Absolute || len(p.Steps) != 2 {
		t.Fatalf("bad path: %+v", p)
	}
	if p.Steps[0].Axis != axes.Descendant || p.Steps[0].Test.Name != "a" {
		t.Errorf("step 0 = %s", p.Steps[0])
	}
	if p.Steps[1].Axis != axes.Child || p.Steps[1].Test.Name != "b" {
		t.Errorf("step 1 = %s", p.Steps[1])
	}
}

func TestAbbreviationExpansion(t *testing.T) {
	// //a/b expands to /descendant-or-self::node()/child::a/child::b.
	p := asPath(t, parse(t, "//a/b"))
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d, want 3 (%s)", len(p.Steps), p)
	}
	if p.Steps[0].Axis != axes.DescendantOrSelf || p.Steps[0].Test.Kind != TestNode {
		t.Errorf("// expansion: %s", p.Steps[0])
	}
	if p.Steps[1].Axis != axes.Child || p.Steps[2].Axis != axes.Child {
		t.Errorf("child steps: %s", p)
	}

	// @href → attribute::href
	p = asPath(t, parse(t, "a/@href"))
	if p.Steps[1].Axis != axes.AttributeAxis || p.Steps[1].Test.Name != "href" {
		t.Errorf("@ expansion: %s", p.Steps[1])
	}

	// . and ..
	p = asPath(t, parse(t, "./.."))
	if p.Steps[0].Axis != axes.Self || p.Steps[0].Test.Kind != TestNode {
		t.Errorf(". expansion: %s", p.Steps[0])
	}
	if p.Steps[1].Axis != axes.Parent || p.Steps[1].Test.Kind != TestNode {
		t.Errorf(".. expansion: %s", p.Steps[1])
	}

	// a//b has a descendant-or-self step in the middle.
	p = asPath(t, parse(t, "a//b"))
	if len(p.Steps) != 3 || p.Steps[1].Axis != axes.DescendantOrSelf {
		t.Errorf("a//b = %s", p)
	}
}

func TestNumericPredicateNormalization(t *testing.T) {
	// //a[5] means /descendant-or-self::node()/child::a[position() = 5]
	// (Section 5).
	p := asPath(t, parse(t, "//a[5]"))
	pred := p.Steps[1].Preds[0]
	b, ok := pred.(*Binary)
	if !ok || b.Op != OpEq {
		t.Fatalf("pred = %s, want position() = 5", pred)
	}
	if c, ok := b.Left.(*Call); !ok || c.Name != "position" {
		t.Errorf("pred lhs = %s", b.Left)
	}
	if n, ok := b.Right.(*Number); !ok || n.Val != 5 {
		t.Errorf("pred rhs = %s", b.Right)
	}
	// Arithmetic predicates normalize too: [last()-1].
	p = asPath(t, parse(t, "a[last()-1]"))
	if b, ok := p.Steps[0].Preds[0].(*Binary); !ok || b.Op != OpEq {
		t.Errorf("arith pred = %s", p.Steps[0].Preds[0])
	}
}

func TestBooleanPredicateNormalization(t *testing.T) {
	// /descendant::a[child::b] wraps the node-set predicate in boolean().
	p := asPath(t, parse(t, "/descendant::a[child::b]"))
	pred := p.Steps[0].Preds[0]
	c, ok := pred.(*Call)
	if !ok || c.Name != "boolean" {
		t.Fatalf("pred = %s, want boolean(child::b)", pred)
	}
	if _, ok := c.Args[0].(*Path); !ok {
		t.Errorf("boolean arg = %T", c.Args[0])
	}
	// String predicates are wrapped as well.
	p = asPath(t, parse(t, "a[string()]"))
	if c, ok := p.Steps[0].Preds[0].(*Call); !ok || c.Name != "boolean" {
		t.Errorf("string pred = %s", p.Steps[0].Preds[0])
	}
	// Already-boolean predicates stay as they are.
	p = asPath(t, parse(t, "a[true()]"))
	if c, ok := p.Steps[0].Preds[0].(*Call); !ok || c.Name != "true" {
		t.Errorf("bool pred = %s", p.Steps[0].Preds[0])
	}
}

func TestParsePaperQueries(t *testing.T) {
	// Queries appearing in the paper must all parse.
	queries := []string{
		"//a/b",
		"//a/b/parent::a/b",
		"//a/b/parent::a/b/parent::a/b",
		"//*[parent::a/child::* = 'c']",
		"//*[parent::a/child::*[parent::a/child::* = 'c'] = 'c']",
		"//a/b[count(parent::a/b) > 1]",
		"//a/b[count(parent::a/b[count(parent::a/b) > 1]) > 1]",
		"//a//b[ancestor::a//b[ancestor::a//b]/ancestor::a//b]/ancestor::a//b",
		"count(//b/following::b/following::b)",
		"count(//b//b//b)",
		"descendant::b/following-sibling::*[position() != last()]",
		"/descendant::a[count(descendant::b/child::c) + position() < last()]/child::d",
		"/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]",
		"/child::a/descendant::*[boolean(following::d[(position() != last()) and (preceding-sibling::*/preceding::* = 100)]/following::d)]",
		"/descendant::a/child::b[child::c/child::d or not(following::*)]",
		"/descendant::a[position() = 5]",
		"/descendant::a[boolean(child::b)]",
		"id('10')/child::b",
		"//*[@id = '11']",
	}
	for _, q := range queries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
}

func TestParseExperimentQueryFamilies(t *testing.T) {
	// Experiment 1: //a/b(/parent::a/b)^k
	q := "//a/b"
	for i := 0; i < 5; i++ {
		q += "/parent::a/b"
	}
	parse(t, q)

	// Experiment 2 family.
	q2 := "//*[parent::a/child::* = 'c']"
	for i := 0; i < 4; i++ {
		q2 = "//*[parent::a/child::*[" + strings.TrimPrefix(q2, "//*[") + " = 'c']"
	}
	parse(t, q2)

	// Experiment 4: nested ancestor/descendant brackets.
	q4 := "//b"
	for i := 0; i < 5; i++ {
		q4 = "//b[ancestor::a" + q4 + "]/ancestor::a"
	}
	parse(t, "//a"+q4+"//b")
}

func TestOperatorPrecedence(t *testing.T) {
	e := parse(t, "1 + 2 * 3")
	b := e.(*Binary)
	if b.Op != OpAdd {
		t.Fatalf("top op = %v", b.Op)
	}
	if r := b.Right.(*Binary); r.Op != OpMul {
		t.Errorf("right op = %v", r.Op)
	}

	e = parse(t, "true() or false() and false()")
	b = e.(*Binary)
	if b.Op != OpOr {
		t.Fatalf("top = %v, want or", b.Op)
	}

	e = parse(t, "1 < 2 = true()")
	b = e.(*Binary)
	if b.Op != OpEq {
		t.Fatalf("top = %v, want =", b.Op)
	}

	// Union binds tighter than comparison.
	e = parse(t, "a | b = c")
	b = e.(*Binary)
	if b.Op != OpEq {
		t.Fatalf("top = %v, want =", b.Op)
	}
	if l := b.Left.(*Binary); l.Op != OpUnion {
		t.Errorf("left = %v, want |", l.Op)
	}
}

func TestStarDisambiguation(t *testing.T) {
	// * after an operand is multiplication; in operand position it is
	// the wildcard.
	e := parse(t, "2 * 3")
	if b := e.(*Binary); b.Op != OpMul {
		t.Fatalf("2 * 3 top = %v", b.Op)
	}
	p := asPath(t, parse(t, "child::*"))
	if p.Steps[0].Test.Name != "*" {
		t.Fatalf("child::* test = %s", p.Steps[0].Test)
	}
	// position() > last()*0.5 — * is multiply after last().
	e = parse(t, "position() > last()*0.5")
	if b := e.(*Binary); b.Op != OpGt {
		t.Fatalf("top = %v", b.Op)
	}
	// div/mod/and/or as element names in operand position.
	p = asPath(t, parse(t, "div/mod"))
	if p.Steps[0].Test.Name != "div" || p.Steps[1].Test.Name != "mod" {
		t.Errorf("div/mod as names: %s", p)
	}
}

func TestFilterExprs(t *testing.T) {
	// (//a)[1]
	e := parse(t, "(//a)[1]")
	fe, ok := e.(*FilterExpr)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if _, ok := fe.Primary.(*Path); !ok {
		t.Errorf("primary = %T", fe.Primary)
	}
	// Numeric filter predicate also normalizes to position()=1.
	if b, ok := fe.Preds[0].(*Binary); !ok || b.Op != OpEq {
		t.Errorf("filter pred = %s", fe.Preds[0])
	}
	// id('x')/b — function head path.
	p := asPath(t, parse(t, "id('x')/b"))
	if p.Filter == nil || len(p.Steps) != 1 {
		t.Fatalf("id head path: %s", p)
	}
	if c, ok := p.Filter.(*Call); !ok || c.Name != "id" {
		t.Errorf("filter head = %s", p.Filter)
	}
}

func TestNodeTests(t *testing.T) {
	p := asPath(t, parse(t, "child::text()"))
	if p.Steps[0].Test.Kind != TestText {
		t.Errorf("text() test: %v", p.Steps[0].Test)
	}
	p = asPath(t, parse(t, "child::comment()"))
	if p.Steps[0].Test.Kind != TestComment {
		t.Errorf("comment() test: %v", p.Steps[0].Test)
	}
	p = asPath(t, parse(t, "child::processing-instruction('tgt')"))
	if p.Steps[0].Test.Kind != TestPI || p.Steps[0].Test.Name != "tgt" {
		t.Errorf("pi test: %v", p.Steps[0].Test)
	}
	p = asPath(t, parse(t, "child::node()"))
	if p.Steps[0].Test.Kind != TestNode {
		t.Errorf("node() test: %v", p.Steps[0].Test)
	}
	p = asPath(t, parse(t, "child::ns:*"))
	if p.Steps[0].Test.Name != "ns:*" {
		t.Errorf("prefix wildcard: %v", p.Steps[0].Test)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"//",
		"child::",
		"a[",
		"a]",
		"f(#)",
		"child::a[",
		"unknownaxis::a",
		"frobnicate()",
		"count()",
		"count(a, b)",
		"not()",
		"'unterminated",
		"1 +",
		"(a",
		"a b",
		"$",
		"../..[",
		"2 | a", // union requires node sets
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q): expected error", q)
		}
	}
}

func TestVariables(t *testing.T) {
	e := parse(t, "a[@x = $v]")
	if !HasVariables(e) {
		t.Fatal("variable not detected")
	}
	sub, err := Substitute(e, Bindings{"v": &Literal{Val: "hello"}})
	if err != nil {
		t.Fatal(err)
	}
	if HasVariables(sub) {
		t.Error("substitution left variables behind")
	}
	if _, err := Substitute(e, Bindings{}); err == nil {
		t.Error("unbound variable should error")
	}
}

func TestStringRoundTrip(t *testing.T) {
	// String() output must re-parse to an equal-printing tree.
	queries := []string{
		"/descendant::a/child::b",
		"//a/b[count(parent::a/b) > 1]",
		"descendant::b/following-sibling::*[position() != last()]",
		"id('10')/child::d",
		"(//a)[2]",
		"child::a | child::b",
		"-1 + 2",
		"concat('a', 'b', 'c')",
		"/descendant::*[position() > last()*0.5 or self::* = 100]",
	}
	for _, q := range queries {
		e1 := parse(t, q)
		e2 := parse(t, e1.String())
		if e1.String() != e2.String() {
			t.Errorf("round trip %q:\n  first:  %s\n  second: %s", q, e1, e2)
		}
	}
}

func TestStaticTypes(t *testing.T) {
	cases := map[string]Type{
		"1":            TypeNumber,
		"'s'":          TypeString,
		"a":            TypeNodeSet,
		"a | b":        TypeNodeSet,
		"1 + 2":        TypeNumber,
		"1 = 2":        TypeBoolean,
		"true()":       TypeBoolean,
		"count(a)":     TypeNumber,
		"concat(a, b)": TypeString,
		"not(a)":       TypeBoolean,
		"-a":           TypeNumber,
		"(a)[1]":       TypeNodeSet,
	}
	for q, want := range cases {
		if got := parse(t, q).Type(); got != want {
			t.Errorf("type of %q = %v, want %v", q, got, want)
		}
	}
}

func TestNodeTestString(t *testing.T) {
	cases := map[string]string{
		"node()":    "node()",
		"text()":    "text()",
		"comment()": "comment()",
		"a":         "a",
		"*":         "*",
	}
	for in, want := range cases {
		p := asPath(t, parse(t, "child::"+in))
		if got := p.Steps[0].Test.String(); got != want {
			t.Errorf("test %q renders %q, want %q", in, got, want)
		}
	}
}
