package xpath

import (
	"fmt"
	"strings"
)

// TreeString renders the expression's parse tree, one node per line with
// indentation, annotated with each node's static type and relevant
// context — the kind of display the paper uses in Figures 10 and 13 and
// Example 8.2. Location steps are shown as children of their path.
func TreeString(e Expr) string {
	var b strings.Builder
	writeTree(&b, e, 0)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func writeTree(b *strings.Builder, e Expr, depth int) {
	indent(b, depth)
	switch x := e.(type) {
	case *Number:
		fmt.Fprintf(b, "number %s", x)
	case *Literal:
		fmt.Fprintf(b, "literal %s", x)
	case *VarRef:
		fmt.Fprintf(b, "variable $%s", x.Name)
	case *Negate:
		fmt.Fprintf(b, "negate")
	case *Binary:
		fmt.Fprintf(b, "op %q", x.Op.String())
	case *Call:
		fmt.Fprintf(b, "call %s()", x.Name)
	case *FilterExpr:
		fmt.Fprintf(b, "filter")
	case *Path:
		if x.Absolute {
			fmt.Fprintf(b, "path (absolute)")
		} else {
			fmt.Fprintf(b, "path")
		}
	default:
		fmt.Fprintf(b, "%T", e)
	}
	fmt.Fprintf(b, "   : %s  Relev=%s\n", e.Type(), RelevantContext(e))
	switch x := e.(type) {
	case *Negate:
		writeTree(b, x.X, depth+1)
	case *Binary:
		writeTree(b, x.Left, depth+1)
		writeTree(b, x.Right, depth+1)
	case *Call:
		for _, a := range x.Args {
			writeTree(b, a, depth+1)
		}
	case *FilterExpr:
		writeTree(b, x.Primary, depth+1)
		for _, p := range x.Preds {
			indent(b, depth+1)
			b.WriteString("predicate\n")
			writeTree(b, p, depth+2)
		}
	case *Path:
		if x.Filter != nil {
			indent(b, depth+1)
			b.WriteString("head\n")
			writeTree(b, x.Filter, depth+2)
		}
		for _, s := range x.Steps {
			indent(b, depth+1)
			fmt.Fprintf(b, "step %s::%s  Relev={cn}\n", s.Axis, s.Test)
			for _, p := range s.Preds {
				indent(b, depth+2)
				b.WriteString("predicate\n")
				writeTree(b, p, depth+3)
			}
		}
	}
}
