package xpath

import "fmt"

// Signature describes a core-library function: its result type and arity
// range (MaxArgs == -1 means variadic).
type Signature struct {
	Result           Type
	MinArgs, MaxArgs int
}

// coreFunctions is the XPath 1.0 core function library (W3C Rec. §4).
// The paper's Table II covers the semantics of most of these; the string
// and number functions it elides ("it is very easy to obtain these
// definitions from the XPath Recommendation") are included too.
var coreFunctions = map[string]Signature{
	// Node-set functions.
	"last":          {TypeNumber, 0, 0},
	"position":      {TypeNumber, 0, 0},
	"count":         {TypeNumber, 1, 1},
	"id":            {TypeNodeSet, 1, 1},
	"local-name":    {TypeString, 0, 1},
	"namespace-uri": {TypeString, 0, 1},
	"name":          {TypeString, 0, 1},
	// String functions.
	"string":           {TypeString, 0, 1},
	"concat":           {TypeString, 2, -1},
	"starts-with":      {TypeBoolean, 2, 2},
	"contains":         {TypeBoolean, 2, 2},
	"substring-before": {TypeString, 2, 2},
	"substring-after":  {TypeString, 2, 2},
	"substring":        {TypeString, 2, 3},
	"string-length":    {TypeNumber, 0, 1},
	"normalize-space":  {TypeString, 0, 1},
	"translate":        {TypeString, 3, 3},
	// Boolean functions.
	"boolean": {TypeBoolean, 1, 1},
	"not":     {TypeBoolean, 1, 1},
	"true":    {TypeBoolean, 0, 0},
	"false":   {TypeBoolean, 0, 0},
	"lang":    {TypeBoolean, 1, 1},
	// Number functions.
	"number":  {TypeNumber, 0, 1},
	"sum":     {TypeNumber, 1, 1},
	"floor":   {TypeNumber, 1, 1},
	"ceiling": {TypeNumber, 1, 1},
	"round":   {TypeNumber, 1, 1},
	// XSLT Patterns'98 unary predicates (Section 10.2, Theorem 10.8).
	// These existed in the December 1998 XSLT draft but not in XPath;
	// they are supported here as extension functions so that XPatterns
	// queries can use them, with linear-time precomputation in the
	// xpatterns engine and per-node evaluation elsewhere.
	"first-of-type": {TypeBoolean, 0, 0},
	"last-of-type":  {TypeBoolean, 0, 0},
	"first-of-any":  {TypeBoolean, 0, 0},
	"last-of-any":   {TypeBoolean, 0, 0},
}

// LookupFunction returns the signature of a core function.
func LookupFunction(name string) (Signature, bool) {
	sig, ok := coreFunctions[name]
	return sig, ok
}

// checkCall validates a call's arity against the library.
func checkCall(name string, nargs int) error {
	sig, ok := coreFunctions[name]
	if !ok {
		return fmt.Errorf("unknown function %s()", name)
	}
	if nargs < sig.MinArgs {
		return fmt.Errorf("%s() needs at least %d argument(s), got %d", name, sig.MinArgs, nargs)
	}
	if sig.MaxArgs >= 0 && nargs > sig.MaxArgs {
		return fmt.Errorf("%s() takes at most %d argument(s), got %d", name, sig.MaxArgs, nargs)
	}
	return nil
}
