package xpath

import (
	"fmt"

	"repro/internal/axes"
)

// Parse parses an XPath 1.0 query into a normalized expression tree:
// abbreviations are expanded, numeric predicates become positional
// comparisons, and non-boolean predicates are wrapped in boolean(·)
// (Section 5's unabbreviated form).
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after complete expression", p.peek())
	}
	return normalize(e), nil
}

// MustParse parses a query known to be valid; it panics on error.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token  { return p.toks[p.pos] }
func (p *parser) peek2() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokenKind) bool {
	if p.peek().kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, what string) error {
	if !p.accept(k) {
		return p.errorf("expected %s, found %s", what, p.peek())
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("xpath: parse %q: offset %d: %s", p.src, p.peek().pos,
		fmt.Sprintf(format, args...))
}

// Expr ::= OrExpr
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOr) {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseEquality()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAnd) {
		right, err := p.parseEquality()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseEquality() (Expr, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().kind {
		case tokEq:
			op = OpEq
		case tokNeq:
			op = OpNeq
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseRelational() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().kind {
		case tokLt:
			op = OpLt
		case tokLe:
			op = OpLe
		case tokGt:
			op = OpGt
		case tokGe:
			op = OpGe
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().kind {
		case tokPlus:
			op = OpAdd
		case tokMinus:
			op = OpSub
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op BinOp
		switch p.peek().kind {
		case tokMul:
			op = OpMul
		case tokDiv:
			op = OpDiv
		case tokMod:
			op = OpMod
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
}

// UnaryExpr ::= UnionExpr | '-' UnaryExpr
func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokMinus) {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Negate{X: x}, nil
	}
	return p.parseUnion()
}

// UnionExpr ::= PathExpr ('|' PathExpr)*
func (p *parser) parseUnion() (Expr, error) {
	left, err := p.parsePathExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPipe) {
		right, err := p.parsePathExpr()
		if err != nil {
			return nil, err
		}
		if left.Type() != TypeNodeSet || right.Type() != TypeNodeSet {
			return nil, p.errorf("operands of | must be node sets")
		}
		left = &Binary{Op: OpUnion, Left: left, Right: right}
	}
	return left, nil
}

// PathExpr ::= LocationPath
//
//	| FilterExpr (('/' | '//') RelativeLocationPath)?
func (p *parser) parsePathExpr() (Expr, error) {
	if p.startsFilterExpr() {
		fe, err := p.parseFilterExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokSlash && p.peek().kind != tokSlash2 {
			return fe, nil
		}
		if fe.Type() != TypeNodeSet {
			return nil, p.errorf("expression before / must be a node set")
		}
		path := &Path{Filter: fe}
		if err := p.parseStepsInto(path); err != nil {
			return nil, err
		}
		return path, nil
	}
	return p.parseLocationPath()
}

// startsFilterExpr distinguishes a FilterExpr head from a location path.
// FilterExpr starts with: VariableReference, '(', Literal, Number, or a
// FunctionCall that is not a node-type test.
func (p *parser) startsFilterExpr() bool {
	switch p.peek().kind {
	case tokDollar, tokLParen, tokLiteral, tokNumber:
		return true
	case tokName:
		if p.peek2().kind != tokLParen {
			return false
		}
		switch p.peek().text {
		case "node", "text", "comment", "processing-instruction":
			return false // node-type test, part of a step
		}
		return true
	default:
		return false
	}
}

// parseFilterExpr ::= PrimaryExpr Predicate*
func (p *parser) parseFilterExpr() (Expr, error) {
	prim, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	var preds []Expr
	for p.peek().kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
	}
	if len(preds) == 0 {
		return prim, nil
	}
	if prim.Type() != TypeNodeSet {
		return nil, p.errorf("predicates require a node-set expression")
	}
	return &FilterExpr{Primary: prim, Preds: preds}, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	switch t := p.peek(); t.kind {
	case tokDollar:
		p.next()
		if p.peek().kind != tokName {
			return nil, p.errorf("expected variable name after $")
		}
		return &VarRef{Name: p.next().text}, nil
	case tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tokLiteral:
		p.next()
		return &Literal{Val: t.text}, nil
	case tokNumber:
		p.next()
		return &Number{Val: t.num}, nil
	case tokName:
		name := p.next().text
		if err := p.expect(tokLParen, "( after function name"); err != nil {
			return nil, err
		}
		var args []Expr
		if p.peek().kind != tokRParen {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokComma) {
					break
				}
			}
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		if err := checkCall(name, len(args)); err != nil {
			return nil, p.errorf("%s", err)
		}
		return &Call{Name: name, Args: args}, nil
	default:
		return nil, p.errorf("unexpected %s", t)
	}
}

func (p *parser) parsePredicate() (Expr, error) {
	if err := p.expect(tokLBracket, "["); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokRBracket, "]"); err != nil {
		return nil, err
	}
	return e, nil
}

// parseLocationPath ::= '/' RelativeLocationPath?
//
//	| '//' RelativeLocationPath
//	| RelativeLocationPath
func (p *parser) parseLocationPath() (Expr, error) {
	path := &Path{}
	switch p.peek().kind {
	case tokSlash:
		p.next()
		path.Absolute = true
		if !p.startsStep() {
			return path, nil // bare "/"
		}
		if err := p.parseRelativeInto(path); err != nil {
			return nil, err
		}
	case tokSlash2:
		p.next()
		path.Absolute = true
		path.Steps = append(path.Steps, descendantOrSelfStep())
		if err := p.parseRelativeInto(path); err != nil {
			return nil, err
		}
	default:
		if err := p.parseRelativeInto(path); err != nil {
			return nil, err
		}
	}
	return path, nil
}

// parseStepsInto consumes ('/' | '//') RelativeLocationPath after a
// filter-expression head.
func (p *parser) parseStepsInto(path *Path) error {
	if p.accept(tokSlash2) {
		path.Steps = append(path.Steps, descendantOrSelfStep())
	} else if err := p.expect(tokSlash, "/"); err != nil {
		return err
	}
	return p.parseRelativeInto(path)
}

func (p *parser) parseRelativeInto(path *Path) error {
	for {
		step, err := p.parseStep()
		if err != nil {
			return err
		}
		path.Steps = append(path.Steps, step)
		if p.accept(tokSlash) {
			continue
		}
		if p.accept(tokSlash2) {
			path.Steps = append(path.Steps, descendantOrSelfStep())
			continue
		}
		return nil
	}
}

func (p *parser) startsStep() bool {
	switch p.peek().kind {
	case tokName, tokStar, tokAt, tokDot, tokDotDot:
		return true
	default:
		return false
	}
}

// parseStep ::= '.' | '..' | AxisSpecifier NodeTest Predicate*
func (p *parser) parseStep() (*Step, error) {
	switch p.peek().kind {
	case tokDot:
		p.next()
		return &Step{Axis: axes.Self, Test: NodeTest{Kind: TestNode}}, nil
	case tokDotDot:
		p.next()
		return &Step{Axis: axes.Parent, Test: NodeTest{Kind: TestNode}}, nil
	}
	step := &Step{Axis: axes.Child}
	if p.accept(tokAt) {
		step.Axis = axes.AttributeAxis
	} else if p.peek().kind == tokName && p.peek2().kind == tokAxisSep {
		axisName := p.next().text
		p.next() // ::
		a, ok := axes.ByName(axisName)
		if !ok {
			return nil, p.errorf("unknown axis %q", axisName)
		}
		step.Axis = a
	}
	test, err := p.parseNodeTest()
	if err != nil {
		return nil, err
	}
	step.Test = test
	for p.peek().kind == tokLBracket {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		step.Preds = append(step.Preds, pred)
	}
	return step, nil
}

func (p *parser) parseNodeTest() (NodeTest, error) {
	switch t := p.peek(); t.kind {
	case tokStar:
		p.next()
		return NodeTest{Kind: TestName, Name: "*"}, nil
	case tokName:
		name := p.next().text
		if p.peek().kind == tokLParen {
			// Node-type test.
			p.next()
			switch name {
			case "node":
				if err := p.expect(tokRParen, ")"); err != nil {
					return NodeTest{}, err
				}
				return NodeTest{Kind: TestNode}, nil
			case "text":
				if err := p.expect(tokRParen, ")"); err != nil {
					return NodeTest{}, err
				}
				return NodeTest{Kind: TestText}, nil
			case "comment":
				if err := p.expect(tokRParen, ")"); err != nil {
					return NodeTest{}, err
				}
				return NodeTest{Kind: TestComment}, nil
			case "processing-instruction":
				target := ""
				if p.peek().kind == tokLiteral {
					target = p.next().text
				}
				if err := p.expect(tokRParen, ")"); err != nil {
					return NodeTest{}, err
				}
				return NodeTest{Kind: TestPI, Name: target}, nil
			default:
				return NodeTest{}, p.errorf("unknown node type %q", name)
			}
		}
		return NodeTest{Kind: TestName, Name: name}, nil
	default:
		return NodeTest{}, p.errorf("expected node test, found %s", t)
	}
}

// descendantOrSelfStep is the expansion of '//':
// /descendant-or-self::node()/.
func descendantOrSelfStep() *Step {
	return &Step{Axis: axes.DescendantOrSelf, Test: NodeTest{Kind: TestNode}}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
