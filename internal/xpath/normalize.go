package xpath

import "fmt"

// normalize rewrites a freshly parsed tree into the unabbreviated normal
// form the paper's semantics assumes (Section 5):
//
//   - a predicate [e] whose static type is number becomes
//     [position() = e];
//   - a predicate of type node set or string is wrapped in boolean(·), so
//     every predicate has boolean type;
//   - the rewriting recurses into all subexpressions.
//
// Abbreviation expansion (//, @, ., ..) already happened in the parser.
func normalize(e Expr) Expr {
	switch x := e.(type) {
	case *Number, *Literal, *VarRef:
		return e
	case *Negate:
		return &Negate{X: normalize(x.X)}
	case *Binary:
		l, r := normalize(x.Left), normalize(x.Right)
		if x.Op == OpAnd || x.Op == OpOr {
			// Make the boolean conversion of and/or operands explicit,
			// per Section 5 ("all type conversions have to be made
			// explicit").
			l, r = ensureBoolean(l), ensureBoolean(r)
		}
		return &Binary{Op: x.Op, Left: l, Right: r}
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = normalize(a)
		}
		if x.Name == "not" {
			args[0] = ensureBoolean(args[0])
		}
		return &Call{Name: x.Name, Args: args}
	case *FilterExpr:
		return &FilterExpr{
			Primary: normalize(x.Primary),
			Preds:   normalizePreds(x.Preds),
		}
	case *Path:
		out := &Path{Absolute: x.Absolute}
		if x.Filter != nil {
			out.Filter = normalize(x.Filter)
		}
		out.Steps = make([]*Step, len(x.Steps))
		for i, s := range x.Steps {
			out.Steps[i] = &Step{Axis: s.Axis, Test: s.Test, Preds: normalizePreds(s.Preds)}
		}
		return out
	default:
		panic(fmt.Sprintf("xpath: normalize: unknown node %T", e))
	}
}

// ensureBoolean wraps a non-boolean expression in boolean(·).
func ensureBoolean(e Expr) Expr {
	if e.Type() == TypeBoolean {
		return e
	}
	return &Call{Name: "boolean", Args: []Expr{e}}
}

func normalizePreds(preds []Expr) []Expr {
	out := make([]Expr, len(preds))
	for i, p := range preds {
		p = normalize(p)
		if HasVariables(p) {
			// The predicate's type is unknown until the variables are
			// substituted; Substitute re-normalizes afterwards.
			out[i] = p
			continue
		}
		switch p.Type() {
		case TypeNumber:
			// [e] ⇒ [position() = e]
			p = &Binary{Op: OpEq, Left: &Call{Name: "position"}, Right: p}
		case TypeNodeSet, TypeString:
			// [e] ⇒ [boolean(e)]
			p = &Call{Name: "boolean", Args: []Expr{p}}
		}
		out[i] = p
	}
	return out
}

// Bindings supplies constant values for variables. Values must be
// *Number, *Literal, or a caller-constructed constant Expr of the right
// type.
type Bindings map[string]Expr

// Substitute replaces every VarRef in e by its binding, per the paper's
// assumption that "each variable is replaced by the (constant) value of
// the input variable binding" (Section 5), and then re-normalizes: a
// predicate whose type was unknown while it contained variables (e.g.
// [$w] with a numeric binding) gets its positional/boolean rewriting
// now. It errors on unbound variables.
func Substitute(e Expr, b Bindings) (Expr, error) {
	sub, err := substitute(e, b)
	if err != nil {
		return nil, err
	}
	return normalize(sub), nil
}

func substitute(e Expr, b Bindings) (Expr, error) {
	switch x := e.(type) {
	case *Number, *Literal:
		return e, nil
	case *VarRef:
		v, ok := b[x.Name]
		if !ok {
			return nil, fmt.Errorf("xpath: unbound variable $%s", x.Name)
		}
		return v, nil
	case *Negate:
		sub, err := substitute(x.X, b)
		if err != nil {
			return nil, err
		}
		return &Negate{X: sub}, nil
	case *Binary:
		l, err := substitute(x.Left, b)
		if err != nil {
			return nil, err
		}
		r, err := substitute(x.Right, b)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, Left: l, Right: r}, nil
	case *Call:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			sub, err := substitute(a, b)
			if err != nil {
				return nil, err
			}
			args[i] = sub
		}
		return &Call{Name: x.Name, Args: args}, nil
	case *FilterExpr:
		prim, err := substitute(x.Primary, b)
		if err != nil {
			return nil, err
		}
		preds, err := substitutePreds(x.Preds, b)
		if err != nil {
			return nil, err
		}
		return &FilterExpr{Primary: prim, Preds: preds}, nil
	case *Path:
		out := &Path{Absolute: x.Absolute}
		if x.Filter != nil {
			f, err := substitute(x.Filter, b)
			if err != nil {
				return nil, err
			}
			out.Filter = f
		}
		out.Steps = make([]*Step, len(x.Steps))
		for i, s := range x.Steps {
			preds, err := substitutePreds(s.Preds, b)
			if err != nil {
				return nil, err
			}
			out.Steps[i] = &Step{Axis: s.Axis, Test: s.Test, Preds: preds}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("xpath: substitute: unknown node %T", e)
	}
}

func substitutePreds(preds []Expr, b Bindings) ([]Expr, error) {
	out := make([]Expr, len(preds))
	for i, p := range preds {
		sub, err := substitute(p, b)
		if err != nil {
			return nil, err
		}
		out[i] = sub
	}
	return out, nil
}

// HasVariables reports whether the expression still contains a VarRef.
func HasVariables(e Expr) bool {
	found := false
	Walk(e, func(x Expr) {
		if _, ok := x.(*VarRef); ok {
			found = true
		}
	})
	return found
}

// Walk applies f to e and every subexpression of e in pre-order,
// including step predicates.
func Walk(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *Negate:
		Walk(x.X, f)
	case *Binary:
		Walk(x.Left, f)
		Walk(x.Right, f)
	case *Call:
		for _, a := range x.Args {
			Walk(a, f)
		}
	case *FilterExpr:
		Walk(x.Primary, f)
		for _, p := range x.Preds {
			Walk(p, f)
		}
	case *Path:
		if x.Filter != nil {
			Walk(x.Filter, f)
		}
		for _, s := range x.Steps {
			for _, p := range s.Preds {
				Walk(p, f)
			}
		}
	}
}
