package xpath

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token kinds.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokNumber
	tokLiteral
	tokName   // NCName or QName (also axis/function/operator names pre-disambiguation)
	tokStar   // * as a wildcard name test
	tokMul    // * as the multiply operator
	tokSlash  // /
	tokSlash2 // //
	tokPipe
	tokPlus
	tokMinus
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokAnd
	tokOr
	tokDiv
	tokMod
	tokAt
	tokAxisSep // ::
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokDot
	tokDotDot
	tokComma
	tokDollar
)

type token struct {
	kind tokenKind
	text string  // name or literal content
	num  float64 // number value
	pos  int     // byte offset in the query, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokNumber:
		return strconv.FormatFloat(t.num, 'f', -1, 64)
	case tokLiteral:
		return "'" + t.text + "'"
	case tokName:
		return t.text
	default:
		for s, k := range fixedTokens {
			if k == t.kind {
				return s
			}
		}
		switch t.kind {
		case tokStar, tokMul:
			return "*"
		case tokAnd:
			return "and"
		case tokOr:
			return "or"
		case tokDiv:
			return "div"
		case tokMod:
			return "mod"
		}
		return fmt.Sprintf("token(%d)", t.kind)
	}
}

var fixedTokens = map[string]tokenKind{
	"//": tokSlash2, "/": tokSlash, "|": tokPipe, "+": tokPlus,
	"-": tokMinus, "=": tokEq, "!=": tokNeq, "<=": tokLe, "<": tokLt,
	">=": tokGe, ">": tokGt, "@": tokAt, "::": tokAxisSep,
	"(": tokLParen, ")": tokRParen, "[": tokLBracket, "]": tokRBracket,
	"..": tokDotDot, ",": tokComma, "$": tokDollar,
}

// lex tokenizes an XPath query, applying the disambiguation rules of the
// XPath 1.0 Recommendation §3.7: if the preceding token is not @, ::, (,
// [, ',' or an operator, then * is the multiply operator and an NCName
// that spells and/or/div/mod is an operator name.
func lex(src string) ([]token, error) {
	var toks []token
	precedesOperand := func() bool {
		// Reports whether the *next* token is in operand position —
		// i.e. there is no preceding token, or the preceding token is
		// @, ::, (, [, ',' or an operator.
		if len(toks) == 0 {
			return true
		}
		switch toks[len(toks)-1].kind {
		case tokAt, tokAxisSep, tokLParen, tokLBracket, tokComma,
			tokAnd, tokOr, tokDiv, tokMod, tokMul,
			tokSlash, tokSlash2, tokPipe, tokPlus, tokMinus,
			tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
			return true
		default:
			return false
		}
	}
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'' || c == '"':
			j := strings.IndexByte(src[i+1:], c)
			if j < 0 {
				return nil, fmt.Errorf("xpath: unterminated literal at offset %d", i)
			}
			toks = append(toks, token{kind: tokLiteral, text: src[i+1 : i+1+j], pos: i})
			i += j + 2
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			v, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("xpath: bad number %q at offset %d", src[i:j], i)
			}
			toks = append(toks, token{kind: tokNumber, num: v, pos: i})
			i = j
		case c == '.':
			if i+1 < len(src) && src[i+1] == '.' {
				toks = append(toks, token{kind: tokDotDot, pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokDot, pos: i})
				i++
			}
		case c == '*':
			if precedesOperand() {
				toks = append(toks, token{kind: tokStar, pos: i})
			} else {
				toks = append(toks, token{kind: tokMul, pos: i})
			}
			i++
		case isNameStart(rune(c)):
			j := i
			for j < len(src) && isNameChar(rune(src[j])) {
				j++
			}
			name := src[i:j]
			// QName / prefixed wildcard: name ':' name or name ':*'
			// but not name '::' (axis separator).
			if j+1 < len(src) && src[j] == ':' && src[j+1] != ':' {
				if src[j+1] == '*' {
					name = src[i:j] + ":*"
					j += 2
				} else if isNameStart(rune(src[j+1])) {
					k := j + 1
					for k < len(src) && isNameChar(rune(src[k])) {
						k++
					}
					name = src[i:k]
					j = k
				}
			}
			if !precedesOperand() {
				switch name {
				case "and":
					toks = append(toks, token{kind: tokAnd, pos: i})
					i = j
					continue
				case "or":
					toks = append(toks, token{kind: tokOr, pos: i})
					i = j
					continue
				case "div":
					toks = append(toks, token{kind: tokDiv, pos: i})
					i = j
					continue
				case "mod":
					toks = append(toks, token{kind: tokMod, pos: i})
					i = j
					continue
				}
			}
			toks = append(toks, token{kind: tokName, text: name, pos: i})
			i = j
		default:
			matched := false
			for _, pat := range []string{"//", "::", "!=", "<=", ">=", "/",
				"|", "+", "-", "=", "<", ">", "@", "(", ")", "[", "]", ",", "$"} {
				if strings.HasPrefix(src[i:], pat) {
					toks = append(toks, token{kind: fixedTokens[pat], pos: i})
					i += len(pat)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("xpath: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNameChar(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
