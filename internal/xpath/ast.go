// Package xpath provides the XPath 1.0 abstract syntax: a lexer, a
// recursive-descent parser, static expression typing, and the
// normalization into the paper's "unabbreviated form" (Section 5):
// abbreviations (//, @, ., .., bare name tests) are expanded, numeric
// predicates [e] become [position() = e], predicates of non-boolean type
// are wrapped in boolean(·), and variables are substituted by constants
// from the supplied binding.
//
// All evaluation engines in this repository share this AST.
package xpath

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/axes"
	"repro/internal/xmltree"
)

// Type is a static XPath 1.0 expression type (Definition 5.1): number,
// node set, string, or boolean.
type Type uint8

// The four XPath expression types.
const (
	TypeNodeSet Type = iota
	TypeNumber
	TypeString
	TypeBoolean
)

// String names the type as in the paper (nset, num, str, bool).
func (t Type) String() string {
	switch t {
	case TypeNodeSet:
		return "nset"
	case TypeNumber:
		return "num"
	case TypeString:
		return "str"
	case TypeBoolean:
		return "bool"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Expr is an XPath expression tree node.
type Expr interface {
	// Type returns the statically known result type. In XPath 1.0 every
	// expression's type is determined by its operator.
	Type() Type
	// String renders the expression in (unabbreviated) XPath syntax.
	String() string
}

// Number is a numeric literal.
type Number struct{ Val float64 }

// Literal is a string literal.
type Literal struct{ Val string }

// VarRef is a variable reference $Name. The paper assumes variables are
// replaced by constants before evaluation (Section 5); Substitute does
// this, and engines reject any VarRef that survives.
type VarRef struct{ Name string }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators. Comparison operators are the paper's RelOp; EqOp is
// {=, !=}, GtOp is {<=, <, >=, >}.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNeq
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpUnion
)

var binOpNames = [...]string{
	OpOr: "or", OpAnd: "and", OpEq: "=", OpNeq: "!=", OpLt: "<",
	OpLe: "<=", OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-",
	OpMul: "*", OpDiv: "div", OpMod: "mod", OpUnion: "|",
}

// String returns the operator's surface syntax.
func (op BinOp) String() string { return binOpNames[op] }

// IsRelOp reports whether the operator is a comparison (RelOp).
func (op BinOp) IsRelOp() bool { return op >= OpEq && op <= OpGe }

// IsArith reports whether the operator is arithmetic (ArithOp).
func (op BinOp) IsArith() bool { return op >= OpAdd && op <= OpMod }

// Binary is a binary operator application.
type Binary struct {
	Op          BinOp
	Left, Right Expr
}

// Negate is unary minus; per XPath 1.0, -e equals the number negation of
// number(e).
type Negate struct{ X Expr }

// Call is a core-library function call.
type Call struct {
	Name string
	Args []Expr
}

// NodeTestKind discriminates node tests.
type NodeTestKind uint8

// Node test kinds: a name test (possibly a wildcard), or one of the kind
// tests node(), text(), comment(), processing-instruction([literal]).
const (
	TestName NodeTestKind = iota
	TestNode
	TestText
	TestComment
	TestPI
)

// NodeTest is the t in a location step χ::t (Section 4's τ(n) form).
type NodeTest struct {
	Kind NodeTestKind
	// Name is the tested name for TestName ("*" is the wildcard,
	// "prefix:*" a namespace wildcard) and the optional target for
	// TestPI.
	Name string
}

// Matches implements the node-test function T (Section 4) for a single
// node, given the principal node type of the step's axis.
func (nt NodeTest) Matches(d *xmltree.Document, principal xmltree.NodeType, id xmltree.NodeID) bool {
	ty := d.Type(id)
	switch nt.Kind {
	case TestNode:
		return true
	case TestText:
		return ty == xmltree.Text
	case TestComment:
		return ty == xmltree.Comment
	case TestPI:
		return ty == xmltree.ProcInst && (nt.Name == "" || d.Name(id) == nt.Name)
	case TestName:
		if ty != principal {
			return false
		}
		if nt.Name == "*" {
			return true
		}
		if strings.HasSuffix(nt.Name, ":*") {
			return strings.HasPrefix(d.Name(id), nt.Name[:len(nt.Name)-1])
		}
		return d.Name(id) == nt.Name
	default:
		return false
	}
}

// String renders the node test.
func (nt NodeTest) String() string {
	switch nt.Kind {
	case TestNode:
		return "node()"
	case TestText:
		return "text()"
	case TestComment:
		return "comment()"
	case TestPI:
		if nt.Name != "" {
			return fmt.Sprintf("processing-instruction(%q)", nt.Name)
		}
		return "processing-instruction()"
	default:
		return nt.Name
	}
}

// Step is one location step χ::t[e1]…[em].
type Step struct {
	Axis  axes.Axis
	Test  NodeTest
	Preds []Expr
}

// String renders the step in unabbreviated syntax.
func (s *Step) String() string {
	var b strings.Builder
	b.WriteString(s.Axis.String())
	b.WriteString("::")
	b.WriteString(s.Test.String())
	for _, p := range s.Preds {
		b.WriteString("[")
		b.WriteString(p.String())
		b.WriteString("]")
	}
	return b.String()
}

// Path is a location path. If Absolute, evaluation starts at the root.
// If Filter is non-nil the path is a filtered-expression path such as
// id('x')/child::a or (π)[1]/child::b, whose leading expression must be
// of type nset.
type Path struct {
	Absolute bool
	Filter   Expr // optional filter-expression head
	Steps    []*Step
}

// FilterExpr is a primary expression with predicates, e.g. (π)[1] or
// id('x')[2]. It only arises with a non-empty predicate list; a bare
// primary parses to itself.
type FilterExpr struct {
	Primary Expr
	Preds   []Expr
}

// Type implementations (static XPath 1.0 typing).

func (*Number) Type() Type     { return TypeNumber }
func (*Literal) Type() Type    { return TypeString }
func (*Path) Type() Type       { return TypeNodeSet }
func (*FilterExpr) Type() Type { return TypeNodeSet }
func (*Negate) Type() Type     { return TypeNumber }

// Type of a variable is unknown until substitution; parsing rejects
// evaluation of VarRef, but for typing purposes treat it as nset (the
// most permissive choice for normalization).
func (*VarRef) Type() Type { return TypeNodeSet }

// Type returns the operator's result type: or/and and comparisons yield
// booleans, arithmetic yields numbers, union yields node sets.
func (b *Binary) Type() Type {
	switch {
	case b.Op == OpOr || b.Op == OpAnd || b.Op.IsRelOp():
		return TypeBoolean
	case b.Op.IsArith():
		return TypeNumber
	default:
		return TypeNodeSet
	}
}

// Type looks up the function's declared return type.
func (c *Call) Type() Type {
	if sig, ok := coreFunctions[c.Name]; ok {
		return sig.Result
	}
	return TypeString
}

// String renderings.

func (n *Number) String() string {
	return strconv.FormatFloat(n.Val, 'f', -1, 64)
}

func (l *Literal) String() string {
	if strings.Contains(l.Val, "'") {
		return `"` + l.Val + `"`
	}
	return "'" + l.Val + "'"
}

func (v *VarRef) String() string { return "$" + v.Name }

func (n *Negate) String() string { return "-" + n.X.String() }

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left, b.Op, b.Right)
}

func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Name + "(" + strings.Join(args, ", ") + ")"
}

func (p *Path) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	body := strings.Join(parts, "/")
	switch {
	case p.Filter != nil && body != "":
		return p.Filter.String() + "/" + body
	case p.Filter != nil:
		return p.Filter.String()
	case p.Absolute:
		return "/" + body
	default:
		return body
	}
}

func (f *FilterExpr) String() string {
	var b strings.Builder
	b.WriteString("(")
	b.WriteString(f.Primary.String())
	b.WriteString(")")
	for _, p := range f.Preds {
		b.WriteString("[")
		b.WriteString(p.String())
		b.WriteString("]")
	}
	return b.String()
}
