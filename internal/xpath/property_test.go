package xpath

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/axes"
)

// genExpr builds a random normalized-looking AST of bounded depth for
// printer/parser round-trip properties.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return &Number{Val: float64(r.Intn(100))}
		case 1:
			return &Literal{Val: string(rune('a' + r.Intn(26)))}
		default:
			return genPath(r, 0)
		}
	}
	switch r.Intn(6) {
	case 0:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv, OpMod}
		return &Binary{Op: ops[r.Intn(len(ops))],
			Left: &Number{Val: float64(r.Intn(9))}, Right: genNum(r, depth-1)}
	case 1:
		ops := []BinOp{OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe}
		return &Binary{Op: ops[r.Intn(len(ops))],
			Left: genExpr(r, depth-1), Right: genExpr(r, depth-1)}
	case 2:
		op := []BinOp{OpAnd, OpOr}[r.Intn(2)]
		return &Binary{Op: op,
			Left:  &Call{Name: "boolean", Args: []Expr{genExpr(r, depth-1)}},
			Right: &Call{Name: "boolean", Args: []Expr{genExpr(r, depth-1)}}}
	case 3:
		return &Call{Name: "count", Args: []Expr{genPath(r, depth-1)}}
	case 4:
		return &Negate{X: genNum(r, depth-1)}
	default:
		return genPath(r, depth-1)
	}
}

func genNum(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return &Number{Val: float64(r.Intn(100))}
	}
	return &Call{Name: "count", Args: []Expr{genPath(r, depth-1)}}
}

var genAxisList = []axes.Axis{axes.Child, axes.Descendant, axes.Parent,
	axes.Ancestor, axes.Self, axes.Following, axes.Preceding,
	axes.FollowingSibling, axes.PrecedingSibling, axes.DescendantOrSelf,
	axes.AncestorOrSelf, axes.AttributeAxis}

func genPath(r *rand.Rand, depth int) *Path {
	p := &Path{Absolute: r.Intn(2) == 0}
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		st := &Step{
			Axis: genAxisList[r.Intn(len(genAxisList))],
			Test: NodeTest{Kind: TestName, Name: []string{"a", "b", "c", "*"}[r.Intn(4)]},
		}
		if depth > 0 && r.Intn(3) == 0 {
			pred := genExpr(r, depth-1)
			// Predicates must be boolean in normalized form.
			if pred.Type() != TypeBoolean {
				pred = &Call{Name: "boolean", Args: []Expr{asNodeSetSafe(pred)}}
			}
			st.Preds = []Expr{pred}
		}
		p.Steps = append(p.Steps, st)
	}
	return p
}

// asNodeSetSafe guards boolean() against number arguments (boolean(num)
// is legal; keep as-is).
func asNodeSetSafe(e Expr) Expr { return e }

// TestPrinterParserRoundTrip: Parse(e.String()) prints identically to e
// for randomly generated normalized trees.
func TestPrinterParserRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genExpr(r, 3))
		},
	}
	if err := quick.Check(func(e Expr) bool {
		src := e.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Logf("generated %q failed to parse: %v", src, err)
			return false
		}
		if parsed.String() != src {
			// One re-normalization round is permitted (e.g. a number
			// predicate picks up position() = ...); after that the
			// form must be stable.
			again, err := Parse(parsed.String())
			if err != nil || again.String() != parsed.String() {
				t.Logf("unstable printing: %q -> %q", src, parsed.String())
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestNormalizationIdempotent: normalizing twice equals normalizing
// once (checked through the public Parse, which normalizes).
func TestNormalizationIdempotent(t *testing.T) {
	queries := []string{
		"//a[5]",
		"//a[child::b]",
		"//a[.='x' and b]",
		"//a[not(b)]",
		"count(//a[1])",
		"//a[position()=last()][2]",
	}
	for _, q := range queries {
		e1 := MustParse(q)
		e2 := MustParse(e1.String())
		if e1.String() != e2.String() {
			t.Errorf("%q: %q != %q", q, e1.String(), e2.String())
		}
	}
}

// TestTreeString covers the explain printer.
func TestTreeString(t *testing.T) {
	out := TreeString(MustParse("/descendant::*[position() > last()*0.5 or self::* = 100]"))
	for _, want := range []string{
		"path (absolute)",
		"step descendant::*",
		`op "or"`,
		"call position()   : num  Relev={cp}",
		"call last()   : num  Relev={cs}",
		"Relev={cn,cp,cs}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("TreeString missing %q:\n%s", want, out)
		}
	}
	// All node kinds render.
	out = TreeString(MustParse("(id('x'))[1]/a[-1 < 2] | //b[$v]"))
	for _, want := range []string{"filter", "variable $v", "negate", "head"} {
		if !strings.Contains(out, want) {
			t.Errorf("TreeString missing %q:\n%s", want, out)
		}
	}
}
