package xpath

import "testing"

func TestRelevBaseCases(t *testing.T) {
	cases := map[string]Relev{
		"1":                 0,
		"'s'":               0,
		"true()":            0,
		"false()":           0,
		"position()":        RelevPos,
		"last()":            RelevSize,
		"string()":          RelevNode,
		"number()":          RelevNode,
		"string-length()":   RelevNode,
		"normalize-space()": RelevNode,
		"name()":            RelevNode,
		"local-name()":      RelevNode,
		"child::a":          RelevNode,
		".":                 RelevNode,
		"..":                RelevNode,
		"@x":                RelevNode,
		"/child::a":         0, // absolute paths ignore the context
		"//a":               0,
	}
	for q, want := range cases {
		if got := RelevantContext(MustParse(q)); got != want {
			t.Errorf("Relev(%s) = %v, want %v", q, got, want)
		}
	}
}

func TestRelevCompound(t *testing.T) {
	cases := map[string]Relev{
		"position() + last()":   RelevPos | RelevSize,
		"position() = 1":        RelevPos,
		"count(child::a)":       RelevNode,
		"count(/descendant::a)": 0,
		"not(position() = 1)":   RelevPos,
		"child::a | child::b":   RelevNode,
		"-position()":           RelevPos,
		"concat('a', 'b')":      0,
		"string(position())":    RelevPos,
		"lang('en')":            RelevNode,
		"boolean(child::a)":     RelevNode,
		"child::a = position()": RelevNode | RelevPos,
	}
	for q, want := range cases {
		if got := RelevantContext(MustParse(q)); got != want {
			t.Errorf("Relev(%s) = %v, want %v", q, got, want)
		}
	}
}

func TestRelevPredicatesDoNotPropagate(t *testing.T) {
	// A location step's predicates get fresh contexts; the step itself
	// depends only on the context node (Section 8.2, "compound
	// expressions" rule for location steps).
	q := MustParse("child::a[position() = last()]")
	if got := RelevantContext(q); got != RelevNode {
		t.Errorf("Relev = %v, want {cn}", got)
	}
	q = MustParse("/descendant::a[position() = last()]")
	if got := RelevantContext(q); got != 0 {
		t.Errorf("Relev(absolute) = %v, want ∅", got)
	}
}

func TestRelevString(t *testing.T) {
	cases := map[Relev]string{
		0:                                "{}",
		RelevNode:                        "{cn}",
		RelevPos:                         "{cp}",
		RelevSize:                        "{cs}",
		RelevNode | RelevPos:             "{cn,cp}",
		RelevNode | RelevPos | RelevSize: "{cn,cp,cs}",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
	if !(RelevNode | RelevPos).Has(RelevNode) {
		t.Error("Has failed")
	}
	if (RelevNode).Has(RelevPos) {
		t.Error("Has false positive")
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	q := MustParse("/a[b = 1]/c[position() != last()] | id('x')[2]/d")
	count := 0
	kinds := map[string]bool{}
	Walk(q, func(e Expr) {
		count++
		switch e.(type) {
		case *Path:
			kinds["path"] = true
		case *Binary:
			kinds["binary"] = true
		case *Call:
			kinds["call"] = true
		case *Number:
			kinds["number"] = true
		case *FilterExpr:
			kinds["filter"] = true
		}
	})
	if count < 10 {
		t.Errorf("Walk visited only %d nodes", count)
	}
	for _, k := range []string{"path", "binary", "call", "number"} {
		if !kinds[k] {
			t.Errorf("Walk missed %s nodes", k)
		}
	}
	// Walk(nil) must be safe.
	Walk(nil, func(Expr) { t.Error("callback on nil") })
}

func TestLexerEdgeCases(t *testing.T) {
	// Numbers in all forms.
	for _, q := range []string{"0.5", ".5", "5.", "5"} {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse(%q): %v", q, err)
		}
	}
	// Name characters: dash, dot, underscore, digits.
	p := MustParse("child::a-b.c_d1").(*Path)
	if p.Steps[0].Test.Name != "a-b.c_d1" {
		t.Errorf("name = %q", p.Steps[0].Test.Name)
	}
	// Literals in both quote styles, including embedded quotes.
	l := MustParse(`"it's"`).(*Literal)
	if l.Val != "it's" {
		t.Errorf("literal = %q", l.Val)
	}
	l = MustParse(`'say "hi"'`).(*Literal)
	if l.Val != `say "hi"` {
		t.Errorf("literal = %q", l.Val)
	}
	// Whitespace never matters between tokens.
	a := MustParse("//a[ position( ) = 1 ]").String()
	b := MustParse("//a[position()=1]").String()
	if a != b {
		t.Errorf("whitespace sensitivity: %q vs %q", a, b)
	}
}

func TestQNameLexing(t *testing.T) {
	p := MustParse("child::ns:elem").(*Path)
	if p.Steps[0].Test.Name != "ns:elem" {
		t.Errorf("QName = %q", p.Steps[0].Test.Name)
	}
	// ns:* wildcard.
	p = MustParse("ns:*").(*Path)
	if p.Steps[0].Test.Name != "ns:*" {
		t.Errorf("prefix wildcard = %q", p.Steps[0].Test.Name)
	}
	// axis::qname does not confuse the :: separator.
	p = MustParse("descendant::ns:elem").(*Path)
	if p.Steps[0].Test.Name != "ns:elem" {
		t.Errorf("axis + QName = %q", p.Steps[0].Test.Name)
	}
}

func TestSubstituteNested(t *testing.T) {
	e := MustParse("//a[@x = $v]/b[$w]/c | id($u)")
	sub, err := Substitute(e, Bindings{
		"v": &Literal{Val: "1"},
		"w": &Number{Val: 2},
		"u": &Literal{Val: "k"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if HasVariables(sub) {
		t.Error("variables remain after substitution")
	}
	// Re-substitution is a no-op.
	again, err := Substitute(sub, Bindings{})
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != sub.String() {
		t.Error("idempotence violated")
	}
}
