// Package datapool implements the data pool of Section 9 (Algorithm
// 9.1): a memo table of ⟨expression, context, value⟩ triples with a
// retrieval procedure consulted before every basic evaluation step and a
// storage procedure run after it. Plugging the pool into the naive
// recursive evaluator bounds the number of distinct (recursive) calls by
// O(|D|³·|Q|) and therefore turns the exponential evaluator into a
// polynomial one (Theorem 9.2) — the paper demonstrates exactly this by
// patching Xalan (Table V, Figure 12).
package datapool

import (
	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ctxKey identifies a context for position/size-dependent expressions.
type ctxKey struct {
	node      xmltree.NodeID
	pos, size int
}

// exprTable stores the pooled values of one expression, projected onto
// the relevant context columns (the Section 9.2 refinement for location
// paths, generalized through Relev, Section 8.2):
//
//   - no relevant columns: one value (cval);
//   - node-only (the overwhelmingly common case): a dense array indexed
//     by NodeID — O(1) retrieval with no hashing and one allocation for
//     the whole table;
//   - position/size-dependent: a map keyed by the projected context.
type exprTable struct {
	relev   xpath.Relev
	vals    []semantics.Value
	present []bool
	m       map[ctxKey]semantics.Value
	cval    semantics.Value
	cset    bool
}

// Pool is a data pool. It implements naive.Pool.
type Pool struct {
	tables map[xpath.Expr]*exprTable

	// sizeHint pre-sizes dense node-keyed tables to the document; 0
	// means tables grow on demand.
	sizeHint int

	// Hits and Misses count retrieval-procedure outcomes, exposing the
	// sharing the pool achieves.
	Hits, Misses int64
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{tables: map[xpath.Expr]*exprTable{}}
}

// NewSized returns an empty pool whose dense per-expression tables are
// pre-sized for a document of n nodes.
func NewSized(n int) *Pool {
	p := New()
	p.sizeHint = n
	return p
}

func (t *exprTable) key(c semantics.Context) ctxKey {
	k := ctxKey{node: xmltree.NilNode, pos: -1, size: -1}
	if t.relev.Has(xpath.RelevNode) {
		k.node = c.Node
	}
	if t.relev.Has(xpath.RelevPos) {
		k.pos = c.Pos
	}
	if t.relev.Has(xpath.RelevSize) {
		k.size = c.Size
	}
	return k
}

// Lookup is the retrieval procedure: it returns the stored value of e in
// context c, if any.
func (p *Pool) Lookup(e xpath.Expr, c semantics.Context) (semantics.Value, bool) {
	t, ok := p.tables[e]
	if !ok {
		p.Misses++
		return semantics.Value{}, false
	}
	if t.m != nil {
		v, ok := t.m[t.key(c)]
		if ok {
			p.Hits++
		} else {
			p.Misses++
		}
		return v, ok
	}
	if !t.relev.Has(xpath.RelevNode) {
		if t.cset {
			p.Hits++
			return t.cval, true
		}
		p.Misses++
		return semantics.Value{}, false
	}
	if n := int(c.Node); n >= 0 && n < len(t.vals) && t.present[n] {
		p.Hits++
		return t.vals[n], true
	}
	p.Misses++
	return semantics.Value{}, false
}

// Store is the storage procedure: it records ⟨e, c, v⟩ in the pool.
func (p *Pool) Store(e xpath.Expr, c semantics.Context, v semantics.Value) {
	t, ok := p.tables[e]
	if !ok {
		t = &exprTable{relev: xpath.RelevantContext(e)}
		if t.relev&(xpath.RelevPos|xpath.RelevSize) != 0 {
			t.m = map[ctxKey]semantics.Value{}
		}
		p.tables[e] = t
	}
	switch {
	case t.m != nil:
		t.m[t.key(c)] = v
	case !t.relev.Has(xpath.RelevNode):
		t.cval, t.cset = v, true
	default:
		n := int(c.Node)
		if n < 0 {
			return
		}
		if n >= len(t.vals) {
			size := len(t.vals) * 2
			if size < n+1 {
				size = n + 1
			}
			if size < p.sizeHint {
				size = p.sizeHint
			}
			vals := make([]semantics.Value, size)
			copy(vals, t.vals)
			present := make([]bool, size)
			copy(present, t.present)
			t.vals, t.present = vals, present
		}
		t.vals[n], t.present[n] = v, true
	}
}

// Size returns the total number of stored triples.
func (p *Pool) Size() int {
	n := 0
	for _, t := range p.tables {
		switch {
		case t.m != nil:
			n += len(t.m)
		case !t.relev.Has(xpath.RelevNode):
			if t.cset {
				n++
			}
		default:
			for _, ok := range t.present {
				if ok {
					n++
				}
			}
		}
	}
	return n
}

// NewEvaluator returns a naive evaluator upgraded with a fresh data
// pool, i.e. the paper's "Xalan + data pool" configuration.
func NewEvaluator(d *xmltree.Document) (*naive.Evaluator, *Pool) {
	p := NewSized(d.Len())
	return naive.NewWithPool(d, p), p
}
