// Package datapool implements the data pool of Section 9 (Algorithm
// 9.1): a memo table of ⟨expression, context, value⟩ triples with a
// retrieval procedure consulted before every basic evaluation step and a
// storage procedure run after it. Plugging the pool into the naive
// recursive evaluator bounds the number of distinct (recursive) calls by
// O(|D|³·|Q|) and therefore turns the exponential evaluator into a
// polynomial one (Theorem 9.2) — the paper demonstrates exactly this by
// patching Xalan (Table V, Figure 12).
package datapool

import (
	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ctxKey identifies a context. Location paths only depend on the context
// node (Section 9.2 stores ⟨π, ⟨x, cp, cs⟩, v⟩ for all cp, cs); keying
// paths by node alone realizes that collapsed storage.
type ctxKey struct {
	node      xmltree.NodeID
	pos, size int
}

// Pool is a data pool. It implements naive.Pool.
type Pool struct {
	tables map[xpath.Expr]map[ctxKey]semantics.Value
	relev  map[xpath.Expr]xpath.Relev

	// Hits and Misses count retrieval-procedure outcomes, exposing the
	// sharing the pool achieves.
	Hits, Misses int64
}

// New returns an empty pool.
func New() *Pool {
	return &Pool{
		tables: map[xpath.Expr]map[ctxKey]semantics.Value{},
		relev:  map[xpath.Expr]xpath.Relev{},
	}
}

func (p *Pool) key(e xpath.Expr, c semantics.Context) ctxKey {
	// Project the context onto its relevant part: an expression that
	// cannot observe position/size is stored once per node, and a
	// constant once overall. This is the Section 9.2 refinement for
	// location paths, generalized through Relev (Section 8.2). The
	// analysis is memoized per expression node so the projection is
	// O(1) amortized.
	r, ok := p.relev[e]
	if !ok {
		r = xpath.RelevantContext(e)
		p.relev[e] = r
	}
	k := ctxKey{node: xmltree.NilNode, pos: -1, size: -1}
	if r.Has(xpath.RelevNode) {
		k.node = c.Node
	}
	if r.Has(xpath.RelevPos) {
		k.pos = c.Pos
	}
	if r.Has(xpath.RelevSize) {
		k.size = c.Size
	}
	return k
}

// Lookup is the retrieval procedure: it returns the stored value of e in
// context c, if any.
func (p *Pool) Lookup(e xpath.Expr, c semantics.Context) (semantics.Value, bool) {
	t, ok := p.tables[e]
	if !ok {
		p.Misses++
		return semantics.Value{}, false
	}
	v, ok := t[p.key(e, c)]
	if ok {
		p.Hits++
	} else {
		p.Misses++
	}
	return v, ok
}

// Store is the storage procedure: it records ⟨e, c, v⟩ in the pool.
func (p *Pool) Store(e xpath.Expr, c semantics.Context, v semantics.Value) {
	t, ok := p.tables[e]
	if !ok {
		t = map[ctxKey]semantics.Value{}
		p.tables[e] = t
	}
	t[p.key(e, c)] = v
}

// Size returns the total number of stored triples.
func (p *Pool) Size() int {
	n := 0
	for _, t := range p.tables {
		n += len(t)
	}
	return n
}

// NewEvaluator returns a naive evaluator upgraded with a fresh data
// pool, i.e. the paper's "Xalan + data pool" configuration.
func NewEvaluator(d *xmltree.Document) (*naive.Evaluator, *Pool) {
	p := New()
	return naive.NewWithPool(d, p), p
}
