package datapool

import (
	"testing"

	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func ctxAt(n xmltree.NodeID) semantics.Context {
	return semantics.Context{Node: n, Pos: 1, Size: 1}
}

func TestPoolStoresAndRetrieves(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/></a>`)
	p := New()
	e := xpath.MustParse("count(//b)")
	c := ctxAt(d.RootID())
	if _, ok := p.Lookup(e, c); ok {
		t.Fatal("empty pool must miss")
	}
	p.Store(e, c, semantics.Number(1))
	v, ok := p.Lookup(e, c)
	if !ok || v.Num != 1 {
		t.Fatalf("lookup = %+v, %v", v, ok)
	}
	if p.Hits != 1 || p.Misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", p.Hits, p.Misses)
	}
	if p.Size() != 1 {
		t.Errorf("size = %d", p.Size())
	}
}

// TestRelevProjectionSharing: a context-free expression stored under one
// context must be found under any other context.
func TestRelevProjectionSharing(t *testing.T) {
	p := New()
	e := xpath.MustParse("1 + 1") // Relev = ∅
	p.Store(e, ctxAt(1), semantics.Number(2))
	if _, ok := p.Lookup(e, ctxAt(2)); !ok {
		t.Error("context-free value not shared across contexts")
	}
	// Node-dependent: shared across positions but not nodes.
	e2 := xpath.MustParse("count(child::*)")
	p.Store(e2, semantics.Context{Node: 1, Pos: 3, Size: 9}, semantics.Number(2))
	if _, ok := p.Lookup(e2, semantics.Context{Node: 1, Pos: 5, Size: 7}); !ok {
		t.Error("position change must not invalidate node-keyed entry")
	}
	if _, ok := p.Lookup(e2, semantics.Context{Node: 2, Pos: 3, Size: 9}); ok {
		t.Error("different node must miss")
	}
}

// TestPolynomialEvaluation: the pooled evaluator answers the paper's
// Table V query family at sizes where the classic evaluator would need
// billions of steps.
func TestPolynomialEvaluation(t *testing.T) {
	// DOC(10).
	src := "<a>"
	for i := 0; i < 10; i++ {
		src += "<b/>"
	}
	src += "</a>"
	d := xmltree.MustParseString(src)
	// |Q| = 8 nesting of Experiment 3: P(1) = count(parent::a/b) > 1,
	// P(k) = count(parent::a/b[P(k-1)]) > 1, Q = //a/b[P(8)].
	pred := "count(parent::a/b) > 1"
	for i := 1; i < 8; i++ {
		pred = "count(parent::a/b[" + pred + "]) > 1"
	}
	q := "//a/b[" + pred + "]"
	ev, pool := NewEvaluator(d)
	v, err := ev.Evaluate(xpath.MustParse(q), ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 10 {
		t.Errorf("result = %d nodes, want 10", len(v.Set))
	}
	if ev.Steps() > 100000 {
		t.Errorf("pooled evaluation took %d steps; pool is not sharing", ev.Steps())
	}
	if pool.Hits == 0 {
		t.Error("no pool hits")
	}
}
