package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/workload"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(engine.New(engine.Options{CacheSize: 64, Workers: 4}), store.Config{})
	if _, _, err := srv.AddDocument("catalog", workload.Catalog(12).XMLString()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	val := out["value"].(map[string]any)
	if val["number"] != 12.0 {
		t.Fatalf("count(//product) = %v, want 12", val["number"])
	}
	if out["strategy"] != "optmincontext" && out["strategy"] != "corexpath" && out["strategy"] != "xpatterns" {
		t.Fatalf("strategy = %v", out["strategy"])
	}

	resp, out = postJSON(t, ts.URL+"/query", map[string]any{"doc": "catalog", "query": "//product[child::discontinued]/child::name"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	val = out["value"].(map[string]any)
	if val["kind"] != "node-set" {
		t.Fatalf("kind = %v, want node-set", val["kind"])
	}
	if _, ok := val["count"]; !ok {
		t.Fatalf("node-set value missing count: %v", val)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := getJSON(t, ts.URL+"/query?doc=nope&q=//a")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown doc status = %d, want 404", resp.StatusCode)
	}
	resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=//[")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad query status = %d, want 422", resp.StatusCode)
	}
	if out["error"] == "" {
		t.Fatal("bad query returned no error message")
	}
	resp, _ = getJSON(t, ts.URL+"/query?doc=catalog")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing q status = %d, want 400", resp.StatusCode)
	}
}

func TestDocumentsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postJSON(t, ts.URL+"/documents", DocumentRequest{Name: "mini", XML: "<a><b/><b/></a>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	_, out = getJSON(t, ts.URL+"/query?doc=mini&q=count(//b)")
	if val := out["value"].(map[string]any); val["number"] != 2.0 {
		t.Fatalf("count(//b) = %v, want 2", val["number"])
	}
	resp, _ = postJSON(t, ts.URL+"/documents", DocumentRequest{Name: "bad", XML: "<a>"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed XML status = %d, want 400", resp.StatusCode)
	}

	// GET lists both documents; DELETE evicts one.
	resp, out = getJSON(t, ts.URL+"/documents")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	if docs := out["documents"].([]any); len(docs) != 2 {
		t.Fatalf("listed %d documents, want 2: %v", len(docs), docs)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/documents?name=mini", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d", dresp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/query?doc=mini&q=count(//b)"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted document still served: %d", resp.StatusCode)
	}
}

// readBatchLines consumes a streaming /batch response body.
func readBatchLines(t *testing.T, resp *http.Response) []map[string]any {
	t.Helper()
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := testServer(t)
	queries := []string{"count(//product)", "//[", "sum(//price) > 0"}
	buf, _ := json.Marshal(BatchRequest{Doc: "catalog", Queries: queries})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := readBatchLines(t, resp)
	if len(lines) != 3 {
		t.Fatalf("got %d result lines, want 3", len(lines))
	}
	// Results arrive in completion order; reassemble by index.
	byIndex := make([]map[string]any, 3)
	for _, line := range lines {
		i := int(line["index"].(float64))
		if byIndex[i] != nil {
			t.Fatalf("index %d emitted twice", i)
		}
		byIndex[i] = line
	}
	for i, line := range byIndex {
		if line == nil {
			t.Fatalf("index %d missing from stream", i)
		}
		if line["query"] != queries[i] {
			t.Fatalf("index %d is for %v, want %q", i, line["query"], queries[i])
		}
	}
	if errMsg, ok := byIndex[1]["error"]; !ok || errMsg == "" {
		t.Fatal("invalid query in batch carried no error")
	}
	if val := byIndex[2]["value"].(map[string]any); val["boolean"] != true {
		t.Fatalf("sum(//price) > 0 = %v, want true", val["boolean"])
	}
}

// slowBatchQuery takes >10s on slowBatchDoc under every polynomial
// engine (the predicate forces an O(|D|²) tabulation), while carrying
// cancellation checkpoints throughout — the workload for the streaming
// and cancellation tests.
const slowBatchQuery = "count(//*[count(preceding::*) > count(following::*)])"

func slowBatchDoc() string {
	return workload.Doc(10000).XMLString()
}

// TestBatchStreamsBeforeCompletion is the streaming acceptance test:
// with one worker stuck on a slow query, the fast query's result line
// must arrive on the wire while the slow one is still evaluating —
// i.e. /batch no longer buffers the whole batch. It then disconnects
// the client and verifies the in-flight evaluation is cancelled.
func TestBatchStreamsBeforeCompletion(t *testing.T) {
	srv := New(engine.New(engine.Options{CacheSize: 16, Workers: 2}), store.Config{})
	if _, _, err := srv.AddDocument("big", slowBatchDoc()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Slow query first: the unbuffered dispatch channel guarantees a
	// worker has accepted it before the fast query is even handed out.
	buf, _ := json.Marshal(BatchRequest{Doc: "big", Queries: []string{slowBatchQuery, "1 = 1"}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/batch", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	br := bufio.NewReader(resp.Body)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("reading first streamed line: %v", err)
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(line), &first); err != nil {
		t.Fatalf("first line %q: %v", line, err)
	}
	if first["index"].(float64) != 1 {
		t.Fatalf("first streamed line is index %v, want 1 (the fast query)", first["index"])
	}
	// The slow query must still be evaluating: the first result was on
	// the wire before the batch finished. Poll briefly — on a 1-CPU box
	// the slow query's worker may have accepted its index but not yet
	// reached the in-flight increment when the fast line lands.
	inFlightSeen := false
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); time.Sleep(time.Millisecond) {
		if srv.eng.Stats().InFlight >= 1 {
			inFlightSeen = true
			break
		}
	}
	if !inFlightSeen {
		t.Fatal("slow query never observed in flight after first line (batch completed before streaming)")
	}

	// Disconnect. The request context propagates to the evaluator's
	// cancellation checkpoints, so in-flight work must drain promptly —
	// far faster than the query could possibly finish.
	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for srv.eng.Stats().InFlight != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight evaluation survived disconnect: %+v", srv.eng.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)")
	}
	_, out := getJSON(t, ts.URL+"/stats")
	cache := out["cache"].(map[string]any)
	// Each served query counts exactly one cache event: 1 miss then 2
	// hits. Annotating fragment/strategy must not re-consult the cache.
	if cache["misses"].(float64) != 1 || cache["hits"].(float64) != 2 {
		t.Fatalf("cache stats = %v, want exactly 1 miss and 2 hits", cache)
	}
	if rate := cache["hit_rate"].(float64); rate != 2.0/3.0 {
		t.Fatalf("hit_rate = %v, want 2/3", rate)
	}
	if saved := cache["compile_ns_saved"].(float64); saved <= 0 {
		t.Fatalf("compile_ns_saved = %v, want > 0 after two hits", saved)
	}
	docs := out["documents"].(map[string]any)
	if _, ok := docs["catalog"]; !ok {
		t.Fatalf("documents = %v, want catalog", docs)
	}
	st := out["store"].(map[string]any)
	if st["entries"].(float64) != 1 {
		t.Fatalf("store stats = %v, want 1 entry", st)
	}
	if _, ok := out["fallbacks"]; !ok {
		t.Fatal("stats missing fallbacks counter")
	}
}

// TestFallbackOverHTTP drives the auto-fallback end to end: a bottomup
// engine with a tiny table budget serves a position-dependent query,
// and the response must carry the MinContext-rescued value instead of
// an error, flagged as a fallback, with /stats counting it.
func TestFallbackOverHTTP(t *testing.T) {
	srv := New(engine.New(engine.Options{
		Strategy: core.BottomUp, MaxTableRows: 8, Fallback: true,
	}), store.Config{})
	if _, _, err := srv.AddDocument("catalog", workload.Catalog(30).XMLString()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, out := postJSON(t, ts.URL+"/query", QueryRequest{Doc: "catalog", Query: "count(//product[position() = last()])"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v (fallback did not rescue)", resp.StatusCode, out)
	}
	if out["fallback"] != true || out["strategy"] != "mincontext" {
		t.Fatalf("response = %v, want fallback=true strategy=mincontext", out)
	}
	if val := out["value"].(map[string]any); val["number"] != 1.0 {
		t.Fatalf("value = %v, want 1", val)
	}
	_, stats := getJSON(t, ts.URL+"/stats")
	if stats["fallbacks"].(float64) != 1 {
		t.Fatalf("stats fallbacks = %v, want 1", stats["fallbacks"])
	}
}

// TestDocumentShardSpread is the acceptance check that the server
// routes exclusively through the sharded store: a population of
// documents must land on every configured shard.
func TestDocumentShardSpread(t *testing.T) {
	srv := New(engine.New(engine.Options{}), store.Config{Shards: 4, MaxEntries: 64})
	for i := 0; i < 32; i++ {
		if _, _, err := srv.AddDocument(fmt.Sprintf("doc-%d", i), "<a><b/></a>"); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.docs.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(st.Shards))
	}
	for i, ss := range st.Shards {
		if ss.Entries == 0 {
			t.Fatalf("shard %d holds no documents: %+v", i, st.Shards)
		}
	}
	if st.Entries != 32 {
		t.Fatalf("entries = %d, want 32", st.Entries)
	}
}

func TestBodySizeLimit(t *testing.T) {
	srv := New(engine.New(engine.Options{}), store.Config{})
	srv.maxBody = 256
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	big := DocumentRequest{Name: "big", XML: "<a>" + strings.Repeat("x", 4096) + "</a>"}
	resp, out := postJSON(t, ts.URL+"/documents", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, body %v, want 413", resp.StatusCode, out)
	}
	if _, _, err := srv.AddDocument("small", "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	if resp, _ := getJSON(t, ts.URL+"/query?doc=small&q=count(//b)"); resp.StatusCode != http.StatusOK {
		t.Fatalf("server unusable after oversized request: %d", resp.StatusCode)
	}
}

// TestDocumentLimit checks the retained-document cap: new names past
// the cap are rejected with 507, replacements always go through.
func TestDocumentLimit(t *testing.T) {
	srv := New(engine.New(engine.Options{}), store.Config{MaxEntries: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for _, name := range []string{"one", "two"} {
		if resp, out := postJSON(t, ts.URL+"/documents", DocumentRequest{Name: name, XML: "<a/>"}); resp.StatusCode != http.StatusOK {
			t.Fatalf("register %s: %d %v", name, resp.StatusCode, out)
		}
	}
	resp, out := postJSON(t, ts.URL+"/documents", DocumentRequest{Name: "three", XML: "<a/>"})
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-cap status = %d, body %v, want 507", resp.StatusCode, out)
	}
	if resp, out := postJSON(t, ts.URL+"/documents", DocumentRequest{Name: "two", XML: "<a><b/></a>"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("replacement at cap: %d %v", resp.StatusCode, out)
	}
}

// TestResponseTruncation checks that huge string values are clipped in
// responses (flagged via "truncated") rather than buffered whole.
func TestResponseTruncation(t *testing.T) {
	srv := New(engine.New(engine.Options{}), store.Config{})
	text := strings.Repeat("é", 40<<10) // 80KB of 2-byte runes > maxStringBytes
	if _, _, err := srv.AddDocument("big", "<a><b>"+text+"</b></a>"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	_, out := getJSON(t, ts.URL+"/query?doc=big&q=//b")
	val := out["value"].(map[string]any)
	node := val["nodes"].([]any)[0].(map[string]any)
	if node["truncated"] != true {
		t.Fatalf("node = %v, want truncated", node)
	}
	got := node["value"].(string)
	if len(got) > maxStringBytes || !utf8.ValidString(got) {
		t.Fatalf("clipped value: %d bytes, valid UTF-8 %v", len(got), utf8.ValidString(got))
	}
}

// TestServerConcurrentTraffic exercises the full HTTP path from many
// goroutines while documents are being replaced, under -race.
func TestServerConcurrentTraffic(t *testing.T) {
	srv, ts := testServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch (g + i) % 3 {
				case 0:
					resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)")
					if resp.StatusCode != http.StatusOK {
						t.Errorf("query status %d: %v", resp.StatusCode, out)
						return
					}
				case 1:
					buf, _ := json.Marshal(BatchRequest{
						Doc:     "catalog",
						Queries: []string{"count(//product)", "sum(//price)"},
					})
					resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
					if err != nil {
						t.Error(err)
						return
					}
					readBatchLines(t, resp)
					resp.Body.Close()
				default:
					postJSON(t, ts.URL+"/documents", DocumentRequest{
						Name: "catalog", XML: workload.Catalog(12).XMLString(),
					})
				}
			}
		}(g)
	}
	wg.Wait()
	if st := srv.eng.Stats(); st.InFlight != 0 {
		t.Fatalf("in-flight leaked: %+v", st)
	}
}

// TestDocumentGetSingle pins down the single-document fetch that the
// cluster remote store reads through: GET /documents?name= returns the
// serialized XML, and re-registering that XML yields an equivalent
// document.
func TestDocumentGetSingle(t *testing.T) {
	srv, ts := testServer(t)
	resp, out := getJSON(t, ts.URL+"/documents?name=catalog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	xml, _ := out["xml"].(string)
	if xml == "" {
		t.Fatalf("single-document fetch carried no xml: %v", out)
	}
	if out["name"] != "catalog" {
		t.Fatalf("name = %v, want catalog", out["name"])
	}
	if _, ok := out["idle_ms"]; !ok {
		t.Fatalf("single-document fetch missing idle_ms: %v", out)
	}
	// The serialized form must round-trip to a document with the same
	// node count the server reports.
	n, _, err := srv.AddDocument("copy", xml)
	if err != nil {
		t.Fatalf("re-registering served xml: %v", err)
	}
	if want := int(out["nodes"].(float64)); n != want {
		t.Fatalf("round-tripped document has %d nodes, want %d", n, want)
	}
	resp, _ = getJSON(t, ts.URL+"/documents?name=nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown name status = %d, want 404", resp.StatusCode)
	}
}

// TestHealthz pins down the router's liveness probe.
func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, out := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || out["ok"] != true {
		t.Fatalf("healthz = %d %v", resp.StatusCode, out)
	}
	if out["documents"].(float64) != 1 {
		t.Fatalf("healthz documents = %v, want 1", out["documents"])
	}
}

// TestDocumentListIdle checks that GET /documents surfaces the idle
// signal and that querying a document resets it.
func TestDocumentListIdle(t *testing.T) {
	_, ts := testServer(t)
	time.Sleep(30 * time.Millisecond)
	getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)")
	_, out := getJSON(t, ts.URL+"/documents")
	docs := out["documents"].([]any)
	if len(docs) != 1 {
		t.Fatalf("listed %d documents, want 1", len(docs))
	}
	entry := docs[0].(map[string]any)
	idle, ok := entry["idle_ms"].(float64)
	if !ok {
		t.Fatalf("listing missing idle_ms: %v", entry)
	}
	if idle > 25 {
		t.Fatalf("idle_ms = %v right after a query, want < 25", idle)
	}
}

// TestEvictIdle drives the -maxidle policy: documents older than the
// window go, recently queried ones stay, and a queried-again document
// is spared on the next sweep.
func TestEvictIdle(t *testing.T) {
	srv, ts := testServer(t)
	if _, _, err := srv.AddDocument("cold", "<a><b/></a>"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	// Touch only catalog; cold has been idle since registration.
	getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)")
	evicted := srv.EvictIdle(30 * time.Millisecond)
	if len(evicted) != 1 || evicted[0] != "cold" {
		t.Fatalf("EvictIdle = %v, want [cold]", evicted)
	}
	if resp, _ := getJSON(t, ts.URL+"/query?doc=cold&q=count(//b)"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted document still served: %d", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)"); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh document was evicted: %d", resp.StatusCode)
	}
	if evicted := srv.EvictIdle(time.Hour); evicted != nil {
		t.Fatalf("EvictIdle(1h) evicted %v, want nothing", evicted)
	}
}

// TestDocumentVersions pins the version surfaces: registration
// returns a version, replacement bumps it, listings and /query carry
// it, an explicit-version mirror write stores at that version, and a
// stale mirror write is skipped.
func TestDocumentVersions(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postJSON(t, ts.URL+"/documents", DocumentRequest{Name: "v", XML: "<a><b/></a>"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %v", resp.StatusCode, out)
	}
	v1, ok := out["version"].(float64)
	if !ok || v1 <= 0 {
		t.Fatalf("registration version = %v, want > 0", out["version"])
	}
	_, out = postJSON(t, ts.URL+"/documents", DocumentRequest{Name: "v", XML: "<a><b/><b/></a>"})
	v2 := out["version"].(float64)
	if v2 <= v1 {
		t.Fatalf("replacement version %v not above %v", v2, v1)
	}
	// /query carries the served document's version.
	_, out = getJSON(t, ts.URL+"/query?doc=v&q=count(//b)")
	if out["version"].(float64) != v2 {
		t.Fatalf("query version = %v, want %v", out["version"], v2)
	}
	// Listings and the single-document fetch carry it too.
	_, out = getJSON(t, ts.URL+"/documents?name=v")
	if out["version"].(float64) != v2 {
		t.Fatalf("single fetch version = %v, want %v", out["version"], v2)
	}
	_, out = getJSON(t, ts.URL+"/documents")
	for _, d := range out["documents"].([]any) {
		entry := d.(map[string]any)
		if entry["name"] == "v" && entry["version"].(float64) != v2 {
			t.Fatalf("listing version = %v, want %v", entry["version"], v2)
		}
	}
	// /stats surfaces per-document versions.
	_, stats := getJSON(t, ts.URL+"/stats")
	doc := stats["documents"].(map[string]any)["v"].(map[string]any)
	if doc["version"].(float64) != v2 {
		t.Fatalf("stats version = %v, want %v", doc["version"], v2)
	}

	// A mirror write at an explicit higher version sticks at exactly
	// that version (the replication/reshard write path)...
	mirror := v2 + 100
	_, out = postJSON(t, ts.URL+"/documents", DocumentRequest{Name: "v", XML: "<a><b/><b/><b/></a>", Version: uint64(mirror)})
	if out["version"].(float64) != mirror {
		t.Fatalf("mirror write version = %v, want %v", out["version"], mirror)
	}
	// ...and a stale mirror write is skipped: the resident version and
	// content win.
	_, out = postJSON(t, ts.URL+"/documents", DocumentRequest{Name: "v", XML: "<a/>", Version: uint64(v2)})
	if out["version"].(float64) != mirror {
		t.Fatalf("stale mirror write resulted in version %v, want resident %v", out["version"], mirror)
	}
	_, out = getJSON(t, ts.URL+"/query?doc=v&q=count(//b)")
	if out["value"].(map[string]any)["number"] != 3.0 {
		t.Fatalf("stale mirror write replaced the document: %v", out["value"])
	}
}

// TestJobsBatch drives the grouped /batch form: jobs spanning several
// documents in one stream, each line tagged with its global index and
// document, with an absent document degrading to per-job "missing"
// error lines instead of failing the request.
func TestJobsBatch(t *testing.T) {
	srv, ts := testServer(t)
	if _, _, err := srv.AddDocument("mini", "<a><b/><b/></a>"); err != nil {
		t.Fatal(err)
	}
	jobs := []BatchJob{
		{Doc: "catalog", Query: "count(//product)"},
		{Doc: "mini", Query: "count(//b)"},
		{Doc: "ghost", Query: "count(//b)"},
		{Doc: "mini", Query: "//["},
	}
	buf, _ := json.Marshal(BatchRequest{Jobs: jobs})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	lines := readBatchLines(t, resp)
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	byIndex := make([]map[string]any, 4)
	for _, line := range lines {
		i := int(line["index"].(float64))
		if byIndex[i] != nil {
			t.Fatalf("index %d emitted twice", i)
		}
		byIndex[i] = line
	}
	for i, line := range byIndex {
		if line == nil {
			t.Fatalf("index %d missing from stream", i)
		}
		if line["doc"] != jobs[i].Doc {
			t.Fatalf("index %d tagged doc %v, want %s", i, line["doc"], jobs[i].Doc)
		}
	}
	if val := byIndex[0]["value"].(map[string]any); val["number"] != 12.0 {
		t.Fatalf("catalog job = %v, want 12", val)
	}
	if val := byIndex[1]["value"].(map[string]any); val["number"] != 2.0 {
		t.Fatalf("mini job = %v, want 2", val)
	}
	if byIndex[2]["missing"] != true || byIndex[2]["error"] == "" {
		t.Fatalf("absent-doc job = %v, want missing error line", byIndex[2])
	}
	if msg, _ := byIndex[3]["error"].(string); msg == "" {
		t.Fatalf("invalid-query job carried no error: %v", byIndex[3])
	}
	if byIndex[3]["missing"] == true {
		t.Fatalf("invalid-query error wrongly flagged missing: %v", byIndex[3])
	}

	// Exactly one of doc+queries or jobs: both and neither are 400s.
	for _, body := range []BatchRequest{
		{},
		{Doc: "mini", Queries: []string{"//b"}, Jobs: jobs[:1]},
	} {
		buf, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed batch form = %d, want 400", resp.StatusCode)
		}
	}
}

// TestBatchLinesCarryVersion pins the regression the wiretag analyzer
// guards against: every streamed batch line must carry the document's
// version, in both the single-document and the grouped jobs form — a
// response without it would poison any (doc, query, version)-keyed
// cache sitting in front of the node. The unknown-document error line
// is the one deliberate exception: there is no version to carry, and
// "missing" marks the line uncacheable.
func TestBatchLinesCarryVersion(t *testing.T) {
	srv, ts := testServer(t)
	// Bump catalog to version 2 so a present-but-zero version field
	// cannot pass by accident.
	if _, _, err := srv.AddDocument("catalog", workload.Catalog(12).XMLString()); err != nil {
		t.Fatal(err)
	}

	buf, _ := json.Marshal(BatchRequest{Doc: "catalog", Queries: []string{"count(//product)", "//["}})
	resp, err := http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	lines := readBatchLines(t, resp)
	resp.Body.Close()
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		if v, ok := line["version"].(float64); !ok || v != 2 {
			t.Fatalf("single-doc batch line %v carries version %v, want 2", line["index"], line["version"])
		}
	}

	buf, _ = json.Marshal(BatchRequest{Jobs: []BatchJob{
		{Doc: "catalog", Query: "count(//product)"},
		{Doc: "ghost", Query: "count(//x)"},
	}})
	resp, err = http.Post(ts.URL+"/batch", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	lines = readBatchLines(t, resp)
	resp.Body.Close()
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		switch line["doc"] {
		case "catalog":
			if v, ok := line["version"].(float64); !ok || v != 2 {
				t.Fatalf("jobs batch line for catalog carries version %v, want 2", line["version"])
			}
		case "ghost":
			if line["missing"] != true {
				t.Fatalf("unknown-document line not flagged missing: %v", line)
			}
			if _, ok := line["version"]; ok {
				t.Fatalf("unknown-document line carries a version: %v", line)
			}
		default:
			t.Fatalf("unexpected doc %v", line["doc"])
		}
	}
}
