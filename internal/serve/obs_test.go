package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/workload"
)

// scrape fetches url's /metrics and indexes the samples by
// name + label-set, verifying the body parses as Prometheus text.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("metrics Content-Type = %q, want the Prometheus text exposition type", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text: %v", err)
	}
	out := map[string]float64{}
	for _, s := range samples {
		key := s.Name
		if len(s.Labels) > 0 {
			pairs := make([]string, 0, len(s.Labels))
			for k, v := range s.Labels {
				pairs = append(pairs, k+"="+v)
			}
			sort.Strings(pairs)
			key += "{" + strings.Join(pairs, ",") + "}"
		}
		out[key] = s.Value
	}
	return out
}

// TestMetricsEndpoint asserts the full pipeline: a served query shows
// up in the engine counters, the per-path HTTP counters, and the
// latency histograms, all through a scrape that must parse as
// Prometheus text exposition format.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	if resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body %v", resp.StatusCode, out)
	}
	m := scrape(t, ts.URL)
	for key, min := range map[string]float64{
		"xpath_queries_total":                      1,
		"xpath_http_requests_total{path=/query}":   1,
		"xpath_query_seconds_count{":               0, // presence asserted below
		"xpath_documents":                          1,
		"xpath_compile_cache_misses_total":         1,
		"xpath_stage_seconds_count{stage=compile}": 1,
	} {
		if strings.HasSuffix(key, "{") {
			found := false
			for k := range m {
				if strings.HasPrefix(k, key) {
					found = true
				}
			}
			if !found {
				t.Errorf("no sample with prefix %q in /metrics", key)
			}
			continue
		}
		if m[key] < min {
			t.Errorf("%s = %v, want >= %v (scrape: %d samples)", key, m[key], min, len(m))
		}
	}
	if m["xpath_stage_seconds_count{stage=evaluate}"] < 1 {
		t.Errorf("evaluate stage histogram not observed: %v", m["xpath_stage_seconds_count{stage=evaluate}"])
	}
	if resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /metrics = %d, want 405", resp.StatusCode)
		}
	}
}

// TestRequestIDRoundTrip: a supplied X-Request-Id is echoed on the
// response and stamped on every NDJSON batch line; an absent one is
// minted.
func TestRequestIDRoundTrip(t *testing.T) {
	_, ts := testServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/query?doc=catalog&q=count(//product)", nil)
	req.Header.Set(obs.HeaderRequestID, "test-id-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.HeaderRequestID); got != "test-id-123" {
		t.Fatalf("echoed request id = %q, want test-id-123", got)
	}

	resp, err = http.Get(ts.URL + "/query?doc=catalog&q=count(//product)")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.HeaderRequestID); got == "" {
		t.Fatal("no X-Request-Id minted on a bare request")
	}

	body, _ := json.Marshal(BatchRequest{Doc: "catalog", Queries: []string{"count(//product)", "//product/child::name"}})
	breq, _ := http.NewRequest("POST", ts.URL+"/batch", bytes.NewReader(body))
	breq.Header.Set(obs.HeaderRequestID, "batch-id-9")
	bresp, err := http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	sc := bufio.NewScanner(bresp.Body)
	lines := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad batch line %q: %v", sc.Text(), err)
		}
		if line.RequestID != "batch-id-9" {
			t.Fatalf("batch line request_id = %q, want batch-id-9", line.RequestID)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("batch lines = %d, want 2", lines)
	}
}

// spanNames flattens a span tree into its set of names.
func spanNames(spans []obs.SpanJSON, into map[string]obs.SpanJSON) {
	for _, s := range spans {
		into[s.Name] = s
		spanNames(s.Children, into)
	}
}

// TestQueryTrace: ?trace=1 returns the span tree inline — every
// serving stage is named, the stage durations nest within the total,
// and the tree carries the request's ID. Without the flag no trace is
// attached.
func TestQueryTrace(t *testing.T) {
	_, ts := testServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/query?doc=catalog&q=count(//product)&trace=1", nil)
	req.Header.Set(obs.HeaderRequestID, "trace-me-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	if out.Trace.RequestID != "trace-me-7" {
		t.Fatalf("trace request_id = %q, want trace-me-7", out.Trace.RequestID)
	}
	byName := map[string]obs.SpanJSON{}
	spanNames(out.Trace.Spans, byName)
	for _, want := range []string{"route", "cache_lookup", "compile", "evaluate", "serialize"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("span %q missing from trace (have %v)", want, keys(byName))
		}
	}
	route := byName["route"]
	var childSum int64
	for _, c := range route.Children {
		childSum += c.DurNs
	}
	if childSum > route.DurNs {
		t.Errorf("children of route sum to %dns > route's %dns", childSum, route.DurNs)
	}
	if route.DurNs > out.Trace.TotalNs {
		t.Errorf("route span %dns exceeds trace total %dns", route.DurNs, out.Trace.TotalNs)
	}

	if _, plain := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)"); plain["trace"] != nil {
		t.Fatal("trace attached without ?trace=1")
	}
}

func keys(m map[string]obs.SpanJSON) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// syncBuffer is a mutex-guarded log sink: the middleware logs after
// the response bytes are already with the client, so the test must not
// race the handler goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// waitForLog polls the sink until the substring shows up (the request
// log line lands just after the response is released to the client).
func waitForLog(t *testing.T, b *syncBuffer, substr string) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s := b.String(); strings.Contains(s, substr) {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("log never contained %q; log so far:\n%s", substr, b.String())
	return ""
}

// TestSlowQueryLog: above the threshold the request logs a "slow
// query" line carrying the span tree; below it only the ordinary
// request line appears, and the slow-query counter stays at zero.
func TestSlowQueryLog(t *testing.T) {
	newLogged := func(slow time.Duration) (*syncBuffer, *httptest.Server) {
		srv := New(engine.New(engine.Options{CacheSize: 8, Workers: 2}), store.Config{})
		if _, _, err := srv.AddDocument("catalog", workload.Catalog(6).XMLString()); err != nil {
			t.Fatal(err)
		}
		buf := &syncBuffer{}
		srv.SetLogger(slog.New(slog.NewTextHandler(buf, nil)))
		srv.SetSlowQuery(slow)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return buf, ts
	}

	buf, ts := newLogged(time.Nanosecond) // everything is slow
	if resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body %v", resp.StatusCode, out)
	}
	logged := waitForLog(t, buf, "slow query")
	for _, want := range []string{"request_id=", "trace=", "evaluate"} {
		if !strings.Contains(logged, want) {
			t.Errorf("slow-query log missing %q:\n%s", want, logged)
		}
	}
	if m := scrape(t, ts.URL); m["xpath_slow_queries_total"] < 1 {
		t.Errorf("xpath_slow_queries_total = %v, want >= 1", m["xpath_slow_queries_total"])
	}

	buf, ts = newLogged(time.Hour) // nothing is slow
	if resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body %v", resp.StatusCode, out)
	}
	logged = waitForLog(t, buf, "msg=request")
	if strings.Contains(logged, "slow query") {
		t.Errorf("slow-query log fired below threshold:\n%s", logged)
	}
	if m := scrape(t, ts.URL); m["xpath_slow_queries_total"] != 0 {
		t.Errorf("xpath_slow_queries_total = %v, want 0", m["xpath_slow_queries_total"])
	}
}

// TestHealthzBuildInfo: the liveness probe carries uptime and build
// info so a fleet's versions are auditable from the probe alone.
func TestHealthzBuildInfo(t *testing.T) {
	_, ts := testServer(t)
	resp, out := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if _, ok := out["uptime_ms"].(float64); !ok {
		t.Fatalf("healthz uptime_ms missing or not numeric: %v", out["uptime_ms"])
	}
	build, ok := out["build"].(map[string]any)
	if !ok {
		t.Fatalf("healthz build info missing: %v", out["build"])
	}
	if build["go_version"] == "" {
		t.Fatalf("build info has no go version: %v", build)
	}
}

// TestDebugTracesRing: traced requests land in /debug/traces, newest
// first, and probe endpoints stay out of the ring.
func TestDebugTracesRing(t *testing.T) {
	_, ts := testServer(t)
	for i := 0; i < 3; i++ {
		resp, _ := getJSON(t, fmt.Sprintf("%s/query?doc=catalog&q=count(//product[%d])", ts.URL, i+1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}
	getJSON(t, ts.URL+"/healthz") // probe: must not enter the ring

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces []obs.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 3 {
		t.Fatalf("trace ring holds %d traces, want 3 (probes excluded)", len(traces))
	}
	for _, tr := range traces {
		if tr.RequestID == "" {
			t.Fatal("ringed trace has no request id")
		}
	}
}
