// Package serve is the HTTP/JSON serving layer of the stack: it binds
// the sharded document store (internal/store) and the concurrent
// evaluation engine (internal/engine) to a wire format. cmd/xpathserve
// is a thin flag-parsing shell around this package, and the cluster
// router (internal/cluster, cmd/xpathrouter) speaks the same wire
// format against many of these servers at once — which is why the
// request/response types are exported: they are the protocol shared by
// a node and the router in front of it.
//
// The layering is store (placement + memory accounting) → engine
// (compile cache + evaluation) → serve (wire format) → cluster
// (multi-process routing).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/semantics"
	"repro/internal/store"
	"repro/internal/xpath"
)

// maxNodesInResponse caps how many node-set members a response renders;
// the full cardinality is always reported in "count".
const maxNodesInResponse = 100

// maxStringBytes caps every rendered string value. Element string-
// values are document-sized in the worst case (the root's string-value
// is all text in the document), so without this cap a //* query could
// buffer responses orders of magnitude larger than the document.
const maxStringBytes = 64 << 10

// DefaultMaxBodyBytes bounds request bodies (documents arrive inline
// as JSON) so one oversized POST cannot exhaust memory.
const DefaultMaxBodyBytes = 32 << 20

// DefaultMaxDocuments bounds how many documents the server retains;
// parsed documents live until replaced, so without a cap repeated
// small POSTs to /documents would grow memory without limit.
const DefaultMaxDocuments = 64

// Server routes HTTP requests onto an engine.Engine and the document
// store: every named document is an engine.Session held in a sharded
// store.Store, so lookups on different documents never contend on one
// lock and the corpus is bounded by the store's entry and byte
// budgets.
type Server struct {
	eng     *engine.Engine
	maxBody int64
	docs    store.Store[*engine.Session]

	// Observability: the registry is the engine's (one exposition for
	// all tiers), the ring holds recent traces for /debug/traces, and
	// slow marks the slow-query log threshold (0 = off). logger nil
	// means slog.Default(), resolved per call so tests can swap the
	// default.
	reg     *obs.Registry
	metrics *serveMetrics
	traces  *obs.TraceRing
	logger  *slog.Logger
	slow    time.Duration

	// draining flips /healthz to 503 during graceful shutdown so load
	// balancers and the cluster router stop routing here while
	// in-flight requests finish; faults, when set, is the -fault-spec
	// injection middleware wrapped around the handler.
	draining atomic.Bool
	faults   *resilience.Faults
}

// BeginDrain marks the server draining: /healthz answers 503 from now
// on while every other endpoint keeps serving, so in-flight and
// already-routed work completes during a graceful shutdown.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// SetFaults installs a fault injector wrapped around the handler (the
// -fault-spec hook). Call before Handler; nil is a no-op.
func (s *Server) SetFaults(f *resilience.Faults) { s.faults = f }

// New creates a Server over an engine with a store built from cfg
// (zero MaxEntries takes DefaultMaxDocuments).
func New(eng *engine.Engine, cfg store.Config) *Server {
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = DefaultMaxDocuments
	}
	s := &Server{
		eng:     eng,
		maxBody: DefaultMaxBodyBytes,
		docs:    store.NewSharded[*engine.Session](cfg),
	}
	s.initObs()
	return s
}

// SetMaxBody overrides the request body size limit (DefaultMaxBodyBytes).
func (s *Server) SetMaxBody(n int64) { s.maxBody = n }

// Engine exposes the underlying engine (tests and operators read its
// cache and in-flight statistics through it).
func (s *Server) Engine() *engine.Engine { return s.eng }

// StoreStats returns the document store's current statistics.
func (s *Server) StoreStats() store.Stats { return s.docs.Stats() }

// AddDocument parses xml and registers it under name, replacing any
// previous document with that name. The document is accounted against
// the store's byte budget at its serialized size. It returns the node
// count and the document's newly assigned monotonic version.
func (s *Server) AddDocument(name, xml string) (int, uint64, error) {
	return s.AddDocumentAt(name, xml, 0)
}

// versionMirror is the store capability AddDocumentAt and the version
// surfaces need beyond the Store interface; the production Sharded
// store satisfies it.
type versionMirror interface {
	PutAt(key string, v *engine.Session, size int64, ver uint64) (uint64, error)
	Version(key string) (uint64, bool)
}

// AddDocumentAt registers xml under name at an explicitly assigned
// version — the write half of replication and resharding, where a
// mirror must store the owner's document at the owner's version so
// staleness stays detectable. A zero ver self-assigns from the store's
// counter (AddDocument is this case). A ver at or below the resident
// document's version is a stale mirror write and is skipped.
func (s *Server) AddDocumentAt(name, xml string, ver uint64) (int, uint64, error) {
	return s.addDocument(context.Background(), name, xml, ver)
}

// addDocument is AddDocumentAt with trace plumbing: registration's two
// expensive stages — parsing and the registration-time index build —
// each get a span and a stage-latency observation.
func (s *Server) addDocument(ctx context.Context, name, xml string, ver uint64) (int, uint64, error) {
	_, ps := obs.StartSpan(ctx, "parse")
	pstart := time.Now()
	d, err := core.ParseString(xml)
	ps.End()
	if err != nil {
		return 0, 0, err
	}
	s.metrics.stage.With("parse").ObserveSince(pstart)
	_, ws := obs.StartSpan(ctx, "index_warm")
	wstart := time.Now()
	sess := s.eng.NewSession(d)
	ws.End()
	s.metrics.stage.With("index_warm").ObserveSince(wstart)
	var v uint64
	if vm, ok := s.docs.(versionMirror); ok && ver > 0 {
		v, err = vm.PutAt(name, sess, int64(len(xml)), ver)
	} else {
		v, err = s.docs.Put(name, sess, int64(len(xml)))
	}
	if err != nil {
		return 0, 0, err
	}
	return d.Len(), v, nil
}

// docVersion returns the current version of a named document (0 when
// unknown or the store does not track versions).
func (s *Server) docVersion(name string) uint64 {
	if vm, ok := s.docs.(versionMirror); ok {
		if v, ok := vm.Version(name); ok {
			return v
		}
	}
	return 0
}

// Session returns the session serving a named document.
func (s *Server) Session(name string) (*engine.Session, bool) {
	return s.docs.Get(name)
}

// EvictIdle deletes every document whose session has not been queried
// for longer than maxIdle, returning the evicted names. The idle check
// is re-evaluated against the currently stored session under the shard
// lock (store.Sharded.DeleteIf), so neither a document queried after
// the scan nor one re-registered after it (a different session under
// the same name) can be evicted by a stale snapshot. A query that
// begins in the same instant may still race the eviction, which is
// acceptable for an idle-trimming policy (the client simply
// re-registers).
func (s *Server) EvictIdle(maxIdle time.Duration) []string {
	var cold []string
	s.docs.Range(func(name string, sess *engine.Session, _ int64) bool {
		if sess.IdleFor() > maxIdle {
			cold = append(cold, name)
		}
		return true
	})
	type conditionalDeleter interface {
		DeleteIf(key string, cond func(*engine.Session, int64) bool) bool
	}
	cd, _ := s.docs.(conditionalDeleter)
	var evicted []string
	for _, name := range cold {
		stillIdle := func(sess *engine.Session, _ int64) bool {
			return sess.IdleFor() > maxIdle
		}
		ok := false
		if cd != nil {
			ok = cd.DeleteIf(name, stillIdle)
		} else if sess, present := s.docs.Get(name); present && stillIdle(sess, 0) {
			ok = s.docs.Delete(name)
		}
		if ok {
			evicted = append(evicted, name)
		}
	}
	return evicted
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/documents", s.handleDocuments)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.reg.Handler())
	mux.Handle("/debug/traces", s.traces.Handler())
	h := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		mux.ServeHTTP(w, r)
	}))
	// Fault injection wraps the whole surface so injected refusals and
	// cuts hit exactly what a real network fault would.
	return s.faults.Handler(h)
}

// DocumentRequest registers a document: the body of POST /documents.
// A nonzero Version mirrors the document at that explicit version
// instead of self-assigning (see Server.AddDocumentAt) — the form the
// cluster's write-time replication and the reshard tool use.
type DocumentRequest struct {
	Name    string `json:"name"`
	XML     string `json:"xml"`
	Version uint64 `json:"version,omitempty"`
}

// QueryRequest evaluates one query: the body of POST /query.
type QueryRequest struct {
	Doc   string `json:"doc"`
	Query string `json:"query"`
}

// BatchRequest evaluates many queries: the body of POST /batch. The
// single-document form sets Doc + Queries; the grouped form sets Jobs,
// each naming its own document — the shape the cluster router uses to
// open one stream per backend node instead of one per document. The
// two forms are mutually exclusive.
type BatchRequest struct {
	Doc     string     `json:"doc,omitempty"`
	Queries []string   `json:"queries,omitempty"`
	Jobs    []BatchJob `json:"jobs,omitempty"`
}

// BatchJob is one (document, query) pair of a grouped batch.
type BatchJob struct {
	Doc   string `json:"doc"`
	Query string `json:"query"`
}

// ValueJSON renders a semantics.Value: "string" always carries the
// XPath string conversion; the kind-specific field carries the typed
// value, with node sets truncated to maxNodesInResponse entries.
type ValueJSON struct {
	Kind      string     `json:"kind"`
	String    string     `json:"string"`
	Truncated bool       `json:"truncated,omitempty"`
	Number    *float64   `json:"number,omitempty"`
	Boolean   *bool      `json:"boolean,omitempty"`
	Count     *int       `json:"count,omitempty"`
	Nodes     []NodeJSON `json:"nodes,omitempty"`
}

// NodeJSON is one rendered node-set member.
type NodeJSON struct {
	Type      string `json:"type"`
	Name      string `json:"name,omitempty"`
	Value     string `json:"value"`
	Truncated bool   `json:"truncated,omitempty"`
}

// clip bounds s to maxStringBytes without splitting a UTF-8 sequence.
func clip(s string) (string, bool) {
	if len(s) <= maxStringBytes {
		return s, false
	}
	cut := maxStringBytes
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut], true
}

// QueryResponse is the /query response shape (and the per-line payload
// of /batch). Version is the served document's monotonic version — the
// key the cluster router's answer cache is invalidated by.
type QueryResponse struct {
	Query    string `json:"query"`
	Fragment string `json:"fragment"`
	Strategy string `json:"strategy"`
	Version  uint64 `json:"version,omitempty"`
	Fallback bool   `json:"fallback,omitempty"`
	// Planned marks a strategy chosen by the engine's adaptive planner
	// (as opposed to the static Auto fragment switch or a fixed
	// -strategy); Strategy then names the planner's pick — or the
	// MinContext rescue when Fallback is also set.
	Planned bool       `json:"planned,omitempty"`
	Value   *ValueJSON `json:"value,omitempty"`
	Error   string     `json:"error,omitempty"`
	// Trace is the request's span tree, present only when the client
	// asked for it with ?trace=1 (the EXPLAIN ANALYZE of this protocol).
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

// BatchLine is one streamed /batch result: the job's input index plus
// the same shape /query responds with. Lines are emitted in completion
// order; consumers reassemble input order from "index". Doc is set
// only on grouped (jobs-form) batches, where one stream spans several
// documents; Missing marks an error line whose cause is specifically
// an absent document, so a router holding replicas knows the job is
// worth retrying on a successor node (any other error is final).
type BatchLine struct {
	Index   int    `json:"index"`
	Doc     string `json:"doc,omitempty"`
	Missing bool   `json:"missing,omitempty"`
	// RequestID tags every line of a stream with the request's ID so a
	// scattered batch's lines can be correlated with router and backend
	// logs after the merge.
	RequestID string `json:"request_id,omitempty"`
	QueryResponse
}

// DocInfo is one entry of the GET /documents listing. IdleMs is the
// idle-eviction signal: milliseconds since the document was last
// queried (see -maxidle); Version is the document's monotonic version
// (replicas and caches compare it to detect staleness).
type DocInfo struct {
	Name    string `json:"name"`
	Nodes   int    `json:"nodes"`
	Bytes   int64  `json:"bytes"`
	IdleMs  int64  `json:"idle_ms"`
	Version uint64 `json:"version,omitempty"`
	// XML carries the serialized document only on single-document
	// fetches (GET /documents?name=); listings omit it.
	XML string `json:"xml,omitempty"`
}

// kindName renders a value kind for the JSON API (the xpath package's
// String() forms are the paper's terse type names).
func kindName(k xpath.Type) string {
	switch k {
	case xpath.TypeNumber:
		return "number"
	case xpath.TypeString:
		return "string"
	case xpath.TypeBoolean:
		return "boolean"
	default:
		return "node-set"
	}
}

func renderValue(d *core.Document, v core.Value) *ValueJSON {
	out := &ValueJSON{Kind: kindName(v.Kind)}
	out.String, out.Truncated = clip(semantics.ToString(d, v))
	switch v.Kind {
	case xpath.TypeNumber:
		out.Number = &v.Num
	case xpath.TypeBoolean:
		out.Boolean = &v.Bool
	case xpath.TypeNodeSet:
		n := len(v.Set)
		out.Count = &n
		for i, id := range v.Set {
			if i == maxNodesInResponse {
				break
			}
			node := d.Node(id)
			nj := NodeJSON{Type: node.Type.String()}
			nj.Value, nj.Truncated = clip(d.StringValue(id))
			if node.Type.HasName() {
				nj.Name = node.Name
			}
			out.Nodes = append(out.Nodes, nj)
		}
	}
	return out
}

// render turns an evaluation outcome into a response, annotating it
// with the fragment classification off the compiled query and the
// strategy off the Result — the one the session actually ran, post-
// planning and post-fallback. It must never re-derive the strategy
// (the old StrategyFor re-derivation was wrong twice over: a result
// rescued by the table-limit fallback would report the strategy that
// failed, and under an adaptive planner a second derivation can
// legitimately differ from the decision that executed).
//
// The document version is a required argument, not an afterthought:
// every response constructor must carry it so the (doc, query,
// version)-keyed caches in front of this node are never poisoned by an
// unversioned answer. Callers read it BEFORE acquiring the session
// (see handleQuery for the race argument).
func (s *Server) render(sess *engine.Session, ver uint64, res engine.Result) QueryResponse {
	resp := QueryResponse{Query: res.Query, Version: ver}
	if res.Compiled != nil {
		resp.Fragment = res.Compiled.Fragment().String()
		resp.Strategy = res.Strategy.String()
		resp.Planned = res.Planned
	}
	if res.FellBack {
		resp.Fallback = true
	}
	if res.Err != nil {
		resp.Error = res.Err.Error()
		return resp
	}
	resp.Value = renderValue(sess.Document(), res.Value)
	return resp
}

// handleDocuments manages the corpus: POST registers, GET lists with
// idle ages (or fetches one document, serialized XML included, with
// ?name=), DELETE evicts.
func (s *Server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleDocumentPost(w, r)
	case http.MethodGet:
		if name := r.URL.Query().Get("name"); name != "" {
			s.handleDocumentGet(w, name)
			return
		}
		docs := []DocInfo{}
		s.docs.Range(func(name string, sess *engine.Session, size int64) bool {
			docs = append(docs, DocInfo{
				Name:    name,
				Nodes:   sess.Document().Len(),
				Bytes:   size,
				IdleMs:  sess.IdleFor().Milliseconds(),
				Version: s.docVersion(name),
			})
			return true
		})
		sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
		WriteJSON(w, http.StatusOK, map[string]any{"documents": docs})
	case http.MethodDelete:
		name := r.URL.Query().Get("name")
		if name == "" {
			HTTPError(w, http.StatusBadRequest, "name is required")
			return
		}
		if !s.docs.Delete(name) {
			HTTPError(w, http.StatusNotFound, "unknown document %q", name)
			return
		}
		WriteJSON(w, http.StatusOK, map[string]any{"deleted": name})
	default:
		HTTPError(w, http.StatusMethodNotAllowed, "POST a {name, xml} object, GET to list (?name= for one), DELETE ?name= to evict")
	}
}

// handleDocumentGet serves one document including its serialized XML —
// the read half of the remote store protocol (cluster.Remote.Get).
// The version is read BEFORE the session so a replacement racing this
// fetch can only under-label the XML (harmless: a mirror write at the
// older version loses to the real newer one), never pair old content
// with the new version — which a reshard would then copy and the
// stale-write guard make permanent.
func (s *Server) handleDocumentGet(w http.ResponseWriter, name string) {
	ver := s.docVersion(name)
	sess, ok := s.docs.Get(name)
	if !ok {
		HTTPError(w, http.StatusNotFound, "unknown document %q", name)
		return
	}
	xml := sess.Document().XMLString()
	WriteJSON(w, http.StatusOK, DocInfo{
		Name:    name,
		Nodes:   sess.Document().Len(),
		Bytes:   int64(len(xml)),
		IdleMs:  sess.IdleFor().Milliseconds(),
		Version: ver,
		XML:     xml,
	})
}

func (s *Server) handleDocumentPost(w http.ResponseWriter, r *http.Request) {
	var req DocumentRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	if req.Name == "" || req.XML == "" {
		HTTPError(w, http.StatusBadRequest, "both name and xml are required")
		return
	}
	n, ver, err := s.addDocument(r.Context(), req.Name, req.XML, req.Version)
	switch {
	case errors.Is(err, store.ErrFull):
		HTTPError(w, http.StatusInsufficientStorage, "document store full: %v; delete or replace a document, or raise -max-docs/-maxbytes", err)
		return
	case errors.Is(err, store.ErrTooLarge):
		HTTPError(w, http.StatusRequestEntityTooLarge, "document %s exceeds the per-shard byte budget: %v", req.Name, err)
		return
	case err != nil:
		HTTPError(w, http.StatusBadRequest, "parse %s: %v", req.Name, err)
		return
	}
	WriteJSON(w, http.StatusOK, map[string]any{"name": req.Name, "nodes": n, "version": ver})
}

// handleQuery accepts POST {doc, query} or GET ?doc=...&q=... (the
// curl-friendly form). Evaluation is tied to the request context: a
// client that disconnects stops its query at the next checkpoint.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	switch r.Method {
	case http.MethodGet:
		req.Doc = r.URL.Query().Get("doc")
		req.Query = r.URL.Query().Get("q")
	case http.MethodPost:
		if !DecodeJSON(w, r, &req) {
			return
		}
	default:
		HTTPError(w, http.StatusMethodNotAllowed, "GET ?doc=&q= or POST {doc, query}")
		return
	}
	if req.Doc == "" || req.Query == "" {
		HTTPError(w, http.StatusBadRequest, "both doc and query are required")
		return
	}
	// The version is read BEFORE the session: if a replacement lands
	// between the two, the answer is the new document's labeled with
	// the old version — at worst a cache miss downstream. The other
	// order would label an old answer with the new version, poisoning
	// every (doc, query, version)-keyed cache in front of this node.
	ver := s.docVersion(req.Doc)
	sess, ok := s.Session(req.Doc)
	if !ok {
		HTTPError(w, http.StatusNotFound, "unknown document %q", req.Doc)
		return
	}
	res := sess.DoContext(r.Context(), req.Query)
	_, ser := obs.StartSpan(r.Context(), "serialize")
	resp := s.render(sess, ver, res)
	ser.End()
	if obs.TraceRequested(r) {
		// Reported before the response is written: open spans (the root
		// route span) close "as of now", so the stage durations in the
		// report sum to within the reported total.
		resp.Trace = obs.TraceFrom(r.Context()).Report()
	}
	status := http.StatusOK
	if resp.Error != "" {
		status = http.StatusUnprocessableEntity
	}
	WriteJSON(w, status, resp)
}

// handleBatch streams per-job results as chunked JSON lines
// (application/x-ndjson): each line carries the job's input index and
// is written the moment its worker finishes, so the first results are
// on the wire while later queries are still evaluating. The batch is
// wired to the request context end to end — when the client
// disconnects, queued queries are never dispatched and in-flight
// evaluations stop at their next cancellation checkpoint.
//
// The single-document form ({doc, queries}) answers 404 when the
// document is unknown. The grouped jobs form spans documents, so an
// absent document there is a per-job condition, not a request failure:
// its jobs yield error lines flagged "missing" and every other job
// still evaluates — the degradation contract the cluster router's
// per-node streams rely on.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		HTTPError(w, http.StatusMethodNotAllowed, "POST a {doc, queries} or {jobs} object")
		return
	}
	var req BatchRequest
	if !DecodeJSON(w, r, &req) {
		return
	}
	if (req.Doc == "") == (len(req.Jobs) == 0) {
		HTTPError(w, http.StatusBadRequest, "exactly one of doc+queries or jobs is required")
		return
	}
	if req.Doc != "" {
		// Version before session, as in handleQuery: mislabeling an old
		// answer with a new version would poison downstream caches.
		ver := s.docVersion(req.Doc)
		sess, ok := s.Session(req.Doc)
		if !ok {
			HTTPError(w, http.StatusNotFound, "unknown document %q", req.Doc)
			return
		}
		ctx, writeLine := s.startBatchStream(w, r)
		sess.StreamBatch(ctx, req.Queries, func(i int, res engine.Result) {
			writeLine(BatchLine{Index: i, QueryResponse: s.render(sess, ver, res)})
		})
		return
	}
	s.handleJobsBatch(w, r, req.Jobs)
}

// startBatchStream commits the response to NDJSON streaming and
// returns the request context plus a line writer that is safe for
// concurrent use and drops lines once the client is gone.
func (s *Server) startBatchStream(w http.ResponseWriter, r *http.Request) (context.Context, func(BatchLine)) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	ctx := r.Context()
	id := obs.RequestID(ctx)
	var mu sync.Mutex
	return ctx, func(line BatchLine) {
		if line.RequestID == "" {
			line.RequestID = id
		}
		mu.Lock()
		defer mu.Unlock()
		if ctx.Err() != nil {
			return // client is gone; drop the line, workers are winding down
		}
		enc.Encode(line)
		if fl != nil {
			fl.Flush()
		}
	}
}

// handleJobsBatch runs the grouped form: jobs spanning several
// documents in one stream. Jobs are grouped per document and each
// document's group runs through its session's worker pool; the groups
// stream concurrently into one merged completion-order response, every
// line re-tagged with the global job index and its document.
func (s *Server) handleJobsBatch(w http.ResponseWriter, r *http.Request, jobs []BatchJob) {
	byDoc := map[string][]int{} // doc -> global job indices, input order
	for i, j := range jobs {
		byDoc[j.Doc] = append(byDoc[j.Doc], i)
	}
	ctx, writeLine := s.startBatchStream(w, r)
	var wg sync.WaitGroup
	for doc, indices := range byDoc {
		// Version before session, as in handleQuery, per document.
		ver := s.docVersion(doc)
		sess, ok := s.Session(doc)
		if !ok {
			for _, gi := range indices {
				writeLine(BatchLine{
					Index: gi, Doc: doc, Missing: true,
					//lint:ignore wiretag the document is unknown, so there is no version to carry; Missing marks the line as uncacheable
					QueryResponse: QueryResponse{
						Query: jobs[gi].Query,
						Error: fmt.Sprintf("unknown document %q", doc),
					},
				})
			}
			continue
		}
		queries := make([]string, len(indices))
		for k, gi := range indices {
			queries[k] = jobs[gi].Query
		}
		wg.Add(1)
		go func(doc string, sess *engine.Session, ver uint64, indices []int, queries []string) {
			defer wg.Done()
			sess.StreamBatch(ctx, queries, func(k int, res engine.Result) {
				writeLine(BatchLine{Index: indices[k], Doc: doc, QueryResponse: s.render(sess, ver, res)})
			})
		}(doc, sess, ver, indices, queries)
	}
	wg.Wait()
}

// handleHealthz is the liveness probe the cluster router polls: cheap,
// allocation-light, 200 while the process serves and 503 once a
// graceful shutdown begins (BeginDrain) so routers divert new work
// while in-flight requests finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		HTTPError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	out := map[string]any{
		"ok":        true,
		"documents": s.docs.Stats().Entries,
		"uptime_ms": obs.UptimeMillis(),
		"build":     obs.Build(),
	}
	if s.draining.Load() {
		out["ok"] = false
		out["draining"] = true
		WriteJSON(w, http.StatusServiceUnavailable, out)
		return
	}
	WriteJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		HTTPError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.eng.Stats()
	type docStat struct {
		Nodes   int    `json:"nodes"`
		Version uint64 `json:"version"`
	}
	docs := map[string]docStat{}
	s.docs.Range(func(name string, sess *engine.Session, _ int64) bool {
		docs[name] = docStat{Nodes: sess.Document().Len(), Version: s.docVersion(name)}
		return true
	})
	plannerStats := map[string]any{"mode": "off"}
	if p := s.eng.Planner(); p != nil {
		ps := p.Stats()
		plannerStats = map[string]any{
			"mode":      ps.Mode,
			"decisions": ps.Decisions,
			"explored":  ps.Explored,
			"bans":      ps.Bans,
			"wins":      ps.Wins,
			"classes":   ps.Classes,
		}
	}
	WriteJSON(w, http.StatusOK, map[string]any{
		"cache": map[string]any{
			"hits":               st.Hits,
			"misses":             st.Misses,
			"evictions":          st.Evictions,
			"rejects":            st.Rejects,
			"size":               st.Size,
			"capacity":           st.Capacity,
			"hit_rate":           st.HitRate(),
			"compile_ns_saved":   st.CompileNanosSaved,
			"compile_time_saved": (time.Duration(st.CompileNanosSaved)).String(),
		},
		"in_flight":   st.InFlight,
		"fallbacks":   st.Fallbacks,
		"strategy":    s.eng.Strategy().String(),
		"parallelism": s.eng.Parallelism(),
		"planner":     plannerStats,
		"documents":   docs,
		"store":       s.docs.Stats(),
	})
}

// DecodeJSON parses a request body into dst, writing the error
// response itself on failure: 413 when the body tripped the size
// limit, 400 for malformed JSON. Exported because the cluster router
// speaks this package's wire format and must fail identically.
func DecodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	err := json.NewDecoder(r.Body).Decode(dst)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		HTTPError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		return false
	}
	HTTPError(w, http.StatusBadRequest, "invalid JSON: %v", err)
	return false
}

// WriteJSON writes v as an indented JSON response with the given
// status — the one response writer shared by every endpoint (and the
// cluster router), so the wire format cannot drift between them.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// HTTPError writes the protocol's {"error": ...} failure shape.
func HTTPError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// DocNames returns the registered document names, sorted (for logs).
func (s *Server) DocNames() []string {
	var names []string
	s.docs.Range(func(name string, _ *engine.Session, _ int64) bool {
		names = append(names, name)
		return true
	})
	sort.Strings(names)
	return names
}
