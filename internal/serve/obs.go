package serve

import (
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// serveMetrics are the HTTP tier's instruments, registered into the
// engine's registry so one /metrics exposition covers engine, store
// and wire format.
type serveMetrics struct {
	// httpRequests counts requests by normalized path (the fixed
	// endpoint set, never raw URLs, so cardinality stays bounded).
	httpRequests *obs.CounterVec
	// slowQueries counts traced requests that exceeded the slow-query
	// threshold.
	slowQueries *obs.Counter
	// stage is the engine's shared xpath_stage_seconds family; serve
	// records parse, index_warm, serialize and route into it.
	stage *obs.HistogramVec
}

func (s *Server) initObs() {
	reg := s.eng.Metrics()
	s.reg = reg
	s.traces = obs.NewTraceRing(0)
	s.metrics = &serveMetrics{
		httpRequests: reg.CounterVec("xpath_http_requests_total", "HTTP requests by normalized path", "path"),
		slowQueries:  reg.Counter("xpath_slow_queries_total", "traced requests slower than the -slow-query threshold"),
		stage:        s.eng.StageSeconds(),
	}
	reg.GaugeFunc("xpath_documents", "documents resident in the store", func() float64 {
		return float64(s.docs.Stats().Entries)
	})
	reg.GaugeFunc("xpath_store_bytes", "serialized bytes accounted in the store", func() float64 {
		return float64(s.docs.Stats().Bytes)
	})
}

// SetLogger sets the structured logger request handling reports to
// (default slog.Default()).
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

// SetSlowQuery sets the slow-query threshold: traced requests that
// take at least d are logged with their full span tree (0 disables,
// the default).
func (s *Server) SetSlowQuery(d time.Duration) { s.slow = d }

// Traces exposes the recent-trace ring (tests read it; /debug/traces
// serves it).
func (s *Server) Traces() *obs.TraceRing { return s.traces }

func (s *Server) log() *slog.Logger {
	if s.logger != nil {
		return s.logger
	}
	return slog.Default()
}

// normalizePath maps a request path onto the server's fixed endpoint
// set so the per-path counter's label cardinality is bounded by the
// API, not by client behavior.
func normalizePath(p string) string {
	switch p {
	case "/documents", "/query", "/batch", "/stats", "/healthz", "/metrics":
		return p
	}
	if strings.HasPrefix(p, "/debug/") {
		return "debug"
	}
	return "other"
}

// tracedPath reports whether requests to the path get a span tree and
// a structured log line. Probes (/healthz, /stats, /metrics) stay out
// so scrapes don't churn the trace ring.
func tracedPath(p string) bool {
	return p == "/query" || p == "/batch" || p == "/documents"
}

// statusWriter captures the response status for logging while
// preserving the http.Flusher the NDJSON batch stream requires.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// instrument is the serving tier's observability middleware: it counts
// the request, adopts (or mints) the X-Request-Id, opens the root
// "route" span for traced paths, and on completion records the trace,
// emits the structured log line, and fires the slow-query log when the
// threshold is crossed.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := normalizePath(r.URL.Path)
		s.metrics.httpRequests.Inc(path)
		id := r.Header.Get(obs.HeaderRequestID)
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.HeaderRequestID, id)
		ctx := obs.WithRequestID(r.Context(), id)
		if !tracedPath(path) {
			next.ServeHTTP(w, r.WithContext(ctx))
			return
		}
		tr := obs.NewTrace(id)
		ctx = obs.WithTrace(ctx, tr)
		ctx, root := obs.StartSpan(ctx, "route")
		root.SetAttr("path", path)
		root.SetAttr("method", r.Method)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		root.End()
		rep := tr.Report()
		s.traces.Add(rep)
		s.metrics.stage.With("route").Observe(elapsed.Seconds())
		log := s.log()
		if s.slow > 0 && elapsed >= s.slow {
			s.metrics.slowQueries.Inc()
			log.Warn("slow query",
				"request_id", id, "method", r.Method, "path", path,
				"status", sw.status, "dur_ms", elapsed.Milliseconds(),
				"trace", traceAttr(rep))
		}
		log.Info("request",
			"request_id", id, "method", r.Method, "path", path,
			"status", sw.status, "dur_ms", elapsed.Milliseconds())
	})
}

// traceAttr renders a span report as one compact JSON log attribute —
// the slow-query log's payload must survive line-oriented log
// shipping.
func traceAttr(rep *obs.TraceJSON) string {
	b, err := json.Marshal(rep)
	if err != nil {
		return "unserializable trace"
	}
	return string(b)
}
