package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/resilience"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestDrainHealthz: BeginDrain flips the liveness probe to 503 so load
// balancers stop routing here, while in-flight and follow-up requests
// on the still-open listener keep being served.
func TestDrainHealthz(t *testing.T) {
	srv, ts := testServer(t)

	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", resp.StatusCode)
	}
	srv.BeginDrain()
	resp, out := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", resp.StatusCode)
	}
	if out["draining"] != true || out["ok"] != false {
		t.Fatalf("healthz drain body = %v, want draining=true ok=false", out)
	}
	if resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query during drain = %d (%v), want 200", resp.StatusCode, out)
	}
}

// TestServerFaults: a -fault-spec style injection wired via SetFaults
// fires on matching requests, honors its trigger budget, and leaves
// non-matching paths alone.
func TestServerFaults(t *testing.T) {
	f, err := resilience.ParseFaults("err:path=/query;code=503;times=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(engine.New(engine.Options{CacheSize: 8, Workers: 2}), store.Config{})
	if _, _, err := srv.AddDocument("catalog", workload.Catalog(4).XMLString()); err != nil {
		t.Fatal(err)
	}
	srv.SetFaults(f)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/query?doc=catalog&q=count(//product)")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first query = %d, want injected 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "injected fault") {
		t.Fatalf("injected body = %q, want injected-fault marker", body)
	}
	// Budget spent: the same request now succeeds.
	if resp, out := getJSON(t, ts.URL+"/query?doc=catalog&q=count(//product)"); resp.StatusCode != http.StatusOK {
		t.Fatalf("second query = %d (%v), want 200", resp.StatusCode, out)
	}
	// Non-matching path was never a candidate.
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}
