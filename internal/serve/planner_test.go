package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/store"
	"repro/internal/workload"
)

// TestPlannedResponseOverHTTP drives the planner end to end: with
// -planner=adaptive the response names the concrete strategy the
// planner chose, carries the planned marker, and /stats exposes the
// decision counters.
func TestPlannedResponseOverHTTP(t *testing.T) {
	srv := New(engine.New(engine.Options{
		Strategy: core.Auto, Planner: planner.Adaptive,
	}), store.Config{})
	if _, _, err := srv.AddDocument("catalog", workload.Catalog(20).XMLString()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, out := postJSON(t, ts.URL+"/query", QueryRequest{Doc: "catalog", Query: "//product"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	if out["planned"] != true {
		t.Fatalf("response = %v, want planned=true", out)
	}
	if s, _ := out["strategy"].(string); s == "" || s == "auto" {
		t.Fatalf("strategy = %q, want a concrete planned strategy", s)
	}

	_, stats := getJSON(t, ts.URL+"/stats")
	ps, ok := stats["planner"].(map[string]any)
	if !ok {
		t.Fatalf("stats = %v, want a planner section", stats)
	}
	if ps["mode"] != "adaptive" {
		t.Fatalf("planner mode = %v, want adaptive", ps["mode"])
	}
	if ps["decisions"].(float64) < 1 {
		t.Fatalf("planner decisions = %v, want >= 1", ps["decisions"])
	}
}

// TestPlannerOffStatsSection: without a planner the section still
// exists and reports mode off, so dashboards need no conditionals.
func TestPlannerOffStatsSection(t *testing.T) {
	srv := New(engine.New(engine.Options{}), store.Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	_, stats := getJSON(t, ts.URL+"/stats")
	ps, ok := stats["planner"].(map[string]any)
	if !ok || ps["mode"] != "off" {
		t.Fatalf("planner section = %v, want mode off", stats["planner"])
	}
}

// TestPlannedFallbackReportsActualStrategy is the regression test for
// the post-fallback strategy bug: when a planned bottomup pick trips
// the table limit and the MinContext rescue produces the value, the
// response must name mincontext — the strategy that actually ran —
// not the one the planner requested, and must carry both markers.
// (The old render path re-derived the strategy via StrategyFor, which
// under a stateful planner can also disagree with the decision that
// executed; the response now reports the Result verbatim.)
func TestPlannedFallbackReportsActualStrategy(t *testing.T) {
	eng := engine.New(engine.Options{
		Strategy: core.Auto, Planner: planner.Adaptive, MaxTableRows: 4,
	})
	srv := New(eng, store.Config{})
	doc := workload.Catalog(30)
	if _, _, err := srv.AddDocument("catalog", doc.XMLString()); err != nil {
		t.Fatal(err)
	}
	const query = "count(//product[position() = last()])"
	// Seed the planner so it routes this shape class to bottomup; the
	// registered document re-parses to the same node count, so the
	// seeded class matches the served decision.
	p := eng.Planner()
	p.SetExploreEvery(0)
	p.Observe(core.MustCompile(query), doc.Len(), core.BottomUp, time.Microsecond, false)

	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, out := postJSON(t, ts.URL+"/query", QueryRequest{Doc: "catalog", Query: query})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v (planned fallback did not rescue)", resp.StatusCode, out)
	}
	if out["strategy"] != "mincontext" {
		t.Fatalf("strategy = %v, want mincontext (what actually ran)", out["strategy"])
	}
	if out["fallback"] != true || out["planned"] != true {
		t.Fatalf("response = %v, want fallback=true planned=true", out)
	}
	if val := out["value"].(map[string]any); val["number"] != 1.0 {
		t.Fatalf("value = %v, want 1", val)
	}
	_, stats := getJSON(t, ts.URL+"/stats")
	if stats["fallbacks"].(float64) != 1 {
		t.Fatalf("stats fallbacks = %v, want 1", stats["fallbacks"])
	}
	if ps := stats["planner"].(map[string]any); ps["bans"].(float64) != 1 {
		t.Fatalf("planner bans = %v, want 1", ps["bans"])
	}
}
