package core

import (
	"testing"

	"repro/internal/workload"
	"repro/internal/xpath"
)

func TestCompileAndSelect(t *testing.T) {
	d, err := ParseString(`<a><b/><b/><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Select(d, "//b")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Errorf("Select(//b) = %v", s)
	}
	if _, err := Select(d, "count(//b)"); err == nil {
		t.Error("Select on a number query must error")
	}
}

func TestFragmentClassification(t *testing.T) {
	cases := map[string]Fragment{
		"//b[child::c]":                FragmentCoreXPath,
		"//b[child::c = 'x']":          FragmentXPatterns,
		"//b[position() != last()]":    FragmentWadler,
		"//b[count(child::*) > 1]":     FragmentFullXPath,
		"/descendant::a/child::b":      FragmentCoreXPath,
		"id('x')/child::b":             FragmentXPatterns,
		"//*[. = '100']":               FragmentXPatterns,
		"//*[position() > last()*0.5]": FragmentWadler,
		"count(//b)":                   FragmentFullXPath,
	}
	for src, want := range cases {
		q := MustCompile(src)
		if q.Fragment() != want {
			t.Errorf("Fragment(%q) = %v, want %v", src, q.Fragment(), want)
		}
	}
}

func TestAutoStrategySelection(t *testing.T) {
	d, _ := ParseString(`<a><b/></a>`)
	en := NewEngine(d, Auto)
	cases := map[string]Strategy{
		"//b[child::c]":             CoreXPath,
		"//b[child::c = 'x']":       XPatterns,
		"//b[position() != last()]": OptMinContext,
		"count(//b)":                OptMinContext,
	}
	for src, want := range cases {
		if got := en.StrategyFor(MustCompile(src)); got != want {
			t.Errorf("StrategyFor(%q) = %v, want %v", src, got, want)
		}
	}
	// A fixed strategy overrides Auto selection.
	en2 := NewEngine(d, TopDown)
	if en2.StrategyFor(MustCompile("//b")) != TopDown {
		t.Error("fixed strategy not honoured")
	}
}

func TestAllStrategiesAgree(t *testing.T) {
	d := workload.Catalog(20)
	queries := []string{
		"//product[price]",
		"//product[@category = 'audio']/name",
		"count(//product)",
		"//product[position() = last()]",
		"//product[discontinued]/price",
	}
	strategies := []Strategy{Naive, DataPool, BottomUp, TopDown, MinContext, OptMinContext, Auto}
	for _, src := range queries {
		q := MustCompile(src)
		ref, err := NewEngine(d, Naive).Evaluate(q, Context{Node: d.RootID(), Pos: 1, Size: 1})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		for _, s := range strategies[1:] {
			got, err := NewEngine(d, s).Evaluate(q, Context{Node: d.RootID(), Pos: 1, Size: 1})
			if err != nil {
				t.Errorf("%q via %v: %v", src, s, err)
				continue
			}
			if !got.Equal(ref) {
				t.Errorf("%q via %v: %+v != %+v", src, s, got, ref)
			}
		}
	}
}

func TestFragmentEnginesRejectOutside(t *testing.T) {
	d, _ := ParseString(`<a><b/></a>`)
	q := MustCompile("count(//b)")
	if _, err := NewEngine(d, CoreXPath).Evaluate(q, Context{Node: d.RootID(), Pos: 1, Size: 1}); err == nil {
		t.Error("CoreXPath strategy must reject count()")
	}
	if _, err := NewEngine(d, XPatterns).Evaluate(q, Context{Node: d.RootID(), Pos: 1, Size: 1}); err == nil {
		t.Error("XPatterns strategy must reject count()")
	}
}

func TestBindings(t *testing.T) {
	d, _ := ParseString(`<a><b x="1"/><b x="2"/></a>`)
	q, err := CompileWithBindings("//b[@x = $v]", xpath.Bindings{"v": &xpath.Literal{Val: "2"}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewEngine(d, Auto).Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 {
		t.Errorf("bound query = %v", s)
	}
	if _, err := Compile("//b[@x = $v]"); err == nil {
		t.Error("unbound variable must fail compilation")
	}
}

func TestNumericVariablePredicate(t *testing.T) {
	// [$w] with a numeric binding means [position() = $w] (Section 5's
	// normal form is computed after variable substitution).
	d, _ := ParseString(`<a><b/><b/><b/></a>`)
	q, err := CompileWithBindings("//b[$w]", xpath.Bindings{"w": &xpath.Number{Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewEngine(d, Auto).Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 1 {
		t.Fatalf("//b[$w=2] = %v, want exactly the second b", s)
	}
	kids := d.Children(d.DocumentElement())
	if s[0] != kids[1] {
		t.Errorf("selected %v, want %v", s[0], kids[1])
	}
	// A string binding is a boolean predicate instead.
	q, err = CompileWithBindings("//b[$w]", xpath.Bindings{"w": &xpath.Literal{Val: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	s, err = NewEngine(d, Auto).Select(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 {
		t.Errorf("//b['x'] = %v, want all three (non-empty string is true)", s)
	}
}

func TestEvalString(t *testing.T) {
	d, _ := ParseString(`<a><b>hi</b></a>`)
	en := NewEngine(d, Auto)
	got, err := en.EvalString(MustCompile("string(//b)"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "hi" {
		t.Errorf("EvalString = %q", got)
	}
	got, err = en.EvalString(MustCompile("count(//b) + 1"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "2" {
		t.Errorf("EvalString = %q", got)
	}
}

func TestStrategyNames(t *testing.T) {
	for _, s := range []Strategy{Auto, Naive, DataPool, BottomUp, TopDown,
		MinContext, OptMinContext, CoreXPath, XPatterns} {
		got, ok := StrategyByName(s.String())
		if !ok || got != s {
			t.Errorf("round trip %v failed", s)
		}
	}
	if _, ok := StrategyByName("quantum"); ok {
		t.Error("bogus strategy resolved")
	}
}
