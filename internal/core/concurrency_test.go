package core

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestConcurrentEvaluation verifies that one Engine may serve many
// goroutines: Evaluate constructs per-call evaluator state, the
// Document is immutable after parsing, and its lazily filled strval
// memo is mutex-guarded. The goroutines start against a cold cache so
// -race exercises the concurrent first fill.
func TestConcurrentEvaluation(t *testing.T) {
	d := workload.Catalog(60)
	en := NewEngine(d, Auto)
	queries := []*Query{
		MustCompile("//product[discontinued]/name"),
		MustCompile("count(//product)"),
		MustCompile("//product[@category = 'audio'][position() < 4]"),
		MustCompile("sum(//price)"),
		MustCompile("id(//accessory)/name"),
	}
	// Compute expectations on a second, structurally identical document
	// (the generator is deterministic, so NodeIDs coincide) to keep
	// d's strval cache cold for the concurrent phase.
	warm := workload.Catalog(60)
	warmEn := NewEngine(warm, Auto)
	want := make([]Value, len(queries))
	for i, q := range queries {
		v, err := warmEn.Evaluate(q, Context{Node: warm.RootID(), Pos: 1, Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 10; rep++ {
				for i, q := range queries {
					v, err := en.Evaluate(q, Context{Node: d.RootID(), Pos: 1, Size: 1})
					if err != nil {
						errs <- err
						return
					}
					if !v.Equal(want[i]) {
						errs <- errMismatch{}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch struct{}

func (errMismatch) Error() string { return "concurrent evaluation returned a different value" }
