// Package core is the public face of the library: compile an XPath 1.0
// query once, evaluate it over documents with a selectable strategy.
//
// The Auto strategy implements the combined OptMinContext processor of
// the paper's introduction: queries in the Core XPath fragment run on
// the linear-time set algebra (Section 10.1), queries in the XPatterns
// fragment on its linear-time extension (Section 10.2), queries in the
// Extended Wadler Fragment — and everything else — on OptMinContext
// (Section 11.2), which itself degrades gracefully to MinContext bounds
// on full XPath. The remaining strategies expose every algorithm the
// paper discusses, including the deliberately exponential naive engine
// used as the experimental baseline.
package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/bottomup"
	"repro/internal/corexpath"
	"repro/internal/datapool"
	"repro/internal/mincontext"
	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/topdown"
	"repro/internal/wadler"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xpatterns"
)

// Document is an XML document in the paper's data model.
type Document = xmltree.Document

// Value is an XPath 1.0 result value (number, string, boolean or node
// set).
type Value = semantics.Value

// Context is an XPath evaluation context ⟨node, position, size⟩.
type Context = semantics.Context

// NodeSet is a document-ordered set of nodes.
type NodeSet = xmltree.NodeSet

// Parse reads an XML document.
func Parse(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseString parses an XML document from a string.
func ParseString(s string) (*Document, error) { return xmltree.ParseString(s) }

// Strategy selects an evaluation algorithm.
type Strategy int

// The evaluation strategies, in roughly the order the paper develops
// them.
const (
	// Auto picks the best applicable algorithm per query (Core XPath →
	// XPatterns → OptMinContext).
	Auto Strategy = iota
	// Naive is the exponential-time recursive evaluator modeling
	// XALAN/XT/Saxon/IE6 (Section 2).
	Naive
	// DataPool is Naive plus the memoizing data pool of Section 9.
	DataPool
	// BottomUp is the context-value-table Algorithm 6.3.
	BottomUp
	// TopDown is the vectorized evaluator of Section 7.
	TopDown
	// MinContext is the Section 8 algorithm.
	MinContext
	// OptMinContext is the Section 11.2 algorithm (full XPath, with
	// bottom-up evaluation of Wadler-fragment subexpressions).
	OptMinContext
	// CoreXPath is the linear-time fragment algebra (Section 10.1);
	// it rejects queries outside the fragment.
	CoreXPath
	// XPatterns is the linear-time XPatterns evaluator (Section 10.2);
	// it rejects queries outside the fragment.
	XPatterns
)

// strategyNames are the flag names and, through Strategy.String, the
// Prometheus label values of the engine's per-strategy latency
// histograms (xpath_query_seconds{strategy=...}). Keep them lowercase
// snake_case: dashboards and the future adaptive planner key on these
// exact strings.
var strategyNames = map[Strategy]string{
	Auto: "auto", Naive: "naive", DataPool: "datapool",
	BottomUp: "bottomup", TopDown: "topdown", MinContext: "mincontext",
	OptMinContext: "optmincontext", CoreXPath: "corexpath",
	XPatterns: "xpatterns",
}

// String returns the strategy's flag name.
func (s Strategy) String() string {
	if n, ok := strategyNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// StrategyByName resolves a flag name to a Strategy.
func StrategyByName(name string) (Strategy, bool) {
	for s, n := range strategyNames {
		if n == name {
			return s, true
		}
	}
	return 0, false
}

// Fragment classifies a query into the lattice of Figure 1.
type Fragment int

// Fragments, smallest first.
const (
	FragmentCoreXPath Fragment = iota
	FragmentXPatterns
	FragmentWadler
	FragmentFullXPath
)

// String names the fragment as in the paper.
func (f Fragment) String() string {
	switch f {
	case FragmentCoreXPath:
		return "Core XPath"
	case FragmentXPatterns:
		return "XPatterns"
	case FragmentWadler:
		return "Extended Wadler Fragment"
	default:
		return "Full XPath"
	}
}

// Query is a compiled XPath query. A Query is immutable after
// compilation — it holds the normalized expression tree and fragment
// classification, never evaluation state — so one compiled Query may
// be evaluated concurrently by any number of goroutines, over the same
// document or different ones (internal/engine's compiled-query cache
// relies on this; see TestConcurrentEvaluation and the engine race
// tests).
type Query struct {
	src  string
	expr xpath.Expr
	frag Fragment
}

// Compile parses and normalizes a query.
func Compile(src string) (*Query, error) {
	return CompileWithBindings(src, nil)
}

// CompileWithBindings parses a query and substitutes variable bindings
// (per Section 5, variables are replaced by constants before
// evaluation).
func CompileWithBindings(src string, bindings xpath.Bindings) (*Query, error) {
	e, err := xpath.Parse(src)
	if err != nil {
		return nil, err
	}
	if bindings != nil {
		e, err = xpath.Substitute(e, bindings)
		if err != nil {
			return nil, err
		}
	}
	if xpath.HasVariables(e) {
		return nil, fmt.Errorf("core: query has unbound variables; supply bindings")
	}
	return &Query{src: src, expr: e, frag: classify(e)}, nil
}

// MustCompile compiles a query known to be valid; it panics on error.
func MustCompile(src string) *Query {
	q, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the original query text.
func (q *Query) String() string { return q.src }

// Expr exposes the normalized expression tree.
func (q *Query) Expr() xpath.Expr { return q.expr }

// Fragment reports the smallest fragment of Figure 1 containing the
// query.
func (q *Query) Fragment() Fragment { return q.frag }

func classify(e xpath.Expr) Fragment {
	switch {
	case corexpath.InFragment(e):
		return FragmentCoreXPath
	case xpatterns.InFragment(e):
		return FragmentXPatterns
	case wadler.InFragment(e):
		return FragmentWadler
	default:
		return FragmentFullXPath
	}
}

// StrategyPlanner resolves the Auto strategy per query. It is the hook
// internal/planner plugs into: core cannot import the planner (the
// planner imports core), so the Engine only knows the shape of the
// decision — given a compiled query and the document size, name a
// concrete strategy. Implementations must be safe for concurrent use
// and side-effect-free (StrategyFor is called on paths that must not
// perturb adaptive state; stateful planning goes through the serving
// layer's explicit Decide).
type StrategyPlanner interface {
	PickStrategy(q *Query, docNodes int) Strategy
}

// Engine evaluates compiled queries over one document with a fixed
// strategy.
//
// An Engine is safe for concurrent use once configured: Evaluate
// constructs fresh per-call evaluator state, the Document is immutable
// after parsing (its lazily filled string-value memo is mutex-guarded
// in xmltree), and Query is immutable after compilation. The exported
// knobs (NaiveBudget, MaxTableRows) are read on every call and must
// not be written concurrently with evaluation — set them before
// sharing the Engine.
type Engine struct {
	doc      *Document
	strategy Strategy

	// NaiveBudget bounds naive-strategy evaluations (0 = unlimited);
	// see naive.Evaluator.Budget.
	NaiveBudget int64

	// MaxTableRows bounds the context-value tables materialized by the
	// BottomUp strategy (0 = unlimited); see
	// bottomup.Evaluator.MaxTableRows. When the limit trips, Evaluate
	// returns an error wrapping bottomup.ErrTableLimit.
	MaxTableRows int

	// Parallelism is the worker budget for the multicore kernels of the
	// fragment engines (parallel bitset connectives, axis interval
	// fills, posting-list scans and node-test filters). 0 or 1 runs
	// fully sequential; results are identical at every setting. Engines
	// without parallel kernels ignore it.
	Parallelism int

	// Planner, when non-nil and the engine's strategy is Auto,
	// resolves StrategyFor through shape-based planning instead of the
	// static fragment switch. Set it before sharing the Engine.
	Planner StrategyPlanner
}

// NewEngine creates an engine over a document.
func NewEngine(d *Document, s Strategy) *Engine {
	return &Engine{doc: d, strategy: s}
}

// Warm precomputes the document's lazily built structural index
// (subtree intervals, the label→NodeSet name index and the evaluator
// scratch pool) so the first query does not pay the O(|dom|) build.
// Serving layers call it at document-registration time; it is safe,
// idempotent and cheap to call concurrently.
func (en *Engine) Warm() { en.doc.Index() }

// Strategy returns the engine's configured strategy.
func (en *Engine) Strategy() Strategy { return en.strategy }

// StrategyFor reports the concrete algorithm Auto would pick for a
// query: the Planner's choice when one is configured, otherwise the
// static fragment switch of the combined processor.
func (en *Engine) StrategyFor(q *Query) Strategy {
	if en.strategy != Auto {
		return en.strategy
	}
	if en.Planner != nil {
		if s := en.Planner.PickStrategy(q, en.doc.Len()); s != Auto {
			return s
		}
	}
	switch q.frag {
	case FragmentCoreXPath:
		return CoreXPath
	case FragmentXPatterns:
		return XPatterns
	default:
		return OptMinContext
	}
}

// Evaluate computes the query's value for an explicit context.
func (en *Engine) Evaluate(q *Query, c Context) (Value, error) {
	return en.EvaluateContext(context.Background(), q, c)
}

// EvaluateContext computes the query's value for an explicit context,
// abandoning the evaluation with ctx's error once ctx is done. The
// cancellation contract is uniform across every strategy: all engines
// carry throttled checkpoints inside their evaluation loops — the
// polynomial engines (BottomUp, TopDown, MinContext, OptMinContext)
// inside their document-sized table loops, the linear fragment engines
// (CoreXPath, XPatterns) billed per O(|D|) set operation, and the
// exponential baselines (Naive, DataPool) on every elementary step —
// so an abandoned request stops burning CPU mid-query no matter which
// algorithm is running.
func (en *Engine) EvaluateContext(ctx context.Context, q *Query, c Context) (Value, error) {
	return en.EvaluateStrategy(ctx, q, c, en.StrategyFor(q))
}

// EvaluateStrategy evaluates with an explicitly named strategy,
// ignoring the engine's configured one (Auto still resolves through
// StrategyFor). It exists so a planning layer can pin a decision to
// its execution: the serving layer decides once, runs exactly that
// algorithm, and reports exactly what ran — re-deriving the strategy
// at evaluation time could disagree with the decision under
// exploration or concurrent adaptation.
func (en *Engine) EvaluateStrategy(ctx context.Context, q *Query, c Context, s Strategy) (Value, error) {
	if err := ctx.Err(); err != nil {
		return Value{}, err
	}
	if s == Auto {
		s = en.StrategyFor(q)
	}
	switch s {
	case Naive:
		ev := naive.New(en.doc)
		ev.Budget = en.NaiveBudget
		return ev.EvaluateContext(ctx, q.expr, c)
	case DataPool:
		ev, _ := datapool.NewEvaluator(en.doc)
		ev.Budget = en.NaiveBudget
		return ev.EvaluateContext(ctx, q.expr, c)
	case BottomUp:
		ev := bottomup.New(en.doc)
		ev.MaxTableRows = en.MaxTableRows
		return ev.EvaluateContext(ctx, q.expr, c)
	case TopDown:
		return topdown.New(en.doc).EvaluateContext(ctx, q.expr, c)
	case MinContext:
		return mincontext.New(en.doc).EvaluateContext(ctx, q.expr, c)
	case OptMinContext:
		ev := wadler.New(en.doc)
		ev.Parallelism = en.Parallelism
		return ev.EvaluateContext(ctx, q.expr, c)
	case CoreXPath:
		ev := corexpath.New(en.doc)
		ev.Parallelism = en.Parallelism
		return ev.EvaluateContext(ctx, q.expr, c)
	case XPatterns:
		return xpatterns.New(en.doc).EvaluateContext(ctx, q.expr, c)
	default:
		return Value{}, fmt.Errorf("core: unknown strategy %v", s)
	}
}

// Select evaluates a node-set query from the document root and returns
// the selected nodes in document order.
func (en *Engine) Select(q *Query) (NodeSet, error) {
	v, err := en.Evaluate(q, Context{Node: en.doc.RootID(), Pos: 1, Size: 1})
	if err != nil {
		return nil, err
	}
	if v.Kind != xpath.TypeNodeSet {
		return nil, fmt.Errorf("core: query %s returns %v, not a node set", q.src, v.Kind)
	}
	return v.Set, nil
}

// EvalString evaluates any query from the root and renders the result
// as a string (node sets via the string-value of the first node).
func (en *Engine) EvalString(q *Query) (string, error) {
	v, err := en.Evaluate(q, Context{Node: en.doc.RootID(), Pos: 1, Size: 1})
	if err != nil {
		return "", err
	}
	return semantics.ToString(en.doc, v), nil
}

// Select is a one-shot convenience: compile and evaluate a node-set
// query over a document with the Auto strategy.
func Select(d *Document, query string) (NodeSet, error) {
	q, err := Compile(query)
	if err != nil {
		return nil, err
	}
	return NewEngine(d, Auto).Select(q)
}
