package core_test

import (
	"fmt"

	"repro/internal/core"
)

func ExampleSelect() {
	d, _ := core.ParseString(`<menu><dish kind="veg">Soup</dish><dish kind="meat">Stew</dish></menu>`)
	nodes, _ := core.Select(d, "//dish[@kind = 'veg']")
	for _, n := range nodes {
		fmt.Println(d.StringValue(n))
	}
	// Output: Soup
}

func ExampleQuery_Fragment() {
	for _, q := range []string{
		"//a[b]",
		"//a[b = 'x']",
		"//a[position() != last()]",
		"//a[count(b) > 1]",
	} {
		fmt.Println(core.MustCompile(q).Fragment())
	}
	// Output:
	// Core XPath
	// XPatterns
	// Extended Wadler Fragment
	// Full XPath
}

func ExampleEngine_EvalString() {
	d, _ := core.ParseString(`<cart><item>3</item><item>4</item></cart>`)
	en := core.NewEngine(d, core.Auto)
	total, _ := en.EvalString(core.MustCompile("sum(//item)"))
	fmt.Println(total)
	// Output: 7
}

func ExampleEngine_StrategyFor() {
	d, _ := core.ParseString(`<a/>`)
	en := core.NewEngine(d, core.Auto)
	q := core.MustCompile("//a[not(b)]")
	fmt.Println(q.Fragment(), "->", en.StrategyFor(q))
	// Output: Core XPath -> corexpath
}
