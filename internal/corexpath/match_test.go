package corexpath

import (
	"testing"

	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestMatchSet(t *testing.T) {
	d := xmltree.MustParseString(`<a><s><t/><p/></s><s><t/></s><t/></a>`)
	ev := New(d)

	// Relative pattern s/t: any t with an s parent matches.
	set, err := ev.MatchSet(xpath.MustParse("s/child::t"))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Errorf("s/t match set = %v, want the two nested t", set)
	}
	for _, n := range set {
		if d.Name(n) != "t" || d.Name(d.Parent(n)) != "s" {
			t.Errorf("bad match %v", n)
		}
	}

	// Absolute pattern /a/t: only the top-level t.
	set, err = ev.MatchSet(xpath.MustParse("/child::a/child::t"))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || d.Name(d.Parent(set[0])) != "a" {
		t.Errorf("/a/t match set = %v", set)
	}

	// Pattern with predicate.
	set, err = ev.MatchSet(xpath.MustParse("s[child::p]/child::t"))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Errorf("s[p]/t match set = %v", set)
	}

	// Matches on an individual node.
	ok, err := ev.Matches(xpath.MustParse("child::p"), set[0])
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("t must not match pattern p")
	}

	// Non-fragment pattern errors.
	if _, err := ev.MatchSet(xpath.MustParse("count(//t)")); err == nil {
		t.Error("non-fragment pattern must error")
	}
}

// TestMatchSetAgainstBruteForce: n ∈ MatchSet(π) iff ∃x: n ∈ π(x).
func TestMatchSetAgainstBruteForce(t *testing.T) {
	d := xmltree.MustParseString(`<a><b><c/><b><c/></b></b><c/></a>`)
	ev := New(d)
	patterns := []string{
		"child::c",
		"b/child::c",
		"descendant::b/child::c",
		"/descendant::b[child::b]/descendant::c",
		"b[not(child::b)]/child::c",
	}
	for _, p := range patterns {
		e := xpath.MustParse(p)
		got, err := ev.MatchSet(e)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		var want xmltree.NodeSet
		for x := 0; x < d.Len(); x++ {
			v, err := ev.Evaluate(e, semantics.Context{Node: xmltree.NodeID(x), Pos: 1, Size: 1})
			if err != nil {
				t.Fatal(err)
			}
			want = want.Union(v.Set)
		}
		if !got.Equal(want) {
			t.Errorf("%s: MatchSet = %v, brute force = %v", p, got, want)
		}
	}
}
