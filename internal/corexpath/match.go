package corexpath

import (
	"context"
	"fmt"

	"repro/internal/evalutil"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// MatchSet computes the set of nodes that *match* a Core XPath pattern
// in the XSLT sense: node n matches π iff n is selected by π from some
// context node (for absolute patterns, from the root). This is the
// match semantics of XSLT templates — the original home of the XSLT
// Patterns language of Section 10.2 — and it runs in O(|D|·|Q|) by one
// forward pass of the set algebra over all of dom.
func (ev *Evaluator) MatchSet(e xpath.Expr) (xmltree.NodeSet, error) {
	return ev.MatchSetContext(context.Background(), e)
}

// MatchSetContext is MatchSet with cancellation: the dom construction
// and every set-algebra operation bill the throttled checkpoint, so a
// match over a large document abandons promptly with ctx's error once
// ctx is done.
func (ev *Evaluator) MatchSetContext(ctx context.Context, e xpath.Expr) (xmltree.NodeSet, error) {
	if !InFragment(e) {
		return nil, fmt.Errorf("corexpath: pattern %s not in the Core XPath fragment", e)
	}
	ev.cancel = evalutil.NewCanceller(ctx)
	ev.ctx = ctx
	if err := ev.checkpoint(); err != nil {
		return nil, err
	}
	dom := make(xmltree.NodeSet, ev.doc.Len())
	for i := range dom {
		dom[i] = xmltree.NodeID(i)
	}
	return ev.EvaluateSet(e, dom)
}

// Matches reports whether one node matches the pattern. For repeated
// tests against the same pattern, compute MatchSet once and use
// Contains.
func (ev *Evaluator) Matches(e xpath.Expr, n xmltree.NodeID) (bool, error) {
	s, err := ev.MatchSet(e)
	if err != nil {
		return false, err
	}
	return s.Contains(n), nil
}

// MatchesContext is Matches with cancellation.
func (ev *Evaluator) MatchesContext(ctx context.Context, e xpath.Expr, n xmltree.NodeID) (bool, error) {
	s, err := ev.MatchSetContext(ctx, e)
	if err != nil {
		return false, err
	}
	return s.Contains(n), nil
}
