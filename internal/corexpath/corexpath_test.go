package corexpath

import (
	"testing"

	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

var docs = map[string]string{
	"doc4":  `<a><b/><b/><b/><b/></a>`,
	"tree":  `<a><b><c/><d/></b><e><f/><c/></e><b><c/></b></a>`,
	"text":  `<r><x>1</x><y><x>2</x></y><z/></r>`,
	"attrs": `<r><a x="1"/><a/><a x="2" y="3"/></r>`,
}

// coreQueries are all within the Core XPath fragment.
var coreQueries = []string{
	"/descendant::a",
	"/descendant::b/child::c",
	"//c",
	"//b[child::c]",
	"//*[child::c and child::d]",
	"//*[child::c or child::d]",
	"//*[not(child::*)]",
	"//*[not(following::*)]",
	"/descendant::a/child::b[child::c/child::d or not(following::*)]", // Example 10.3
	"//c/ancestor::b",
	"//*[ancestor::e]",
	"//*[preceding-sibling::b]",
	"//*[descendant::c][child::b]",
	"//*[child::*[child::c]]",
	"//a | //b",
	"//*[/descendant::d]", // absolute path predicate: dom_root
	"//*[not(/descendant::nosuch)]",
	"//x[parent::y]",
	"//*[@x]",
	"//@x/parent::*",
	"//*[child::text()]",
	"self::node()/descendant::c",
	"//*[/]", // zero-step absolute predicate path: dom_root(dom)
}

func TestFragmentClassifier(t *testing.T) {
	for _, q := range coreQueries {
		if !InFragment(xpath.MustParse(q)) {
			t.Errorf("InFragment(%q) = false, want true", q)
		}
	}
	notCore := []string{
		"//b[1]", // positions are not in Core XPath
		"//b[position() = last()]",
		"count(//b)", // numbers
		"//b[count(child::*) > 1]",
		"//*[. = 'c']", // string comparison
		"string(//b)",
		"id('x')/b",     // id needs XPatterns
		"//b[@x = '1']", // value comparison
		"1 + 1",
	}
	for _, q := range notCore {
		if InFragment(xpath.MustParse(q)) {
			t.Errorf("InFragment(%q) = true, want false", q)
		}
	}
}

// TestAgainstNaive cross-checks the algebra against the reference
// engine on every fragment query and document.
func TestAgainstNaive(t *testing.T) {
	for dname, src := range docs {
		d := xmltree.MustParseString(src)
		core := New(d)
		ref := naive.New(d)
		ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
		for _, q := range coreQueries {
			e := xpath.MustParse(q)
			want, err := ref.Evaluate(e, ctx)
			if err != nil {
				t.Fatalf("naive %q: %v", q, err)
			}
			got, err := core.Evaluate(e, ctx)
			if err != nil {
				t.Errorf("doc %s query %q: %v", dname, q, err)
				continue
			}
			if !got.Set.Equal(want.Set) {
				t.Errorf("doc %s query %q: core = %v, naive = %v", dname, q, got.Set, want.Set)
			}
		}
	}
}

// TestExample103 walks the worked example of Section 10.1.
func TestExample103(t *testing.T) {
	d := xmltree.MustParseString(`<r><a><b><c><d/></c></b><b/><x/></a><a><b/></a></r>`)
	core := New(d)
	e := xpath.MustParse("/descendant::a/child::b[child::c/child::d or not(following::*)]")
	got, err := core.Evaluate(e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := naive.New(d).Evaluate(e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Set.Equal(ref.Set) {
		t.Errorf("core = %v, naive = %v", got.Set, ref.Set)
	}
	// The first b (has c/d) qualifies; the last b in the second a
	// qualifies only if nothing follows it.
	if len(got.Set) == 0 {
		t.Error("expected non-empty result")
	}
}

// TestSBackEquivalence checks Theorem 10.4: S←[[π]] = {x | S↓[[π]]({x}) ≠ ∅}
// by brute force over all context nodes.
func TestSBackEquivalence(t *testing.T) {
	d := xmltree.MustParseString(docs["tree"])
	core := New(d)
	ref := naive.New(d)
	paths := []string{
		"child::c",
		"child::b/child::c",
		"descendant::c",
		"following::c",
		"parent::b",
		"ancestor::a/child::e",
		"/descendant::c", // absolute
	}
	for _, q := range paths {
		p := xpath.MustParse(q).(*xpath.Path)
		got, err := core.sBack(p)
		if err != nil {
			t.Fatalf("sBack(%q): %v", q, err)
		}
		var want xmltree.NodeSet
		for i := 0; i < d.Len(); i++ {
			x := xmltree.NodeID(i)
			v, err := ref.Evaluate(p, semantics.Context{Node: x, Pos: 1, Size: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !v.Set.IsEmpty() {
				want = append(want, x)
			}
		}
		if !got.ToNodeSet().Equal(want) {
			t.Errorf("S←[[%s]] = %v, want %v", q, got.ToNodeSet(), want)
		}
	}
}

func TestRejectsNonFragment(t *testing.T) {
	d := xmltree.MustParseString(docs["doc4"])
	core := New(d)
	_, err := core.Evaluate(xpath.MustParse("count(//b)"), semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err == nil {
		t.Error("expected error on non-fragment query")
	}
}
