package corexpath

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// parDoc builds a randomized document with nested structure so axis
// images, posting-list scans and dom scans all have work to do.
func parDoc(r *rand.Rand, n int) *xmltree.Document {
	var b strings.Builder
	b.WriteString(`<root>`)
	var open []string
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0:
			b.WriteString(`<a i="1">`)
			open = append(open, "a")
		case 1:
			b.WriteString(`<b>`)
			open = append(open, "b")
		case 2:
			b.WriteString(`<c/>`)
		case 3:
			b.WriteString(`t`)
		default:
			if len(open) > 0 {
				b.WriteString(`</` + open[len(open)-1] + `>`)
				open = open[:len(open)-1]
			} else {
				b.WriteString(`<c/>`)
			}
		}
	}
	for len(open) > 0 {
		b.WriteString(`</` + open[len(open)-1] + `>`)
		open = open[:len(open)-1]
	}
	b.WriteString(`</root>`)
	d, err := xmltree.ParseString(b.String())
	if err != nil {
		panic(err)
	}
	return d
}

var parQueries = []string{
	"child::a",
	"descendant::b/child::c",
	"/descendant-or-self::node()/child::a",
	"descendant::a[child::b]",
	"descendant::*[child::text() and child::c]",
	"following::c",
	"preceding::a/descendant::b",
	"descendant::a[not(child::b)] | descendant::c",
	"descendant::b[descendant::c or child::a]",
}

func TestEvaluateParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	ctx := context.Background()
	docs := []*xmltree.Document{
		parDoc(r, 40),
		parDoc(r, 300),
		// Large enough to cross the production parallel thresholds in
		// evalutil (4096 nodes) and, on deep chains, the axes span floor.
		parDoc(r, 9000),
	}
	for di, d := range docs {
		c := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
		for _, src := range parQueries {
			e := xpath.MustParse(src)
			seq := New(d)
			want, err := seq.EvaluateContext(ctx, e, c)
			if err != nil {
				t.Fatalf("doc %d %s sequential: %v", di, src, err)
			}
			for _, p := range []int{0, 1, 2, 8} {
				ev := New(d)
				ev.Parallelism = p
				got, err := ev.EvaluateContext(ctx, e, c)
				if err != nil {
					t.Fatalf("doc %d %s p=%d: %v", di, src, p, err)
				}
				if !got.Set.Equal(want.Set) {
					t.Fatalf("doc %d %s p=%d: parallel = %v, sequential = %v",
						di, src, p, got.Set, want.Set)
				}
			}
		}
	}
}

func TestMatchSetParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	ctx := context.Background()
	d := parDoc(r, 6000)
	for _, src := range parQueries {
		e := xpath.MustParse(src)
		want, err := New(d).MatchSetContext(ctx, e)
		if err != nil {
			t.Fatalf("%s sequential: %v", src, err)
		}
		for _, p := range []int{0, 2, 8} {
			ev := New(d)
			ev.Parallelism = p
			got, err := ev.MatchSetContext(ctx, e)
			if err != nil {
				t.Fatalf("%s p=%d: %v", src, p, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s p=%d: MatchSet parallel = %v, sequential = %v", src, p, got, want)
			}
		}
	}
}

// TestParallelEvaluateCancelled checks that a cancelled context aborts
// a parallel evaluation: the workers each bill their own chunk, so the
// first chunk per worker observes the cancellation.
func TestParallelEvaluateCancelled(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	d := parDoc(r, 9000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ev := New(d)
	ev.Parallelism = 8
	e := xpath.MustParse("descendant::*[child::text()]/child::a")
	if _, err := ev.MatchSetContext(ctx, e); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel MatchSetContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
}
