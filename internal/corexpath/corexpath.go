// Package corexpath implements the Core XPath fragment of Section 10.1:
// the "clean logical core" of XPath manipulating only node sets, with
// full location-path power, existential path predicates, and boolean
// connectives — evaluated in O(|D|·|Q|) time (Theorem 10.5).
//
// A query is compiled to the paper's algebra over the operations
// ∩, ∪, −, χ (axis application), and dom_root, realized on node-set
// bitmaps so each operation costs O(|D|):
//
//	S→[[χ::t]](N0)    = χ(N0) ∩ T(t)          (forward, along the path)
//	S→[[π[e]]](N0)    = S→[[π]](N0) ∩ E1[[e]]
//	E1[[e1 and e2]]   = E1[[e1]] ∩ E1[[e2]]
//	E1[[e1 or e2]]    = E1[[e1]] ∪ E1[[e2]]
//	E1[[not(e)]]      = dom − E1[[e]]
//	E1[[π]]           = S←[[π]]               (backward, "exists" semantics)
//	S←[[χ::t[e]/π]]   = χ⁻¹(S←[[π]] ∩ T(t) ∩ E1[[e]])
//	S←[[/π]]          = dom_root(S←[[π]])
//
// As a slight extension over Definition 10.2 (which allows only tag and
// * node tests) the kind tests node(), text(), comment() and
// processing-instruction() are accepted; they are unary predicates in
// the sense of Table VI and preserve linear time.
package corexpath

import (
	"context"
	"fmt"

	"repro/internal/axes"
	"repro/internal/evalutil"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Evaluator evaluates Core XPath queries over one document.
type Evaluator struct {
	doc *xmltree.Document

	// Parallelism is the worker budget for whole-document set
	// operations: axis interval fills, posting-list scans, node-test
	// filters and the bitset connectives split across the shared
	// xmltree pool. 0 or 1 evaluates sequentially (the default);
	// results are identical either way.
	Parallelism int

	// cancel is the throttled cancellation checkpoint billed once per
	// set-algebra operation (each costs O(|D|)); nil (the Evaluate
	// path) never fires. ctx is the same context for the parallel
	// kernels, whose workers bill their own chunks.
	cancel *evalutil.Canceller
	ctx    context.Context
}

// New returns a Core XPath evaluator for the document.
func New(d *xmltree.Document) *Evaluator { return &Evaluator{doc: d} }

// InFragment reports whether a normalized query lies in the Core XPath
// fragment: a location path (or a union of them) whose steps use only
// axes and node tests, and whose predicates are boolean combinations of
// existential location paths.
func InFragment(e xpath.Expr) bool {
	return isCXP(e)
}

func isCXP(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Path:
		if x.Filter != nil {
			return false
		}
		for _, s := range x.Steps {
			if s.Axis == axes.IDAxis {
				return false
			}
			for _, p := range s.Preds {
				if !isPred(p) {
					return false
				}
			}
		}
		return true
	case *xpath.Binary:
		// Unions of Core XPath paths remain linear-time.
		return x.Op == xpath.OpUnion && isCXP(x.Left) && isCXP(x.Right)
	default:
		return false
	}
}

// isPred recognizes the pred grammar of Definition 10.2 on the
// normalized AST, where a bare path predicate appears as boolean(π).
func isPred(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Binary:
		return (x.Op == xpath.OpAnd || x.Op == xpath.OpOr) && isPred(x.Left) && isPred(x.Right)
	case *xpath.Call:
		switch x.Name {
		case "not", "boolean":
			inner := x.Args[0]
			if isPred(inner) {
				return true
			}
			return isCXP(inner)
		case "true", "false":
			return true
		}
		return false
	case *xpath.Path:
		return isCXP(e)
	default:
		return false
	}
}

// Evaluate computes the query for a single context node using the
// linear-time algebra. The query must be in the fragment.
func (ev *Evaluator) Evaluate(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	return ev.EvaluateContext(context.Background(), e, c)
}

// EvaluateContext is Evaluate with cancellation: the set algebra bills
// each O(|D|) operation (axis application, intersection, document
// scan) against a throttled checkpoint and abandons the evaluation
// with ctx's error once it is done, so even maliciously long queries
// over large documents stop promptly.
func (ev *Evaluator) EvaluateContext(ctx context.Context, e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	ev.cancel = evalutil.NewCanceller(ctx)
	ev.ctx = ctx
	s, err := ev.EvaluateSet(e, xmltree.NodeSet{c.Node})
	if err != nil {
		return semantics.Value{}, err
	}
	return semantics.NodeSet(s), nil
}

// checkpoint bills one whole-document set operation against the
// cancellation checkpoint.
func (ev *Evaluator) checkpoint() error {
	return ev.cancel.CheckN(ev.doc.Len())
}

// EvaluateSet computes S→[[π]](N0) for a set of context nodes.
func (ev *Evaluator) EvaluateSet(e xpath.Expr, n0 xmltree.NodeSet) (xmltree.NodeSet, error) {
	if ev.ctx == nil {
		// Direct EvaluateSet callers skip EvaluateContext; the parallel
		// kernels still need a context to poll.
		ev.ctx = context.Background()
	}
	switch x := e.(type) {
	case *xpath.Binary:
		if x.Op != xpath.OpUnion {
			return nil, fmt.Errorf("corexpath: not a Core XPath query: %s", e)
		}
		l, err := ev.EvaluateSet(x.Left, n0)
		if err != nil {
			return nil, err
		}
		r, err := ev.EvaluateSet(x.Right, n0)
		if err != nil {
			return nil, err
		}
		return l.Union(r), nil
	case *xpath.Path:
		cur := n0
		if x.Absolute {
			cur = xmltree.NodeSet{ev.doc.RootID()}
		}
		for _, step := range x.Steps {
			if err := ev.checkpoint(); err != nil {
				return nil, err
			}
			// S→[[π/χ::t[e]]](N0) = χ(S→[[π]](N0)) ∩ T(t) ∩ E1[[e]].
			var err error
			cur, err = evalutil.StepCandidatesSetPar(ev.ctx, ev.doc, step.Axis, step.Test, cur, ev.Parallelism)
			if err != nil {
				return nil, err
			}
			for _, p := range step.Preds {
				e1, err := ev.e1(p)
				if err != nil {
					return nil, err
				}
				// In-place filter of cur by the predicate bitset.
				cur = e1.IntersectSet(cur, cur[:0])
			}
		}
		return cur, nil
	default:
		return nil, fmt.Errorf("corexpath: not a Core XPath query: %s", e)
	}
}

// e1 computes E1[[e]]: the set of nodes at which the predicate holds,
// as a packed bitset so the boolean connectives of Definition 10.2 run
// word-parallel (64 nodes per machine word) instead of as sorted
// merges.
func (ev *Evaluator) e1(e xpath.Expr) (*xmltree.Bitset, error) {
	if err := ev.checkpoint(); err != nil {
		return nil, err
	}
	switch x := e.(type) {
	case *xpath.Binary:
		l, err := ev.e1(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := ev.e1(x.Right)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case xpath.OpAnd:
			l.ParIntersect(r, ev.Parallelism)
			return l, nil
		case xpath.OpOr:
			l.ParUnion(r, ev.Parallelism)
			return l, nil
		default:
			return nil, fmt.Errorf("corexpath: operator %v not in fragment", x.Op)
		}
	case *xpath.Call:
		switch x.Name {
		case "not":
			inner, err := ev.e1(x.Args[0])
			if err != nil {
				return nil, err
			}
			inner.Complement()
			return inner, nil
		case "boolean":
			return ev.e1(x.Args[0])
		case "true":
			b := xmltree.NewBitset(ev.doc.Len())
			b.Fill()
			return b, nil
		case "false":
			return xmltree.NewBitset(ev.doc.Len()), nil
		default:
			return nil, fmt.Errorf("corexpath: function %s not in fragment", x.Name)
		}
	case *xpath.Path:
		return ev.sBack(x)
	default:
		return nil, fmt.Errorf("corexpath: predicate %s not in fragment", e)
	}
}

// testSet returns T(t) under the axis's principal node type over the
// whole document: the starting set of a backward pass. Exact element
// name tests are answered by the label index in O(matches); other tests
// scan dom once — billed as one whole-document operation so a scan
// over a large document stays cancellable.
func (ev *Evaluator) testSet(a axes.Axis, t xpath.NodeTest) (xmltree.NodeSet, error) {
	if err := ev.checkpoint(); err != nil {
		return nil, err
	}
	if evalutil.ExactElementName(a, t) {
		// Copy: callers filter the set in place.
		return append(xmltree.NodeSet(nil), ev.doc.Index().Named(t.Name)...), nil
	}
	principal := a.PrincipalType()
	if ev.Parallelism > 1 {
		// Parallel dom scan: reuse the chunked node-test filter over
		// the identity set (one extra O(|D|) fill, dwarfed by the
		// Matches calls it parallelizes).
		dom := make(xmltree.NodeSet, ev.doc.Len())
		for i := range dom {
			dom[i] = xmltree.NodeID(i)
		}
		return evalutil.FilterTestPar(ev.ctx, ev.doc, a, t, dom, ev.Parallelism)
	}
	var out xmltree.NodeSet
	for i := 0; i < ev.doc.Len(); i++ {
		if t.Matches(ev.doc, principal, xmltree.NodeID(i)) {
			out = append(out, xmltree.NodeID(i))
		}
	}
	return out, nil
}

// sBack computes S←[[π]] = {x | S↓[[π]]({x}) ≠ ∅}: backward propagation
// through the inverted steps (Theorem 10.4 gives the equivalence with
// the standard semantics). The result is a bitset for the predicate
// algebra above.
func (ev *Evaluator) sBack(p *xpath.Path) (*xmltree.Bitset, error) {
	if len(p.Steps) == 0 {
		// A bare path with no steps reaches every context (for an
		// absolute path the root trivially reaches itself): dom.
		out := xmltree.NewBitset(ev.doc.Len())
		out.Fill()
		return out, nil
	}
	// Start with the final step's node-test set intersected with its
	// predicates, then walk backwards.
	var cur xmltree.NodeSet
	for i := len(p.Steps) - 1; i >= 0; i-- {
		if err := ev.checkpoint(); err != nil {
			return nil, err
		}
		step := p.Steps[i]
		// cur' = χ⁻¹(cur ∩ T(t) ∩ E1[[e1]] ∩ … ∩ E1[[em]])
		var s xmltree.NodeSet
		if i == len(p.Steps)-1 {
			var err error
			s, err = ev.testSet(step.Axis, step.Test)
			if err != nil {
				return nil, err
			}
		} else {
			var err error
			s, err = evalutil.FilterTestPar(ev.ctx, ev.doc, step.Axis, step.Test, cur, ev.Parallelism)
			if err != nil {
				return nil, err
			}
		}
		for _, pr := range step.Preds {
			e1, err := ev.e1(pr)
			if err != nil {
				return nil, err
			}
			s = e1.IntersectSet(s, s[:0])
		}
		var err error
		cur, err = axes.EvalInversePar(ev.ctx, ev.doc, step.Axis, s, nil, ev.Parallelism)
		if err != nil {
			return nil, err
		}
	}
	out := xmltree.NewBitset(ev.doc.Len())
	if p.Absolute {
		// dom_root(S): dom if the root can reach the path, ∅ otherwise.
		if cur.Contains(ev.doc.RootID()) {
			out.Fill()
		}
		return out, nil
	}
	out.AddSet(cur)
	return out, nil
}
