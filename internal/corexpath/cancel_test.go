package corexpath

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/semantics"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// slowQuery is a legitimate Core XPath query whose evaluation chains
// hundreds of O(|D|) axis applications: linear time, but with a |Q|
// factor large enough that the full run takes seconds on slowDoc.
func slowQuery() xpath.Expr {
	q := "//*" + strings.Repeat("/following::*/preceding::*", 200)
	e := xpath.MustParse(q)
	if !InFragment(e) {
		panic("slowQuery left the Core XPath fragment")
	}
	return e
}

// TestEvaluateContextCancelsPromptly cancels a context mid-evaluation
// and asserts the evaluator returns context.Canceled within the
// checkpoint latency (one O(|D|) set operation), not after finishing
// the multi-second chain. Run under -race in CI.
func TestEvaluateContextCancelsPromptly(t *testing.T) {
	d := workload.Doc(30000)
	e := slowQuery()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := New(d).EvaluateContext(ctx, e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the step chain get going
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("evaluation did not return promptly after cancellation")
	}
}

// TestEvaluateContextUncancelled pins down that a context that is never
// cancelled changes nothing about the result.
func TestEvaluateContextUncancelled(t *testing.T) {
	d := workload.Doc(8)
	e := xpath.MustParse("//b")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	v, err := New(d).EvaluateContext(ctx, e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err != nil || len(v.Set) != 8 {
		t.Fatalf("got %d nodes, %v; want 8, nil", len(v.Set), err)
	}
}
