package bottomup

import (
	"testing"

	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func TestPairEvaluatorAgreesWithPlain(t *testing.T) {
	d := xmltree.MustParseString(
		`<a id="10"><b><c>21 22</c><c>23 24</c><d>100</d></b><b><c>11 12</c><d>13 14</d><d>100</d></b></a>`)
	ctx := semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}
	plain := New(d)
	pair := NewPair(d)
	queries := []string{
		"//c",
		"//b/c[2]",
		"//b/*[position() != last()]",
		"//*[. = '100']",
		"count(//c) + count(//d)",
		"/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]",
		"(//c)[2]",
		"//b[1]/c | //b[2]/d",
	}
	for _, q := range queries {
		e := xpath.MustParse(q)
		want, err := plain.Evaluate(e, ctx)
		if err != nil {
			t.Fatalf("plain(%q): %v", q, err)
		}
		got, err := pair.Evaluate(e, ctx)
		if err != nil {
			t.Errorf("pair(%q): %v", q, err)
			continue
		}
		if !got.Equal(want) {
			t.Errorf("pair(%q) = %+v, plain = %+v", q, got, want)
		}
	}
}

// TestPairContextBound verifies the Remark 6.7 claim: the number of
// contexts materialized per step is O(|D|²), not O(|D|³). For the
// Example 8.1 query over a document of n nodes the pair count per
// predicate is at most n², whereas the full-context table would need
// n·n(n+1)/2 rows.
func TestPairContextBound(t *testing.T) {
	var src string
	src = "<a>"
	for i := 0; i < 12; i++ {
		src += "<b>1</b>"
	}
	src += "</a>"
	d := xmltree.MustParseString(src)
	n := d.Len()
	pair := NewPair(d)
	e := xpath.MustParse("/descendant::*/descendant::*[position() != last()]")
	if _, err := pair.Evaluate(e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if pair.PairsEvaluated > n*n {
		t.Errorf("pairs evaluated = %d, exceeds |D|² = %d", pair.PairsEvaluated, n*n)
	}
	if pair.PairsEvaluated == 0 {
		t.Error("no pair contexts recorded")
	}
}
