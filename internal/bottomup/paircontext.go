package bottomup

import (
	"fmt"

	"repro/internal/evalutil"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// PairEvaluator is the Remark 6.7 refinement of the bottom-up
// algorithm: contexts are represented as pairs ⟨previous, current⟩ of
// context nodes instead of ⟨node, position, size⟩ triples. The position
// and size of a pair are recovered on demand relative to the axis and
// node test that produced it:
//
//	⟨x0, x⟩ w.r.t. χ::t  ↦  ⟨x, idx_χ(x, Y), |Y|⟩,  Y = {y | x0 χ y, y ∈ T(t)}
//
// This pushes the maximum number of rows per context-value table from
// O(|D|³) to O(|D|²), improving the bounds of Theorem 6.6 to
// O(|D|⁴·|Q|²) time and O(|D|³·|Q|²) space — the same bounds the
// top-down algorithm of Section 7 achieves.
//
// Tables here are materialized per location step while it is being
// filtered: for each step χ::t[e] the predicate e is evaluated over
// exactly the pair contexts the step generates, bottom-up (subexpression
// tables first). Expressions whose Relev excludes cp/cs collapse to
// per-node (or constant) tables exactly as in the plain evaluator.
type PairEvaluator struct {
	doc *xmltree.Document
	// PairsEvaluated counts the distinct ⟨previous, current⟩ pair
	// contexts materialized during the last Evaluate, exposing the
	// O(|D|²) bound for tests.
	PairsEvaluated int
}

// NewPair returns a Remark 6.7 evaluator for the document.
func NewPair(d *xmltree.Document) *PairEvaluator { return &PairEvaluator{doc: d} }

// Evaluate computes the query value for a context.
func (ev *PairEvaluator) Evaluate(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	ev.PairsEvaluated = 0
	return ev.eval(e, c)
}

// eval computes an expression for one concrete context. The bottom-up
// structure lives in evalPath/stepRelation, which build whole relations
// before the enclosing expression consumes them; scalar operators
// evaluate pointwise.
func (ev *PairEvaluator) eval(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	switch x := e.(type) {
	case *xpath.Number:
		return semantics.Number(x.Val), nil
	case *xpath.Literal:
		return semantics.String(x.Val), nil
	case *xpath.VarRef:
		return semantics.Value{}, fmt.Errorf("bottomup: unbound variable $%s", x.Name)
	case *xpath.Negate:
		v, err := ev.eval(x.X, c)
		if err != nil {
			return semantics.Value{}, err
		}
		return semantics.Number(-semantics.ToNumber(ev.doc, v)), nil
	case *xpath.Binary:
		l, err := ev.eval(x.Left, c)
		if err != nil {
			return semantics.Value{}, err
		}
		r, err := ev.eval(x.Right, c)
		if err != nil {
			return semantics.Value{}, err
		}
		return applyBinary(ev.doc, x.Op, l, r)
	case *xpath.Call:
		args := make([]semantics.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ev.eval(a, c)
			if err != nil {
				return semantics.Value{}, err
			}
			args[i] = v
		}
		return semantics.CallFunction(ev.doc, x.Name, c, args)
	case *xpath.Path:
		rel, err := ev.pathRelation(x)
		if err != nil {
			return semantics.Value{}, err
		}
		start := c.Node
		if x.Absolute {
			start = ev.doc.RootID()
		}
		if x.Filter != nil {
			v, err := ev.eval(x.Filter, c)
			if err != nil {
				return semantics.Value{}, err
			}
			if v.Kind != xpath.TypeNodeSet {
				return semantics.Value{}, fmt.Errorf("bottomup: path head is not a node set")
			}
			var out xmltree.NodeSet
			for _, s := range v.Set {
				out = out.Union(rel[s])
			}
			return semantics.NodeSet(out), nil
		}
		return semantics.NodeSet(rel[start]), nil
	case *xpath.FilterExpr:
		prim, err := ev.eval(x.Primary, c)
		if err != nil {
			return semantics.Value{}, err
		}
		if prim.Kind != xpath.TypeNodeSet {
			return semantics.Value{}, fmt.Errorf("bottomup: predicates on %v", prim.Kind)
		}
		s := prim.Set
		for _, pred := range x.Preds {
			var keep []xmltree.NodeID
			for i, y := range s {
				pc := semantics.Context{Node: y, Pos: i + 1, Size: len(s)}
				ev.PairsEvaluated++
				v, err := ev.eval(pred, pc)
				if err != nil {
					return semantics.Value{}, err
				}
				if semantics.ToBoolean(v) {
					keep = append(keep, y)
				}
			}
			s = xmltree.NewNodeSet(keep...)
		}
		return semantics.NodeSet(s), nil
	default:
		return semantics.Value{}, fmt.Errorf("bottomup: unknown expression %T", e)
	}
}

// pathRelation materializes the full relation of a path: for every
// possible previous context node x₀, the set of nodes reachable. This
// is the E↑ table restricted to pair contexts.
func (ev *PairEvaluator) pathRelation(p *xpath.Path) (map[xmltree.NodeID]xmltree.NodeSet, error) {
	cur := make(map[xmltree.NodeID]xmltree.NodeSet, ev.doc.Len())
	for i := 0; i < ev.doc.Len(); i++ {
		x := xmltree.NodeID(i)
		cur[x] = xmltree.NodeSet{x}
	}
	if p.Absolute {
		for i := 0; i < ev.doc.Len(); i++ {
			cur[xmltree.NodeID(i)] = xmltree.NodeSet{ev.doc.RootID()}
		}
	}
	acc := xmltree.NewAccumulator(ev.doc.Len())
	for _, step := range p.Steps {
		rel, err := ev.stepRelation(step)
		if err != nil {
			return nil, err
		}
		next := make(map[xmltree.NodeID]xmltree.NodeSet, len(cur))
		for x0, ys := range cur {
			var u xmltree.NodeSet
			if len(ys) == 1 {
				u = rel[ys[0]]
			} else if len(ys) > 1 {
				for _, y := range ys {
					acc.Add(rel[y])
				}
				u = acc.Result()
			}
			next[x0] = u
		}
		cur = next
	}
	return cur, nil
}

// stepRelation builds {⟨x, y⟩ | x χ y, y ∈ T(t), predicates hold} with
// predicate contexts being exactly the pairs the step generates: the
// Remark 6.7 representation. Every pair is evaluated at most once.
func (ev *PairEvaluator) stepRelation(step *xpath.Step) (map[xmltree.NodeID]xmltree.NodeSet, error) {
	rel := make(map[xmltree.NodeID]xmltree.NodeSet, ev.doc.Len())
	for i := 0; i < ev.doc.Len(); i++ {
		x := xmltree.NodeID(i)
		s := evalutil.StepCandidates(ev.doc, step.Axis, step.Test, x)
		for _, pred := range step.Preds {
			ordered := evalutil.AxisOrdered(step.Axis, s)
			var keep []xmltree.NodeID
			for j, y := range ordered {
				// Recover ⟨x, idx, size⟩ from the pair ⟨x, y⟩.
				pc := semantics.Context{Node: y, Pos: j + 1, Size: len(ordered)}
				ev.PairsEvaluated++
				v, err := ev.eval(pred, pc)
				if err != nil {
					return nil, err
				}
				if semantics.ToBoolean(v) {
					keep = append(keep, y)
				}
			}
			s = xmltree.NewNodeSet(keep...)
		}
		rel[x] = s
	}
	return rel, nil
}
