package bottomup

import (
	"errors"
	"testing"

	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestFigure6Tables reproduces the context-value tables of Example 6.4
// (Figure 6) for DOC(4).
func TestFigure6Tables(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/><b/><b/></a>`)
	r := d.RootID()
	a := d.DocumentElement()
	kids := d.Children(a)
	b1, b2, b3, b4 := kids[0], kids[1], kids[2], kids[3]
	ev := New(d)

	// E1 = descendant::b.
	e1 := xpath.MustParse("descendant::b")
	tab, err := ev.Table(e1)
	if err != nil {
		t.Fatal(err)
	}
	all := xmltree.NewNodeSet(b1, b2, b3, b4)
	wantE1 := map[xmltree.NodeID]xmltree.NodeSet{
		r: all, a: all, b1: nil, b2: nil, b3: nil, b4: nil,
	}
	for x, want := range wantE1 {
		got, ok := tab[semantics.Context{Node: x, Pos: -1, Size: -1}]
		if !ok {
			t.Fatalf("E1 table missing row for node %d", x)
		}
		if !got.Set.Equal(want) {
			t.Errorf("E↑[[E1]](%d) = %v, want %v", x, got.Set, want)
		}
	}

	// E2 = following-sibling::*[position() != last()] (as a whole step
	// relation we check via the full query).
	q := xpath.MustParse("descendant::b/following-sibling::*[position() != last()]")
	tabQ, err := ev.Table(q)
	if err != nil {
		t.Fatal(err)
	}
	wantQ := map[xmltree.NodeID]xmltree.NodeSet{
		r: xmltree.NewNodeSet(b2, b3), a: xmltree.NewNodeSet(b2, b3),
		b1: nil, b2: nil, b3: nil, b4: nil,
	}
	for x, want := range wantQ {
		got := tabQ[semantics.Context{Node: x, Pos: -1, Size: -1}]
		if !got.Set.Equal(want) {
			t.Errorf("E↑[[Q]](%d) = %v, want %v", x, got.Set, want)
		}
	}
}

// TestPositionLastTables checks E↑[[position()]] and E↑[[last()]]
// (Example 6.4: E5 and E6).
func TestPositionLastTables(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/></a>`)
	ev := New(d)
	tab, err := ev.Table(xpath.MustParse("position()"))
	if err != nil {
		t.Fatal(err)
	}
	// position() has Relev {cp}: one row per position value.
	if len(tab) != d.Len() {
		t.Errorf("position() table has %d rows, want %d", len(tab), d.Len())
	}
	for c, v := range tab {
		if v.Num != float64(c.Pos) {
			t.Errorf("position() at pos %d = %v", c.Pos, v.Num)
		}
	}
	tab, err = ev.Table(xpath.MustParse("last()"))
	if err != nil {
		t.Fatal(err)
	}
	for c, v := range tab {
		if v.Num != float64(c.Size) {
			t.Errorf("last() at size %d = %v", c.Size, v.Num)
		}
	}
}

// TestRelevProjection confirms tables only materialize relevant columns:
// a constant has one row; a node-dependent expression has |dom| rows;
// position() != last() has O(|dom|²) rows.
func TestRelevProjection(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/><b/></a>`) // |dom| = 5
	ev := New(d)
	rows := func(q string) int {
		tab, err := ev.Table(xpath.MustParse(q))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return len(tab)
	}
	if got := rows("1"); got != 1 {
		t.Errorf("constant table rows = %d, want 1", got)
	}
	if got := rows("child::b"); got != d.Len() {
		t.Errorf("path table rows = %d, want %d", got, d.Len())
	}
	n := d.Len()
	if got := rows("position() != last()"); got != n*(n+1)/2 {
		t.Errorf("pos/size table rows = %d, want %d", got, n*(n+1)/2)
	}
}

func TestMaxTableRowsGuard(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/><b/></a>`)
	ev := New(d)
	ev.MaxTableRows = 3
	_, err := ev.Evaluate(xpath.MustParse("//b[position() != last()]"),
		semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err == nil {
		t.Error("expected table-size guard to fire")
	}
	if !errors.Is(err, ErrTableLimit) {
		t.Errorf("err = %v, want errors.Is(err, ErrTableLimit)", err)
	}
	// A limit large enough for the query must not change the result.
	ev.MaxTableRows = d.Len() * d.Len() * d.Len()
	v, err := ev.Evaluate(xpath.MustParse("count(//b[position() != last()])"),
		semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Num != 2 {
		t.Errorf("count = %v, want 2", v.Num)
	}
}

func TestAbsolutePathIgnoresContext(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><c/></a>`)
	ev := New(d)
	e := xpath.MustParse("/descendant::b")
	// Same result from every context node.
	var first xmltree.NodeSet
	for i := 0; i < d.Len(); i++ {
		v, err := ev.Evaluate(e, semantics.Context{Node: xmltree.NodeID(i), Pos: 1, Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = v.Set
		} else if !v.Set.Equal(first) {
			t.Errorf("absolute path varies with context node %d", i)
		}
	}
}
