package bottomup

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/semantics"
	"repro/internal/workload"
	"repro/internal/xpath"
)

// TestEvaluateContextCancelsPromptly cancels a context mid-evaluation
// on a document large enough that the full evaluation takes upward of
// a second (the predicate tabulation is O(|D|²) here) and asserts the
// evaluator returns context.Canceled within the checkpoint latency,
// not after finishing the work. Run under -race in CI.
func TestEvaluateContextCancelsPromptly(t *testing.T) {
	d := workload.Doc(1500)
	e := xpath.MustParse("count(//*[count(preceding::*) > count(following::*)])")
	ev := New(d)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := ev.EvaluateContext(ctx, e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the table build get going
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("evaluation did not return promptly after cancellation")
	}
}

// TestEvaluateContextUncancelled pins down that a context that is never
// cancelled changes nothing about the result.
func TestEvaluateContextUncancelled(t *testing.T) {
	d := workload.Doc(8)
	e := xpath.MustParse("count(//b)")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	v, err := New(d).EvaluateContext(ctx, e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err != nil || v.Num != 8 {
		t.Fatalf("got %v, %v; want 8, nil", v.Num, err)
	}
}
