// Package bottomup implements the bottom-up context-value-table
// evaluation of Section 6 (Definition 6.1, Algorithm 6.3). For every
// node of the query parse tree — visited leaves-first — it materializes
// the complete context-value table E↑[[e]]: the relation associating
// every context ⟨x, k, n⟩ with the value of e in that context. The final
// answer is read out of the root table.
//
// Tables are stored with the column omission the paper itself applies in
// its examples (footnote 8 and Figure 9): columns of the context a
// subexpression provably cannot observe — per the Relev analysis of
// Section 8.2 — are not materialized, and lookups project onto the
// stored columns. Expressions that depend on the full context ⟨x, k, n⟩
// still enumerate O(|D|³) rows, which is the honest cost of Algorithm
// 6.3; the improved engines of Sections 7 and 8 exist precisely to avoid
// it. Use this engine on small documents.
package bottomup

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/evalutil"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ErrTableLimit reports that materializing a context-value table would
// exceed Evaluator.MaxTableRows. Errors returned by Evaluate wrap it,
// so callers detect the condition with errors.Is(err, ErrTableLimit)
// and can fall back to a polynomial-space engine.
var ErrTableLimit = errors.New("context-value table row limit exceeded")

// Evaluator evaluates XPath queries by materializing context-value
// tables bottom-up.
type Evaluator struct {
	doc *xmltree.Document
	// MaxTableRows guards against accidentally materializing huge
	// tables (the |D|³ case on large documents); 0 means unlimited.
	MaxTableRows int

	// cancel is the throttled checkpoint consulted inside every
	// table-materialization loop; nil (the Evaluate path) never fires.
	cancel *evalutil.Canceller
}

// New returns a bottom-up evaluator for the document.
func New(d *xmltree.Document) *Evaluator { return &Evaluator{doc: d} }

// ctxKey is a context projected onto the relevant columns; irrelevant
// columns are fixed sentinels so all contexts agreeing on the relevant
// part share one row.
type ctxKey struct {
	node      xmltree.NodeID
	pos, size int32
}

// table is a context-value table E↑[[e]] (Table III): a relation with a
// functional dependency from context to value, stored sparsely on the
// relevant columns.
type table struct {
	relev xpath.Relev
	vals  map[ctxKey]semantics.Value
}

func (t *table) key(c semantics.Context) ctxKey {
	k := ctxKey{node: xmltree.NilNode, pos: -1, size: -1}
	if t.relev.Has(xpath.RelevNode) {
		k.node = c.Node
	}
	if t.relev.Has(xpath.RelevPos) {
		k.pos = int32(c.Pos)
	}
	if t.relev.Has(xpath.RelevSize) {
		k.size = int32(c.Size)
	}
	return k
}

// get looks up the value of the table's expression in context c.
func (t *table) get(c semantics.Context) (semantics.Value, bool) {
	v, ok := t.vals[t.key(c)]
	return v, ok
}

// Evaluate runs Algorithm 6.3 and reads the result for context c out of
// the root table.
func (ev *Evaluator) Evaluate(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	return ev.EvaluateContext(context.Background(), e, c)
}

// EvaluateContext is Evaluate with cancellation: the table-building
// loops check ctx at throttled checkpoints and abandon the evaluation
// with ctx's error (context.Canceled or DeadlineExceeded) once it is
// done. Table materialization enumerates up to |D|³ contexts, so this
// is the difference between an abandoned request releasing its CPU in
// microseconds and burning minutes.
func (ev *Evaluator) EvaluateContext(ctx context.Context, e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	ev.cancel = evalutil.NewCanceller(ctx)
	t, err := ev.buildTable(e)
	if err != nil {
		return semantics.Value{}, err
	}
	v, ok := t.get(c)
	if !ok {
		return semantics.Value{}, fmt.Errorf("bottomup: context ⟨%d,%d,%d⟩ not covered", c.Node, c.Pos, c.Size)
	}
	return v, nil
}

// Table exposes the complete context-value table of an expression for
// inspection (used by tests reproducing Figures 6 and 9).
func (ev *Evaluator) Table(e xpath.Expr) (map[semantics.Context]semantics.Value, error) {
	t, err := ev.buildTable(e)
	if err != nil {
		return nil, err
	}
	out := make(map[semantics.Context]semantics.Value, len(t.vals))
	for k, v := range t.vals {
		out[semantics.Context{Node: k.node, Pos: int(k.pos), Size: int(k.size)}] = v
	}
	return out, nil
}

// contexts enumerates the projected context domain for a relevance set:
// nodes if cn is relevant, positions 1..|dom| if cp, sizes 1..|dom| if
// cs, with k ≤ n when both are relevant (the domain of contexts C of
// Section 5).
func (ev *Evaluator) contexts(r xpath.Relev) ([]semantics.Context, error) {
	n := ev.doc.Len()
	if err := ev.cancel.CheckN(n); err != nil {
		return nil, err
	}
	nodes := []xmltree.NodeID{xmltree.NilNode}
	if r.Has(xpath.RelevNode) {
		nodes = make([]xmltree.NodeID, n)
		for i := range nodes {
			nodes[i] = xmltree.NodeID(i)
		}
	}
	type ps struct{ p, s int }
	pss := []ps{{-1, -1}}
	switch {
	case r.Has(xpath.RelevPos) && r.Has(xpath.RelevSize):
		pss = nil
		for s := 1; s <= n; s++ {
			for p := 1; p <= s; p++ {
				pss = append(pss, ps{p, s})
			}
		}
	case r.Has(xpath.RelevPos):
		pss = nil
		for p := 1; p <= n; p++ {
			pss = append(pss, ps{p, -1})
		}
	case r.Has(xpath.RelevSize):
		pss = nil
		for s := 1; s <= n; s++ {
			pss = append(pss, ps{-1, s})
		}
	}
	total := len(nodes) * len(pss)
	if ev.MaxTableRows > 0 && total > ev.MaxTableRows {
		return nil, fmt.Errorf("bottomup: table with %d rows exceeds limit %d: %w", total, ev.MaxTableRows, ErrTableLimit)
	}
	out := make([]semantics.Context, 0, total)
	for _, x := range nodes {
		if err := ev.cancel.Check(); err != nil {
			return nil, err
		}
		for _, kn := range pss {
			out = append(out, semantics.Context{Node: x, Pos: kn.p, Size: kn.s})
		}
	}
	return out, nil
}

// buildTable computes E↑[[e]] by first computing the tables of all direct
// subexpressions (the while-loop of Algorithm 6.3 realized as structural
// recursion, which visits parse-tree nodes in a valid bottom-up order).
func (ev *Evaluator) buildTable(e xpath.Expr) (*table, error) {
	relev := xpath.RelevantContext(e)
	switch x := e.(type) {
	case *xpath.Number:
		return ev.constTable(relev, semantics.Number(x.Val))
	case *xpath.Literal:
		return ev.constTable(relev, semantics.String(x.Val))
	case *xpath.VarRef:
		return nil, fmt.Errorf("bottomup: unbound variable $%s", x.Name)
	case *xpath.Negate:
		sub, err := ev.buildTable(x.X)
		if err != nil {
			return nil, err
		}
		return ev.mapTables(relev, []*table{sub}, func(c semantics.Context, vs []semantics.Value) (semantics.Value, error) {
			return semantics.Number(-semantics.ToNumber(ev.doc, vs[0])), nil
		})
	case *xpath.Binary:
		lt, err := ev.buildTable(x.Left)
		if err != nil {
			return nil, err
		}
		rt, err := ev.buildTable(x.Right)
		if err != nil {
			return nil, err
		}
		return ev.mapTables(relev, []*table{lt, rt}, func(c semantics.Context, vs []semantics.Value) (semantics.Value, error) {
			return applyBinary(ev.doc, x.Op, vs[0], vs[1])
		})
	case *xpath.Call:
		subs := make([]*table, len(x.Args))
		for i, a := range x.Args {
			t, err := ev.buildTable(a)
			if err != nil {
				return nil, err
			}
			subs[i] = t
		}
		return ev.mapTables(relev, subs, func(c semantics.Context, vs []semantics.Value) (semantics.Value, error) {
			return semantics.CallFunction(ev.doc, x.Name, c, vs)
		})
	case *xpath.Path:
		return ev.pathTable(x)
	case *xpath.FilterExpr:
		return ev.filterTable(x)
	default:
		return nil, fmt.Errorf("bottomup: unknown expression %T", e)
	}
}

func (ev *Evaluator) constTable(r xpath.Relev, v semantics.Value) (*table, error) {
	t := &table{relev: r, vals: map[ctxKey]semantics.Value{}}
	t.vals[t.key(semantics.Context{Node: xmltree.NilNode, Pos: -1, Size: -1})] = v
	return t, nil
}

// mapTables builds a table for an m-ary operation from its children's
// tables: for every context in the projected domain, child values are
// looked up (each child projecting further onto its own columns) and
// combined. This is the generic
//
//	E↑[[Op(e1,…,em)]] = {⟨c, F[[Op]](v1,…,vm)⟩ | ⟨c,vi⟩ ∈ E↑[[ei]]}
//
// rule of Definition 6.1.
func (ev *Evaluator) mapTables(r xpath.Relev, subs []*table, f func(semantics.Context, []semantics.Value) (semantics.Value, error)) (*table, error) {
	ctxs, err := ev.contexts(r)
	if err != nil {
		return nil, err
	}
	t := &table{relev: r, vals: make(map[ctxKey]semantics.Value, len(ctxs))}
	vs := make([]semantics.Value, len(subs))
	for _, c := range ctxs {
		if err := ev.cancel.Check(); err != nil {
			return nil, err
		}
		for i, sub := range subs {
			v, ok := sub.get(c)
			if !ok {
				return nil, fmt.Errorf("bottomup: child table missing context ⟨%d,%d,%d⟩", c.Node, c.Pos, c.Size)
			}
			vs[i] = v
		}
		v, err := f(c, vs)
		if err != nil {
			return nil, err
		}
		t.vals[t.key(c)] = v
	}
	return t, nil
}

func applyBinary(d *xmltree.Document, op xpath.BinOp, l, r semantics.Value) (semantics.Value, error) {
	switch {
	case op == xpath.OpAnd:
		return semantics.Boolean(semantics.ToBoolean(l) && semantics.ToBoolean(r)), nil
	case op == xpath.OpOr:
		return semantics.Boolean(semantics.ToBoolean(l) || semantics.ToBoolean(r)), nil
	case op == xpath.OpUnion:
		if l.Kind != xpath.TypeNodeSet || r.Kind != xpath.TypeNodeSet {
			return semantics.Value{}, fmt.Errorf("bottomup: | on non-node-sets")
		}
		return semantics.NodeSet(l.Set.Union(r.Set)), nil
	case op.IsRelOp():
		return semantics.Boolean(semantics.Compare(d, op, l, r)), nil
	case op.IsArith():
		return semantics.Number(semantics.Arith(op, semantics.ToNumber(d, l), semantics.ToNumber(d, r))), nil
	default:
		return semantics.Value{}, fmt.Errorf("bottomup: unknown operator %v", op)
	}
}

// stepRelation computes the per-node relation of one location step with
// its predicates applied: rel[x] = filtered {y | x χ y, y ∈ T(t)}. The
// location-step rows of Table IV:
//
//	E↑[[χ::t]]  = {⟨x,k,n, {y | xχy, y∈T(t)}⟩}
//	E↑[[E[e]]] = {⟨x,k,n, {y ∈ S | ⟨y, idx_χ(y,S), |S|, true⟩ ∈ E↑[[e]]}⟩}
func (ev *Evaluator) stepRelation(step *xpath.Step) (map[xmltree.NodeID]xmltree.NodeSet, error) {
	rel := make(map[xmltree.NodeID]xmltree.NodeSet, ev.doc.Len())
	// Predicate tables are built once per predicate (bottom-up!).
	predTables := make([]*table, len(step.Preds))
	for i, p := range step.Preds {
		t, err := ev.buildTable(p)
		if err != nil {
			return nil, err
		}
		predTables[i] = t
	}
	for i := 0; i < ev.doc.Len(); i++ {
		if err := ev.cancel.Check(); err != nil {
			return nil, err
		}
		x := xmltree.NodeID(i)
		s := evalutil.StepCandidates(ev.doc, step.Axis, step.Test, x)
		for _, pt := range predTables {
			ordered := evalutil.AxisOrdered(step.Axis, s)
			var keep []xmltree.NodeID
			for j, y := range ordered {
				c := semantics.Context{Node: y, Pos: j + 1, Size: len(ordered)}
				v, ok := pt.get(c)
				if !ok {
					return nil, fmt.Errorf("bottomup: predicate table missing context")
				}
				if semantics.ToBoolean(v) {
					keep = append(keep, y)
				}
			}
			s = xmltree.NewNodeSet(keep...)
		}
		rel[x] = s
	}
	return rel, nil
}

// pathTable composes step relations per the location-path rows of Table
// IV: composition unions the second relation over the image of the
// first; an absolute path reads its value at the root for all contexts.
func (ev *Evaluator) pathTable(p *xpath.Path) (*table, error) {
	// cur[x] = nodes reachable from x via the steps handled so far.
	cur := make(map[xmltree.NodeID]xmltree.NodeSet, ev.doc.Len())
	switch {
	case p.Filter != nil:
		ft, err := ev.buildTable(p.Filter)
		if err != nil {
			return nil, err
		}
		for i := 0; i < ev.doc.Len(); i++ {
			x := xmltree.NodeID(i)
			v, ok := ft.get(semantics.Context{Node: x, Pos: -1, Size: -1})
			if !ok {
				// Filter may be position-dependent in pathological
				// queries; Algorithm 6.3 as given does not arise there
				// because the paper's normal form keeps heads simple.
				return nil, fmt.Errorf("bottomup: position-dependent path head unsupported")
			}
			if v.Kind != xpath.TypeNodeSet {
				return nil, fmt.Errorf("bottomup: path head is not a node set")
			}
			cur[x] = v.Set
		}
	case p.Absolute:
		for i := 0; i < ev.doc.Len(); i++ {
			cur[xmltree.NodeID(i)] = xmltree.NodeSet{ev.doc.RootID()}
		}
	default:
		for i := 0; i < ev.doc.Len(); i++ {
			x := xmltree.NodeID(i)
			cur[x] = xmltree.NodeSet{x}
		}
	}
	acc := xmltree.NewAccumulator(ev.doc.Len())
	for _, step := range p.Steps {
		rel, err := ev.stepRelation(step)
		if err != nil {
			return nil, err
		}
		next := make(map[xmltree.NodeID]xmltree.NodeSet, len(cur))
		for x, ys := range cur {
			if err := ev.cancel.Check(); err != nil {
				return nil, err
			}
			var u xmltree.NodeSet
			if len(ys) == 1 {
				// Values are treated as immutable, so aliasing the step
				// relation's row is safe and skips the copy.
				u = rel[ys[0]]
			} else if len(ys) > 1 {
				for _, y := range ys {
					acc.Add(rel[y])
				}
				u = acc.Result()
			}
			next[x] = u
		}
		cur = next
	}
	relev := xpath.RelevantContext(p)
	t := &table{relev: relev, vals: make(map[ctxKey]semantics.Value, len(cur))}
	if !relev.Has(xpath.RelevNode) {
		// Absolute path: same value for every context.
		t.vals[t.key(semantics.Context{})] = semantics.NodeSet(cur[ev.doc.RootID()])
		return t, nil
	}
	for x, s := range cur {
		t.vals[t.key(semantics.Context{Node: x})] = semantics.NodeSet(s)
	}
	return t, nil
}

// filterTable evaluates a filter expression (primary + predicates) as a
// table; positions are forward document order.
func (ev *Evaluator) filterTable(f *xpath.FilterExpr) (*table, error) {
	pt, err := ev.buildTable(f.Primary)
	if err != nil {
		return nil, err
	}
	predTables := make([]*table, len(f.Preds))
	for i, p := range f.Preds {
		t, err := ev.buildTable(p)
		if err != nil {
			return nil, err
		}
		predTables[i] = t
	}
	relev := xpath.RelevantContext(f)
	ctxs, err := ev.contexts(relev)
	if err != nil {
		return nil, err
	}
	t := &table{relev: relev, vals: make(map[ctxKey]semantics.Value, len(ctxs))}
	for _, c := range ctxs {
		if err := ev.cancel.Check(); err != nil {
			return nil, err
		}
		v, ok := pt.get(c)
		if !ok {
			return nil, fmt.Errorf("bottomup: filter primary missing context")
		}
		if v.Kind != xpath.TypeNodeSet {
			return nil, fmt.Errorf("bottomup: predicates on %v", v.Kind)
		}
		s := v.Set
		for _, ptab := range predTables {
			var keep []xmltree.NodeID
			for i, y := range s {
				pv, ok := ptab.get(semantics.Context{Node: y, Pos: i + 1, Size: len(s)})
				if !ok {
					return nil, fmt.Errorf("bottomup: filter predicate missing context")
				}
				if semantics.ToBoolean(pv) {
					keep = append(keep, y)
				}
			}
			s = xmltree.NewNodeSet(keep...)
		}
		t.vals[t.key(c)] = semantics.NodeSet(s)
	}
	return t, nil
}
