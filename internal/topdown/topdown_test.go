package topdown

import (
	"testing"

	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func ctxAt(n xmltree.NodeID) semantics.Context {
	return semantics.Context{Node: n, Pos: 1, Size: 1}
}

// TestExample73 walks Example 7.3: evaluating the Example 6.4 query
// top-down over DOC(4).
func TestExample73(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/><b/><b/></a>`)
	a := d.DocumentElement()
	kids := d.Children(a)
	ev := New(d)
	e := xpath.MustParse("descendant::b/following-sibling::*[position() != last()]")
	v, err := ev.Evaluate(e, ctxAt(a))
	if err != nil {
		t.Fatal(err)
	}
	want := xmltree.NewNodeSet(kids[1], kids[2])
	if !v.Set.Equal(want) {
		t.Errorf("query = %v, want %v", v.Set, want)
	}
}

// TestExample72Shape runs the Example 7.2 query, which mixes an
// outer positional predicate with nested paths and count().
func TestExample72Shape(t *testing.T) {
	d := xmltree.MustParseString(
		`<r><a><b><c/></b><d/></a><a><d/></a><a><b><c/><c/></b></a></r>`)
	ev := New(d)
	e := xpath.MustParse("/descendant::a[count(descendant::b/child::c) + position() < last()]/child::d")
	v, err := ev.Evaluate(e, ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	// First a: count(c)=1, pos=1, last=3 → 2 < 3 true → contributes d.
	// Second a: count=0, pos=2 → 2 < 3 true → contributes its d.
	// Third a: count=2, pos=3 → 5 < 3 false.
	if len(v.Set) != 2 {
		t.Errorf("result = %v, want the two d children", v.Set)
	}
}

// TestVectorSharing checks that evaluating a path for many contexts in
// one vector gives the same answers as evaluating per context.
func TestVectorSharing(t *testing.T) {
	d := xmltree.MustParseString(`<a><b><c/></b><b/><b><c/><c/></b></a>`)
	ev := New(d)
	p := xpath.MustParse("child::c")
	var ctxs []semantics.Context
	for i := 0; i < d.Len(); i++ {
		ctxs = append(ctxs, ctxAt(xmltree.NodeID(i)))
	}
	vec, err := ev.evalVector(p, ctxs)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range ctxs {
		single, err := ev.Evaluate(p, c)
		if err != nil {
			t.Fatal(err)
		}
		if !vec[i].Set.Equal(single.Set) {
			t.Errorf("context %d: vector %v != single %v", i, vec[i].Set, single.Set)
		}
	}
}

// TestPredicateContextDedup ensures positions are computed per
// previous-context-node candidate set, not globally.
func TestPredicateContextDedup(t *testing.T) {
	// Two b parents with different numbers of c children: [2] must
	// select the second c *within each parent*.
	d := xmltree.MustParseString(`<a><b><c/><c/></b><b><c/><c/><c/></b></a>`)
	ev := New(d)
	v, err := ev.Evaluate(xpath.MustParse("//b/c[2]"), ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 2 {
		t.Errorf("//b/c[2] = %v, want one node per parent", v.Set)
	}
	// [last()] likewise.
	v, err = ev.Evaluate(xpath.MustParse("//b/c[last()]"), ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 2 {
		t.Errorf("//b/c[last()] = %v, want 2 nodes", v.Set)
	}
}

// TestReverseAxisPositions checks <doc,χ ordering: positions on
// reverse axes count backwards in document order.
func TestReverseAxisPositions(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/><b/></a>`)
	kids := d.Children(d.DocumentElement())
	ev := New(d)
	// preceding-sibling::b[1] of the last b is its nearest preceding
	// sibling, i.e. the second b.
	v, err := ev.Evaluate(xpath.MustParse("preceding-sibling::b[1]"),
		semantics.Context{Node: kids[2], Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 1 || v.Set[0] != kids[1] {
		t.Errorf("preceding-sibling::b[1] = %v, want %v", v.Set, kids[1])
	}
	// ancestor-or-self::*[1] is the element itself.
	v, err = ev.Evaluate(xpath.MustParse("ancestor-or-self::*[1]"),
		semantics.Context{Node: kids[0], Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 1 || v.Set[0] != kids[0] {
		t.Errorf("ancestor-or-self::*[1] = %v, want self", v.Set)
	}
}

func TestErrorPropagation(t *testing.T) {
	d := xmltree.MustParseString(`<a/>`)
	ev := New(d)
	if _, err := ev.Evaluate(&xpath.VarRef{Name: "x"}, ctxAt(d.RootID())); err == nil {
		t.Error("unbound variable must error")
	}
}
