package topdown

import (
	"testing"

	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/workload"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestVectorizedOperators exercises Op⟨⟩ for every operator class over
// multi-context vectors.
func TestVectorizedOperators(t *testing.T) {
	d := xmltree.MustParseString(`<a><b>1</b><b>2</b><b>3</b></a>`)
	ev := New(d)
	kids := d.Children(d.DocumentElement())
	var ctxs []semantics.Context
	for i, k := range kids {
		ctxs = append(ctxs, semantics.Context{Node: k, Pos: i + 1, Size: len(kids)})
	}
	cases := map[string][]float64{
		"position() + last()":        {4, 5, 6},
		"position() * 2":             {2, 4, 6},
		"number(string(.))":          {1, 2, 3},
		"position() mod 2":           {1, 0, 1},
		"-position()":                {-1, -2, -3},
		"count(self::b) + number(.)": {2, 3, 4},
	}
	for q, want := range cases {
		vs, err := ev.evalVector(xpath.MustParse(q), ctxs)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for i := range want {
			if vs[i].Num != want[i] {
				t.Errorf("%s at slot %d = %v, want %v", q, i, vs[i].Num, want[i])
			}
		}
	}
	// Boolean and comparison vectors.
	bq := "position() != last() and . > 0"
	vs, err := ev.evalVector(xpath.MustParse(bq), ctxs)
	if err != nil {
		t.Fatal(err)
	}
	wantB := []bool{true, true, false}
	for i := range wantB {
		if vs[i].Bool != wantB[i] {
			t.Errorf("%s at %d = %v, want %v", bq, i, vs[i].Bool, wantB[i])
		}
	}
	// Union vectors.
	vs, err = ev.evalVector(xpath.MustParse("self::b | following-sibling::b"), ctxs)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs[0].Set) != 3 || len(vs[2].Set) != 1 {
		t.Errorf("union vector sizes: %d, %d", len(vs[0].Set), len(vs[2].Set))
	}
}

// TestDeepNestingPolynomial: the Experiment 2 family at |Q| = 50 must
// complete quickly even on a larger document — the Table VII headline.
func TestDeepNestingPolynomial(t *testing.T) {
	d := workload.DocPrime(100)
	ev := New(d)
	e := xpath.MustParse(workload.Exp2Query(50))
	v, err := ev.Evaluate(e, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All 100 b elements satisfy the nested condition (their text is c).
	if len(v.Set) != 100 {
		t.Errorf("result = %d nodes, want 100", len(v.Set))
	}
}

// TestAgainstNaivePerContext compares vectorized evaluation against the
// reference engine context-by-context on mixed queries.
func TestAgainstNaivePerContext(t *testing.T) {
	d := xmltree.MustParseString(
		`<r><a><b>x</b></a><a><b>y</b><b>x</b></a><c/></r>`)
	nv := naive.New(d)
	td := New(d)
	queries := []string{
		"count(child::b[. = 'x'])",
		"string(child::b[last()])",
		"boolean(following-sibling::*)",
		"child::b[. = 'x'] | child::b[. = 'y']",
	}
	for _, q := range queries {
		e := xpath.MustParse(q)
		for i := 0; i < d.Len(); i++ {
			ctx := semantics.Context{Node: xmltree.NodeID(i), Pos: 1, Size: 1}
			want, err := nv.Evaluate(e, ctx)
			if err != nil {
				t.Fatal(err)
			}
			got, err := td.Evaluate(e, ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("%s at node %d: topdown %+v, naive %+v", q, i, got, want)
			}
		}
	}
}
