// Package topdown implements the polynomial-time top-down XPath
// evaluator of Section 7: the vectorized semantics functions S↓ (for
// location paths, Figure 7) and E↓ (for arbitrary expressions,
// Definition 7.1). A location path is evaluated once for a whole vector
// of context-node sets, and a predicate once for a whole list of
// deduplicated contexts, so no (subexpression, context) pair is ever
// evaluated twice. This realizes the context-value-table principle while
// computing far fewer useless intermediate results than the bottom-up
// Algorithm 6.3, and carries the improved bounds of Remark 6.7:
// O(|D|⁴·|Q|²) time and O(|D|³·|Q|²) space.
//
// This engine is the reproduction of the paper's own "XMLTaskforce"
// prototype benchmarked against IE6 in Table VII.
package topdown

import (
	"context"
	"fmt"

	"repro/internal/evalutil"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Evaluator evaluates XPath queries over one document.
type Evaluator struct {
	doc *xmltree.Document

	// cancel is the throttled cancellation checkpoint consulted on
	// every vectorized evaluation step; nil (the Evaluate path) never
	// fires.
	cancel *evalutil.Canceller
}

// New returns a top-down evaluator for the document.
func New(d *xmltree.Document) *Evaluator { return &Evaluator{doc: d} }

// Evaluate computes the value of e for a single context. Internally the
// whole evaluation is vectorized; the top-level vector has length one.
func (ev *Evaluator) Evaluate(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	return ev.EvaluateContext(context.Background(), e, c)
}

// EvaluateContext is Evaluate with cancellation: the vectorized
// recursion and its per-context-node loops check ctx at throttled
// checkpoints and abandon the evaluation with ctx's error once it is
// done.
func (ev *Evaluator) EvaluateContext(ctx context.Context, e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	ev.cancel = evalutil.NewCanceller(ctx)
	vs, err := ev.evalVector(e, []semantics.Context{c})
	if err != nil {
		return semantics.Value{}, err
	}
	return vs[0], nil
}

// evalVector is E↓: it maps a list of contexts to a list of values, one
// per context (Definition 7.1).
func (ev *Evaluator) evalVector(e xpath.Expr, ctxs []semantics.Context) ([]semantics.Value, error) {
	if err := ev.cancel.Check(); err != nil {
		return nil, err
	}
	out := make([]semantics.Value, len(ctxs))
	switch x := e.(type) {
	case *xpath.Number:
		for i := range out {
			out[i] = semantics.Number(x.Val)
		}
		return out, nil
	case *xpath.Literal:
		for i := range out {
			out[i] = semantics.String(x.Val)
		}
		return out, nil
	case *xpath.VarRef:
		return nil, fmt.Errorf("topdown: unbound variable $%s", x.Name)
	case *xpath.Negate:
		vs, err := ev.evalVector(x.X, ctxs)
		if err != nil {
			return nil, err
		}
		for i, v := range vs {
			out[i] = semantics.Number(-semantics.ToNumber(ev.doc, v))
		}
		return out, nil
	case *xpath.Binary:
		return ev.evalBinaryVector(x, ctxs)
	case *xpath.Call:
		return ev.evalCallVector(x, ctxs)
	case *xpath.Path:
		// E↓[[π]](c1,…,cl) = S↓[[π]]({x1},…,{xl}).
		inputs := make([]xmltree.NodeSet, len(ctxs))
		for i, c := range ctxs {
			inputs[i] = xmltree.NodeSet{c.Node}
		}
		sets, err := ev.evalPathVector(x, ctxs, inputs)
		if err != nil {
			return nil, err
		}
		for i, s := range sets {
			out[i] = semantics.NodeSet(s)
		}
		return out, nil
	case *xpath.FilterExpr:
		sets, err := ev.evalFilterVector(x, ctxs)
		if err != nil {
			return nil, err
		}
		for i, s := range sets {
			out[i] = semantics.NodeSet(s)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("topdown: unknown expression %T", e)
	}
}

// evalBinaryVector applies a vectorized operator Op⟨⟩ (Section 7).
func (ev *Evaluator) evalBinaryVector(b *xpath.Binary, ctxs []semantics.Context) ([]semantics.Value, error) {
	ls, err := ev.evalVector(b.Left, ctxs)
	if err != nil {
		return nil, err
	}
	rs, err := ev.evalVector(b.Right, ctxs)
	if err != nil {
		return nil, err
	}
	out := make([]semantics.Value, len(ctxs))
	for i := range ctxs {
		l, r := ls[i], rs[i]
		switch {
		case b.Op == xpath.OpAnd:
			out[i] = semantics.Boolean(semantics.ToBoolean(l) && semantics.ToBoolean(r))
		case b.Op == xpath.OpOr:
			out[i] = semantics.Boolean(semantics.ToBoolean(l) || semantics.ToBoolean(r))
		case b.Op == xpath.OpUnion:
			if l.Kind != xpath.TypeNodeSet || r.Kind != xpath.TypeNodeSet {
				return nil, fmt.Errorf("topdown: | on non-node-sets")
			}
			out[i] = semantics.NodeSet(l.Set.Union(r.Set))
		case b.Op.IsRelOp():
			out[i] = semantics.Boolean(semantics.Compare(ev.doc, b.Op, l, r))
		case b.Op.IsArith():
			out[i] = semantics.Number(semantics.Arith(b.Op,
				semantics.ToNumber(ev.doc, l), semantics.ToNumber(ev.doc, r)))
		default:
			return nil, fmt.Errorf("topdown: unknown operator %v", b.Op)
		}
	}
	return out, nil
}

func (ev *Evaluator) evalCallVector(call *xpath.Call, ctxs []semantics.Context) ([]semantics.Value, error) {
	argv := make([][]semantics.Value, len(call.Args))
	for i, a := range call.Args {
		vs, err := ev.evalVector(a, ctxs)
		if err != nil {
			return nil, err
		}
		argv[i] = vs
	}
	out := make([]semantics.Value, len(ctxs))
	args := make([]semantics.Value, len(call.Args))
	for i, c := range ctxs {
		if err := ev.cancel.Check(); err != nil {
			return nil, err
		}
		for j := range argv {
			args[j] = argv[j][i]
		}
		v, err := semantics.CallFunction(ev.doc, call.Name, c, args)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// evalPathVector is S↓ (Figure 7): given one input node set per vector
// slot, it returns the nodes reachable via the path, per slot. ctxs is
// carried along only for a filter-expression head, whose value may
// depend on the original contexts.
func (ev *Evaluator) evalPathVector(p *xpath.Path, ctxs []semantics.Context, inputs []xmltree.NodeSet) ([]xmltree.NodeSet, error) {
	cur := inputs
	switch {
	case p.Filter != nil:
		vs, err := ev.evalVector(p.Filter, ctxs)
		if err != nil {
			return nil, err
		}
		cur = make([]xmltree.NodeSet, len(vs))
		for i, v := range vs {
			if v.Kind != xpath.TypeNodeSet {
				return nil, fmt.Errorf("topdown: path head is not a node set")
			}
			cur[i] = v.Set
		}
	case p.Absolute:
		// S↓[[/π]](X1,…,Xk) = S↓[[π]]({root},…,{root}).
		cur = make([]xmltree.NodeSet, len(inputs))
		for i := range cur {
			cur[i] = xmltree.NodeSet{ev.doc.RootID()}
		}
	}
	for _, step := range p.Steps {
		next, err := ev.evalStepVector(step, cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// evalFilterVector evaluates a filter expression (primary + predicates)
// for each context, batching predicate evaluation across the vector.
func (ev *Evaluator) evalFilterVector(f *xpath.FilterExpr, ctxs []semantics.Context) ([]xmltree.NodeSet, error) {
	vs, err := ev.evalVector(f.Primary, ctxs)
	if err != nil {
		return nil, err
	}
	sets := make([]xmltree.NodeSet, len(vs))
	for i, v := range vs {
		if v.Kind != xpath.TypeNodeSet {
			return nil, fmt.Errorf("topdown: predicates on %v", v.Kind)
		}
		sets[i] = v.Set
	}
	for _, pred := range f.Preds {
		// Collect the deduplicated contexts across all slots; filter
		// expressions use forward (document-order) positions.
		var predCtxs []semantics.Context
		index := map[semantics.Context]int{}
		for _, s := range sets {
			for i, y := range s {
				c := semantics.Context{Node: y, Pos: i + 1, Size: len(s)}
				if _, ok := index[c]; !ok {
					index[c] = len(predCtxs)
					predCtxs = append(predCtxs, c)
				}
			}
		}
		if len(predCtxs) == 0 {
			continue
		}
		rs, err := ev.evalVector(pred, predCtxs)
		if err != nil {
			return nil, err
		}
		for si, s := range sets {
			var keep xmltree.NodeSet
			for i, y := range s {
				c := semantics.Context{Node: y, Pos: i + 1, Size: len(s)}
				if semantics.ToBoolean(rs[index[c]]) {
					keep = append(keep, y)
				}
			}
			sets[si] = keep
		}
	}
	return sets, nil
}

// evalStepVector implements the location-step case of Figure 7:
//
//	S := {⟨x,y⟩ | x ∈ ⋃Xi, x χ y, y ∈ T(t)}
//	for each predicate e (in order):
//	    CtS(x,y) := ⟨y, idx_χ(y, Sx), |Sx|⟩
//	    T := deduplicated contexts; r := E↓[[e]](T)
//	    S := {⟨x,y⟩ ∈ S | r at CtS(x,y) is true}
//	Ri := {y | ⟨x,y⟩ ∈ S, x ∈ Xi}
//
// The pair relation is grouped by previous context node x, which is
// exactly the Remark 6.7 representation of contexts as
// previous/current-node pairs.
func (ev *Evaluator) evalStepVector(step *xpath.Step, inputs []xmltree.NodeSet) ([]xmltree.NodeSet, error) {
	// ⋃Xi
	eq := allEqual(inputs)
	var union xmltree.NodeSet
	if eq {
		union = inputs[0]
	} else {
		acc := xmltree.NewAccumulator(ev.doc.Len())
		for _, x := range inputs {
			acc.Add(x)
		}
		union = acc.Result()
	}
	if len(union) == 0 {
		return make([]xmltree.NodeSet, len(inputs)), nil
	}

	// Fast path: no predicates means Ri = χ(Xi) ∩ T(t); when all input
	// slots are identical we can evaluate once.
	if len(step.Preds) == 0 {
		out := make([]xmltree.NodeSet, len(inputs))
		if eq {
			r := evalutil.StepCandidatesSet(ev.doc, step.Axis, step.Test, union)
			for i := range out {
				out[i] = r.Clone()
			}
			return out, nil
		}
		for i, xi := range inputs {
			if err := ev.cancel.Check(); err != nil {
				return nil, err
			}
			out[i] = evalutil.StepCandidatesSet(ev.doc, step.Axis, step.Test, xi)
		}
		return out, nil
	}

	// General case with predicates: group candidates per context node.
	sx := make(map[xmltree.NodeID]xmltree.NodeSet, len(union))
	for _, x := range union {
		if err := ev.cancel.Check(); err != nil {
			return nil, err
		}
		sx[x] = evalutil.StepCandidates(ev.doc, step.Axis, step.Test, x)
	}
	for _, pred := range step.Preds {
		var predCtxs []semantics.Context
		index := map[semantics.Context]int{}
		for _, x := range union {
			if err := ev.cancel.Check(); err != nil {
				return nil, err
			}
			ordered := evalutil.AxisOrdered(step.Axis, sx[x])
			for i, y := range ordered {
				c := semantics.Context{Node: y, Pos: i + 1, Size: len(ordered)}
				if _, ok := index[c]; !ok {
					index[c] = len(predCtxs)
					predCtxs = append(predCtxs, c)
				}
			}
		}
		if len(predCtxs) == 0 {
			break
		}
		rs, err := ev.evalVector(pred, predCtxs)
		if err != nil {
			return nil, err
		}
		for _, x := range union {
			if err := ev.cancel.Check(); err != nil {
				return nil, err
			}
			ordered := evalutil.AxisOrdered(step.Axis, sx[x])
			var keep []xmltree.NodeID
			for i, y := range ordered {
				c := semantics.Context{Node: y, Pos: i + 1, Size: len(ordered)}
				if semantics.ToBoolean(rs[index[c]]) {
					keep = append(keep, y)
				}
			}
			sx[x] = xmltree.NewNodeSet(keep...)
		}
	}
	// Distribute: Ri = ⋃{Sx | x ∈ Xi}.
	out := make([]xmltree.NodeSet, len(inputs))
	acc := xmltree.NewAccumulator(ev.doc.Len())
	for i, xi := range inputs {
		var r xmltree.NodeSet
		if len(xi) == 1 {
			r = sx[xi[0]]
		} else if len(xi) > 1 {
			for _, x := range xi {
				acc.Add(sx[x])
			}
			r = acc.Result()
		}
		out[i] = r
	}
	return out, nil
}

func allEqual(sets []xmltree.NodeSet) bool {
	for i := 1; i < len(sets); i++ {
		if !sets[i].Equal(sets[0]) {
			return false
		}
	}
	return true
}
