// Fixture for the metricname analyzer: registration calls on the real
// repro/internal/obs.Registry, so the receiver-type matching is the
// same one the production run does.
package metricname

import "repro/internal/obs"

const help = "fixture help text"

// namePrefix feeds the constant-concatenation case: still a
// compile-time constant, so still checkable.
const namePrefix = "fixture_"

func good(reg *obs.Registry) {
	reg.Counter("fixture_queries_total", help)
	reg.Gauge("fixture_inflight", help)
	reg.Histogram("fixture_query_seconds", help, nil)
	reg.CounterVec("fixture_http_requests_total", help, "path", "method")
	reg.HistogramVec("fixture_stage_seconds", help, nil, "stage")
	reg.CounterFunc(namePrefix+"hits_total", help, func() float64 { return 0 })
	reg.GaugeFunc("fixture_peers", help, func() float64 { return 0 })
}

func badCase(reg *obs.Registry) {
	reg.Counter("FixtureQueriesTotal", help) // want `metric name "FixtureQueriesTotal" is not snake_case`
}

func badDynamic(reg *obs.Registry, name string) {
	reg.Counter(name, help) // want `metric name passed to Registry.Counter is not a compile-time constant string`
}

func badDuplicate(reg *obs.Registry) {
	reg.Gauge("fixture_inflight", help) // want `duplicate metric name "fixture_inflight"`
}

func badLabelCase(reg *obs.Registry) {
	reg.CounterVec("fixture_errors_total", help, "Path") // want `label name "Path" is not snake_case`
}

func badLabelDynamic(reg *obs.Registry, label string) {
	reg.HistogramVec("fixture_wait_seconds", help, nil, label) // want `label name passed to Registry.HistogramVec is not a compile-time constant string`
}

// plannerStyle mirrors the planner's registration pattern: one labeled
// decision family plus Func-backed counters and a gauge reading atomic
// state — all checkable constants.
func plannerStyle(reg *obs.Registry) {
	reg.CounterVec("fixture_planner_decisions_total", help, "strategy")
	reg.CounterFunc("fixture_planner_explore_total", help, func() float64 { return 0 })
	reg.CounterFunc("fixture_planner_bans_total", help, func() float64 { return 0 })
	reg.CounterFunc("fixture_planner_wins_total", help, func() float64 { return 0 })
	reg.GaugeFunc("fixture_planner_classes", help, func() float64 { return 0 })
}

func badPlannerCase(reg *obs.Registry) {
	reg.CounterFunc("fixture_plannerBans_total", help, func() float64 { return 0 }) // want `metric name "fixture_plannerBans_total" is not snake_case`
}

// A spread label slice is invisible to the analyzer: the metric name
// is still checked, the labels are not.
func spreadLabels(reg *obs.Registry, labels []string) {
	reg.CounterVec("fixture_spread_total", help, labels...)
}

// A suppressed duplicate: the shared-instrument pattern is sometimes
// deliberate (two handlers feeding one counter family).
func sharedOnPurpose(reg *obs.Registry) {
	//lint:ignore metricname both handlers feed the one queries family
	reg.Counter("fixture_queries_total", help)
}
