// Fixture for the ctxhttp analyzer. The package is named "cluster" to
// exercise the stricter rule there: any context.Background outside
// main detaches a cluster call from every caller.
package cluster

import (
	"context"
	"net/http"
	"time"
)

// Seeded violation: a context-free request helper.
func fetch(url string) {
	http.Get(url) // want `http.Get sends a request with no context`
}

// Seeded violation: context-free request construction.
func build(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want `http.NewRequest builds a context-free request`
}

// Seeded violation: the default client never times out.
func send(req *http.Request) (*http.Response, error) {
	return http.DefaultClient.Do(req) // want `http.DefaultClient has no timeout`
}

// Seeded violation: a client literal without a Timeout.
func client() *http.Client {
	return &http.Client{Transport: http.DefaultTransport} // want `http.Client built without a Timeout`
}

func clientWithTimeout() *http.Client {
	return &http.Client{Timeout: 5 * time.Second}
}

// Seeded violation: discarding the caller's context.
func discard(ctx context.Context, req *http.Request) (*http.Response, error) {
	c, cancel := context.WithTimeout(context.Background(), time.Second) // want `context.Background discards the context this function was handed`
	defer cancel()
	return clientWithTimeout().Do(req.WithContext(c))
}

// The right shape: derive from the caller's context.
func derive(ctx context.Context, req *http.Request) (*http.Response, error) {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return clientWithTimeout().Do(req.WithContext(c))
}

// Seeded violation: in the cluster layer even a context-less function
// may not detach from its callers.
func detached() context.Context {
	return context.Background() // want `context.Background in the cluster layer detaches this call`
}

// func main is the one place a background root belongs.
func main() {
	_ = context.Background()
}
