// Fixture for the wiretag analyzer. The package is named "serve"
// because the analyzer only patrols the wire packages (serve,
// cluster).
package serve

type response struct {
	Query   string `json:"query"`
	Version uint64 `json:"version,omitempty"`
	Status  string // want `exported field Status of a wire struct has no json tag`
	hidden  int
}

// An embedded field is exempt: its own fields carry the tags.
type line struct {
	Index int `json:"index"`
	response
}

type plain struct { // no json tags anywhere: not a wire struct
	Name  string
	Count int
}

func makeGood(v uint64) response {
	return response{Query: "q", Version: v}
}

// Seeded violation: a keyed wire-struct literal that drops Version.
func makeBad() response {
	return response{Query: "q"} // want `response literal drops the Version field`
}

// A later explicit assignment satisfies the rule.
func makeAssigned(v uint64) response {
	r := response{Query: "q"}
	r.Version = v
	return r
}

// The embedded form carries no direct Version field: the inner
// literal is where the rule applies.
func makeLine(v uint64) line {
	return line{Index: 1, response: response{Query: "q", Version: v}}
}

func usePlain() plain {
	return plain{Name: "n", Count: 2}
}

func useHidden() response {
	r := response{Query: "q", Version: 1}
	r.hidden++
	return r
}
