// Fixture for the lockshard analyzer: fields declared after a
// sync.Mutex/RWMutex are guarded by it.
package lockshard

import "sync"

type cache struct {
	name string // before the mutex: unguarded

	mu    sync.Mutex
	items map[string]int
	bytes int64
}

// Correct: read under the lock, released by defer.
func (c *cache) get(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.items[k]
}

// Unguarded fields stay free.
func (c *cache) title() string { return c.name }

// Seeded violation: read without the lock.
func (c *cache) badRead(k string) int {
	return c.items[k] // want `read of c.items without holding c.mu`
}

// Seeded violation: the lock was already released.
func (c *cache) badWrite(k string, v int) {
	c.mu.Lock()
	c.mu.Unlock()
	c.items[k] = v // want `write to c.items without holding c.mu`
}

// Seeded violation: the classic defer-before-Lock ordering bug.
func (c *cache) deferBeforeLock() {
	defer c.mu.Unlock() // want `deferred Unlock of c.mu while the lock is not held`
	c.mu.Lock()
	c.bytes++
}

// The *Locked naming convention: the caller holds the lock.
func (c *cache) putLocked(k string, v int) {
	c.items[k] = v
}

// Constructor-fresh values are exempt: nothing else can see c yet.
func newCache() *cache {
	c := &cache{}
	c.items = map[string]int{}
	return c
}

type counter struct {
	mu   sync.RWMutex
	hits int
}

// Correct: read under the read lock.
func (r *counter) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hits
}

// Seeded violation: a write needs the write lock, not RLock.
func (r *counter) badWriteUnderRLock() {
	r.mu.RLock()
	r.hits++ // want `write to r.hits without holding r.mu`
	r.mu.RUnlock()
}
