// Fixture for the retryloop analyzer: peer-iteration loops re-issuing
// cluster.Node requests, with and without the resilience discipline.
package retryloop

import (
	"context"
	"errors"

	"repro/internal/cluster"
	"repro/internal/resilience"
)

// Seeded violation: a naked failover chain — each dead peer is hit
// back-to-back with no backoff and no budget.
func inventory(ctx context.Context, peers []*cluster.Node) map[string]uint64 {
	out := map[string]uint64{}
	for _, n := range peers {
		docs, err := n.Documents(ctx) // want `peer loop re-issues Node\.Documents with no resilience discipline`
		if err != nil {
			continue
		}
		for _, d := range docs {
			out[d.Name] = d.Version
		}
	}
	return out
}

// Seeded violation: two naked attempts in one loop body.
func firstAnswer(ctx context.Context, peers []*cluster.Node, doc, q string) (map[string]any, error) {
	for _, n := range peers {
		if _, err := n.GetDocument(ctx, doc); err != nil { // want `peer loop re-issues Node\.GetDocument with no resilience discipline`
			continue
		}
		if _, res, err := n.Query(ctx, doc, q, false); err == nil { // want `peer loop re-issues Node\.Query with no resilience discipline`
			return res, nil
		}
	}
	return nil, errors.New("no peer answered")
}

// Exempt by direct reference: attempts ride resilience.Retry, so the
// chain is spaced and budgeted.
func resilientInventory(ctx context.Context, peers []*cluster.Node, b *resilience.Backoff) map[string]uint64 {
	out := map[string]uint64{}
	for _, n := range peers {
		err := resilience.Retry(ctx, 2, b, func(actx context.Context) error {
			docs, lerr := n.Documents(actx)
			if lerr != nil {
				return lerr
			}
			for _, d := range docs {
				out[d.Name] = d.Version
			}
			return nil
		}, func(error) bool { return true })
		if err != nil {
			continue
		}
	}
	return out
}

// pace is a resilient helper: it references the resilience package.
func pace(ctx context.Context, b *resilience.Backoff, attempt int) error {
	return resilience.Sleep(ctx, b.Delay(attempt))
}

// Exempt by the transitive fixpoint: the discipline lives in the
// same-package pace helper.
func pacedProbe(ctx context.Context, peers []*cluster.Node, b *resilience.Backoff) int {
	healthy := 0
	for i, n := range peers {
		if err := pace(ctx, b, i); err != nil {
			break
		}
		if n.Healthz(ctx) == nil {
			healthy++
		}
	}
	return healthy
}

// Not flagged: requests inside a function literal are the concurrent
// fan-out shape — one probe per peer, not a failover chain.
func fanOut(ctx context.Context, peers []*cluster.Node) {
	for _, n := range peers {
		go func(n *cluster.Node) {
			_ = n.Healthz(ctx)
		}(n)
	}
}

// Not flagged: the receiver is a fixed node, not the range variable —
// iterating documents against one peer is not a retry chain.
func oneNode(ctx context.Context, n *cluster.Node, docs []string) {
	for _, doc := range docs {
		_, _ = n.GetDocument(ctx, doc)
	}
}

// Not flagged: non-request methods on the range variable are free.
func names(peers []*cluster.Node) []string {
	var out []string
	for _, n := range peers {
		out = append(out, n.Name())
	}
	return out
}
