// Fixture for the sharedset analyzer: posting lists handed out by
// xmltree.Index are shared and must not be mutated; pooled scratch
// must not escape its evaluation.
package sharedset

import "repro/internal/xmltree"

type holder struct {
	scratch *xmltree.Scratch
	work    []xmltree.NodeID
}

// Seeded violation: Normalized sorts the shared posting list in place.
func mutateInPlace(d *xmltree.Document) xmltree.NodeSet {
	s := d.Index().Named("a")
	return s.Normalized() // want `Normalized mutates in place a shared posting list`
}

// Taint flows through a NamedRange sub-slice and a re-slice.
func mutateRange(d *xmltree.Document) xmltree.NodeSet {
	s := d.Index().NamedRange("a", 0, 100)
	t := s[1:]
	return t.Reversed() // want `Reversed mutates in place a shared posting list`
}

// Seeded violation: append may write the shared backing array.
func appendShared(d *xmltree.Document, n xmltree.NodeID) xmltree.NodeSet {
	s := d.Index().Named("a")
	return append(s, n) // want `append to a shared posting list`
}

// Seeded violation: element assignment into the shared list.
func stompElement(d *xmltree.Document) {
	s := d.Index().Named("a")
	s[0] = 0 // want `element assignment into a shared posting list`
}

// Seeded violation: IntersectSet writes its destination argument.
func intersectInto(d *xmltree.Document, b *xmltree.Bitset) xmltree.NodeSet {
	s := d.Index().Named("a")
	return b.IntersectSet(s, s) // want `shared posting list used as IntersectSet's destination`
}

// Clone launders the taint: a fresh copy is mutable.
func cloneThenMutate(d *xmltree.Document) xmltree.NodeSet {
	s := d.Index().Named("a").Clone()
	return s.Normalized()
}

// Reassignment from an untainted value kills the taint.
func retainted(d *xmltree.Document) xmltree.NodeSet {
	s := d.Index().Named("a")
	s = xmltree.NodeSet{1, 2, 3}
	return s.Normalized()
}

// Seeded violation: scratch stored into a struct field escapes the
// evaluation that acquired it.
func (h *holder) keepScratch(d *xmltree.Document) {
	sc := d.Index().AcquireScratch()
	h.scratch = sc // want `pooled scratch stored into a struct field`
	d.Index().ReleaseScratch(sc)
}

// Seeded violation: a field of the scratch shares its lifetime.
func (h *holder) keepScratchField(d *xmltree.Document) {
	sc := d.Index().AcquireScratch()
	h.work = sc.Work // want `pooled scratch stored into a struct field`
	d.Index().ReleaseScratch(sc)
}

// Seeded violation: returned scratch outlives its release.
func leakScratch(d *xmltree.Document) *xmltree.Scratch {
	sc := d.Index().AcquireScratch()
	defer d.Index().ReleaseScratch(sc)
	return sc // want `pooled scratch returned from the function`
}

// Local use with release is the intended shape.
func useScratch(d *xmltree.Document, set xmltree.NodeSet) int {
	sc := d.Index().AcquireScratch()
	defer d.Index().ReleaseScratch(sc)
	n := 0
	for _, id := range set {
		if !sc.Visited.Has(id) {
			sc.Visited.Add(id)
			n++
		}
	}
	for _, id := range set {
		sc.Visited.Remove(id)
	}
	return n
}
