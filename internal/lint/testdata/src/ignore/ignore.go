// Fixture for the lint runner's //lint:ignore handling. The ctxhttp
// violations here are deliberate: the directives around them exercise
// same-line suppression, line-above suppression, the `*` wildcard,
// the malformed form (no reason), and the unused form (nothing left
// to suppress).
package ignore

import "net/http"

// A directive on the flagged line suppresses the finding.
func sameLine(url string) {
	http.Get(url) //lint:ignore ctxhttp fixture: suppressed on the same line
}

// A directive on the line immediately above suppresses the finding.
func lineAbove(url string) {
	//lint:ignore ctxhttp fixture: suppressed from the line above
	http.Get(url)
}

// A wildcard directive suppresses findings from any analyzer.
func wildcard(url string) {
	//lint:ignore * fixture: wildcard suppression
	http.Get(url)
}

// No directive: the finding survives.
func surviving(url string) {
	http.Get(url) // marker: surviving
}

// A directive without a reason is malformed — reported itself, and it
// suppresses nothing, so the finding below survives too.
func malformed(url string) {
	//lint:ignore ctxhttp
	http.Get(url) // marker: after-malformed
}

// A directive with nothing to suppress is reported as unused.
func stale() int {
	//lint:ignore ctxhttp fixture: stale directive
	return http.StatusOK
}
