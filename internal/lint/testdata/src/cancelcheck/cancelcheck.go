// Fixture for the cancelcheck analyzer: document-sized loops in code
// that has a Canceller in scope must hit a checkpoint on the loop path.
package cancelcheck

import (
	"repro/internal/evalutil"
	"repro/internal/xmltree"
)

type eval struct {
	doc    *xmltree.Document
	cancel *evalutil.Canceller
}

// chk is a same-package helper that transitively checks: loops calling
// it are covered through the call-graph fixpoint.
func (ev *eval) chk() error { return ev.cancel.Check() }

// Unbilled range over a NodeSet: the seeded violation.
func (ev *eval) sumRange(set xmltree.NodeSet) int {
	total := 0
	for _, n := range set { // want `document-sized loop without a cancellation checkpoint`
		total += int(n)
	}
	return total
}

// Unbilled for loop bounded by Document.Len().
func (ev *eval) scanDoc() xmltree.NodeSet {
	var out xmltree.NodeSet
	for i := 0; i < ev.doc.Len(); i++ { // want `document-sized loop without a cancellation checkpoint`
		out = append(out, xmltree.NodeID(i))
	}
	return out
}

// Unbilled for loop bounded by len(NodeSet).
func (ev *eval) scanSet(set xmltree.NodeSet) int {
	total := 0
	for i := 0; i < len(set); i++ { // want `document-sized loop without a cancellation checkpoint`
		total += int(set[i])
	}
	return total
}

// A direct Check inside the body covers the loop.
func (ev *eval) checkedInside(set xmltree.NodeSet) error {
	for _, n := range set {
		if err := ev.cancel.Check(); err != nil {
			return err
		}
		_ = n
	}
	return nil
}

// Billing the whole operation before the loop covers it (the bulk
// CheckN idiom).
func (ev *eval) billedBefore(set xmltree.NodeSet) (int, error) {
	if err := ev.cancel.CheckN(len(set)); err != nil {
		return 0, err
	}
	total := 0
	for _, n := range set {
		total += int(n)
	}
	return total, nil
}

// A transitively-checking same-package call inside the body covers it.
func (ev *eval) checkedTransitively(set xmltree.NodeSet) error {
	for range set {
		if err := ev.chk(); err != nil {
			return err
		}
	}
	return nil
}

// No canceller in scope: out of the analyzer's scope — the invariant
// is the caller's.
func plainHelper(set xmltree.NodeSet) int {
	total := 0
	for _, n := range set {
		total += int(n)
	}
	return total
}
