// Fixture for the cancelcheck analyzer: document-sized loops in code
// that has a Canceller in scope must hit a checkpoint on the loop path.
package cancelcheck

import (
	"repro/internal/evalutil"
	"repro/internal/xmltree"
)

type eval struct {
	doc    *xmltree.Document
	cancel *evalutil.Canceller
}

// chk is a same-package helper that transitively checks: loops calling
// it are covered through the call-graph fixpoint.
func (ev *eval) chk() error { return ev.cancel.Check() }

// Unbilled range over a NodeSet: the seeded violation.
func (ev *eval) sumRange(set xmltree.NodeSet) int {
	total := 0
	for _, n := range set { // want `document-sized loop without a cancellation checkpoint`
		total += int(n)
	}
	return total
}

// Unbilled for loop bounded by Document.Len().
func (ev *eval) scanDoc() xmltree.NodeSet {
	var out xmltree.NodeSet
	for i := 0; i < ev.doc.Len(); i++ { // want `document-sized loop without a cancellation checkpoint`
		out = append(out, xmltree.NodeID(i))
	}
	return out
}

// Unbilled for loop bounded by len(NodeSet).
func (ev *eval) scanSet(set xmltree.NodeSet) int {
	total := 0
	for i := 0; i < len(set); i++ { // want `document-sized loop without a cancellation checkpoint`
		total += int(set[i])
	}
	return total
}

// A direct Check inside the body covers the loop.
func (ev *eval) checkedInside(set xmltree.NodeSet) error {
	for _, n := range set {
		if err := ev.cancel.Check(); err != nil {
			return err
		}
		_ = n
	}
	return nil
}

// Billing the whole operation before the loop covers it (the bulk
// CheckN idiom).
func (ev *eval) billedBefore(set xmltree.NodeSet) (int, error) {
	if err := ev.cancel.CheckN(len(set)); err != nil {
		return 0, err
	}
	total := 0
	for _, n := range set {
		total += int(n)
	}
	return total, nil
}

// A transitively-checking same-package call inside the body covers it.
func (ev *eval) checkedTransitively(set xmltree.NodeSet) error {
	for range set {
		if err := ev.chk(); err != nil {
			return err
		}
	}
	return nil
}

// A goroutine's loop cannot lean on the spawner's bulk bill: the
// worker runs concurrently with (and after) the spawner's checkpoint,
// so every worker would run unbilled.
func (ev *eval) spawnUnbilled(set xmltree.NodeSet, done chan<- int) error {
	if err := ev.cancel.CheckN(len(set)); err != nil {
		return err
	}
	go func() {
		total := 0
		for _, n := range set { // want `document-sized loop in a spawned worker without a cancellation checkpoint`
			total += int(n)
		}
		done <- total
	}()
	return nil
}

// A ParDo worker with no checkpoint of its own is flagged even though
// the spawner billed the whole operation first.
func (ev *eval) parDoUnbilled(set xmltree.NodeSet) error {
	if err := ev.cancel.CheckN(len(set)); err != nil {
		return err
	}
	xmltree.ParDo(4, 4, func(k int) {
		for _, n := range set { // want `document-sized loop in a spawned worker without a cancellation checkpoint`
			_ = n
		}
	})
	return nil
}

// A worker that bills its own chunk inside the literal is covered.
func (ev *eval) parDoBilled(set xmltree.NodeSet) {
	xmltree.ParDo(4, 4, func(k int) {
		if ev.cancel.CheckN(len(set)/4) != nil {
			return
		}
		for _, n := range set {
			_ = n
		}
	})
}

// The converse direction: a checkpoint inside a spawned worker never
// covers a loop running on the spawning goroutine.
func (ev *eval) workerCheckDoesNotLeak(set xmltree.NodeSet) int {
	go func() {
		_ = ev.cancel.Check()
	}()
	total := 0
	for _, n := range set { // want `document-sized loop without a cancellation checkpoint`
		total += int(n)
	}
	return total
}

// A non-spawned literal (called synchronously on the same goroutine)
// keeps the old rule: the bulk bill before the call covers its loop.
func (ev *eval) inlineLiteralBilled(set xmltree.NodeSet) (int, error) {
	if err := ev.cancel.CheckN(len(set)); err != nil {
		return 0, err
	}
	sum := func() int {
		total := 0
		for _, n := range set {
			total += int(n)
		}
		return total
	}
	return sum(), nil
}

// No canceller in scope: out of the analyzer's scope — the invariant
// is the caller's.
func plainHelper(set xmltree.NodeSet) int {
	total := 0
	for _, n := range set {
		total += int(n)
	}
	return total
}
