// Package load type-checks packages of the surrounding module without
// golang.org/x/tools/go/packages: it shells out to `go list -export`
// for the dependency graph and compiled export data, then parses and
// checks the target packages' source with go/parser + go/types, using
// the gc importer's lookup hook to resolve imports from the export
// files. This works fully offline (the toolchain's build cache is the
// only artifact store) and costs one `go list` plus one source
// type-check per target package.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked target package.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPkg is the subset of `go list -json` this loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// Exports resolves import paths to compiled export data files, as
// reported by one `go list -export -deps` run.
type Exports struct {
	dir     string
	files   map[string]string // import path -> export data file
	targets []listedPkg       // the non-dep packages the patterns named
}

// List builds the export map for the packages matched by patterns
// (and every dependency), running `go list` in dir. Test files are not
// part of the graph: analyzers see production code only.
func List(dir string, patterns ...string) (*Exports, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// cgo-free resolution: the pure-Go file sets type-check from
	// source; with cgo on, packages like net would list .go files that
	// import "C".
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	e := &Exports{dir: dir, files: map[string]string{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			e.files[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			e.targets = append(e.targets, p)
		}
	}
	sort.Slice(e.targets, func(i, j int) bool { return e.targets[i].ImportPath < e.targets[j].ImportPath })
	return e, nil
}

// lookup opens the export data for one import path — the gc importer's
// resolution hook.
func (e *Exports) lookup(path string) (io.ReadCloser, error) {
	f, ok := e.files[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q (not in the `go list -deps` graph)", path)
	}
	return os.Open(f)
}

// Importer returns a types.Importer resolving against the export map.
// Each call returns a fresh importer (with its own package cache) so
// concurrent type-checks do not share state.
func (e *Exports) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", e.lookup)
}

// CheckDir parses every non-test .go file in dir as one package and
// type-checks it against the export map — how testdata packages (which
// the go tool itself ignores) are loaded for analysis tests.
func (e *Exports) CheckDir(fset *token.FileSet, dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(files)
	return e.check(fset, pkgPath, dir, files)
}

// check parses the named files and type-checks them as one package.
func (e *Exports) check(fset *token.FileSet, pkgPath, dir string, goFiles []string) (*Package, error) {
	var syntax []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: e.Importer(fset)}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath, Name: tpkg.Name(), Dir: dir,
		Fset: fset, Syntax: syntax, Types: tpkg, TypesInfo: info,
	}, nil
}

// Packages loads, parses and type-checks every package matched by
// patterns, rooted at dir. One shared FileSet spans all of them.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	exp, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range exp.targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		p, err := exp.check(fset, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
