package metricname_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/metricname"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, metricname.Analyzer, "metricname")
}
