// Package metricname enforces the metric-naming invariants of the
// internal/obs registry at every registration site. The registry
// validates names at runtime (and panics), but a bad name in a
// rarely-exercised branch only explodes in production scrapes; the
// analyzer moves the check to review time and adds the one rule the
// runtime cannot see statically: two registration sites in the same
// package using the same name literal silently share one instrument
// under get-or-create semantics, which is almost always an accident.
//
// Rules, applied to every call of a Registry registration method
// (Counter, CounterFunc, Gauge, GaugeFunc, Histogram, CounterVec,
// HistogramVec):
//
//   - the metric name must be a compile-time constant string, so the
//     full name set is auditable by grep and by this analyzer;
//   - the name must be snake_case (^[a-z][a-z0-9_]*$), matching the
//     registry's runtime validation and Prometheus convention;
//   - the name must be unique among the package's registration
//     literals (the duplicate site is flagged);
//   - label names of the Vec variants must be constant snake_case
//     strings too — they become Prometheus label keys.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags obs.Registry registrations whose metric or label
// names are dynamic, non-snake_case, or duplicated within a package.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc: "flags obs.Registry registration calls whose metric name is not " +
		"a constant snake_case string literal unique within the package, " +
		"and Vec label names that are not constant snake_case strings",
	Run: run,
}

// snakeRe mirrors the registry's runtime name validation.
var snakeRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registerMethods maps each Registry registration method to the
// argument index where its variadic label names start (-1 = no
// labels).
var registerMethods = map[string]int{
	"Counter":      -1,
	"CounterFunc":  -1,
	"Gauge":        -1,
	"GaugeFunc":    -1,
	"Histogram":    -1,
	"CounterVec":   2, // (name, help, labels...)
	"GaugeVec":     2, // (name, help, labels...)
	"HistogramVec": 3, // (name, help, buckets, labels...)
}

func run(pass *analysis.Pass) error {
	// First registration position per name, across the whole package,
	// so a duplicate is reported wherever the second site lives.
	seen := map[string]token.Pos{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.CalleeOf(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			labelStart, ok := registerMethods[fn.Name()]
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !lintutil.Is(sig.Recv().Type(), "obs", "Registry") {
				return true
			}
			return checkCall(pass, call, fn.Name(), labelStart, seen)
		})
	}
	return nil
}

// checkCall applies the naming rules to one registration call.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, method string, labelStart int, seen map[string]token.Pos) bool {
	if len(call.Args) == 0 {
		return true
	}
	name, ok := constString(pass, call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(), "metric name passed to Registry.%s is not a compile-time constant string; use a literal so the metric namespace stays greppable", method)
		return true
	}
	if !snakeRe.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(), "metric name %q is not snake_case (want ^[a-z][a-z0-9_]*$); the registry will panic on it at runtime", name)
	} else if first, dup := seen[name]; dup {
		pass.Reportf(call.Args[0].Pos(), "duplicate metric name %q (first registered at %s); get-or-create would silently share one instrument", name, pass.Fset.Position(first))
	} else {
		seen[name] = call.Args[0].Pos()
	}
	if labelStart < 0 || call.Ellipsis != token.NoPos {
		return true // no labels, or a spread slice we cannot see into
	}
	for _, arg := range call.Args[labelStart:] {
		label, ok := constString(pass, arg)
		if !ok {
			pass.Reportf(arg.Pos(), "label name passed to Registry.%s is not a compile-time constant string", method)
			continue
		}
		if !snakeRe.MatchString(label) {
			pass.Reportf(arg.Pos(), "label name %q is not snake_case (want ^[a-z][a-z0-9_]*$)", label)
		}
	}
	return true
}

// constString resolves e to its compile-time string value, through
// named constants and constant concatenation.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
