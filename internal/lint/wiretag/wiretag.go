// Package wiretag enforces the wire-format invariants of the serve and
// cluster packages. A wire struct is any struct with at least one
// json-tagged field; once a struct is on the wire, every exported,
// non-embedded field must carry a json tag — an untagged field
// silently marshals under its Go name and ossifies into the protocol
// unreviewed.
//
// The second rule guards version propagation: the answer caches in
// front of a node are keyed (doc, query, version), so a response
// constructed without its Version is a cache-poisoning bug, not a
// cosmetic omission. Any non-empty keyed composite literal of a wire
// struct that has a direct Version field must either set it or be
// followed (in the same function) by an explicit .Version assignment.
package wiretag

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags untagged exported fields of wire structs and response
// literals that drop a Version field.
var Analyzer = &analysis.Analyzer{
	Name: "wiretag",
	Doc: "flags exported fields of serve/cluster wire structs (structs " +
		"with any json-tagged field) lacking json tags, and wire-struct " +
		"literals that drop a Version field present on the type",
	Run: run,
}

func run(pass *analysis.Pass) error {
	switch pass.Pkg.Name() {
	case "serve", "cluster":
	default:
		return nil
	}
	for _, file := range pass.Files {
		checkStructDecls(pass, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkVersionDrops(pass, fd)
		}
	}
	return nil
}

func jsonTag(f *ast.Field) (string, bool) {
	if f.Tag == nil {
		return "", false
	}
	tag, err := unquote(f.Tag.Value)
	if err != nil {
		return "", false
	}
	return reflect.StructTag(tag).Lookup("json")
}

func unquote(s string) (string, error) {
	if len(s) >= 2 && s[0] == '`' && s[len(s)-1] == '`' {
		return s[1 : len(s)-1], nil
	}
	return s, nil
}

// checkStructDecls applies the tag-completeness rule to every struct
// type declared in the file (including function-local ones, which the
// stats handlers use for response shapes).
func checkStructDecls(pass *analysis.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		wire := false
		for _, f := range st.Fields.List {
			if _, ok := jsonTag(f); ok {
				wire = true
				break
			}
		}
		if !wire {
			return true
		}
		for _, f := range st.Fields.List {
			if _, ok := jsonTag(f); ok {
				continue
			}
			if len(f.Names) == 0 {
				continue // embedded: its own fields carry the tags
			}
			for _, name := range f.Names {
				if !name.IsExported() {
					continue
				}
				pass.Reportf(name.Pos(), "exported field %s of a wire struct has no json tag; tag it (or unexport it) so the wire name is chosen deliberately", name.Name)
			}
		}
		return true
	})
}

// versionField reports whether t is a struct with a direct, json-tagged
// Version field (embedded Versions don't count: the literal for the
// embedded type is where the field is set).
func versionField(t types.Type) bool {
	for _, f := range lintutil.StructFields(t) {
		if f.Name() == "Version" && !f.Embedded() {
			return true
		}
	}
	return false
}

// checkVersionDrops flags keyed, non-empty composite literals of wire
// structs with a Version field that neither set it nor are followed by
// a .Version assignment in the same function.
func checkVersionDrops(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Positions of later `<expr>.Version = ...` assignments.
	var versionAssigns []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, l := range as.Lhs {
			if sel, ok := ast.Unparen(l).(*ast.SelectorExpr); ok && sel.Sel.Name == "Version" {
				versionAssigns = append(versionAssigns, as.Pos())
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || len(lit.Elts) == 0 {
			return true
		}
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok || !versionField(tv.Type) || !isWireStruct(tv.Type) {
			return true
		}
		keyed := false
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				return true // positional literal: every field is present
			}
			keyed = true
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Version" {
				return true
			}
		}
		if !keyed {
			return true
		}
		for _, p := range versionAssigns {
			if p > lit.Pos() {
				return true
			}
		}
		name := "wire struct"
		if named := lintutil.Named(tv.Type); named != nil {
			name = named.Obj().Name()
		}
		pass.Reportf(lit.Pos(), "%s literal drops the Version field; version-keyed caches in front of this response will never invalidate — set Version or assign it before use", name)
		return true
	})
}

// isWireStruct reports whether t has any json-tagged field.
func isWireStruct(t types.Type) bool {
	n := lintutil.Named(t)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if _, ok := reflect.StructTag(st.Tag(i)).Lookup("json"); ok {
			return true
		}
	}
	return false
}
