package wiretag_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/wiretag"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, wiretag.Analyzer, "wiretag")
}
