// Package retryloop enforces the cluster retry discipline: a loop that
// walks peers re-issuing cluster.Node requests — the failover and
// fan-out shape — must consult internal/resilience, or each caller
// invents its own retry storm. A range loop is flagged when its range
// variable is the receiver of a Node request call (Query, Documents,
// PutDocumentAt, ...) and the enclosing function never touches the
// resilience package: no backoff between attempts, no retry-budget
// token, no per-attempt deadline carving.
//
// The exemption is transitive over the same-package call graph, the
// way cancelcheck's checking set is: a function that references any
// internal/resilience object (resilience.Retry, Backoff.Delay,
// WithAttemptsLeft, ...) is resilient, and so is a function that calls
// a resilient same-package function — the discipline may live in a
// helper like Router.beforeAttempt. Calls inside function literals are
// the spawned fan-out shape (one concurrent probe per peer, not a
// retry chain) and are not flagged.
package retryloop

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags peer-iteration loops that re-issue Node requests
// without consulting internal/resilience.
var Analyzer = &analysis.Analyzer{
	Name: "retryloop",
	Doc: "flags loops that re-issue cluster.Node requests across peers " +
		"without consulting internal/resilience (backoff, retry budget, " +
		"attempt deadlines); route attempts through resilience.Retry or " +
		"a resilient helper",
	Run: run,
}

// nodeRequestMethods are the cluster.Node methods that put a request
// on the wire; iterating peers around one of these is a retry chain.
var nodeRequestMethods = map[string]bool{
	"do":             true,
	"Healthz":        true,
	"PutDocument":    true,
	"PutDocumentAt":  true,
	"GetDocument":    true,
	"DeleteDocument": true,
	"Documents":      true,
	"Stats":          true,
	"Query":          true,
	"StreamJobs":     true,
}

func run(pass *analysis.Pass) error {
	resilient := resilientFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func); fn != nil && resilient[fn] {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isNodeRequest reports whether call is one of the wire-issuing
// cluster.Node methods, returning its name when it is.
func isNodeRequest(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := lintutil.CalleeOf(info, call)
	if fn == nil || !nodeRequestMethods[fn.Name()] {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || !lintutil.Is(sig.Recv().Type(), "cluster", "Node") {
		return "", false
	}
	return fn.Name(), true
}

// resilientFuncs computes the package functions that reach the
// resilience package: direct references first (any use of an object
// declared in a package named "resilience"), then a fixpoint over the
// same-package call graph.
func resilientFuncs(pass *analysis.Pass) map[*types.Func]bool {
	resilient := map[*types.Func]bool{}
	calls := map[*types.Func][]*types.Func{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.Ident:
					if obj := pass.TypesInfo.Uses[e]; obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "resilience" {
						resilient[fn] = true
					}
				case *ast.CallExpr:
					if callee := lintutil.CalleeOf(pass.TypesInfo, e); callee != nil && callee.Pkg() == pass.Pkg {
						calls[fn] = append(calls[fn], callee)
					}
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if resilient[fn] {
				continue
			}
			for _, c := range callees {
				if resilient[c] {
					resilient[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return resilient
}

// checkFunc flags every Node request in fd whose receiver is the range
// variable of an enclosing range loop — the failover chain shape —
// skipping calls inside function literals, whose requests run
// concurrently (one per peer) rather than as successive attempts.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		value, ok := loop.Value.(*ast.Ident)
		if !ok {
			return true
		}
		rangeVar := pass.TypesInfo.Defs[value]
		if rangeVar == nil {
			return true
		}
		inspectOutsideFuncLits(loop.Body, func(call *ast.CallExpr) {
			name, ok := isNodeRequest(pass.TypesInfo, call)
			if !ok {
				return
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			recv, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[recv] != rangeVar {
				return
			}
			pass.Reportf(call.Pos(), "peer loop re-issues Node.%s with no resilience discipline: space attempts with resilience.Retry (or a backoff/budget helper) so a dead peer set cannot trigger a retry storm", name)
		})
		return true
	})
}

// inspectOutsideFuncLits walks body calling f on every call expression
// that is not inside a function literal.
func inspectOutsideFuncLits(body *ast.BlockStmt, f func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			f(call)
		}
		return true
	})
}
