package retryloop_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/retryloop"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, retryloop.Analyzer, "retryloop")
}
