// Package cancelcheck enforces the engine cancellation invariant:
// every loop whose trip count is document-sized — a range over an
// xmltree.NodeSet (or []NodeID), or a for loop bounded by
// Document.Len() — must hit an evalutil.Canceller checkpoint on its
// path. A loop is checked if a Check/CheckN call (direct, or through a
// same-package function that transitively checks) runs inside its body,
// or if the enclosing function bills the whole operation with a
// checkpoint before the loop (the bulk CheckN idiom).
//
// Spawned workers are billed separately: a function literal that runs
// concurrently with its spawner — the callee or an argument of a go
// statement, or a worker handed to xmltree.ParDo — cannot lean on a
// checkpoint in the spawning function, because "billed before the
// loop" is a happens-before argument and the worker's loop does not
// happen after the spawner's checkpoint in any useful sense: the
// spawner bills once, then every worker would run unbilled. Loops
// inside a spawned literal therefore need a checkpoint within that
// same literal; conversely a checkpoint inside a spawned literal never
// covers a loop outside it.
//
// The analyzer self-gates on canceller access: a function is only
// examined when it can reach a canceller at all — it mentions a
// *evalutil.Canceller-typed expression, or its receiver or a parameter
// is a struct carrying one. Code with no canceller in scope (pure data
// structures, the evalutil primitives themselves) is out of scope; the
// invariant there is the caller's.
package cancelcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags document-sized loops with no cancellation checkpoint
// on the loop path.
var Analyzer = &analysis.Analyzer{
	Name: "cancelcheck",
	Doc: "flags loops over document-sized node ranges that never hit an " +
		"evalutil.Canceller checkpoint; bill them with CheckN before the " +
		"loop or call Check inside it",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checking := checkingFuncs(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasCancellerAccess(pass, fd) {
				continue
			}
			checkFunc(pass, fd, checking)
		}
	}
	return nil
}

// isCanceller reports whether t is evalutil.Canceller (or a pointer to
// it).
func isCanceller(t types.Type) bool {
	return lintutil.Is(t, "evalutil", "Canceller")
}

// isCheckCall reports whether call is Canceller.Check or
// Canceller.CheckN.
func isCheckCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.CalleeOf(info, call)
	if fn == nil || (fn.Name() != "Check" && fn.Name() != "CheckN") {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Recv() != nil && isCanceller(sig.Recv().Type())
}

// checkingFuncs computes the package functions that reach a
// Check/CheckN call: direct callers first, then a fixpoint over the
// same-package call graph.
func checkingFuncs(pass *analysis.Pass) map[*types.Func]bool {
	checking := map[*types.Func]bool{}
	calls := map[*types.Func][]*types.Func{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isCheckCall(pass.TypesInfo, call) {
					checking[fn] = true
				} else if callee := lintutil.CalleeOf(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
					calls[fn] = append(calls[fn], callee)
				}
				return true
			})
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			if checking[fn] {
				continue
			}
			for _, c := range callees {
				if checking[c] {
					checking[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return checking
}

// hasCancellerAccess reports whether fd can reach a canceller: its body
// mentions a Canceller-typed expression, or its receiver or a parameter
// is a struct with a Canceller field.
func hasCancellerAccess(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, v := range lintutil.ReceiverAndParams(pass.TypesInfo, fd) {
		if isCanceller(v.Type()) {
			return true
		}
		for _, f := range lintutil.StructFields(v.Type()) {
			if isCanceller(f.Type()) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[e]; ok && isCanceller(tv.Type) {
			found = true
			return false
		}
		return true
	})
	return found
}

// docSizedLoop classifies a loop statement as document-sized, returning
// its body when it is: a range over a NodeSet/[]NodeID, or a for loop
// whose condition is bounded by Document.Len() or len(<NodeSet>).
func docSizedLoop(info *types.Info, n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.RangeStmt:
		if isNodeSlice(info, l.X) {
			return l.Body
		}
	case *ast.ForStmt:
		if l.Cond == nil {
			return nil
		}
		docBound := false
		ast.Inspect(l.Cond, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := lintutil.CalleeOf(info, call); fn != nil && fn.Name() == "Len" {
				if sig := fn.Type().(*types.Signature); sig.Recv() != nil && lintutil.Is(sig.Recv().Type(), "xmltree", "Document") {
					docBound = true
					return false
				}
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "len" && len(call.Args) == 1 {
				if info.Uses[id] == types.Universe.Lookup("len") && isNodeSlice(info, call.Args[0]) {
					docBound = true
					return false
				}
			}
			return true
		})
		if docBound {
			return l.Body
		}
	}
	return nil
}

// isNodeSlice reports whether e has type xmltree.NodeSet or
// []xmltree.NodeID.
func isNodeSlice(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if lintutil.Is(tv.Type, "xmltree", "NodeSet") {
		return true
	}
	if sl, ok := types.Unalias(tv.Type).(*types.Slice); ok {
		return lintutil.Is(sl.Elem(), "xmltree", "NodeID")
	}
	return false
}

// spawnedWorkers collects the function literals in body that run
// concurrently with the enclosing function: the callee or an argument
// of a go statement, and funclit arguments to xmltree.ParDo. A
// checkpoint in the spawning function happens before the worker is
// even scheduled, so it cannot stand in for billing inside the worker.
func spawnedWorkers(info *types.Info, body *ast.BlockStmt) []*ast.FuncLit {
	var out []*ast.FuncLit
	add := func(e ast.Expr) {
		if fl, ok := ast.Unparen(e).(*ast.FuncLit); ok {
			out = append(out, fl)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			add(s.Call.Fun)
			for _, a := range s.Call.Args {
				add(a)
			}
		case *ast.CallExpr:
			if fn := lintutil.CalleeOf(info, s); fn != nil && fn.Name() == "ParDo" &&
				fn.Pkg() != nil && fn.Pkg().Name() == "xmltree" {
				for _, a := range s.Args {
					add(a)
				}
			}
		}
		return true
	})
	return out
}

// within reports whether n lies inside the range [lo, hi].
func within(n ast.Node, lo, hi token.Pos) bool {
	return n.Pos() >= lo && n.End() <= hi
}

// checkFunc flags every document-sized loop in fd that has no
// checkpoint inside its body and none before it in its billing scope —
// the innermost spawned worker literal containing the loop, or the
// whole function when the loop runs on the spawning goroutine.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, checking map[*types.Func]bool) {
	// All positions in fd where a checkpoint provably runs: direct
	// Check/CheckN calls and calls into the package's checking set.
	var checkPos []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCheckCall(pass.TypesInfo, call) {
			checkPos = append(checkPos, call)
			return true
		}
		if callee := lintutil.CalleeOf(pass.TypesInfo, call); callee != nil && checking[callee] {
			checkPos = append(checkPos, call)
		}
		return true
	})
	spawned := spawnedWorkers(pass.TypesInfo, fd.Body)
	// scopeOf returns the billing scope of node n: the body range of
	// the innermost spawned worker containing it, or the function body.
	scopeOf := func(n ast.Node) (token.Pos, token.Pos, bool) {
		lo, hi, inWorker := fd.Body.Pos(), fd.Body.End(), false
		for _, fl := range spawned {
			if within(n, fl.Body.Pos(), fl.Body.End()) && (!inWorker || fl.Body.Pos() >= lo) {
				lo, hi, inWorker = fl.Body.Pos(), fl.Body.End(), true
			}
		}
		return lo, hi, inWorker
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		body := docSizedLoop(pass.TypesInfo, n)
		if body == nil {
			return true
		}
		lo, hi, inWorker := scopeOf(n)
		for _, c := range checkPos {
			if !within(c, lo, hi) {
				continue // a different goroutine's checkpoint cannot bill this loop
			}
			if cLo, cHi, cWorker := scopeOf(c); cWorker != inWorker || cLo != lo || cHi != hi {
				continue // checkpoint sits in a nested worker, not on this loop's goroutine
			}
			// Inside the loop body, or billed before the loop starts.
			if (c.Pos() >= body.Pos() && c.End() <= body.End()) || c.End() <= n.Pos() {
				return true
			}
		}
		if inWorker {
			pass.Reportf(n.Pos(), "document-sized loop in a spawned worker without a cancellation checkpoint: the worker must bill its own chunk with Canceller.CheckN or call Check inside the loop")
			return true
		}
		pass.Reportf(n.Pos(), "document-sized loop without a cancellation checkpoint: bill it with Canceller.CheckN before the loop or call Check inside it")
		return true
	})
}
