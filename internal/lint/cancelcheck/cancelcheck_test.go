package cancelcheck_test

import (
	"testing"

	"repro/internal/lint/cancelcheck"
	"repro/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, cancelcheck.Analyzer, "cancelcheck")
}
