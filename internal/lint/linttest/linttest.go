// Package linttest is the repository's analysistest: it type-checks a
// fixture package under internal/lint/testdata/src/<name> against the
// real repository's dependency graph, runs one analyzer over it, and
// compares the diagnostics against `// want "regexp"` comments in the
// fixture — one want per expected diagnostic, on the line it is
// expected at. Fixtures import real repository packages (evalutil,
// xmltree, net/http, ...), so the seeded violations exercise the same
// type matching the production run does.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// exports is built once per test binary: one `go list -export` walk of
// the module gives every fixture its import universe.
var exports = sync.OnceValues(func() (*load.Exports, error) {
	root, err := ModuleRoot()
	if err != nil {
		return nil, err
	}
	return load.List(root, "./...")
})

// ModuleRoot locates the enclosing module by walking up to go.mod.
func ModuleRoot() (string, error) {
	dir, err := filepath.Abs(".")
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadFixture type-checks testdata/src/<fixture> against the module's
// export data and returns the package, for tests that drive lint.Run
// directly (the suppression-semantics tests).
func LoadFixture(t *testing.T, fixture string) *load.Package {
	t.Helper()
	exp, err := exports()
	if err != nil {
		t.Fatalf("loading module export data: %v", err)
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", fixture)
	pkg, err := exp.CheckDir(token.NewFileSet(), dir, "testdata/"+fixture)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", fixture, err)
	}
	return pkg
}

// want is one expectation: a diagnostic on a line matching a regexp.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	src  string
	met  bool
}

// Run type-checks testdata/src/<fixture>, applies the analyzer through
// the lint runner (so //lint:ignore directives behave as in
// production), and enforces the fixture's want comments exactly: every
// diagnostic must be wanted, every want must be diagnosed.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	exp, err := exports()
	if err != nil {
		t.Fatalf("loading module export data: %v", err)
	}
	root, err := ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "lint", "testdata", "src", fixture)
	fset := token.NewFileSet()
	pkg, err := exp.CheckDir(fset, dir, "testdata/"+fixture)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", fixture, err)
	}
	wants := collectWants(t, pkg)
	findings, err := lint.Run([]*load.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	for _, f := range findings {
		if !consume(wants, f.Pos.Filename, f.Pos.Line, f.Message) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("missing diagnostic at %s:%d matching %q", filepath.Base(w.file), w.line, w.src)
		}
	}
}

// collectWants scans the fixture's comments for want expectations.
func collectWants(t *testing.T, pkg *load.Package) []*want {
	t.Helper()
	var out []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, src := range splitQuoted(t, pos, text) {
					re, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, src, err)
					}
					out = append(out, &want{file: pos.Filename, line: pos.Line, re: re, src: src})
				}
			}
		}
	}
	return out
}

// splitQuoted parses the sequence of Go-quoted (or backquoted) strings
// after a want marker.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s:%d: malformed want expectation %q: %v", pos.Filename, pos.Line, s, err)
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			t.Fatalf("%s:%d: malformed want expectation %q: %v", pos.Filename, pos.Line, prefix, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[len(prefix):])
	}
	return out
}

func consume(wants []*want, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}
