package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Finding is one diagnostic, resolved to a position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// ignore is one parsed //lint:ignore directive.
type ignore struct {
	analyzer string // analyzer name, or "*" for all
	reason   string
	file     string
	line     int // line the directive comment starts on
	used     bool
}

// Run applies the analyzers to each package and returns the surviving
// findings sorted by position. Suppressed findings are dropped;
// malformed or unused directives are reported as findings themselves
// so suppressions cannot silently rot.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ignores, bad := collectIgnores(pkg)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if suppressed(ignores[pos.Filename], a.Name, pos.Line) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
		ran := map[string]bool{}
		for _, a := range analyzers {
			ran[a.Name] = true
		}
		for _, igs := range ignores {
			for _, ig := range igs {
				if !ig.used && (ig.analyzer == "*" || ran[ig.analyzer]) {
					findings = append(findings, Finding{
						Analyzer: "lint",
						Pos:      token.Position{Filename: ig.file, Line: ig.line},
						Message:  fmt.Sprintf("unused //lint:ignore directive for %s: the finding it suppressed is gone; remove it", ig.analyzer),
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// collectIgnores parses every //lint:ignore directive in the package,
// keyed by filename. Malformed directives (missing analyzer or reason)
// are returned as findings.
func collectIgnores(pkg *load.Package) (map[string][]*ignore, []Finding) {
	byFile := map[string][]*ignore{}
	var bad []Finding
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				parts := strings.Fields(rest)
				if len(parts) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzer> <reason>\"",
					})
					continue
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], &ignore{
					analyzer: parts[0],
					reason:   strings.Join(parts[1:], " "),
					file:     pos.Filename,
					line:     pos.Line,
				})
			}
		}
	}
	return byFile, bad
}

// suppressed reports whether a finding by analyzer on line is covered
// by a directive on the same line or the line above.
func suppressed(igs []*ignore, analyzer string, line int) bool {
	for _, ig := range igs {
		if ig.analyzer != analyzer && ig.analyzer != "*" {
			continue
		}
		if ig.line == line || ig.line == line-1 {
			ig.used = true
			return true
		}
	}
	return false
}

// File returns the syntax tree containing pos, or nil.
func File(pkg *load.Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Syntax {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
