package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/cancelcheck"
	"repro/internal/lint/ctxhttp"
	"repro/internal/lint/lockshard"
	"repro/internal/lint/metricname"
	"repro/internal/lint/retryloop"
	"repro/internal/lint/sharedset"
	"repro/internal/lint/wiretag"
)

// All returns the repository's analyzer suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cancelcheck.Analyzer,
		lockshard.Analyzer,
		sharedset.Analyzer,
		wiretag.Analyzer,
		ctxhttp.Analyzer,
		metricname.Analyzer,
		retryloop.Analyzer,
	}
}
