package lint_test

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/ctxhttp"
	"repro/internal/lint/linttest"
	"repro/internal/lint/load"
)

// TestIgnoreDirectives pins down the suppression semantics: a
// //lint:ignore directive on the flagged line or the line immediately
// above suppresses the finding, `*` matches any analyzer, a directive
// without a reason is reported as malformed (and suppresses nothing),
// and a directive left with nothing to suppress is reported as unused.
func TestIgnoreDirectives(t *testing.T) {
	pkg := linttest.LoadFixture(t, "ignore")
	findings, err := lint.Run([]*load.Package{pkg}, []*analysis.Analyzer{ctxhttp.Analyzer})
	if err != nil {
		t.Fatal(err)
	}

	file := pkg.Fset.Position(pkg.Syntax[0].Pos()).Filename
	src, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	lineWhere := func(pred func(string) bool, desc string) int {
		for i, l := range lines {
			if pred(l) {
				return i + 1
			}
		}
		t.Fatalf("no line matching %s in %s", desc, file)
		return 0
	}
	lineOf := func(marker string) int {
		return lineWhere(func(l string) bool { return strings.Contains(l, marker) }, marker)
	}

	type exp struct {
		line    int
		message string
	}
	want := []exp{
		{lineWhere(func(l string) bool {
			return strings.TrimSpace(l) == "//lint:ignore ctxhttp"
		}, "the bare directive"), "malformed //lint:ignore"},
		{lineOf("marker: after-malformed"), "http.Get sends a request with no context"},
		{lineOf("marker: surviving"), "http.Get sends a request with no context"},
		{lineOf("fixture: stale directive"), "unused //lint:ignore directive for ctxhttp"},
	}
	sort.Slice(want, func(i, j int) bool { return want[i].line < want[j].line })

	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(findings), len(want), findings)
	}
	for i, w := range want {
		f := findings[i]
		if f.Pos.Line != w.line || !strings.Contains(f.Message, w.message) {
			t.Errorf("finding %d = %s:%d %q, want line %d containing %q",
				i, filepath.Base(f.Pos.Filename), f.Pos.Line, f.Message, w.line, w.message)
		}
	}
}
