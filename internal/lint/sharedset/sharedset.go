// Package sharedset enforces the aliasing contract around
// xmltree.Index: the NodeSets returned by Index.Named and
// Index.NamedRange are (sub-slices of) the index's own posting lists —
// shared by every evaluator over the document — and must never be
// mutated. A taint walk per function marks values derived from
// posting lists and flags
// the mutating operations on them: the in-place Normalized/Reversed
// methods, append (which writes the backing array when capacity
// allows), element assignment, and use as the destination argument of
// Bitset.IntersectSet. Clone() and copying into a fresh slice
// (append(NodeSet(nil), s...)) launder the taint.
//
// The same walk guards pooled evaluator scratch: values obtained from
// Index.AcquireScratch or a sync.Pool's Get must stay local to the
// evaluation — storing one (or a field of one) into a struct field, or
// returning it, lets it escape past the matching Put and aliases two
// evaluations into the same buffers.
//
// Package xmltree itself is exempt: the index owns its posting lists
// and builds them in place.
package sharedset

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags mutation of shared posting lists and pooled scratch
// escaping its evaluation.
var Analyzer = &analysis.Analyzer{
	Name: "sharedset",
	Doc: "flags mutation of NodeSets obtained from xmltree.Index posting " +
		"lists (Named/NamedRange) and pooled scratch (AcquireScratch, " +
		"sync.Pool Get) escaping into struct fields or returns",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "xmltree" {
		return nil // the index owns its posting lists
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// isPostingCall reports whether call yields a shared posting list:
// Index.Named, or Index.NamedRange (a sub-slice of the same backing
// array).
func isPostingCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.CalleeOf(info, call)
	if fn == nil || (fn.Name() != "Named" && fn.Name() != "NamedRange") {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Recv() != nil && lintutil.Is(sig.Recv().Type(), "xmltree", "Index")
}

// isScratchCall reports whether call yields pooled scratch:
// Index.AcquireScratch or (*sync.Pool).Get.
func isScratchCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lintutil.CalleeOf(info, call)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	if fn.Name() == "AcquireScratch" && lintutil.Is(sig.Recv().Type(), "xmltree", "Index") {
		return true
	}
	return fn.Name() == "Get" && lintutil.Is(sig.Recv().Type(), "sync", "Pool")
}

// checkFunc taints posting-list and scratch values flowing through one
// function body (closures included — ast.Inspect descends into FuncLit
// bodies with the same taint maps) and reports the violations.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	shared := map[types.Object]bool{}  // posting-list tainted locals
	scratch := map[types.Object]bool{} // pooled scratch locals

	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if o := pass.TypesInfo.Defs[id]; o != nil {
			return o
		}
		return pass.TypesInfo.Uses[id]
	}

	// sharedExpr reports whether e evaluates to a (possibly re-sliced)
	// shared posting list.
	var sharedExpr func(e ast.Expr) bool
	sharedExpr = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			o := objOf(x)
			return o != nil && shared[o]
		case *ast.CallExpr:
			return isPostingCall(pass.TypesInfo, x)
		case *ast.SliceExpr:
			return sharedExpr(x.X)
		}
		return false
	}
	scratchExpr := func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			o := objOf(x)
			return o != nil && scratch[o]
		case *ast.SelectorExpr:
			// A field of a scratch value (Visited, Mark, Work) carries
			// the same lifetime as the scratch itself.
			o := objOf(x.X)
			return o != nil && scratch[o]
		case *ast.CallExpr:
			return isScratchCall(pass.TypesInfo, x)
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, l := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				r := x.Rhs[i]
				// Propagate / launder taint through the assignment.
				if o := objOf(l); o != nil {
					shared[o] = sharedExpr(r) || isAliasingAppend(pass, r, sharedExpr)
					scratch[o] = scratchExpr(r)
				}
				// Element assignment into a shared list.
				if idx, ok := ast.Unparen(l).(*ast.IndexExpr); ok && sharedExpr(idx.X) {
					pass.Reportf(l.Pos(), "element assignment into a shared posting list from xmltree.Index; Clone it first")
				}
				// Scratch escaping into a struct field.
				if sel, ok := ast.Unparen(l).(*ast.SelectorExpr); ok && scratchExpr(r) {
					if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
						pass.Reportf(x.Pos(), "pooled scratch stored into a struct field escapes its evaluation; keep scratch local and release it")
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if scratchExpr(r) {
					pass.Reportf(r.Pos(), "pooled scratch returned from the function escapes past its release")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, x, sharedExpr, scratchExpr)
		}
		return true
	})
}

// isAliasingAppend reports whether r is append(first, ...) where first
// is shared — the result may still alias the posting list's backing
// array, so the taint propagates (and the append itself is reported by
// checkCall).
func isAliasingAppend(pass *analysis.Pass, r ast.Expr, sharedExpr func(ast.Expr) bool) bool {
	call, ok := ast.Unparen(r).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return sharedExpr(call.Args[0])
}

// checkCall reports mutating calls on shared posting lists.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, sharedExpr, scratchExpr func(ast.Expr) bool) {
	// append(shared, ...): may write the shared backing array.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && sharedExpr(call.Args[0]) {
			pass.Reportf(call.Pos(), "append to a shared posting list from xmltree.Index may write its backing array; Clone it or append to a fresh set")
			return
		}
	}
	fn := lintutil.CalleeOf(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// NodeSet.Normalized()/Reversed() sort or reverse in place.
	if lintutil.Is(sig.Recv().Type(), "xmltree", "NodeSet") {
		switch fn.Name() {
		case "Normalized", "Reversed", "Add":
			if sharedExpr(sel.X) {
				pass.Reportf(call.Pos(), "%s mutates in place a shared posting list from xmltree.Index; Clone it first", fn.Name())
			}
		}
	}
	// Bitset.IntersectSet(s, dst) writes dst.
	if lintutil.Is(sig.Recv().Type(), "xmltree", "Bitset") && fn.Name() == "IntersectSet" && len(call.Args) == 2 {
		if sharedExpr(call.Args[1]) {
			pass.Reportf(call.Args[1].Pos(), "shared posting list used as IntersectSet's destination is written in place; Clone it first")
		}
	}
}
