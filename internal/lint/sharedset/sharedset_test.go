package sharedset_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/sharedset"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, sharedset.Analyzer, "sharedset")
}
