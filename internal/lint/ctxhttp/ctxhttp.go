// Package ctxhttp enforces context plumbing and timeouts on the HTTP
// client side, where the cluster layer talks to peer nodes. The rules:
//
//   - http.Get/Post/PostForm/Head and http.NewRequest build requests
//     without a context — a dead client or a cancelled query cannot
//     stop them; use http.NewRequestWithContext.
//   - http.DefaultClient and http.Client literals without a Timeout
//     never give up on a stuck peer (a streaming client may set
//     deadlines per request instead — annotate it).
//   - context.Background()/TODO() inside a function that was handed a
//     context discards the caller's cancellation; in package cluster,
//     any Background()/TODO() outside func main is suspect, because
//     every cluster call should descend from a request or tool context.
package ctxhttp

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags context-free HTTP calls and clients without timeouts.
var Analyzer = &analysis.Analyzer{
	Name: "ctxhttp",
	Doc: "flags HTTP requests built without a context, clients without " +
		"timeouts, and context.Background() where a caller's context is " +
		"in scope (or anywhere in the cluster package)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// isPkgFunc reports whether call invokes pkgName.funcName (a
// package-level function, not a method).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgName string, names ...string) (string, bool) {
	fn := lintutil.CalleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != pkgName {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	for _, n := range names {
		if fn.Name() == n {
			return n, true
		}
	}
	return "", false
}

func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, v := range lintutil.ReceiverAndParams(info, fd) {
		if lintutil.Is(v.Type(), "context", "Context") {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ctxInScope := hasCtxParam(pass.TypesInfo, fd)
	inCluster := pass.Pkg.Name() == "cluster" && fd.Name.Name != "main"
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, ok := isPkgFunc(pass.TypesInfo, x, "http", "Get", "Post", "PostForm", "Head"); ok {
				pass.Reportf(x.Pos(), "http.%s sends a request with no context; build it with http.NewRequestWithContext so cancellation reaches the transport", name)
				return true
			}
			if _, ok := isPkgFunc(pass.TypesInfo, x, "http", "NewRequest"); ok {
				pass.Reportf(x.Pos(), "http.NewRequest builds a context-free request; use http.NewRequestWithContext")
				return true
			}
			if name, ok := isPkgFunc(pass.TypesInfo, x, "context", "Background", "TODO"); ok {
				if ctxInScope {
					pass.Reportf(x.Pos(), "context.%s discards the context this function was handed; derive from it instead", name)
				} else if inCluster {
					pass.Reportf(x.Pos(), "context.%s in the cluster layer detaches this call from every caller; thread a context through (or annotate why the call is a background root)", name)
				}
			}
		case *ast.SelectorExpr:
			if obj, ok := pass.TypesInfo.Uses[x.Sel].(*types.Var); ok &&
				obj.Name() == "DefaultClient" && obj.Pkg() != nil && obj.Pkg().Name() == "http" {
				pass.Reportf(x.Pos(), "http.DefaultClient has no timeout; use a client with Timeout set")
			}
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[x]
			if !ok || !lintutil.Is(tv.Type, "http", "Client") {
				return true
			}
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Timeout" {
						return true
					}
				}
			}
			pass.Reportf(x.Pos(), "http.Client built without a Timeout never gives up on a stuck peer; set Timeout (or annotate a streaming client that bounds requests per call)")
		}
		return true
	})
}
