package ctxhttp_test

import (
	"testing"

	"repro/internal/lint/ctxhttp"
	"repro/internal/lint/linttest"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, ctxhttp.Analyzer, "ctxhttp")
}
