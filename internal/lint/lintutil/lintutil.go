// Package lintutil holds the small type-matching helpers the analyzers
// share. Types are matched by package *name* plus type name (not full
// import path) so the same analyzer logic applies to the real
// repository packages and to the fixture packages under testdata.
package lintutil

import (
	"go/ast"
	"go/types"
)

// Named returns the named type behind t — through aliases, one level
// of pointer, and generic instantiation — or nil.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin()
	}
	return nil
}

// Is reports whether t (through pointers and aliases) is the named
// type pkgName.typeName.
func Is(t types.Type, pkgName, typeName string) bool {
	n := Named(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// CalleeOf resolves a call expression to the *types.Func it invokes
// (function, method, or method value), or nil for builtins, conversions
// and indirect calls through plain function values.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// StructFields returns the fields of the struct behind t (through
// pointers and instantiation), or nil.
func StructFields(t types.Type) []*types.Var {
	n := Named(t)
	if n == nil {
		return nil
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	out := make([]*types.Var, st.NumFields())
	for i := range out {
		out[i] = st.Field(i)
	}
	return out
}

// ReceiverAndParams returns the declared receiver (possibly nil) and
// parameters of a function declaration, as type objects.
func ReceiverAndParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}
