// Package lint assembles the repository's analyzer suite and runs it
// over type-checked packages, honouring //lint:ignore suppressions.
// cmd/xpathlint is the driver; CI runs it as a gate.
//
// The analyzers and the invariant each one encodes:
//
//   - cancelcheck: a function with access to an evalutil.Canceller
//     that loops over document-sized data (a NodeSet, the node arena)
//     must consult it — bill the loop with CheckN up front or call
//     Check inside the body, directly or through a helper that does.
//     Otherwise a cancelled query keeps burning its worker until the
//     loop drains.
//
//   - lockshard: fields declared after a sync.Mutex/RWMutex in a
//     struct (until the next mutex or sync.Once) are guarded by it:
//     reads need the lock or read-lock, writes need the write lock,
//     and a deferred Unlock before the Lock is flagged. Methods named
//     *Locked assert the caller already holds the lock; values fresh
//     out of a constructor are exempt.
//
//   - sharedset: posting lists returned by xmltree.Index (Named,
//     NamedRange) are shared sub-slices — mutating them in place
//     (Normalized, Reversed, element stores, append, IntersectSet's
//     destination) is flagged unless the set was Cloned first, and
//     pooled Scratch may not escape the evaluation that acquired it
//     via a struct field or a return.
//
//   - wiretag: in the wire packages (serve, cluster) every exported
//     field of a json-tagged struct carries a json tag, and keyed
//     literals of structs with a Version field must set it (or assign
//     it before use) so version-keyed caches can invalidate.
//
//   - ctxhttp: no context-free HTTP (http.Get and friends,
//     http.NewRequest, http.DefaultClient, http.Client without a
//     Timeout) and no context.Background/TODO where a caller's
//     context is in scope — in the cluster package, anywhere outside
//     main.
//
//   - metricname: every obs.Registry registration (Counter, Gauge,
//     Histogram, the Func and Vec variants) names its metric with a
//     compile-time constant snake_case string that is unique within
//     the package, and Vec label names are constant snake_case
//     strings — a duplicate name would silently share one instrument
//     under the registry's get-or-create semantics.
//
//   - retryloop: a loop whose range variable is the receiver of a
//     cluster.Node request (Query, Documents, PutDocumentAt, ...) is a
//     failover chain, and its enclosing function must consult
//     internal/resilience — directly or through a same-package helper
//     — so attempts are backed off, budgeted and deadline-carved
//     instead of hammering a dead peer set. Requests inside function
//     literals (the concurrent one-probe-per-peer fan-out) are exempt.
//
// A finding is suppressed by a directive comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it
// (<analyzer> may be * to match any). The reason is mandatory: an
// ignore without one is itself reported, as is a directive that no
// longer suppresses anything, so suppressions cannot silently rot.
//
// See the README's "Correctness tooling" section for the user-facing
// summary, and internal/lint/linttest for the fixture harness the
// analyzer tests run on.
package lint
