package lockshard_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/lockshard"
)

func TestAnalyzer(t *testing.T) {
	linttest.Run(t, lockshard.Analyzer, "lockshard")
}
