// Package lockshard enforces the repository's struct locking
// convention: in any struct with a sync.Mutex or sync.RWMutex field,
// the fields declared after the mutex — up to the next sync.Mutex,
// sync.RWMutex, or sync.Once field — are protected by it, and may only
// be read with the mutex (or its read half) held and written with the
// write lock held. store.Sharded's shard maps and byte counters are
// the motivating case; the engine query cache, the router answer
// cache, and Remote's error slot follow the same layout.
//
// The analyzer tracks lock state statement by statement: Lock/RLock
// and Unlock/RUnlock calls transition the state for their receiver
// expression, a deferred Unlock keeps the lock held for the rest of
// the function (deferring an Unlock while the lock is NOT held is
// itself reported — the classic defer-before-Lock ordering bug), and
// branches merge conservatively. Two idioms are exempt: functions
// whose name ends in "Locked" (their receiver and protected-struct
// parameters are callee-locked by convention), and values that are
// provably fresh in the current function (assigned from a composite
// literal, new, or make — a constructor's writes precede sharing).
package lockshard

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/lintutil"
)

// Analyzer flags access to mutex-guarded struct fields without the
// guarding mutex held.
var Analyzer = &analysis.Analyzer{
	Name: "lockshard",
	Doc: "flags reads and writes of mutex-guarded struct fields (fields " +
		"declared after a sync.Mutex/RWMutex) without the guarding lock " +
		"held, and deferred unlocks ordered before their Lock",
	Run: run,
}

// lock states per (base expression, mutex field) key.
const (
	unlocked = 0
	rlocked  = 1
	locked   = 2
)

func isMutex(t types.Type) bool {
	return lintutil.Is(t, "sync", "Mutex") || lintutil.Is(t, "sync", "RWMutex")
}

func isSyncBarrier(t types.Type) bool {
	return isMutex(t) || lintutil.Is(t, "sync", "Once")
}

// guards maps each protected field name of a struct to the name of its
// guarding mutex field. Fields before the first mutex are unguarded;
// a later sync.Mutex/RWMutex/Once field starts a new (or no) region.
func guards(t types.Type) map[string]string {
	fields := lintutil.StructFields(t)
	if fields == nil {
		return nil
	}
	out := map[string]string{}
	current := ""
	for _, f := range fields {
		if isSyncBarrier(f.Type()) {
			if isMutex(f.Type()) {
				current = f.Name()
			} else {
				current = "" // a sync.Once region: guarded by the Once, not us
			}
			continue
		}
		if current != "" {
			out[f.Name()] = current
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// checker walks one function.
type checker struct {
	pass  *analysis.Pass
	fresh map[types.Object]bool // locals assigned from composite/new/make
}

type state struct {
	locks      map[string]int
	terminated bool
}

func newState() *state { return &state{locks: map[string]int{}} }

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.locks {
		c.locks[k] = v
	}
	return c
}

// merge folds another branch's outcome into s: a lock is only held
// after the join if every surviving branch holds it.
func (s *state) merge(o *state) {
	if o.terminated {
		return
	}
	if s.terminated {
		s.locks, s.terminated = o.locks, false
		return
	}
	for k, v := range s.locks {
		if ov := o.locks[k]; ov < v {
			s.locks[k] = ov
		}
	}
	for k := range o.locks {
		if _, ok := s.locks[k]; !ok {
			s.locks[k] = unlocked
		}
	}
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, fresh: map[types.Object]bool{}}
			st := newState()
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				// Callee-locked convention: the caller holds every mutex
				// of the protected structs handed in.
				for _, v := range lintutil.ReceiverAndParams(pass.TypesInfo, fd) {
					mutexes := map[string]bool{}
					for _, mu := range guards(v.Type()) {
						mutexes[mu] = true
					}
					for mu := range mutexes {
						st.locks[v.Name()+"."+mu] = locked
					}
				}
			}
			c.walkBody(fd.Body, st)
		}
	}
	return nil
}

func (c *checker) walkBody(b *ast.BlockStmt, st *state) {
	for _, s := range b.List {
		if st.terminated {
			// Unreachable tail (after return/panic); keep walking with a
			// fresh unlocked state so obvious bugs there still surface.
			st = newState()
		}
		c.walkStmt(s, st)
	}
}

func (c *checker) walkStmt(s ast.Stmt, st *state) {
	switch x := s.(type) {
	case nil:
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok && isPanic(c.pass.TypesInfo, call) {
			c.walkExpr(call, st, false)
			st.terminated = true
			return
		}
		c.walkExpr(x.X, st, false)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			c.walkExpr(r, st, false)
		}
		for i, l := range x.Lhs {
			c.walkWrite(l, st)
			if i < len(x.Rhs) {
				c.recordFresh(l, x.Rhs[i])
			}
		}
	case *ast.IncDecStmt:
		c.walkWrite(x.X, st)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					c.walkExpr(v, st, false)
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						c.recordFresh(name, vs.Values[i])
					}
				}
			}
		}
	case *ast.DeferStmt:
		c.walkDefer(x, st)
	case *ast.GoStmt:
		// The goroutine runs later under its own schedule: its body is
		// checked from an unlocked state (inside walkExpr on the FuncLit).
		c.walkExpr(x.Call, st, false)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.walkExpr(r, st, false)
		}
		st.terminated = true
	case *ast.BranchStmt:
		st.terminated = true
	case *ast.BlockStmt:
		c.walkBody(x, st)
	case *ast.IfStmt:
		c.walkStmt(x.Init, st)
		c.walkExpr(x.Cond, st, false)
		then := st.clone()
		c.walkBody(x.Body, then)
		alt := st.clone()
		if x.Else != nil {
			c.walkStmt(x.Else, alt)
		}
		*st = *alt
		st.merge(then)
	case *ast.ForStmt:
		c.walkStmt(x.Init, st)
		if x.Cond != nil {
			c.walkExpr(x.Cond, st, false)
		}
		body := st.clone()
		c.walkBody(x.Body, body)
		c.walkStmt(x.Post, body)
		// After the loop the entry state holds: zero iterations are
		// possible, and a lock taken inside an iteration is paired there.
	case *ast.RangeStmt:
		c.walkExpr(x.X, st, false)
		body := st.clone()
		c.walkBody(x.Body, body)
	case *ast.SwitchStmt:
		c.walkStmt(x.Init, st)
		if x.Tag != nil {
			c.walkExpr(x.Tag, st, false)
		}
		c.walkClauses(x.Body, st)
	case *ast.TypeSwitchStmt:
		c.walkStmt(x.Init, st)
		c.walkStmt(x.Assign, st)
		c.walkClauses(x.Body, st)
	case *ast.SelectStmt:
		c.walkClauses(x.Body, st)
	case *ast.LabeledStmt:
		c.walkStmt(x.Stmt, st)
	case *ast.SendStmt:
		c.walkExpr(x.Chan, st, false)
		c.walkExpr(x.Value, st, false)
	default:
	}
}

// walkClauses runs each case body on a clone of the entry state and
// merges the survivors (plus the fall-through entry state for switches
// without a default, where no case may match).
func (c *checker) walkClauses(body *ast.BlockStmt, st *state) {
	out := st.clone()
	for _, cl := range body.List {
		branch := st.clone()
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				c.walkExpr(e, branch, false)
			}
			for _, s := range cc.Body {
				c.walkStmt(s, branch)
			}
		case *ast.CommClause:
			c.walkStmt(cc.Comm, branch)
			for _, s := range cc.Body {
				c.walkStmt(s, branch)
			}
		}
		out.merge(branch)
	}
	*st = *out
}

// walkDefer handles `defer X.mu.Unlock()` and friends: a deferred
// unlock while the lock is held keeps it held (released at return); a
// deferred unlock while it is NOT held is the defer-before-Lock
// ordering bug. Other deferred calls are walked normally.
func (c *checker) walkDefer(d *ast.DeferStmt, st *state) {
	if key, op, ok := c.lockOp(d.Call); ok {
		switch op {
		case "Unlock", "RUnlock":
			if st.locks[key] == unlocked {
				c.pass.Reportf(d.Pos(), "deferred %s of %s while the lock is not held (defer ordered before Lock?)", op, key)
			}
			// Held until return: no state change.
		default:
			// A deferred Lock is almost certainly a typo for Unlock.
			c.pass.Reportf(d.Pos(), "deferred %s of %s: locks are acquired inline, not deferred", op, key)
		}
		return
	}
	c.walkExpr(d.Call, st, false)
}

// lockOp recognizes a call as base.mu.Lock/RLock/Unlock/RUnlock where
// mu is a guarding mutex field, returning the state key and operation.
func (c *checker) lockOp(call *ast.CallExpr) (key, op string, ok bool) {
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	recv, okRecv := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !okRecv {
		return "", "", false // a local or embedded mutex: out of scope
	}
	tv, okType := c.pass.TypesInfo.Types[recv]
	if !okType || !isMutex(tv.Type) {
		return "", "", false
	}
	base := ast.Unparen(recv.X)
	if tvb, okb := c.pass.TypesInfo.Types[base]; !okb || guards(tvb.Type) == nil {
		return "", "", false
	}
	return types.ExprString(base) + "." + recv.Sel.Name, op, true
}

// walkExpr scans an expression for lock transitions and guarded field
// reads. write marks the outermost expression as a mutation target.
func (c *checker) walkExpr(e ast.Expr, st *state, write bool) {
	switch x := e.(type) {
	case nil:
	case *ast.CallExpr:
		if key, op, ok := c.lockOp(x); ok {
			switch op {
			case "Lock", "TryLock":
				st.locks[key] = locked
			case "RLock", "TryRLock":
				if st.locks[key] < rlocked {
					st.locks[key] = rlocked
				}
			case "Unlock", "RUnlock":
				if st.locks[key] == unlocked {
					c.pass.Reportf(x.Pos(), "%s of %s while the lock is not held", op, key)
				}
				st.locks[key] = unlocked
			}
			return
		}
		// delete(m, k) and append(s, ...) mutate their first argument.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && (id.Name == "delete" || id.Name == "append") && len(x.Args) > 0 {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				c.walkWrite(x.Args[0], st)
				for _, a := range x.Args[1:] {
					c.walkExpr(a, st, false)
				}
				return
			}
		}
		c.walkExpr(x.Fun, st, false)
		for _, a := range x.Args {
			c.walkExpr(a, st, false)
		}
	case *ast.SelectorExpr:
		c.checkFieldAccess(x, st, write)
		c.walkExpr(x.X, st, false)
	case *ast.IndexExpr:
		c.walkExpr(x.X, st, write)
		c.walkExpr(x.Index, st, false)
	case *ast.StarExpr:
		c.walkExpr(x.X, st, write)
	case *ast.ParenExpr:
		c.walkExpr(x.X, st, write)
	case *ast.UnaryExpr:
		c.walkExpr(x.X, st, false)
	case *ast.BinaryExpr:
		c.walkExpr(x.X, st, false)
		c.walkExpr(x.Y, st, false)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.walkExpr(kv.Value, st, false)
				continue
			}
			c.walkExpr(el, st, false)
		}
	case *ast.KeyValueExpr:
		c.walkExpr(x.Value, st, false)
	case *ast.TypeAssertExpr:
		c.walkExpr(x.X, st, false)
	case *ast.SliceExpr:
		c.walkExpr(x.X, st, write)
		c.walkExpr(x.Low, st, false)
		c.walkExpr(x.High, st, false)
		c.walkExpr(x.Max, st, false)
	case *ast.FuncLit:
		// A closure may run on any goroutine at any time: check it from
		// an unlocked state. Closures that are invoked while a lock is
		// held and need it should live in a *Locked function instead.
		c.walkBody(x.Body, newState())
	case *ast.Ident:
	default:
	}
}

// walkWrite records a mutation of e.
func (c *checker) walkWrite(e ast.Expr, st *state) {
	c.walkExpr(e, st, true)
}

// checkFieldAccess reports sel when it reads or writes a guarded field
// without the guarding mutex held.
func (c *checker) checkFieldAccess(sel *ast.SelectorExpr, st *state, write bool) {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	base := ast.Unparen(sel.X)
	tv, ok := c.pass.TypesInfo.Types[base]
	if !ok {
		return
	}
	g := guards(tv.Type)
	if g == nil {
		return
	}
	mu, guarded := g[sel.Sel.Name]
	if !guarded {
		return
	}
	if c.isFresh(base) {
		return
	}
	key := types.ExprString(base) + "." + mu
	held := st.locks[key]
	if write && held != locked {
		c.pass.Reportf(sel.Pos(), "write to %s.%s without holding %s", types.ExprString(base), sel.Sel.Name, key)
	} else if !write && held == unlocked {
		c.pass.Reportf(sel.Pos(), "read of %s.%s without holding %s", types.ExprString(base), sel.Sel.Name, key)
	}
}

// recordFresh marks lhs as constructor-fresh when rhs is a composite
// literal (possibly through &), new, or make: a value no other
// goroutine can see yet.
func (c *checker) recordFresh(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		c.fresh[obj] = true
	case *ast.UnaryExpr:
		if _, isLit := ast.Unparen(r.X).(*ast.CompositeLit); isLit {
			c.fresh[obj] = true
		}
	case *ast.CallExpr:
		if fid, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && (fid.Name == "new" || fid.Name == "make") {
			if _, isBuiltin := c.pass.TypesInfo.Uses[fid].(*types.Builtin); isBuiltin {
				c.fresh[obj] = true
			}
		}
	}
}

// isFresh reports whether the root identifier of e is constructor-fresh
// in this function.
func (c *checker) isFresh(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := c.pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = c.pass.TypesInfo.Defs[x]
			}
			return obj != nil && c.fresh[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}
