// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer is a named
// check, a Pass hands it one type-checked package, and diagnostics are
// positions plus messages. The build environment for this repository is
// hermetic (no module proxy), so the real x/tools module cannot be
// depended on; this package keeps the same shape so the analyzers in
// internal/lint/... could be ported to the upstream framework by
// changing only their import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the one-paragraph description of the invariant the
	// analyzer enforces (shown by `xpathlint -help`).
	Doc string

	// Run applies the analyzer to one package, reporting diagnostics
	// through the pass. The error return is for operational failures
	// (not findings); a finding is a Diagnostic.
	Run func(*Pass) error
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass provides one analyzer run with a single type-checked package
// and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}
