// Package mincontext implements the MinContext algorithm of Section 8
// and Appendix A. It improves on the plain context-value-table engines
// by combining three ideas:
//
//  1. Restriction to the relevant context (Section 8.2): the
//     context-value table at each parse-tree node N only materializes
//     the columns in Relev(N) ⊆ {cn, cp, cs}.
//  2. Special treatment of outermost location paths: their intermediate
//     results are node *sets* (⊆ dom) instead of relations (⊆ dom×2^dom).
//  3. Position and size are handled in a loop: a predicate that depends
//     on cp/cs is evaluated per candidate context on demand
//     (eval_single_context) after its cp/cs-independent subtrees have
//     been tabulated once (eval_by_cnode_only).
//
// The result is O(|D|²·|Q|²) space at O(|D|⁴·|Q|²) time (Theorem 8.6).
//
// The four procedures eval_outermost_locpath, eval_by_cnode_only,
// eval_single_context and eval_inner_locpath follow the pseudocode of
// Appendix A; the parse tree and per-node tables are carried in an
// evaluation state.
package mincontext

import (
	"context"
	"fmt"

	"repro/internal/evalutil"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Evaluator evaluates XPath queries with the MinContext algorithm.
type Evaluator struct {
	doc *xmltree.Document

	// Hooks allows a fragment optimizer (OptMinContext, Section 11.2)
	// to pre-evaluate subexpressions; see SetPrecomputed.
	pre map[xpath.Expr]*boolTable
}

// boolTable is a precomputed dom → bool table for a subexpression,
// installed by OptMinContext's bottom-up path evaluation.
type boolTable struct {
	vals []bool
}

// New returns a MinContext evaluator for the document.
func New(d *xmltree.Document) *Evaluator { return &Evaluator{doc: d} }

// SetPrecomputed installs a context-node → boolean table for a
// subexpression; eval_by_cnode_only and eval_single_context consult it
// instead of evaluating the subexpression ("subexpressions that have
// already been evaluated bottom-up are not evaluated again", Algorithm
// 11.1). The slice must be indexed by NodeID over the whole document.
func (ev *Evaluator) SetPrecomputed(e xpath.Expr, vals []bool) {
	if ev.pre == nil {
		ev.pre = map[xpath.Expr]*boolTable{}
	}
	ev.pre[e] = &boolTable{vals: vals}
}

// Evaluate implements Algorithm 8.5 (MinContext): location paths go
// through eval_outermost_locpath; any other query is tabulated by
// eval_by_cnode_only and then read off with eval_single_context.
func (ev *Evaluator) Evaluate(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	return ev.EvaluateContext(context.Background(), e, c)
}

// EvaluateContext is Evaluate with cancellation: the tabulation and
// per-pair position loops check ctx at throttled checkpoints and
// abandon the evaluation with ctx's error once it is done.
func (ev *Evaluator) EvaluateContext(ctx context.Context, e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	st := newState(ev)
	st.cancel = evalutil.NewCanceller(ctx)
	if isLocationPath(e) {
		s, err := st.evalOutermostLocpath(e, xmltree.NodeSet{c.Node})
		if err != nil {
			return semantics.Value{}, err
		}
		return semantics.NodeSet(s), nil
	}
	if err := st.evalByCnodeOnly(e, xmltree.NodeSet{c.Node}); err != nil {
		return semantics.Value{}, err
	}
	return st.evalSingleContext(e, c)
}

// isLocationPath reports whether the query is a location path in the
// paper's sense: a Path or a union of location paths.
func isLocationPath(e xpath.Expr) bool {
	switch x := e.(type) {
	case *xpath.Path:
		return true
	case *xpath.Binary:
		return x.Op == xpath.OpUnion && isLocationPath(x.Left) && isLocationPath(x.Right)
	default:
		return false
	}
}

// ctxKey and table mirror the relevant-context projection of Section 8.2.
type ctxKey struct {
	node      xmltree.NodeID
	pos, size int32
}

type table struct {
	relev xpath.Relev
	vals  map[ctxKey]semantics.Value
}

func (t *table) key(c semantics.Context) ctxKey {
	k := ctxKey{node: xmltree.NilNode, pos: -1, size: -1}
	if t.relev.Has(xpath.RelevNode) {
		k.node = c.Node
	}
	if t.relev.Has(xpath.RelevPos) {
		k.pos = int32(c.Pos)
	}
	if t.relev.Has(xpath.RelevSize) {
		k.size = int32(c.Size)
	}
	return k
}

// state is the per-query evaluation state: Relev per node, the
// context-value tables, the inner-location-path relations, and the set
// of context nodes each table already covers.
type state struct {
	ev  *Evaluator
	doc *xmltree.Document

	relev   map[xpath.Expr]xpath.Relev
	tables  map[xpath.Expr]*table
	rels    map[xpath.Expr]map[xmltree.NodeID]xmltree.NodeSet
	covered map[xpath.Expr]map[xmltree.NodeID]bool

	// cancel is the throttled cancellation checkpoint for this query;
	// nil (the Evaluate path) never fires.
	cancel *evalutil.Canceller
}

func newState(ev *Evaluator) *state {
	return &state{
		ev:      ev,
		doc:     ev.doc,
		relev:   map[xpath.Expr]xpath.Relev{},
		tables:  map[xpath.Expr]*table{},
		rels:    map[xpath.Expr]map[xmltree.NodeID]xmltree.NodeSet{},
		covered: map[xpath.Expr]map[xmltree.NodeID]bool{},
	}
}

func (st *state) relevOf(e xpath.Expr) xpath.Relev {
	r, ok := st.relev[e]
	if !ok {
		r = xpath.RelevantContext(e)
		st.relev[e] = r
	}
	return r
}

// uncovered returns the subset of X not yet covered for e and marks it
// covered. For context-insensitive expressions (Relev(N) ∩ {cn} = ∅) a
// single sentinel represents all contexts. The coverage scan can touch
// up to |D| nodes, so it bills the cancellation checkpoint.
func (st *state) uncovered(e xpath.Expr, x xmltree.NodeSet) (xmltree.NodeSet, error) {
	if err := st.cancel.CheckN(len(x)); err != nil {
		return nil, err
	}
	cov := st.covered[e]
	if cov == nil {
		cov = map[xmltree.NodeID]bool{}
		st.covered[e] = cov
	}
	if !st.relevOf(e).Has(xpath.RelevNode) {
		if cov[xmltree.NilNode] {
			return nil, nil
		}
		cov[xmltree.NilNode] = true
		return x, nil
	}
	var todo xmltree.NodeSet
	for _, n := range x {
		if !cov[n] {
			cov[n] = true
			todo = append(todo, n)
		}
	}
	return todo, nil
}

// ------------------------------------------------------------------
// eval_outermost_locpath
// ------------------------------------------------------------------

// evalOutermostLocpath evaluates a location path treating intermediate
// results as node sets ⊆ dom (Section 8.2, "special treatment of
// location paths on the outermost level").
func (st *state) evalOutermostLocpath(e xpath.Expr, x xmltree.NodeSet) (xmltree.NodeSet, error) {
	switch p := e.(type) {
	case *xpath.Binary: // π1 | π2
		y1, err := st.evalOutermostLocpath(p.Left, x)
		if err != nil {
			return nil, err
		}
		y2, err := st.evalOutermostLocpath(p.Right, x)
		if err != nil {
			return nil, err
		}
		return y1.Union(y2), nil
	case *xpath.Path:
		cur := x
		switch {
		case p.Filter != nil:
			// Head expressions (id('c'), (π)[1], …) are evaluated via
			// the table machinery per context node, then flattened.
			if err := st.evalByCnodeOnly(p.Filter, x); err != nil {
				return nil, err
			}
			var u xmltree.NodeSet
			for _, n := range x {
				v, err := st.evalSingleContext(p.Filter, semantics.Context{Node: n, Pos: -1, Size: -1})
				if err != nil {
					return nil, err
				}
				if v.Kind != xpath.TypeNodeSet {
					return nil, fmt.Errorf("mincontext: path head is not a node set")
				}
				u = u.Union(v.Set)
			}
			cur = u
		case p.Absolute:
			cur = xmltree.NodeSet{st.doc.RootID()}
		}
		for _, step := range p.Steps {
			next, err := st.evalOutermostStep(step, cur)
			if err != nil {
				return nil, err
			}
			cur = next
		}
		return cur, nil
	default:
		return nil, fmt.Errorf("mincontext: not a location path: %T", e)
	}
}

// evalOutermostStep applies one location step to a node set, following
// the eval_outermost_locpath pseudocode: when no predicate depends on
// cp/cs the candidates are filtered set-at-a-time; otherwise the
// predicates run in a loop over previous/current context-node pairs.
func (st *state) evalOutermostStep(step *xpath.Step, x xmltree.NodeSet) (xmltree.NodeSet, error) {
	y := evalutil.StepCandidatesSet(st.doc, step.Axis, step.Test, x)
	if len(step.Preds) == 0 || len(y) == 0 {
		return y, nil
	}
	for _, pred := range step.Preds {
		if err := st.evalByCnodeOnly(pred, y); err != nil {
			return nil, err
		}
	}
	if !st.stepNeedsPositions(step) {
		var r xmltree.NodeSet
		for _, n := range y {
			if err := st.cancel.Check(); err != nil {
				return nil, err
			}
			ok := true
			for _, pred := range step.Preds {
				v, err := st.evalSingleContext(pred, semantics.Context{Node: n, Pos: -1, Size: -1})
				if err != nil {
					return nil, err
				}
				if !semantics.ToBoolean(v) {
					ok = false
					break
				}
			}
			if ok {
				r = append(r, n)
			}
		}
		return r, nil
	}
	// Some predicate depends on cp or cs: loop over pairs ⟨x, z⟩.
	var r xmltree.NodeSet
	for _, xn := range x {
		if err := st.cancel.Check(); err != nil {
			return nil, err
		}
		z := axesFilter(st.doc, step, xn, y)
		for _, pred := range step.Preds {
			ordered := evalutil.AxisOrdered(step.Axis, z)
			var keep []xmltree.NodeID
			for j, zn := range ordered {
				if err := st.cancel.Check(); err != nil {
					return nil, err
				}
				v, err := st.evalSingleContext(pred, semantics.Context{Node: zn, Pos: j + 1, Size: len(ordered)})
				if err != nil {
					return nil, err
				}
				if semantics.ToBoolean(v) {
					keep = append(keep, zn)
				}
			}
			z = xmltree.NewNodeSet(keep...)
		}
		r = r.Union(z)
	}
	return r, nil
}

// axesFilter computes Z = {z ∈ Y | x χ z} for one previous context node.
func axesFilter(d *xmltree.Document, step *xpath.Step, x xmltree.NodeID, y xmltree.NodeSet) xmltree.NodeSet {
	img := evalutil.StepCandidates(d, step.Axis, step.Test, x)
	return img.Intersect(y)
}

func (st *state) stepNeedsPositions(step *xpath.Step) bool {
	for _, pred := range step.Preds {
		if st.relevOf(pred)&(xpath.RelevPos|xpath.RelevSize) != 0 {
			return true
		}
	}
	return false
}

// ------------------------------------------------------------------
// eval_by_cnode_only
// ------------------------------------------------------------------

// evalByCnodeOnly fills table(M) for every node M in the subtree rooted
// at e whose expression does not depend on the current context position
// or size, for all context nodes in X.
func (st *state) evalByCnodeOnly(e xpath.Expr, x xmltree.NodeSet) error {
	if bt, ok := st.ev.pre[e]; ok {
		// OptMinContext already computed this subexpression bottom-up;
		// materialize its rows lazily through the lookup path.
		_ = bt
		return nil
	}
	r := st.relevOf(e)
	if r&(xpath.RelevPos|xpath.RelevSize) != 0 {
		// Position/size-dependent: recurse so the cp/cs-independent
		// parts below are tabulated; this node itself is evaluated
		// later, per single context.
		for _, child := range children(e) {
			if err := st.evalByCnodeOnly(child, x); err != nil {
				return err
			}
		}
		return nil
	}
	if p, ok := e.(*xpath.Path); ok {
		todo, err := st.uncovered(e, x)
		if err != nil {
			return err
		}
		if len(todo) == 0 {
			return nil
		}
		rel, err := st.evalInnerLocpath(p, todo)
		if err != nil {
			return err
		}
		m := st.rels[e]
		if m == nil {
			m = map[xmltree.NodeID]xmltree.NodeSet{}
			st.rels[e] = m
		}
		for k, v := range rel {
			m[k] = v
		}
		return nil
	}
	if fe, ok := e.(*xpath.FilterExpr); ok {
		return st.evalFilterByCnode(fe, x)
	}
	// Other compound (or leaf) expression: tabulate children first,
	// then this node for every context in X.
	todo, err := st.uncovered(e, x)
	if err != nil {
		return err
	}
	if len(todo) == 0 {
		return nil
	}
	for _, child := range children(e) {
		if err := st.evalByCnodeOnly(child, todo); err != nil {
			return err
		}
	}
	t := st.tables[e]
	if t == nil {
		t = &table{relev: r, vals: map[ctxKey]semantics.Value{}}
		st.tables[e] = t
	}
	if !r.Has(xpath.RelevNode) {
		c := semantics.Context{Node: xmltree.NilNode, Pos: -1, Size: -1}
		v, err := st.apply(e, c)
		if err != nil {
			return err
		}
		t.vals[t.key(c)] = v
		return nil
	}
	for _, n := range todo {
		if err := st.cancel.Check(); err != nil {
			return err
		}
		c := semantics.Context{Node: n, Pos: -1, Size: -1}
		v, err := st.apply(e, c)
		if err != nil {
			return err
		}
		t.vals[t.key(c)] = v
	}
	return nil
}

// evalFilterByCnode tabulates a filter expression (primary plus
// document-order predicates) per context node.
func (st *state) evalFilterByCnode(fe *xpath.FilterExpr, x xmltree.NodeSet) error {
	todo, err := st.uncovered(fe, x)
	if err != nil {
		return err
	}
	if len(todo) == 0 {
		return nil
	}
	if err := st.evalByCnodeOnly(fe.Primary, todo); err != nil {
		return err
	}
	t := st.tables[fe]
	if t == nil {
		t = &table{relev: st.relevOf(fe), vals: map[ctxKey]semantics.Value{}}
		st.tables[fe] = t
	}
	ctxNodes := todo
	if !t.relev.Has(xpath.RelevNode) {
		ctxNodes = xmltree.NodeSet{xmltree.NilNode}
	}
	for _, n := range ctxNodes {
		if err := st.cancel.Check(); err != nil {
			return err
		}
		c := semantics.Context{Node: n, Pos: -1, Size: -1}
		pv, err := st.evalSingleContext(fe.Primary, c)
		if err != nil {
			return err
		}
		if pv.Kind != xpath.TypeNodeSet {
			return fmt.Errorf("mincontext: predicates on %v", pv.Kind)
		}
		s := pv.Set
		for _, pred := range fe.Preds {
			if err := st.evalByCnodeOnly(pred, s); err != nil {
				return err
			}
			var keep []xmltree.NodeID
			for i, yn := range s {
				v, err := st.evalSingleContext(pred, semantics.Context{Node: yn, Pos: i + 1, Size: len(s)})
				if err != nil {
					return err
				}
				if semantics.ToBoolean(v) {
					keep = append(keep, yn)
				}
			}
			s = xmltree.NewNodeSet(keep...)
		}
		t.vals[t.key(c)] = semantics.NodeSet(s)
	}
	return nil
}

// apply computes the value of a cp/cs-independent expression at one
// context from its children's tables.
func (st *state) apply(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	switch x := e.(type) {
	case *xpath.Number:
		return semantics.Number(x.Val), nil
	case *xpath.Literal:
		return semantics.String(x.Val), nil
	case *xpath.VarRef:
		return semantics.Value{}, fmt.Errorf("mincontext: unbound variable $%s", x.Name)
	case *xpath.Negate:
		v, err := st.evalSingleContext(x.X, c)
		if err != nil {
			return semantics.Value{}, err
		}
		return semantics.Number(-semantics.ToNumber(st.doc, v)), nil
	case *xpath.Binary:
		l, err := st.evalSingleContext(x.Left, c)
		if err != nil {
			return semantics.Value{}, err
		}
		r, err := st.evalSingleContext(x.Right, c)
		if err != nil {
			return semantics.Value{}, err
		}
		return applyBinary(st.doc, x.Op, l, r)
	case *xpath.Call:
		args := make([]semantics.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := st.evalSingleContext(a, c)
			if err != nil {
				return semantics.Value{}, err
			}
			args[i] = v
		}
		return semantics.CallFunction(st.doc, x.Name, c, args)
	default:
		return semantics.Value{}, fmt.Errorf("mincontext: apply on %T", e)
	}
}

func applyBinary(d *xmltree.Document, op xpath.BinOp, l, r semantics.Value) (semantics.Value, error) {
	switch {
	case op == xpath.OpAnd:
		return semantics.Boolean(semantics.ToBoolean(l) && semantics.ToBoolean(r)), nil
	case op == xpath.OpOr:
		return semantics.Boolean(semantics.ToBoolean(l) || semantics.ToBoolean(r)), nil
	case op == xpath.OpUnion:
		if l.Kind != xpath.TypeNodeSet || r.Kind != xpath.TypeNodeSet {
			return semantics.Value{}, fmt.Errorf("mincontext: | on non-node-sets")
		}
		return semantics.NodeSet(l.Set.Union(r.Set)), nil
	case op.IsRelOp():
		return semantics.Boolean(semantics.Compare(d, op, l, r)), nil
	case op.IsArith():
		return semantics.Number(semantics.Arith(op, semantics.ToNumber(d, l), semantics.ToNumber(d, r))), nil
	default:
		return semantics.Value{}, fmt.Errorf("mincontext: unknown operator %v", op)
	}
}

// ------------------------------------------------------------------
// eval_single_context
// ------------------------------------------------------------------

// evalSingleContext returns the value of e for one context ⟨x, p, s⟩.
// cp/cs-independent nodes are looked up in their tables (which
// eval_by_cnode_only must have filled); dependent nodes recurse.
func (st *state) evalSingleContext(e xpath.Expr, c semantics.Context) (semantics.Value, error) {
	if bt, ok := st.ev.pre[e]; ok {
		n := c.Node
		if n < 0 {
			// The caller tabulates under the context-free sentinel,
			// which only happens when this subexpression is itself
			// context independent — its table is uniform, so any row
			// serves.
			n = 0
		}
		return semantics.Boolean(bt.vals[n]), nil
	}
	r := st.relevOf(e)
	if r&(xpath.RelevPos|xpath.RelevSize) == 0 {
		if p, ok := e.(*xpath.Path); ok {
			m := st.rels[e]
			lookupNode := c.Node
			if !r.Has(xpath.RelevNode) {
				// Absolute path: any covered row serves; rows are
				// stored under the context nodes they were requested
				// for.
				if s, ok2 := m[c.Node]; ok2 {
					return semantics.NodeSet(s), nil
				}
				for _, s := range m {
					return semantics.NodeSet(s), nil
				}
			}
			if s, ok2 := m[lookupNode]; ok2 {
				return semantics.NodeSet(s), nil
			}
			// Not covered yet (can happen when a caller asks for a
			// fresh context); evaluate on demand.
			rel, err := st.evalInnerLocpath(p, xmltree.NodeSet{c.Node})
			if err != nil {
				return semantics.Value{}, err
			}
			if m == nil {
				m = map[xmltree.NodeID]xmltree.NodeSet{}
				st.rels[e] = m
			}
			for k, v := range rel {
				m[k] = v
			}
			return semantics.NodeSet(m[c.Node]), nil
		}
		if t, ok := st.tables[e]; ok {
			if v, ok2 := t.vals[t.key(c)]; ok2 {
				return v, nil
			}
		}
		// Fill on demand for this node.
		if err := st.evalByCnodeOnly(e, xmltree.NodeSet{c.Node}); err != nil {
			return semantics.Value{}, err
		}
		if t, ok := st.tables[e]; ok {
			if v, ok2 := t.vals[t.key(c)]; ok2 {
				return v, nil
			}
		}
		return semantics.Value{}, fmt.Errorf("mincontext: table for %s missing context node %d", e, c.Node)
	}
	// Position/size-dependent: recurse (position() and last() resolve
	// through CallFunction with the supplied context).
	return st.apply(e, c)
}

// ------------------------------------------------------------------
// eval_inner_locpath
// ------------------------------------------------------------------

// evalInnerLocpath computes the relation {⟨x, y⟩ | x ∈ X, y reachable
// from x via the path} as a map x → set.
func (st *state) evalInnerLocpath(p *xpath.Path, x xmltree.NodeSet) (map[xmltree.NodeID]xmltree.NodeSet, error) {
	// Starting relation R0.
	cur := make(map[xmltree.NodeID]xmltree.NodeSet, len(x))
	switch {
	case p.Filter != nil:
		if err := st.evalByCnodeOnly(p.Filter, x); err != nil {
			return nil, err
		}
		for _, n := range x {
			v, err := st.evalSingleContext(p.Filter, semantics.Context{Node: n, Pos: -1, Size: -1})
			if err != nil {
				return nil, err
			}
			if v.Kind != xpath.TypeNodeSet {
				return nil, fmt.Errorf("mincontext: path head is not a node set")
			}
			cur[n] = v.Set
		}
	case p.Absolute:
		for _, n := range x {
			cur[n] = xmltree.NodeSet{st.doc.RootID()}
		}
	default:
		for _, n := range x {
			cur[n] = xmltree.NodeSet{n}
		}
	}
	acc := xmltree.NewAccumulator(st.doc.Len())
	for _, step := range p.Steps {
		// Image of the current relation.
		for _, s := range cur {
			acc.Add(s)
		}
		img := acc.Result()
		rel, err := st.evalInnerStep(step, img)
		if err != nil {
			return nil, err
		}
		next := make(map[xmltree.NodeID]xmltree.NodeSet, len(cur))
		for x0, ys := range cur {
			if err := st.cancel.Check(); err != nil {
				return nil, err
			}
			var u xmltree.NodeSet
			if len(ys) == 1 {
				// Rows are treated as immutable; aliasing skips a copy.
				u = rel[ys[0]]
			} else if len(ys) > 1 {
				for _, y := range ys {
					acc.Add(rel[y])
				}
				u = acc.Result()
			}
			next[x0] = u
		}
		cur = next
	}
	return cur, nil
}

// evalInnerStep computes the one-step relation {⟨x, z⟩ | x ∈ X, x χ z, z
// ∈ T(t), predicates hold} grouped by x, with the same
// cp/cs-independent fast path as the outermost variant.
func (st *state) evalInnerStep(step *xpath.Step, x xmltree.NodeSet) (map[xmltree.NodeID]xmltree.NodeSet, error) {
	rel := make(map[xmltree.NodeID]xmltree.NodeSet, len(x))
	y := evalutil.StepCandidatesSet(st.doc, step.Axis, step.Test, x)
	for _, pred := range step.Preds {
		if err := st.evalByCnodeOnly(pred, y); err != nil {
			return nil, err
		}
	}
	if !st.stepNeedsPositions(step) {
		// Filter candidates once, then intersect per x.
		yKeep := y
		for _, pred := range step.Preds {
			var keep []xmltree.NodeID
			for _, n := range yKeep {
				if err := st.cancel.Check(); err != nil {
					return nil, err
				}
				v, err := st.evalSingleContext(pred, semantics.Context{Node: n, Pos: -1, Size: -1})
				if err != nil {
					return nil, err
				}
				if semantics.ToBoolean(v) {
					keep = append(keep, n)
				}
			}
			yKeep = xmltree.NewNodeSet(keep...)
		}
		for _, xn := range x {
			if err := st.cancel.Check(); err != nil {
				return nil, err
			}
			img := evalutil.StepCandidates(st.doc, step.Axis, step.Test, xn)
			rel[xn] = img.Intersect(yKeep)
		}
		return rel, nil
	}
	for _, xn := range x {
		z := evalutil.StepCandidates(st.doc, step.Axis, step.Test, xn)
		for _, pred := range step.Preds {
			ordered := evalutil.AxisOrdered(step.Axis, z)
			var keep []xmltree.NodeID
			for j, zn := range ordered {
				if err := st.cancel.Check(); err != nil {
					return nil, err
				}
				v, err := st.evalSingleContext(pred, semantics.Context{Node: zn, Pos: j + 1, Size: len(ordered)})
				if err != nil {
					return nil, err
				}
				if semantics.ToBoolean(v) {
					keep = append(keep, zn)
				}
			}
			z = xmltree.NewNodeSet(keep...)
		}
		rel[xn] = z
	}
	return rel, nil
}

// children returns the direct subexpressions of e (predicates included
// for filter expressions; a path's pieces are handled by the inner-path
// machinery, so paths report no children here).
func children(e xpath.Expr) []xpath.Expr {
	switch x := e.(type) {
	case *xpath.Negate:
		return []xpath.Expr{x.X}
	case *xpath.Binary:
		return []xpath.Expr{x.Left, x.Right}
	case *xpath.Call:
		return x.Args
	case *xpath.FilterExpr:
		return append([]xpath.Expr{x.Primary}, x.Preds...)
	default:
		return nil
	}
}
