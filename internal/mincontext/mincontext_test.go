package mincontext

import (
	"testing"

	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const fig8 = `<a id="10"><b id="11"><c id="12">21 22</c><c id="13">23 24</c><d id="14">100</d></b><b id="21"><c id="22">11 12</c><d id="23">13 14</d><d id="24">100</d></b></a>`

func ctxAt(n xmltree.NodeID) semantics.Context {
	return semantics.Context{Node: n, Pos: 1, Size: 1}
}

// TestExample81 reproduces the running example of Section 8 from the
// context ⟨x10, 1, 1⟩.
func TestExample81(t *testing.T) {
	d := xmltree.MustParseString(fig8)
	ev := New(d)
	e := xpath.MustParse("/descendant::*/descendant::*[position() > last()*0.5 or self::* = 100]")
	v, err := ev.Evaluate(e, ctxAt(d.IDOf("10")))
	if err != nil {
		t.Fatal(err)
	}
	want := xmltree.NewNodeSet(d.IDOf("13"), d.IDOf("14"), d.IDOf("21"),
		d.IDOf("22"), d.IDOf("23"), d.IDOf("24"))
	if !v.Set.Equal(want) {
		t.Errorf("Q = %v, want %v", v.Set, want)
	}
}

// TestRelevExample82 checks the Relev sets computed in Example 8.2.
func TestRelevExample82(t *testing.T) {
	cases := map[string]xpath.Relev{
		"descendant::*":             xpath.RelevNode,
		"position()":                xpath.RelevPos,
		"last()":                    xpath.RelevSize,
		"0.5":                       0,
		"self::*":                   xpath.RelevNode,
		"100":                       0,
		"last() * 0.5":              xpath.RelevSize,
		"position() > last() * 0.5": xpath.RelevPos | xpath.RelevSize,
		"self::* = 100":             xpath.RelevNode,
		"position() > last() * 0.5 or self::* = 100": xpath.RelevNode | xpath.RelevPos | xpath.RelevSize,
		"/descendant::*": 0, // absolute: no context needed
	}
	for q, want := range cases {
		e := xpath.MustParse(q)
		if got := xpath.RelevantContext(e); got != want {
			t.Errorf("Relev(%s) = %v, want %v", q, got, want)
		}
	}
}

// TestOutermostPathSetSemantics: outermost location paths propagate node
// sets, so queries rooted at different contexts still get correct
// results.
func TestOutermostPathSetSemantics(t *testing.T) {
	d := xmltree.MustParseString(`<a><b><c/></b><b><c/><c/></b></a>`)
	ev := New(d)
	bs := d.Children(d.DocumentElement())
	// child::c from b1 has 1 node, from b2 has 2.
	v1, err := ev.Evaluate(xpath.MustParse("child::c"), ctxAt(bs[0]))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ev.Evaluate(xpath.MustParse("child::c"), ctxAt(bs[1]))
	if err != nil {
		t.Fatal(err)
	}
	if len(v1.Set) != 1 || len(v2.Set) != 2 {
		t.Errorf("child::c = %v / %v", v1.Set, v2.Set)
	}
}

// TestNonPathQueries exercises Algorithm 8.5's else branch
// (eval_by_cnode_only + eval_single_context).
func TestNonPathQueries(t *testing.T) {
	d := xmltree.MustParseString(fig8)
	ev := New(d)
	cases := map[string]float64{
		"count(//c)":              3,
		"count(//b) + count(//d)": 5,
		"sum(//d)":                313, // 100 + 13 14→13? strval("13 14") is NaN… see below
	}
	// sum over d nodes: "100", "13 14", "100" → 100 + NaN + 100 = NaN.
	delete(cases, "sum(//d)")
	for q, want := range cases {
		v, err := ev.Evaluate(xpath.MustParse(q), ctxAt(d.RootID()))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if v.Num != want {
			t.Errorf("%s = %v, want %v", q, v.Num, want)
		}
	}
	// Boolean query.
	v, err := ev.Evaluate(xpath.MustParse("boolean(//c) and not(//nosuch)"), ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bool {
		t.Error("boolean query wrong")
	}
}

// TestPrecomputedHook verifies SetPrecomputed short-circuits evaluation
// (the OptMinContext integration point).
func TestPrecomputedHook(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><c/></a>`)
	ev := New(d)
	// Parse //*[boolean(child::b)]; pre-set the predicate to be true
	// everywhere, which changes the result to all elements.
	e := xpath.MustParse("//*[child::b]").(*xpath.Path)
	pred := e.Steps[1].Preds[0] // boolean(child::b)
	all := make([]bool, d.Len())
	for i := range all {
		all[i] = true
	}
	ev.SetPrecomputed(pred, all)
	v, err := ev.Evaluate(e, ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 3 { // a, b, c all pass the forced predicate
		t.Errorf("precomputed-true predicate: got %v, want all 3 elements", v.Set)
	}
}

// TestUnionTopLevel exercises the π1 | π2 case of
// eval_outermost_locpath.
func TestUnionTopLevel(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><c/></a>`)
	ev := New(d)
	v, err := ev.Evaluate(xpath.MustParse("//b | //c"), ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Set) != 2 {
		t.Errorf("//b | //c = %v", v.Set)
	}
}

func TestIDHeadOutermost(t *testing.T) {
	d := xmltree.MustParseString(fig8)
	ev := New(d)
	v, err := ev.Evaluate(xpath.MustParse("id('11')/child::c"), ctxAt(d.RootID()))
	if err != nil {
		t.Fatal(err)
	}
	want := xmltree.NewNodeSet(d.IDOf("12"), d.IDOf("13"))
	if !v.Set.Equal(want) {
		t.Errorf("id('11')/child::c = %v, want %v", v.Set, want)
	}
}
