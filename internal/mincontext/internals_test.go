package mincontext

import (
	"testing"

	"repro/internal/naive"
	"repro/internal/semantics"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestInnerLocpathRelation checks eval_inner_locpath's relation against
// brute-force per-node evaluation.
func TestInnerLocpathRelation(t *testing.T) {
	d := xmltree.MustParseString(
		`<a><b><c/><c/></b><b><c/></b><d><c/></d></a>`)
	nv := naive.New(d)
	ev := New(d)
	paths := []string{
		"child::c",
		"child::b/child::c",
		"descendant::c",
		"/descendant::b/child::c",
		"child::c[position() = 2]",
		"following-sibling::*/child::c",
	}
	var all xmltree.NodeSet
	for i := 0; i < d.Len(); i++ {
		all = append(all, xmltree.NodeID(i))
	}
	for _, q := range paths {
		p := xpath.MustParse(q).(*xpath.Path)
		st := newState(ev)
		rel, err := st.evalInnerLocpath(p, all)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		for _, x := range all {
			want, err := nv.Evaluate(p, semantics.Context{Node: x, Pos: 1, Size: 1})
			if err != nil {
				t.Fatal(err)
			}
			if !rel[x].Equal(want.Set) {
				t.Errorf("%s from %d: relation %v, naive %v", q, x, rel[x], want.Set)
			}
		}
	}
}

// TestTablesShareAcrossPredicates: evaluating a query whose predicate
// repeats a subexpression must reuse the covered rows (the whole point
// of the context-value tables). We verify observable behaviour: the
// repeated-subexpression query evaluates correctly and the state covers
// each node once.
func TestCoverageBookkeeping(t *testing.T) {
	d := xmltree.MustParseString(`<a><b/><b/><b/></a>`)
	ev := New(d)
	st := newState(ev)
	e := xpath.MustParse("count(child::b)")
	all := xmltree.NodeSet{0, 1, 2}
	if err := st.evalByCnodeOnly(e, all); err != nil {
		t.Fatal(err)
	}
	// A second call with an overlapping set must be a no-op (uncovered
	// returns empty) and not error.
	if err := st.evalByCnodeOnly(e, xmltree.NodeSet{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Values are correct per node.
	for n := xmltree.NodeID(0); n < 4; n++ {
		v, err := st.evalSingleContext(e, semantics.Context{Node: n, Pos: -1, Size: -1})
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		if d.Type(n) == xmltree.Root || d.Name(n) == "a" {
			if d.Name(n) == "a" {
				want = 3
			}
		}
		if v.Num != want {
			t.Errorf("count(child::b) at %d = %v, want %v", n, v.Num, want)
		}
	}
}

// TestOnDemandSingleContext: evalSingleContext must fill tables lazily
// for nodes never passed to evalByCnodeOnly.
func TestOnDemandSingleContext(t *testing.T) {
	d := xmltree.MustParseString(`<a><b><c/></b></a>`)
	ev := New(d)
	st := newState(ev)
	e := xpath.MustParse("count(child::*)")
	// No prior evalByCnodeOnly for node b.
	b := d.Children(d.DocumentElement())[0]
	v, err := st.evalSingleContext(e, semantics.Context{Node: b, Pos: -1, Size: -1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Num != 1 {
		t.Errorf("on-demand count = %v, want 1", v.Num)
	}
}

// TestErrorPaths covers the error returns.
func TestErrorPaths(t *testing.T) {
	d := xmltree.MustParseString(`<a/>`)
	ev := New(d)
	if _, err := ev.Evaluate(&xpath.VarRef{Name: "v"}, semantics.Context{Node: d.RootID(), Pos: 1, Size: 1}); err == nil {
		t.Error("unbound variable must error")
	}
}
