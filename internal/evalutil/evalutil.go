// Package evalutil holds small helpers shared by the evaluation engines:
// location-step candidate computation ({y | x χ y, y ∈ T(t)}) and the
// per-axis ordering of candidate sets used for context positions.
package evalutil

import (
	"strings"

	"repro/internal/axes"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// StepCandidates computes S = {y | x χ y, y ∈ T(t)} for a single context
// node: the axis image filtered by the node test, in document order.
func StepCandidates(d *xmltree.Document, a axes.Axis, t xpath.NodeTest, x xmltree.NodeID) xmltree.NodeSet {
	return StepCandidatesSet(d, a, t, xmltree.NodeSet{x})
}

// StepCandidatesSet computes {y | ∃x∈X: x χ y, y ∈ T(t)}.
//
// Exact element name tests — the `child::a` shape dominating real
// queries — are served from the document's label index (axes.EvalNamed):
// the axis restricts a precomputed posting list instead of materializing
// the full image and scanning it node by node.
func StepCandidatesSet(d *xmltree.Document, a axes.Axis, t xpath.NodeTest, xs xmltree.NodeSet) xmltree.NodeSet {
	if ExactElementName(a, t) {
		return axes.EvalNamed(d, a, xs, t.Name)
	}
	img := axes.Eval(d, a, xs)
	return FilterTest(d, a, t, img)
}

// ExactElementName reports whether the step is an exact-name test whose
// principal node type is element — the shape the label index answers.
// Every engine consulting the index must use this one gate so the fast
// path stays equivalent to FilterTest.
func ExactElementName(a axes.Axis, t xpath.NodeTest) bool {
	return t.Kind == xpath.TestName && t.Name != "*" && !strings.HasSuffix(t.Name, ":*") &&
		a != axes.IDAxis && a.PrincipalType() == xmltree.Element
}

// FilterTest restricts a node set to the nodes satisfying the node test
// under the axis's principal node type.
func FilterTest(d *xmltree.Document, a axes.Axis, t xpath.NodeTest, s xmltree.NodeSet) xmltree.NodeSet {
	principal := a.PrincipalType()
	out := make(xmltree.NodeSet, 0, len(s))
	for _, y := range s {
		if t.Matches(d, principal, y) {
			out = append(out, y)
		}
	}
	return out
}

// AxisOrdered returns the candidate set ordered by <doc,χ: document
// order for forward axes, reverse document order for reverse axes
// (Section 4). The input must be in document order.
func AxisOrdered(a axes.Axis, s xmltree.NodeSet) []xmltree.NodeID {
	if !a.IsReverse() {
		return s
	}
	out := make([]xmltree.NodeID, len(s))
	for i, id := range s {
		out[len(s)-1-i] = id
	}
	return out
}
