// Package evalutil holds small helpers shared by the evaluation engines:
// location-step candidate computation ({y | x χ y, y ∈ T(t)}) and the
// per-axis ordering of candidate sets used for context positions.
package evalutil

import (
	"repro/internal/axes"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// StepCandidates computes S = {y | x χ y, y ∈ T(t)} for a single context
// node: the axis image filtered by the node test, in document order.
func StepCandidates(d *xmltree.Document, a axes.Axis, t xpath.NodeTest, x xmltree.NodeID) xmltree.NodeSet {
	img := axes.EvalNode(d, a, x)
	return FilterTest(d, a, t, img)
}

// StepCandidatesSet computes {y | ∃x∈X: x χ y, y ∈ T(t)}.
func StepCandidatesSet(d *xmltree.Document, a axes.Axis, t xpath.NodeTest, xs xmltree.NodeSet) xmltree.NodeSet {
	img := axes.Eval(d, a, xs)
	return FilterTest(d, a, t, img)
}

// FilterTest restricts a node set to the nodes satisfying the node test
// under the axis's principal node type.
func FilterTest(d *xmltree.Document, a axes.Axis, t xpath.NodeTest, s xmltree.NodeSet) xmltree.NodeSet {
	principal := a.PrincipalType()
	out := make(xmltree.NodeSet, 0, len(s))
	for _, y := range s {
		if t.Matches(d, principal, y) {
			out = append(out, y)
		}
	}
	return out
}

// AxisOrdered returns the candidate set ordered by <doc,χ: document
// order for forward axes, reverse document order for reverse axes
// (Section 4). The input must be in document order.
func AxisOrdered(a axes.Axis, s xmltree.NodeSet) []xmltree.NodeID {
	if !a.IsReverse() {
		return s
	}
	out := make([]xmltree.NodeID, len(s))
	for i, id := range s {
		out[len(s)-1-i] = id
	}
	return out
}
