package evalutil

import (
	"testing"

	"repro/internal/axes"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func doc(t *testing.T) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString(`<a x="1"><b/>t<c/><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func step(t *testing.T, src string) *xpath.Step {
	t.Helper()
	p := xpath.MustParse(src).(*xpath.Path)
	return p.Steps[len(p.Steps)-1]
}

func TestStepCandidates(t *testing.T) {
	d := doc(t)
	a := d.DocumentElement()
	s := step(t, "child::b")
	got := StepCandidates(d, s.Axis, s.Test, a)
	if len(got) != 2 {
		t.Errorf("child::b candidates = %v", got)
	}
	s = step(t, "child::node()")
	got = StepCandidates(d, s.Axis, s.Test, a)
	if len(got) != 4 { // b, text, c, b — not the attribute
		t.Errorf("child::node() candidates = %v (want 4)", got)
	}
	s = step(t, "child::text()")
	got = StepCandidates(d, s.Axis, s.Test, a)
	if len(got) != 1 || d.Type(got[0]) != xmltree.Text {
		t.Errorf("child::text() candidates = %v", got)
	}
	s = step(t, "attribute::x")
	got = StepCandidates(d, s.Axis, s.Test, a)
	if len(got) != 1 || d.Type(got[0]) != xmltree.Attribute {
		t.Errorf("@x candidates = %v", got)
	}
}

func TestStepCandidatesSetEqualsUnion(t *testing.T) {
	d := doc(t)
	a := d.DocumentElement()
	kids := d.Children(a)
	s := step(t, "following-sibling::*")
	xs := xmltree.NewNodeSet(kids[0], kids[2])
	got := StepCandidatesSet(d, s.Axis, s.Test, xs)
	want := StepCandidates(d, s.Axis, s.Test, kids[0]).
		Union(StepCandidates(d, s.Axis, s.Test, kids[2]))
	if !got.Equal(want) {
		t.Errorf("set = %v, union = %v", got, want)
	}
}

func TestAxisOrdered(t *testing.T) {
	s := xmltree.NodeSet{1, 2, 3}
	fw := AxisOrdered(axes.Child, s)
	if fw[0] != 1 || fw[2] != 3 {
		t.Errorf("forward order = %v", fw)
	}
	rv := AxisOrdered(axes.Ancestor, s)
	if rv[0] != 3 || rv[2] != 1 {
		t.Errorf("reverse order = %v", rv)
	}
	// Input slice must not be mutated.
	if s[0] != 1 {
		t.Error("AxisOrdered mutated its input")
	}
}

func TestFilterTestPrincipalType(t *testing.T) {
	d := doc(t)
	a := d.DocumentElement()
	// The * test under the child axis matches elements only (principal
	// type element): text nodes are excluded.
	all := axes.EvalNode(d, axes.Child, a)
	starTest := xpath.NodeTest{Kind: xpath.TestName, Name: "*"}
	got := FilterTest(d, axes.Child, starTest, all)
	for _, n := range got {
		if d.Type(n) != xmltree.Element {
			t.Errorf("* matched non-element %v", d.Type(n))
		}
	}
	if len(got) != 3 {
		t.Errorf("child::* = %d nodes, want 3", len(got))
	}
}
