package evalutil

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/axes"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// shrinkFilterPar drops the size floors so small documents exercise
// the parallel scan, restoring the defaults afterwards.
func shrinkFilterPar(t *testing.T) {
	mn, ch := filterParMin, filterChunk
	filterParMin, filterChunk = 2, 3
	t.Cleanup(func() { filterParMin, filterChunk = mn, ch })
}

// parTestDoc builds a flat-ish random document mixing names, text and
// attributes.
func parTestDoc(r *rand.Rand, n int) *xmltree.Document {
	var b strings.Builder
	b.WriteString(`<root>`)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			b.WriteString(`<a x="1"><b/></a>`)
		case 1:
			b.WriteString(`<b>t</b>`)
		case 2:
			b.WriteString(`<c/>`)
		default:
			b.WriteString(`t`)
		}
	}
	b.WriteString(`</root>`)
	d, err := xmltree.ParseString(b.String())
	if err != nil {
		panic(err)
	}
	return d
}

func TestFilterTestParMatchesSequential(t *testing.T) {
	shrinkFilterPar(t)
	r := rand.New(rand.NewSource(21))
	ctx := context.Background()
	tests := []xpath.NodeTest{
		{Kind: xpath.TestName, Name: "*"},
		{Kind: xpath.TestName, Name: "b"},
		{Kind: xpath.TestNode},
		{Kind: xpath.TestText},
	}
	for round := 0; round < 20; round++ {
		d := parTestDoc(r, 5+r.Intn(120))
		s := make(xmltree.NodeSet, 0, d.Len())
		for i := 0; i < d.Len(); i++ {
			if r.Intn(3) != 0 {
				s = append(s, xmltree.NodeID(i))
			}
		}
		for _, nt := range tests {
			for _, a := range []axes.Axis{axes.Child, axes.Descendant} {
				want := FilterTest(d, a, nt, s)
				for _, p := range []int{0, 1, 2, 8} {
					got, err := FilterTestPar(ctx, d, a, nt, s, p)
					if err != nil {
						t.Fatalf("FilterTestPar(p=%d): %v", p, err)
					}
					if !got.Equal(want) {
						t.Fatalf("FilterTestPar(%v, p=%d) = %v, sequential = %v", nt, p, got, want)
					}
				}
			}
		}
	}
}

func TestStepCandidatesSetParMatchesSequential(t *testing.T) {
	shrinkFilterPar(t)
	r := rand.New(rand.NewSource(22))
	ctx := context.Background()
	steps := []string{"child::b", "descendant::a", "descendant-or-self::node()",
		"following::c", "preceding::*", "child::text()"}
	for round := 0; round < 20; round++ {
		d := parTestDoc(r, 5+r.Intn(120))
		xs := xmltree.NodeSet{d.RootID()}
		if de := d.DocumentElement(); de != xmltree.NilNode && r.Intn(2) == 0 {
			xs = xmltree.NodeSet{de}
		}
		for _, src := range steps {
			p := xpath.MustParse(src).(*xpath.Path)
			st := p.Steps[len(p.Steps)-1]
			want := StepCandidatesSet(d, st.Axis, st.Test, xs)
			for _, par := range []int{0, 1, 2, 8} {
				got, err := StepCandidatesSetPar(ctx, d, st.Axis, st.Test, xs, par)
				if err != nil {
					t.Fatalf("StepCandidatesSetPar(%s, p=%d): %v", src, par, err)
				}
				if !got.Equal(want) {
					t.Fatalf("StepCandidatesSetPar(%s, p=%d) = %v, sequential = %v", src, par, got, want)
				}
			}
		}
	}
}

// TestFilterTestParCancelled runs at production thresholds: chunks of
// filterChunk nodes exceed the Canceller consult throttle, so every
// worker's first chunk observes the cancelled context.
func TestFilterTestParCancelled(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	d := parTestDoc(r, 4000)
	s := make(xmltree.NodeSet, d.Len())
	for i := range s {
		s[i] = xmltree.NodeID(i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FilterTestPar(ctx, d, axes.Child, xpath.NodeTest{Kind: xpath.TestNode}, s, 8); err != context.Canceled {
		t.Fatalf("FilterTestPar on cancelled ctx: err = %v, want context.Canceled", err)
	}
}
