package evalutil

import "context"

// checkEvery throttles context checks: ctx.Err() involves an atomic
// load (and a mutex in some Context implementations), so hot evaluation
// loops only consult it once per this many checkpoint calls. 1024 keeps
// the overhead unmeasurable while still bounding the cancellation
// latency to a sliver of any long-running evaluation.
const checkEvery = 1024

// Canceller is a throttled cancellation checkpoint carried by a
// per-query evaluator. The zero value (or a nil pointer) never cancels,
// so engines whose callers use the plain Evaluate entry point pay one
// nil check per checkpoint and nothing else. A Canceller is not safe
// for concurrent use; each evaluation owns its own.
type Canceller struct {
	ctx   context.Context
	count int
}

// NewCanceller returns a checkpoint bound to ctx, or nil when ctx can
// never be cancelled (nil or context.Background()-like without a Done
// channel), keeping the uncancellable path free.
func NewCanceller(ctx context.Context) *Canceller {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &Canceller{ctx: ctx}
}

// Check returns the context's error once cancelled, consulting the
// context only every checkEvery-th call. Call it inside every loop
// whose trip count grows with the document.
func (c *Canceller) Check() error {
	if c == nil {
		return nil
	}
	c.count++
	if c.count < checkEvery {
		return nil
	}
	c.count = 0
	return c.ctx.Err()
}

// CheckN bills n units of work against the checkpoint at once,
// consulting the context when the accumulated work crosses the
// throttle threshold. The linear engines use it to stay cancellable
// without per-node overhead: they process whole node sets in bulk
// operations (axis images, set intersections, document scans), so they
// bill each operation's set size instead of calling Check per node.
// Cancellation latency stays bounded by ~checkEvery units of work.
func (c *Canceller) CheckN(n int) error {
	if c == nil {
		return nil
	}
	c.count += n
	if c.count < checkEvery {
		return nil
	}
	c.count = 0
	return c.ctx.Err()
}
