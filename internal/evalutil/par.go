package evalutil

import (
	"context"
	"sync/atomic"

	"repro/internal/axes"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Parallel variants of the step-candidate helpers. Chunks of the input
// set are matched on pool workers and concatenated in chunk order, so
// the output is element-for-element identical to the sequential
// FilterTest/StepCandidatesSet for any worker budget. Each worker
// bills its own chunk against a per-chunk Canceller, mirroring the
// sequential CheckN discipline.

// Variables so tests can shrink them and exercise the parallel paths
// on small documents.
var (
	// filterParMin is the input size floor below which FilterTestPar
	// runs sequentially.
	filterParMin = 4096

	// filterChunk is the per-chunk node count; at least checkEvery, so
	// the per-chunk CheckN consults the context every chunk.
	filterChunk = 2048
)

// parFail records the first worker error; later chunks observe it and
// return immediately, so a cancelled scan winds down in one chunk per
// worker.
type parFail struct {
	p atomic.Pointer[error]
}

func (f *parFail) set(err error) { f.p.CompareAndSwap(nil, &err) }

func (f *parFail) err() error {
	if e := f.p.Load(); e != nil {
		return *e
	}
	return nil
}

// FilterTestPar is FilterTest with a worker budget and cooperative
// cancellation. The node-test scan is the dominant cost of non-exact
// steps (t.Matches per candidate), so it chunks across the pool; p <= 1
// or small inputs take the sequential path after one bulk bill.
func FilterTestPar(ctx context.Context, d *xmltree.Document, a axes.Axis, t xpath.NodeTest, s xmltree.NodeSet, p int) (xmltree.NodeSet, error) {
	if p <= 1 || len(s) < filterParMin {
		if err := NewCanceller(ctx).CheckN(len(s)); err != nil {
			return nil, err
		}
		return FilterTest(d, a, t, s), nil
	}
	principal := a.PrincipalType()
	nchunks := (len(s) + filterChunk - 1) / filterChunk
	outs := make([]xmltree.NodeSet, nchunks)
	var fail parFail
	xmltree.ParDo(p, nchunks, func(k int) {
		if fail.err() != nil {
			return
		}
		lo, hi := k*filterChunk, (k+1)*filterChunk
		if hi > len(s) {
			hi = len(s)
		}
		// Each worker bills its own chunk.
		if err := NewCanceller(ctx).CheckN(hi - lo); err != nil {
			fail.set(err)
			return
		}
		out := make(xmltree.NodeSet, 0, hi-lo)
		for _, y := range s[lo:hi] {
			if t.Matches(d, principal, y) {
				out = append(out, y)
			}
		}
		outs[k] = out
	})
	if err := fail.err(); err != nil {
		return nil, err
	}
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	out := make(xmltree.NodeSet, 0, total)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, nil
}

// StepCandidatesSetPar is StepCandidatesSet with a worker budget:
// exact element name steps route to the parallel posting-list scans,
// everything else to the parallel axis image + parallel node-test
// filter. Results are identical to StepCandidatesSet.
func StepCandidatesSetPar(ctx context.Context, d *xmltree.Document, a axes.Axis, t xpath.NodeTest, xs xmltree.NodeSet, p int) (xmltree.NodeSet, error) {
	if ExactElementName(a, t) {
		return axes.EvalNamedPar(ctx, d, a, xs, t.Name, nil, p)
	}
	img, err := axes.EvalPar(ctx, d, a, xs, nil, p)
	if err != nil {
		return nil, err
	}
	return FilterTestPar(ctx, d, a, t, img, p)
}
