package planner

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestShapeExtract(t *testing.T) {
	// Normalization expands // into descendant-or-self::node()/child::
	// and rewrites [2] into [position() = 2], so the extracted shape
	// reflects unabbreviated structure.
	q := core.MustCompile("//a[2]/parent::b | //c")
	sh := Extract(q, 500)
	if sh.Fragment != q.Fragment() {
		t.Fatalf("fragment = %v, want %v", sh.Fragment, q.Fragment())
	}
	if sh.Unions != 1 {
		t.Fatalf("unions = %d, want 1", sh.Unions)
	}
	if sh.Positionals == 0 {
		t.Fatal("numeric predicate [2] must count as positional after normalization")
	}
	if sh.ReverseSteps != 1 {
		t.Fatalf("reverse steps = %d, want 1 (parent::b)", sh.ReverseSteps)
	}
	if sh.SpineSteps < 2 {
		t.Fatalf("spine steps = %d, want >= 2 (two // expansions)", sh.SpineSteps)
	}
	if sh.MaxPredDepth != 1 {
		t.Fatalf("pred depth = %d, want 1", sh.MaxPredDepth)
	}
	if sh.DocNodes != 500 {
		t.Fatalf("doc nodes = %d, want 500", sh.DocNodes)
	}
}

func TestShapePredDepth(t *testing.T) {
	sh := Extract(core.MustCompile("//a[b[c[d]]]"), 10)
	if sh.MaxPredDepth != 3 {
		t.Fatalf("pred depth = %d, want 3", sh.MaxPredDepth)
	}
}

func TestClassBuckets(t *testing.T) {
	// Documents within a 16× band share a class; far apart they don't.
	a := Extract(core.MustCompile("//a"), 100).Class()
	b := Extract(core.MustCompile("//b"), 110).Class()
	c := Extract(core.MustCompile("//a"), 1_000_000).Class()
	if a != b {
		t.Fatalf("same-shape queries on similar docs split classes: %v vs %v", a, b)
	}
	if a == c {
		t.Fatal("a 10000× larger document must land in a different class")
	}
	if !strings.Contains(a.String(), "core_xpath") {
		t.Fatalf("class string %q should carry the fragment label", a)
	}
}

func TestRulesRouting(t *testing.T) {
	p := New(Config{Mode: Rules})
	cases := []struct {
		query string
		doc   int
		want  core.Strategy
	}{
		// Fragment algebras lead their own fragments.
		{"/descendant::a/child::b", 1000, core.CoreXPath},
		{"id('x')/child::a", 1000, core.XPatterns},
		// The Extended Wadler Fragment and general full XPath go to
		// OptMinContext.
		{"//a[position() = 2]", 1000, core.OptMinContext},
		{"count(//a) < count(//b)", 100_000, core.OptMinContext},
		// Deep predicate nesting over a small document prefers the
		// vectorized top-down evaluator.
		{"//a[b[c[count(d) < count(e)]]]", 200, core.TopDown},
		{"//a[b[c[count(d) < count(e)]]]", 100_000, core.OptMinContext},
	}
	for _, tc := range cases {
		d := p.Decide(core.MustCompile(tc.query), tc.doc, nil)
		if d.Strategy != tc.want {
			t.Errorf("%s on %d nodes: picked %v (%s), want %v", tc.query, tc.doc, d.Strategy, d.Rationale, tc.want)
		}
		if d.Explored {
			t.Errorf("%s: rules mode must never explore", tc.query)
		}
		if !strings.HasPrefix(d.Rationale, "rules:") {
			t.Errorf("%s: rationale %q should be rule-based", tc.query, d.Rationale)
		}
	}
	if got := p.Stats().Decisions; got != uint64(len(cases)) {
		t.Fatalf("decisions = %d, want %d", got, len(cases))
	}
}

func TestBaselinesNeverCandidates(t *testing.T) {
	// The exponential baselines exist for experiments, not serving.
	for _, query := range []string{"//a", "id('x')/child::a", "//a[position() = 2]", "count(//a) < count(//b)"} {
		d := New(Config{Mode: Rules}).Peek(core.MustCompile(query), 1000)
		for _, c := range d.Candidates {
			if c.Strategy == core.Naive || c.Strategy == core.DataPool {
				t.Fatalf("%s: %v offered as a candidate", query, c.Strategy)
			}
		}
	}
}

func TestAdaptiveFollowsObservations(t *testing.T) {
	p := New(Config{Mode: Adaptive, ExploreEvery: -1})
	q := core.MustCompile("count(//a) < count(//b)")
	const doc = 5000
	// Rule pick is OptMinContext; feed observations showing TopDown is
	// 10× faster for this class.
	p.Observe(q, doc, core.OptMinContext, 10*time.Millisecond, false)
	p.Observe(q, doc, core.TopDown, time.Millisecond, false)
	d := p.Decide(q, doc, nil)
	if d.Strategy != core.TopDown {
		t.Fatalf("picked %v (%s), want TopDown from observations", d.Strategy, d.Rationale)
	}
	if !strings.HasPrefix(d.Rationale, "observed:") {
		t.Fatalf("rationale = %q, want observation-driven", d.Rationale)
	}
	// A faster-than-rule-estimate measurement on the adaptive pick
	// counts a win.
	p.Observe(q, doc, core.TopDown, time.Millisecond, false)
	if p.Stats().Wins == 0 {
		t.Fatal("observation-driven pick measuring faster than the rule pick's estimate must count a win")
	}
}

func TestEntryEvidenceOutranksClass(t *testing.T) {
	p := New(Config{Mode: Adaptive, ExploreEvery: -1})
	q := core.MustCompile("count(//a) < count(//b)")
	const doc = 5000
	// Class-level evidence says TopDown; this query's own entry says
	// MinContext. The entry wins: it is this exact query.
	p.Observe(q, doc, core.OptMinContext, 10*time.Millisecond, false)
	p.Observe(q, doc, core.TopDown, time.Millisecond, false)
	entry := fakeEntry{core.MinContext: 100e-6, core.TopDown: 5e-3}
	d := p.Decide(q, doc, entry)
	if d.Strategy != core.MinContext {
		t.Fatalf("picked %v (%s), want MinContext from entry evidence", d.Strategy, d.Rationale)
	}
	for _, c := range d.Candidates {
		if c.Strategy == core.MinContext && c.Source != "entry" {
			t.Fatalf("MinContext evidence source = %q, want entry", c.Source)
		}
	}
}

// fakeEntry implements EntryStats from a map.
type fakeEntry map[core.Strategy]float64

func (f fakeEntry) StrategySeconds(s core.Strategy) (float64, bool) {
	v, ok := f[s]
	return v, ok
}

func TestMatrixEvidence(t *testing.T) {
	reg := obs.NewRegistry()
	matrix := reg.HistogramVec("xpath_query_seconds", "test", nil, "fragment", "strategy")
	// Fleet-level evidence: MinContext has run full-XPath queries at
	// 1ms while the rule pick OptMinContext averaged 50ms.
	matrix.With("full_xpath", "mincontext").Observe(0.001)
	matrix.With("full_xpath", "optmincontext").Observe(0.050)
	p := New(Config{Mode: Adaptive, ExploreEvery: -1, Matrix: matrix})
	d := p.Decide(core.MustCompile("count(//a) < count(//b)"), 5000, nil)
	if d.Strategy != core.MinContext {
		t.Fatalf("picked %v (%s), want MinContext from matrix evidence", d.Strategy, d.Rationale)
	}
	for _, c := range d.Candidates {
		if c.Strategy == core.MinContext && c.Source != "matrix" {
			t.Fatalf("evidence source = %q, want matrix", c.Source)
		}
	}
}

func TestBanExcludesStrategy(t *testing.T) {
	p := New(Config{Mode: Adaptive, ExploreEvery: -1})
	q := core.MustCompile("//a")
	const doc = 300
	// Make bottomup look fastest, then report its structural failure.
	p.Observe(q, doc, core.BottomUp, time.Microsecond, false)
	if d := p.Decide(q, doc, nil); d.Strategy != core.BottomUp {
		t.Fatalf("setup: picked %v, want BottomUp", d.Strategy)
	}
	p.Observe(q, doc, core.BottomUp, time.Millisecond, true)
	d := p.Decide(q, doc, nil)
	if d.Strategy == core.BottomUp {
		t.Fatal("banned strategy re-picked for the same class")
	}
	if p.Stats().Bans != 1 {
		t.Fatalf("bans = %d, want 1", p.Stats().Bans)
	}
	// The ban is idempotent and visible on the candidate list.
	p.Observe(q, doc, core.BottomUp, time.Millisecond, true)
	if p.Stats().Bans != 1 {
		t.Fatalf("re-banning counted twice: %d", p.Stats().Bans)
	}
	banned := false
	for _, c := range p.Peek(q, doc).Candidates {
		if c.Strategy == core.BottomUp && c.Banned {
			banned = true
		}
	}
	if !banned {
		t.Fatal("candidate list does not mark the banned strategy")
	}
}

func TestExploreSchedule(t *testing.T) {
	p := New(Config{Mode: Adaptive, ExploreEvery: 4})
	q := core.MustCompile("//a")
	const doc = 300
	explored := 0
	for i := 0; i < 16; i++ {
		if p.Decide(q, doc, nil).Explored {
			explored++
		}
	}
	if explored != 4 {
		t.Fatalf("explored %d of 16 decisions with ExploreEvery=4, want exactly 4", explored)
	}
	if p.Stats().Explored != 4 {
		t.Fatalf("stats explored = %d, want 4", p.Stats().Explored)
	}
	// Exploration spreads over the least-tried candidates rather than
	// hammering one alternative.
	seen := map[core.Strategy]bool{}
	for i := 0; i < 16; i++ {
		if d := p.Decide(q, doc, nil); d.Explored {
			seen[d.Strategy] = true
		}
	}
	if len(seen) < 2 {
		t.Fatalf("exploration visited %v, want at least two distinct alternatives", seen)
	}
}

func TestPeekHasNoSideEffects(t *testing.T) {
	p := New(Config{Mode: Adaptive, ExploreEvery: 1})
	q := core.MustCompile("//a")
	for i := 0; i < 10; i++ {
		if d := p.Peek(q, 300); d.Explored {
			t.Fatal("Peek must never explore")
		}
	}
	if s := p.Stats(); s.Decisions != 0 || s.Explored != 0 {
		t.Fatalf("Peek mutated stats: %+v", s)
	}
}

func TestPlannerMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(Config{Mode: Adaptive, Registry: reg})
	p.Decide(core.MustCompile("//a"), 300, nil)
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"xpath_planner_decisions_total",
		"xpath_planner_explore_total",
		"xpath_planner_bans_total",
		"xpath_planner_wins_total",
		"xpath_planner_classes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

func TestModeByName(t *testing.T) {
	for name, want := range map[string]Mode{"off": Off, "rules": Rules, "adaptive": Adaptive} {
		got, ok := ModeByName(name)
		if !ok || got != want {
			t.Fatalf("ModeByName(%q) = %v, %v", name, got, ok)
		}
		if got.String() != name {
			t.Fatalf("%v.String() = %q, want %q", got, got.String(), name)
		}
	}
	if _, ok := ModeByName("bogus"); ok {
		t.Fatal("bogus mode resolved")
	}
}

// TestPlannerConcurrent hammers Decide and Observe from many
// goroutines over a handful of classes; the planner's EWMA/ban/trial
// state is lock-free and must be clean under -race (the CI race-stress
// job runs this package with -race -count=3).
func TestPlannerConcurrent(t *testing.T) {
	p := New(Config{Mode: Adaptive, ExploreEvery: 2})
	queries := []*core.Query{
		core.MustCompile("//a"),
		core.MustCompile("id('x')/child::a"),
		core.MustCompile("//a[position() = 2]"),
		core.MustCompile("count(//a) < count(//b)"),
	}
	const goroutines, reps = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				q := queries[(g+i)%len(queries)]
				doc := 100 << ((g + i) % 3 * 4)
				d := p.Decide(q, doc, nil)
				failed := d.Strategy == core.BottomUp && i%7 == 0
				p.Observe(q, doc, d.Strategy, time.Duration(i%100)*time.Microsecond, failed)
			}
		}(g)
	}
	wg.Wait()
	s := p.Stats()
	if s.Decisions != goroutines*reps {
		t.Fatalf("decisions = %d, want %d", s.Decisions, goroutines*reps)
	}
	if s.Classes == 0 {
		t.Fatal("no classes accumulated state")
	}
}

func TestAllBannedFallsBackToMinContext(t *testing.T) {
	p := New(Config{Mode: Adaptive, ExploreEvery: -1})
	q := core.MustCompile("//a")
	const doc = 300
	for _, s := range []core.Strategy{core.CoreXPath, core.OptMinContext, core.TopDown, core.MinContext, core.BottomUp} {
		p.Observe(q, doc, s, time.Millisecond, true)
	}
	d := p.Decide(q, doc, nil)
	if d.Strategy != core.MinContext {
		t.Fatalf("picked %v with every candidate banned, want the MinContext backstop", d.Strategy)
	}
}

func TestExploreEveryDisabled(t *testing.T) {
	p := New(Config{Mode: Adaptive, ExploreEvery: -1})
	q := core.MustCompile("//a")
	for i := 0; i < 64; i++ {
		if p.Decide(q, 300, nil).Explored {
			t.Fatal("exploration fired with ExploreEvery < 0")
		}
	}
}

func TestFragmentLabel(t *testing.T) {
	want := map[core.Fragment]string{
		core.FragmentCoreXPath: "core_xpath",
		core.FragmentXPatterns: "xpatterns",
		core.FragmentWadler:    "wadler",
		core.FragmentFullXPath: "full_xpath",
	}
	for f, label := range want {
		if got := FragmentLabel(f); got != label {
			t.Fatalf("FragmentLabel(%v) = %q, want %q", f, got, label)
		}
	}
}

func TestDecisionRationaleMentionsClass(t *testing.T) {
	p := New(Config{Mode: Adaptive, ExploreEvery: 1})
	q := core.MustCompile("//a")
	p.Observe(q, 300, core.CoreXPath, time.Microsecond, false)
	// Second decision explores (ExploreEvery=1 fires every time).
	d := p.Decide(q, 300, nil)
	if !d.Explored {
		t.Fatalf("expected an exploring decision, got %q", d.Rationale)
	}
	if !strings.Contains(d.Rationale, d.Class.String()) {
		t.Fatalf("rationale %q should name the class %q", d.Rationale, d.Class)
	}
}

func TestStatsStringer(t *testing.T) {
	if got := fmt.Sprint(New(Config{Mode: Adaptive}).Stats().Mode); got != "adaptive" {
		t.Fatalf("stats mode = %q", got)
	}
}
